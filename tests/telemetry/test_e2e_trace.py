"""Acceptance: one end-to-end tuning session produces a JSONL trace from
which every centroid update and guardrail decision can be reconstructed."""

import numpy as np
import pytest

from repro import CentroidLearning, SparkSimulator, TuningSession, telemetry
from repro.core.guardrail import Guardrail
from repro.sparksim.configs import query_level_space
from repro.sparksim.noise import low_noise
from repro.workloads.tpch import tpch_plan

pytestmark = pytest.mark.telemetry

ITERATIONS = 20


@pytest.fixture(scope="module")
def traced_session(tmp_path_factory):
    """Run one tuning session with a JSONL trace attached; return everything
    the reconstruction tests need."""
    path = tmp_path_factory.mktemp("trace") / "session.jsonl"
    guardrail = Guardrail(min_iterations=5, fit_window=5)
    optimizer = CentroidLearning(query_level_space(), seed=0, guardrail=guardrail)
    session = TuningSession(
        plan=tpch_plan(3, scale_factor=1.0),
        simulator=SparkSimulator(noise=low_noise(), seed=0),
        optimizer=optimizer,
    )
    with telemetry.capture(jsonl=path) as cap:
        trace = session.run(ITERATIONS)
        counters = cap.counters()
    return {
        "path": path,
        "trace": telemetry.read_jsonl(path),
        "optimizer": optimizer,
        "guardrail": guardrail,
        "session_records": trace.records,
        "counters": counters,
    }


def _by_name(trace, name):
    return [r for r in trace if r.name == name]


class TestTraceShape:
    def test_one_step_span_per_iteration(self, traced_session):
        steps = _by_name(traced_session["trace"], "session.step")
        assert len(steps) == ITERATIONS
        assert sorted(s.attributes["iteration"] for s in steps) == list(range(ITERATIONS))

    def test_child_spans_are_parented_under_their_step(self, traced_session):
        trace = traced_session["trace"]
        step_ids = {s.span_id for s in _by_name(trace, "session.step")}
        for name in ("centroid.update", "guardrail.check"):
            for child in _by_name(trace, name):
                assert child.parent_id in step_ids, f"{name} span not under a step"

    def test_all_spans_ok(self, traced_session):
        assert all(r.status == "ok" for r in traced_session["trace"])

    def test_step_spans_carry_observations(self, traced_session):
        records = traced_session["session_records"]
        steps = sorted(_by_name(traced_session["trace"], "session.step"),
                       key=lambda s: s.attributes["iteration"])
        for rec, span in zip(records, steps):
            assert span.attributes["observed_seconds"] == pytest.approx(rec.observed_seconds)
            assert span.attributes["data_size"] == pytest.approx(rec.data_size)


class TestCentroidReconstruction:
    def test_every_update_is_traced(self, traced_session):
        updates = _by_name(traced_session["trace"], "centroid.update")
        optimizer = traced_session["optimizer"]
        assert len(updates) == optimizer._n_updates
        assert traced_session["counters"]["centroid.updates"] == optimizer._n_updates

    def test_updates_chain_and_end_at_the_final_centroid(self, traced_session):
        updates = sorted(_by_name(traced_session["trace"], "centroid.update"),
                         key=lambda s: s.span_id)
        optimizer = traced_session["optimizer"]
        assert updates, "session produced no centroid updates to reconstruct"
        for prev, nxt in zip(updates, updates[1:]):
            np.testing.assert_allclose(
                prev.attributes["centroid_after"],
                nxt.attributes["centroid_before"],
                err_msg="centroid trajectory has a gap between traced updates",
            )
        np.testing.assert_allclose(
            updates[-1].attributes["centroid_after"], optimizer.centroid
        )

    def test_update_spans_replay_the_alg1_rule(self, traced_session):
        # The span attributes are sufficient to replay Alg. 1 exactly:
        # after = clip(c* - alpha * sign_gradient * bound_width)
        # (or the multiplicative probe variant).
        optimizer = traced_session["optimizer"]
        bounds = optimizer.space.internal_bounds
        widths = bounds[:, 1] - bounds[:, 0]
        for span in _by_name(traced_session["trace"], "centroid.update"):
            c_star = np.asarray(span.attributes["c_star"])
            grad = np.asarray(span.attributes["sign_gradient"])
            alpha = span.attributes["alpha"]
            if optimizer.probe == "multiplicative":
                predicted = c_star * (1.0 - alpha * grad)
            else:
                predicted = c_star - alpha * grad * widths
            predicted = optimizer.space.clip(predicted)
            np.testing.assert_allclose(
                np.asarray(span.attributes["centroid_after"]), predicted,
                atol=1e-12,
                err_msg="centroid.update span does not replay the update rule",
            )


class TestGuardrailReconstruction:
    def test_every_decision_is_traced(self, traced_session):
        checks = _by_name(traced_session["trace"], "guardrail.check")
        decisions = traced_session["guardrail"].decisions
        assert len(checks) == len(decisions)
        assert traced_session["counters"]["guardrail.checks"] == len(decisions)

    def test_check_spans_mirror_decisions(self, traced_session):
        checks = sorted(_by_name(traced_session["trace"], "guardrail.check"),
                        key=lambda s: s.span_id)
        for span, decision in zip(checks, traced_session["guardrail"].decisions):
            assert span.attributes["iteration"] == decision.iteration
            assert span.attributes["violated"] == decision.violated
            assert span.attributes["predicted_next"] == pytest.approx(
                decision.predicted_next)
            assert span.attributes["previous"] == pytest.approx(decision.previous)

    def test_verdict_counters_sum_to_checks(self, traced_session):
        counters = traced_session["counters"]
        verdicts = sum(v for k, v in counters.items()
                       if k.startswith("guardrail.verdicts"))
        assert verdicts == counters["guardrail.checks"]


class TestSelectorAttribution:
    def test_tuning_steps_record_candidate_scores(self, traced_session):
        tuning_steps = [s for s in _by_name(traced_session["trace"], "session.step")
                        if s.attributes.get("tuning_active")
                        and "candidate_scores" in s.attributes]
        assert tuning_steps, "no tuning step recorded candidate scores"
        for span in tuning_steps:
            scores = span.attributes["candidate_scores"]
            assert span.attributes["candidate_chosen_score"] == max(scores)
