"""Disabled-mode contract: nothing is recorded, the facade hands out the
shared no-op singletons, and the instrumentation overhead on a hot loop
stays under 5%."""

import time

import pytest

from repro import telemetry
from repro.telemetry import NOOP_INSTRUMENT, NOOP_SPAN

pytestmark = pytest.mark.telemetry


@pytest.fixture(autouse=True)
def ensure_disabled():
    assert not telemetry.enabled(), "telemetry leaked from a previous test"
    yield
    assert not telemetry.enabled(), "test left telemetry enabled"


class TestNoopMode:
    def test_disabled_by_default(self):
        assert telemetry.enabled() is False

    def test_facade_returns_shared_singletons(self):
        assert telemetry.counter("x", label="y") is NOOP_INSTRUMENT
        assert telemetry.gauge("x") is NOOP_INSTRUMENT
        assert telemetry.histogram("x") is NOOP_INSTRUMENT
        assert telemetry.span("x", k=1) is NOOP_SPAN
        assert telemetry.current_span() is NOOP_SPAN

    def test_noop_instrument_absorbs_everything(self):
        NOOP_INSTRUMENT.inc()
        NOOP_INSTRUMENT.inc(5.0)
        NOOP_INSTRUMENT.dec()
        NOOP_INSTRUMENT.set(3.0)
        NOOP_INSTRUMENT.observe(1.5)
        assert NOOP_INSTRUMENT.value == 0.0

    def test_noop_span_nests_and_reraises(self):
        with telemetry.span("outer") as outer:
            outer.set_attr("k", 1)
            with telemetry.span("inner"):
                pass
        with pytest.raises(RuntimeError):
            with telemetry.span("boom"):
                raise RuntimeError("propagates")

    def test_disabled_emits_nothing(self):
        telemetry.counter("c").inc()
        telemetry.gauge("g").set(1.0)
        telemetry.histogram("h").observe(2.0)
        assert telemetry.emit("e", k=1) is None
        with telemetry.span("s"):
            pass
        snap = telemetry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
        assert telemetry.events().records == []

    def test_capture_restores_disabled_state(self):
        with telemetry.capture() as cap:
            assert telemetry.enabled()
            telemetry.counter("c").inc()
            assert cap.counters() == {"c": 1.0}
        assert not telemetry.enabled()
        assert telemetry.snapshot()["counters"] == {}


INNER_OPS = 2000  # ~0.15ms of arithmetic per telemetry touchpoint


def _workload(n):
    """~tens-of-µs of real numeric work per call, instrumented the way the
    hot paths are: one counter call and one span per outer iteration."""
    acc = 0.0
    for i in range(n):
        telemetry.counter("bench.iterations").inc()
        with telemetry.span("bench.step"):
            for j in range(INNER_OPS):
                acc += (i * 31 + j) % 7
    return acc


def _bare_workload(n):
    acc = 0.0
    for i in range(n):
        for j in range(INNER_OPS):
            acc += (i * 31 + j) % 7
    return acc


def _interleaved_best(fns, n, trials=11):
    """Best-of-``trials`` per fn with the trials interleaved, so frequency
    drift and background load hit both contestants alike."""
    best = [float("inf")] * len(fns)
    for _ in range(trials):
        for k, fn in enumerate(fns):
            started = time.perf_counter()
            fn(n)
            best[k] = min(best[k], time.perf_counter() - started)
    return best


class TestOverhead:
    def test_disabled_overhead_under_five_percent(self):
        n = 100
        _workload(n)  # warm up both paths
        _bare_workload(n)
        bare, instrumented = _interleaved_best([_bare_workload, _workload], n)
        overhead = instrumented / bare - 1.0
        # The loop does ~2000 arithmetic ops (~0.15ms) per telemetry
        # touchpoint — the density of the real hot paths, where a step is
        # milliseconds of simulator work — so the two no-op facade calls
        # (~0.5µs) must stay in the noise.  5% is the contract from
        # docs/observability.md; benchmarks/bench_perf_telemetry.py records
        # the measured number in BENCH_perf.json.
        assert overhead < 0.05, f"disabled-telemetry overhead {overhead:.2%} >= 5%"
