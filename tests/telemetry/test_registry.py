"""Metrics-registry semantics: counters, gauges, histograms, labels,
cardinality caps, snapshot/reset, dump/merge, and thread safety."""

import pickle
import threading

import pytest

from repro.telemetry import MetricsRegistry, render_key

pytestmark = pytest.mark.telemetry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("requests")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self, registry):
        with pytest.raises(ValueError):
            registry.counter("requests").inc(-1)

    def test_same_name_same_instrument(self, registry):
        a = registry.counter("requests")
        b = registry.counter("requests")
        assert a is b

    def test_labels_create_distinct_series(self, registry):
        registry.counter("requests", op="get").inc()
        registry.counter("requests", op="put").inc(2)
        snap = registry.snapshot()["counters"]
        assert snap["requests{op=get}"] == 1.0
        assert snap["requests{op=put}"] == 2.0

    def test_label_order_is_canonical(self, registry):
        a = registry.counter("r", b="2", a="1")
        b = registry.counter("r", a="1", b="2")
        assert a is b
        assert render_key("r", {"b": "2", "a": "1"}) == "r{a=1,b=2}"


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(10.0)
        g.inc(5.0)
        g.dec(2.0)
        assert g.value == 13.0

    def test_gauge_allows_negative(self, registry):
        g = registry.gauge("delta")
        g.dec(4.0)
        assert g.value == -4.0


class TestHistogram:
    def test_count_sum_min_max(self, registry):
        h = registry.histogram("latency")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.min == 1.0
        assert h.max == 4.0

    def test_quantiles_linear_interpolation(self, registry):
        h = registry.histogram("latency")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0
        assert abs(h.quantile(0.5) - 50.5) < 1e-9
        assert h.quantile(0.9) == pytest.approx(90.1)

    def test_empty_quantile_raises(self, registry):
        h = registry.histogram("latency")
        with pytest.raises(ValueError):
            h.quantile(0.5)
        assert h.summary()["count"] == 0  # empty summary is all zeros, no raise

    def test_summary_fields(self, registry):
        h = registry.histogram("latency")
        h.observe(2.0)
        h.observe(4.0)
        s = h.summary()
        assert s["count"] == 2
        assert s["mean"] == 3.0
        assert {"p50", "p90", "p99", "min", "max", "sum"} <= set(s)

    def test_sample_bound_keeps_exact_count_and_sum(self, registry):
        h = registry.histogram("latency")
        h.max_samples = 16
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.sum == float(sum(range(100)))
        assert len(h.samples) <= 16
        assert h.truncated is True


class TestRegistry:
    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_and_reset(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(2.0)
        registry.histogram("c").observe(3.0)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 1.0
        assert snap["gauges"]["b"] == 2.0
        assert snap["histograms"]["c"]["count"] == 1
        registry.reset()
        empty = registry.snapshot()
        assert empty == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_label_cardinality_overflow_collapses(self):
        registry = MetricsRegistry(max_label_sets=4)
        for i in range(10):
            registry.counter("hot", key=str(i)).inc()
        snap = registry.snapshot()["counters"]
        # 4 real series plus one overflow bucket absorbing the other 6.
        real = [k for k in snap if "overflow" not in k]
        assert len(real) == 4
        assert snap["hot{overflow=true}"] == 6.0
        assert registry.overflowed_label_sets > 0

    def test_dump_merge_roundtrip(self, registry):
        registry.counter("a", op="x").inc(3)
        registry.gauge("b").set(7.0)
        registry.histogram("c").observe(1.0)
        registry.histogram("c").observe(5.0)
        dumped = pickle.loads(pickle.dumps(registry.dump()))

        other = MetricsRegistry()
        other.counter("a", op="x").inc(1)
        other.histogram("c").observe(3.0)
        other.merge(dumped)
        snap = other.snapshot()
        assert snap["counters"]["a{op=x}"] == 4.0
        assert snap["gauges"]["b"] == 7.0
        assert snap["histograms"]["c"]["count"] == 3
        assert snap["histograms"]["c"]["sum"] == 9.0

    def test_render_text_mentions_all_series(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(1.0)
        registry.histogram("c").observe(2.0)
        text = registry.render_text()
        for name in ("a", "b", "c"):
            assert name in text

    def test_thread_safety_hammer(self, registry):
        n_threads, n_iter = 8, 500

        def hammer(tid):
            for i in range(n_iter):
                registry.counter("hits", thread=str(tid % 2)).inc()
                registry.gauge("depth").set(float(i))
                registry.histogram("lat").observe(float(i))

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        total = sum(v for k, v in snap["counters"].items() if k.startswith("hits"))
        assert total == n_threads * n_iter
        assert snap["histograms"]["lat"]["count"] == n_threads * n_iter
