"""Tracer semantics: nesting, parent ids, thread isolation, exporters,
error status, and the JSONL round-trip."""

import threading

import pytest

from repro.telemetry import (
    InMemoryExporter,
    JsonlExporter,
    SpanRecord,
    Tracer,
    read_jsonl,
)

pytestmark = pytest.mark.telemetry


@pytest.fixture
def traced():
    tracer = Tracer()
    exporter = InMemoryExporter()
    tracer.add_exporter(exporter)
    return tracer, exporter


class TestSpans:
    def test_single_span_records_duration_and_status(self, traced):
        tracer, exporter = traced
        with tracer.span("work", task="unit"):
            pass
        assert len(exporter.spans) == 1
        rec = exporter.spans[0]
        assert rec.name == "work"
        assert rec.parent_id is None
        assert rec.status == "ok"
        assert rec.duration_seconds >= 0.0
        assert rec.attributes["task"] == "unit"

    def test_nesting_assigns_parent_ids(self, traced):
        tracer, exporter = traced
        with tracer.span("outer") as outer:
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        assert exporter.by_name("outer")[0].parent_id is None
        middle = exporter.by_name("middle")[0]
        assert middle.parent_id == outer.span_id
        assert exporter.by_name("inner")[0].parent_id == middle.span_id
        # All three share the root's trace id.
        assert {r.trace_id for r in exporter.spans} == {outer.span_id}

    def test_current_span_tracks_the_stack(self, traced):
        tracer, _ = traced
        assert tracer.current_span() is None
        with tracer.span("a") as a:
            assert tracer.current_span() is a
            with tracer.span("b") as b:
                assert tracer.current_span() is b
            assert tracer.current_span() is a
        assert tracer.current_span() is None

    def test_set_attr_after_entry(self, traced):
        tracer, exporter = traced
        with tracer.span("work") as sp:
            sp.set_attr("result", [1, 2, 3])
        assert exporter.spans[0].attributes["result"] == [1, 2, 3]

    def test_exception_marks_error_and_reraises(self, traced):
        tracer, exporter = traced
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("fail")
        rec = exporter.spans[0]
        assert rec.status == "error"
        assert "RuntimeError" in rec.attributes["exception"]

    def test_sibling_spans_do_not_chain(self, traced):
        tracer, exporter = traced
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        parent = exporter.by_name("parent")[0]
        assert exporter.by_name("first")[0].parent_id == parent.span_id
        assert exporter.by_name("second")[0].parent_id == parent.span_id

    def test_threads_get_independent_stacks(self, traced):
        tracer, exporter = traced
        barrier = threading.Barrier(2)
        seen = {}

        def worker(name):
            with tracer.span(name) as sp:
                barrier.wait(timeout=5)
                seen[name] = tracer.current_span() is sp
                barrier.wait(timeout=5)

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"t0": True, "t1": True}
        # Each thread's span is a root — neither parented under the other.
        assert all(r.parent_id is None for r in exporter.spans)


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        path = tmp_path / "trace.jsonl"
        with JsonlExporter(path) as exporter:
            tracer.add_exporter(exporter)
            with tracer.span("outer", k=1):
                with tracer.span("inner"):
                    pass
        records = read_jsonl(path)
        assert [r.name for r in records] == ["inner", "outer"]
        outer = records[1]
        assert isinstance(outer, SpanRecord)
        assert outer.attributes == {"k": 1}
        assert records[0].parent_id == outer.span_id

    def test_remove_exporter_stops_delivery(self):
        tracer = Tracer()
        exporter = InMemoryExporter()
        tracer.add_exporter(exporter)
        with tracer.span("kept"):
            pass
        tracer.remove_exporter(exporter)
        with tracer.span("dropped"):
            pass
        assert [r.name for r in exporter.spans] == ["kept"]

    def test_record_json_round_trip(self):
        rec = SpanRecord(
            name="n",
            span_id=3,
            parent_id=1,
            trace_id=1,
            start_seconds=0.5,
            duration_seconds=0.25,
            status="error",
            attributes={"a": "b"},
        )
        assert SpanRecord.from_json(rec.to_json()) == rec
