"""Tests for the REINFORCE-style policy-gradient tuner."""

import numpy as np
import pytest

from repro.core.observation import Observation
from repro.optimizers.policy_gradient import PolicyGradientTuner
from repro.sparksim.noise import high_noise, no_noise
from repro.workloads.synthetic import default_synthetic_objective


@pytest.fixture
def objective():
    return default_synthetic_objective(noise=no_noise(), seed=5)


def drive(opt, objective, n, rng):
    for t in range(n):
        v = opt.suggest()
        r = objective.observe(v, objective.reference_size, rng)
        opt.observe(Observation(config=v, data_size=objective.reference_size,
                                performance=r, iteration=t))


class TestValidation:
    def test_learning_rate(self, objective):
        with pytest.raises(ValueError):
            PolicyGradientTuner(objective.space, learning_rate=0.0)

    def test_sigma_bounds(self, objective):
        with pytest.raises(ValueError):
            PolicyGradientTuner(objective.space, sigma=0.01, sigma_min=0.1)

    def test_sigma_decay(self, objective):
        with pytest.raises(ValueError):
            PolicyGradientTuner(objective.space, sigma_decay=1.5)

    def test_baseline_momentum(self, objective):
        with pytest.raises(ValueError):
            PolicyGradientTuner(objective.space, baseline_momentum=1.0)


class TestBehavior:
    def test_suggestions_in_bounds(self, objective, rng):
        pg = PolicyGradientTuner(objective.space, seed=0)
        for t in range(20):
            v = pg.suggest()
            assert objective.space.contains_vector(v)
            pg.observe(Observation(config=v, data_size=1.0,
                                   performance=1.0, iteration=t))

    def test_policy_starts_at_default(self, objective):
        pg = PolicyGradientTuner(objective.space, seed=0)
        assert np.allclose(pg.policy_mean, objective.space.default_vector())

    def test_sigma_anneals_with_floor(self, objective, rng):
        pg = PolicyGradientTuner(objective.space, sigma=0.2, sigma_min=0.05,
                                 sigma_decay=0.8, seed=0)
        drive(pg, objective, 50, rng)
        assert pg.sigma == pytest.approx(0.05)

    def test_mean_moves_toward_good_samples(self, objective):
        pg = PolicyGradientTuner(objective.space, learning_rate=0.5, seed=0)
        # Baseline established at 100; then a much faster run at a config
        # above the mean should pull the mean up.
        mid = objective.space.default_vector()
        pg.observe(Observation(config=mid, data_size=1.0, performance=100.0,
                               iteration=0))
        higher = objective.space.clip(mid + 5.0)
        pg.observe(Observation(config=higher, data_size=1.0, performance=10.0,
                               iteration=1))
        assert np.all(pg.policy_mean >= mid - 1e-9)
        assert pg.policy_mean[0] > mid[0]

    def test_mean_repelled_by_bad_samples(self, objective):
        pg = PolicyGradientTuner(objective.space, learning_rate=0.5, seed=0)
        mid = objective.space.default_vector()
        pg.observe(Observation(config=mid, data_size=1.0, performance=100.0,
                               iteration=0))
        higher = objective.space.clip(mid + 5.0)
        pg.observe(Observation(config=higher, data_size=1.0, performance=1000.0,
                               iteration=1))
        assert pg.policy_mean[0] < mid[0]

    def test_improves_on_noiseless_bowl(self, objective):
        pg = PolicyGradientTuner(objective.space, learning_rate=0.3, seed=0)
        drive(pg, objective, 200, np.random.default_rng(1))
        start = objective.true_value(objective.space.default_vector())
        assert objective.true_value(pg.policy_mean) < start

    def test_stable_under_production_noise(self):
        """The baseline + σ-annealing keep REINFORCE from diverging under
        Eq.-8 noise (unlike vanilla BO, Fig. 2) — it ends below the default
        on every seed."""
        objective = default_synthetic_objective(noise=high_noise(), seed=7)
        default = objective.true_value(objective.space.default_vector())
        for i in range(4):
            pg = PolicyGradientTuner(objective.space, seed=i)
            rng = np.random.default_rng(100 + i)
            last = []
            for t in range(120):
                v = pg.suggest()
                r = objective.observe(v, objective.reference_size, rng)
                pg.observe(Observation(
                    config=v, data_size=objective.reference_size,
                    performance=r, iteration=t,
                ))
                last.append(objective.true_value(v))
            assert np.mean(last[-15:]) < default

    def test_adapts_under_data_growth(self):
        """The relative (x−μ) update keeps the policy tracking the optimum
        even as the input grows: the final gap is well inside the initial
        default-config gap."""
        from repro.workloads.dynamics import LinearGrowth

        objective = default_synthetic_objective(noise=high_noise(), seed=7)
        p0 = objective.reference_size
        default_gap = objective.optimality_gap(objective.space.default_vector())
        pg = PolicyGradientTuner(objective.space, seed=0)
        process = LinearGrowth(initial=p0, slope=p0 * 0.05)
        rng = np.random.default_rng(200)
        gaps = []
        for t in range(120):
            p = process(t)
            v = pg.suggest(data_size=p)
            r = objective.observe(v, p, rng)
            pg.observe(Observation(config=v, data_size=p,
                                   performance=r, iteration=t))
            gaps.append(objective.optimality_gap(v))
        assert np.mean(gaps[-15:]) < 0.6 * default_gap
