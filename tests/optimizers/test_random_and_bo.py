"""Tests for random search and vanilla Bayesian Optimization."""

import numpy as np
import pytest

from repro.core.observation import Observation
from repro.optimizers.bayesian import BayesianOptimization
from repro.optimizers.random_search import RandomSearch
from repro.sparksim.noise import no_noise
from repro.workloads.synthetic import default_synthetic_objective


@pytest.fixture
def objective():
    return default_synthetic_objective(noise=no_noise(), seed=5)


def drive(opt, objective, n, rng):
    values = []
    for t in range(n):
        v = opt.suggest(data_size=objective.reference_size)
        r = objective.observe(v, objective.reference_size, rng)
        opt.observe(Observation(config=v, data_size=objective.reference_size,
                                performance=r, iteration=t))
        values.append(objective.true_value(v))
    return np.array(values)


class TestRandomSearch:
    def test_suggestions_in_bounds(self, objective, rng):
        rs = RandomSearch(objective.space, seed=0)
        for _ in range(20):
            assert objective.space.contains_vector(rs.suggest())

    def test_reproducible(self, objective):
        a = RandomSearch(objective.space, seed=3)
        b = RandomSearch(objective.space, seed=3)
        assert np.allclose(a.suggest(), b.suggest())

    def test_best_observation_tracked(self, objective, rng):
        rs = RandomSearch(objective.space, seed=0)
        drive(rs, objective, 10, rng)
        best = rs.best_observation()
        assert best.performance == min(o.performance for o in rs.observations.history)


class TestBayesianOptimization:
    def test_validation(self, objective):
        with pytest.raises(ValueError):
            BayesianOptimization(objective.space, n_init=0)
        with pytest.raises(ValueError):
            BayesianOptimization(objective.space, refit_hypers_every=0)
        with pytest.raises(ValueError):
            BayesianOptimization(objective.space, n_init=10, max_train_points=5)

    def test_initial_designs_are_lhs(self, objective, rng):
        bo = BayesianOptimization(objective.space, n_init=4, seed=0)
        inits = []
        for t in range(4):
            v = bo.suggest()
            inits.append(v)
            bo.observe(Observation(config=v, data_size=1.0,
                                   performance=1.0, iteration=t))
        inits = np.array(inits)
        assert len(np.unique(inits[:, 0])) == 4  # stratified, no repeats

    def test_beats_random_on_noiseless_bowl(self, objective):
        rng_bo = np.random.default_rng(1)
        rng_rs = np.random.default_rng(1)
        bo_vals = drive(BayesianOptimization(objective.space, n_init=5, seed=2),
                        objective, 30, rng_bo)
        rs_vals = drive(RandomSearch(objective.space, seed=2), objective, 30, rng_rs)
        assert bo_vals[-10:].mean() < rs_vals[-10:].mean()

    def test_suggestions_in_bounds(self, objective, rng):
        bo = BayesianOptimization(objective.space, n_init=3, seed=0)
        for t in range(8):
            v = bo.suggest()
            assert objective.space.contains_vector(v)
            bo.observe(Observation(config=v, data_size=1.0,
                                   performance=float(t), iteration=t))

    def test_max_train_points_caps_gp_data(self, objective, rng):
        bo = BayesianOptimization(objective.space, n_init=3, max_train_points=10, seed=0)
        drive(bo, objective, 25, rng)
        assert bo._model._X.shape[0] <= 10

    def test_observation_shape_validated(self, objective):
        bo = BayesianOptimization(objective.space, seed=0)
        with pytest.raises(ValueError, match="shape"):
            bo.observe(Observation(config=np.zeros(7), data_size=1.0,
                                   performance=1.0, iteration=0))
