"""Tests for FLOW2 and hill climbing."""

import numpy as np
import pytest

from repro.core.observation import Observation
from repro.optimizers.flow2 import FLOW2
from repro.optimizers.hill_climbing import HillClimbing
from repro.sparksim.noise import no_noise
from repro.workloads.synthetic import default_synthetic_objective


@pytest.fixture
def objective():
    return default_synthetic_objective(noise=no_noise(), seed=5)


def drive(opt, objective, n, rng):
    for t in range(n):
        v = opt.suggest()
        r = objective.observe(v, objective.reference_size, rng)
        opt.observe(Observation(config=v, data_size=objective.reference_size,
                                performance=r, iteration=t))


@pytest.mark.parametrize("cls", [FLOW2, HillClimbing])
class TestLocalSearchCommon:
    def test_step_validation(self, cls, objective):
        with pytest.raises(ValueError):
            cls(objective.space, step_size=0.01,
                **({"step_lower_bound": 0.1} if cls is FLOW2 else {"min_step": 0.1}))

    def test_first_suggestion_is_start(self, cls, objective):
        opt = cls(objective.space, seed=0)
        assert np.allclose(opt.suggest(), objective.space.default_vector())

    def test_suggestions_in_bounds(self, cls, objective, rng):
        opt = cls(objective.space, seed=0)
        for t in range(30):
            v = opt.suggest()
            assert objective.space.contains_vector(v)
            r = objective.observe(v, objective.reference_size, rng)
            opt.observe(Observation(config=v, data_size=objective.reference_size,
                                    performance=r, iteration=t))

    def test_incumbent_improves_noiseless(self, cls, objective, rng):
        opt = cls(objective.space, seed=0)
        drive(opt, objective, 100, rng)
        start_value = objective.true_value(objective.space.default_vector())
        assert objective.true_value(opt.incumbent) < start_value

    def test_incumbent_only_moves_on_improvement(self, cls, objective):
        opt = cls(objective.space, seed=0)
        v0 = opt.suggest()
        opt.observe(Observation(config=v0, data_size=1.0, performance=10.0, iteration=0))
        incumbent = opt.incumbent.copy()
        v1 = opt.suggest()
        opt.observe(Observation(config=v1, data_size=1.0, performance=50.0, iteration=1))
        assert np.allclose(opt.incumbent, incumbent)

    def test_custom_start(self, cls, objective, rng):
        start = objective.space.sample_vector(rng)
        opt = cls(objective.space, start=start, seed=0)
        assert np.allclose(opt.suggest(), objective.space.clip(start))


class TestFLOW2Specifics:
    def test_opposite_direction_tried_after_failure(self, objective):
        opt = FLOW2(objective.space, seed=0)
        v0 = opt.suggest()
        opt.observe(Observation(config=v0, data_size=1.0, performance=10.0, iteration=0))
        v_plus = opt.suggest()
        opt.observe(Observation(config=v_plus, data_size=1.0, performance=99.0, iteration=1))
        v_minus = opt.suggest()
        # v_minus should mirror v_plus around the incumbent.
        mid = (opt.space.normalize(v_plus) + opt.space.normalize(v_minus)) / 2
        incumbent_unit = opt.space.normalize(opt.incumbent)
        # Clipping can break exact symmetry; interior dims should mirror.
        interior = (mid > 1e-6) & (mid < 1 - 1e-6)
        assert np.allclose(mid[interior], incumbent_unit[interior], atol=1e-9)

    def test_step_size_shrinks_without_improvement(self, objective):
        opt = FLOW2(objective.space, step_size=0.2, seed=0)
        v0 = opt.suggest()
        opt.observe(Observation(config=v0, data_size=1.0, performance=1.0, iteration=0))
        initial = opt.step_size
        for t in range(1, 40):
            v = opt.suggest()
            opt.observe(Observation(config=v, data_size=1.0,
                                    performance=100.0, iteration=t))
        assert opt.step_size < initial

    def test_step_size_floor(self, objective):
        opt = FLOW2(objective.space, step_size=0.2, step_lower_bound=0.05, seed=0)
        v0 = opt.suggest()
        opt.observe(Observation(config=v0, data_size=1.0, performance=1.0, iteration=0))
        for t in range(1, 200):
            v = opt.suggest()
            opt.observe(Observation(config=v, data_size=1.0,
                                    performance=100.0, iteration=t))
        assert opt.step_size >= 0.05


class TestHillClimbingSpecifics:
    def test_moves_are_single_coordinate(self, objective):
        opt = HillClimbing(objective.space, seed=0)
        v0 = opt.suggest()
        opt.observe(Observation(config=v0, data_size=1.0, performance=5.0, iteration=0))
        v1 = opt.suggest()
        changed = np.abs(opt.space.normalize(v1) - opt.space.normalize(opt.incumbent)) > 1e-12
        assert changed.sum() == 1

    def test_step_shrinks_after_barren_cycle(self, objective):
        opt = HillClimbing(objective.space, step_size=0.2, seed=0)
        v0 = opt.suggest()
        opt.observe(Observation(config=v0, data_size=1.0, performance=1.0, iteration=0))
        for t in range(1, 2 * objective.space.dim + 2):
            v = opt.suggest()
            opt.observe(Observation(config=v, data_size=1.0,
                                    performance=100.0, iteration=t))
        assert opt.step_size < 0.2
