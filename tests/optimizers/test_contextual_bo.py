"""Tests for Contextual Bayesian Optimization (Eq. 2 features)."""

import numpy as np
import pytest

from repro.core.observation import Observation
from repro.optimizers.contextual_bo import ContextualBayesianOptimization
from repro.sparksim.noise import no_noise
from repro.workloads.synthetic import default_synthetic_objective


@pytest.fixture
def objective():
    return default_synthetic_objective(noise=no_noise(), seed=5)


def make_warm_start(objective, n=200, embedding_dim=2, seed=0):
    """Warm-start rows [embedding | config | p] labelled with true values."""
    rng = np.random.default_rng(seed)
    configs = objective.space.sample_vectors(n, rng)
    emb = np.tile([1.0, 2.0], (n, 1))
    p = np.full((n, 1), objective.reference_size)
    X = np.hstack([emb, configs, p])
    y = np.array([objective.true_value(c) for c in configs])
    return X, y


class TestConstruction:
    def test_warm_start_shape_validated(self, objective):
        with pytest.raises(ValueError, match="columns"):
            ContextualBayesianOptimization(
                objective.space, embedding_dim=2,
                warm_start=(np.ones((5, 3)), np.ones(5)),
            )

    def test_negative_embedding_dim(self, objective):
        with pytest.raises(ValueError):
            ContextualBayesianOptimization(objective.space, embedding_dim=-1)


class TestSuggest:
    def test_cold_start_random_until_n_init(self, objective):
        cbo = ContextualBayesianOptimization(
            objective.space, embedding_dim=0, n_init=3, seed=0
        )
        assert not cbo.has_warm_start
        for t in range(3):
            v = cbo.suggest(data_size=1.0)
            assert objective.space.contains_vector(v)
            cbo.observe(Observation(config=v, data_size=1.0,
                                    performance=1.0, iteration=t))

    def test_warm_start_guides_iteration_zero(self, objective):
        """With a good warm start, the very first suggestion should land in
        the better half of the space — the Fig.-12 warm-start effect."""
        X, y = make_warm_start(objective)
        cbo = ContextualBayesianOptimization(
            objective.space, embedding_dim=2, warm_start=(X, y),
            n_candidates=256, seed=0,
        )
        v = cbo.suggest(data_size=objective.reference_size, embedding=np.array([1.0, 2.0]))
        rng = np.random.default_rng(1)
        random_values = [
            objective.true_value(objective.space.sample_vector(rng)) for _ in range(200)
        ]
        assert objective.true_value(v) < np.median(random_values)

    def test_embedding_shape_checked(self, objective):
        X, y = make_warm_start(objective)
        cbo = ContextualBayesianOptimization(
            objective.space, embedding_dim=2, warm_start=(X, y), seed=0
        )
        with pytest.raises(ValueError, match="embedding"):
            cbo.suggest(data_size=1.0, embedding=np.ones(5))

    def test_missing_embedding_defaults_to_zeros(self, objective):
        X, y = make_warm_start(objective)
        cbo = ContextualBayesianOptimization(
            objective.space, embedding_dim=2, warm_start=(X, y), seed=0
        )
        v = cbo.suggest(data_size=objective.reference_size, embedding=None)
        assert objective.space.contains_vector(v)

    def test_observations_refine_model(self, objective, rng):
        X, y = make_warm_start(objective)
        cbo = ContextualBayesianOptimization(
            objective.space, embedding_dim=2, warm_start=(X, y), seed=0
        )
        emb = np.array([1.0, 2.0])
        values = []
        for t in range(15):
            v = cbo.suggest(data_size=objective.reference_size, embedding=emb)
            r = objective.observe(v, objective.reference_size, rng)
            cbo.observe(Observation(config=v, data_size=objective.reference_size,
                                    performance=r, iteration=t, embedding=emb))
            values.append(objective.true_value(v))
        default = objective.true_value(objective.space.default_vector())
        assert min(values) < default
