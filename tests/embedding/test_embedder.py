"""Tests for the workload embedder (Sec. 4.1)."""

import math

import numpy as np
import pytest

from repro.embedding.embedder import WorkloadEmbedder
from repro.embedding.virtual_ops import VirtualOperatorScheme
from repro.sparksim.plan import OP_TYPES
from repro.workloads.tpcds import tpcds_plan
from repro.workloads.tpch import tpch_plan


class TestDimensions:
    def test_plain_dim(self):
        emb = WorkloadEmbedder(use_virtual_operators=False)
        assert emb.dim == 2 + len(OP_TYPES)

    def test_virtual_dim(self):
        scheme = VirtualOperatorScheme(input_thresholds=(1e4, 1e6),
                                       ratio_thresholds=(0.1,))
        emb = WorkloadEmbedder(scheme=scheme)
        assert emb.dim == 2 + len(OP_TYPES) * 6

    def test_feature_names_match_dim(self):
        for emb in (WorkloadEmbedder(), WorkloadEmbedder(use_virtual_operators=False)):
            assert len(emb.feature_names()) == emb.dim


class TestEmbedding:
    def test_deterministic(self, q3_plan):
        emb = WorkloadEmbedder()
        assert np.allclose(emb.embed(q3_plan), emb.embed(q3_plan))

    def test_cardinality_components_logged(self, q3_plan):
        emb = WorkloadEmbedder()
        vec = emb.embed(q3_plan)
        assert vec[0] == pytest.approx(math.log10(max(q3_plan.root_cardinality, 1.0)))
        assert vec[1] == pytest.approx(math.log10(q3_plan.total_leaf_cardinality))

    def test_operator_counts_sum(self, q3_plan):
        emb = WorkloadEmbedder()
        vec = emb.embed(q3_plan)
        assert vec[2:].sum() == pytest.approx(len(q3_plan))

    def test_plain_counts_match_plan(self, q3_plan):
        emb = WorkloadEmbedder(use_virtual_operators=False)
        vec = emb.embed(q3_plan)
        counts = q3_plan.operator_counts()
        for k, op_type in enumerate(OP_TYPES):
            assert vec[2 + k] == counts.get(op_type, 0)

    def test_virtual_distinguishes_scaled_plans(self):
        """Scaling cardinalities moves operators between input buckets, so
        the virtual embedding separates plans the plain one conflates."""
        plain = WorkloadEmbedder(use_virtual_operators=False)
        virtual = WorkloadEmbedder(use_virtual_operators=True)
        small = tpch_plan(6, 0.01)
        large = tpch_plan(6, 100.0)
        # Plain operator counts are identical (same shape).
        assert np.allclose(plain.embed(small)[2:], plain.embed(large)[2:])
        # Virtual buckets differ.
        assert not np.allclose(virtual.embed(small)[2:], virtual.embed(large)[2:])

    def test_embed_many_stacks(self):
        emb = WorkloadEmbedder()
        plans = [tpcds_plan(q) for q in (1, 2, 3)]
        matrix = emb.embed_many(plans)
        assert matrix.shape == (3, emb.dim)

    def test_different_queries_different_embeddings(self):
        emb = WorkloadEmbedder()
        a = emb.embed(tpcds_plan(10))
        b = emb.embed(tpcds_plan(11))
        assert not np.allclose(a, b)

    def test_vector_length_stable_across_plans(self):
        emb = WorkloadEmbedder()
        lengths = {emb.embed(tpcds_plan(q)).shape for q in (1, 30, 60, 90)}
        assert lengths == {(emb.dim,)}


class TestEmbedManyVectorized:
    """The single-pass ``embed_many`` must be *exactly* equal to stacked
    ``embed`` calls (counts are small-integer additions, so no tolerance)."""

    def _plans(self):
        return (
            [tpcds_plan(q, 10.0) for q in (1, 2, 3, 23)]
            + [tpch_plan(3, 5.0), tpch_plan(6, 0.01), tpch_plan(6, 100.0)]
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"use_virtual_operators": False},
            {"include_structure": True},
            {"use_virtual_operators": False, "include_structure": True},
        ],
    )
    def test_exactly_equal_to_stacked_embed(self, kwargs):
        emb = WorkloadEmbedder(**kwargs)
        plans = self._plans()
        stacked = np.array([emb.embed(p) for p in plans])
        assert np.array_equal(emb.embed_many(plans), stacked)

    def test_empty_sequence(self):
        emb = WorkloadEmbedder()
        assert emb.embed_many([]).shape == (0, emb.dim)

    def test_accepts_iterator(self):
        emb = WorkloadEmbedder()
        plans = self._plans()
        assert np.array_equal(
            emb.embed_many(iter(plans)), emb.embed_many(plans)
        )
