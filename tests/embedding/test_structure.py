"""Tests for structural plan features (future-work embedding direction)."""

import numpy as np
import pytest

from repro.embedding.embedder import WorkloadEmbedder
from repro.embedding.structure import STRUCTURE_FEATURE_NAMES, structural_features
from repro.sparksim.plan import Operator, OpType, PhysicalPlan
from repro.workloads.tpch import tpch_plan


def chain(n_filters: int) -> PhysicalPlan:
    ops = [Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=1000,
                    est_rows_out=1000)]
    for i in range(1, n_filters + 1):
        ops.append(Operator(op_id=i, op_type=OpType.FILTER, est_rows_in=1000,
                            est_rows_out=1000, children=(i - 1,)))
    return PhysicalPlan(ops)


def bushy_join() -> PhysicalPlan:
    """((A ⋈ B) ⋈ (C ⋈ D)) — a bushy join tree."""
    ops = [
        Operator(op_id=i, op_type=OpType.TABLE_SCAN, est_rows_in=1000,
                 est_rows_out=1000)
        for i in range(4)
    ]
    ops.append(Operator(op_id=4, op_type=OpType.JOIN, est_rows_in=2000,
                        est_rows_out=500, children=(0, 1)))
    ops.append(Operator(op_id=5, op_type=OpType.JOIN, est_rows_in=2000,
                        est_rows_out=500, children=(2, 3)))
    ops.append(Operator(op_id=6, op_type=OpType.JOIN, est_rows_in=1000,
                        est_rows_out=100, children=(4, 5)))
    return PhysicalPlan(ops)


class TestStructuralFeatures:
    def test_vector_length_matches_names(self):
        vec = structural_features(tpch_plan(3))
        assert vec.shape == (len(STRUCTURE_FEATURE_NAMES),)

    def test_chain_depth(self):
        features = dict(zip(STRUCTURE_FEATURE_NAMES, structural_features(chain(5))))
        assert features["plan_depth"] == 5
        assert features["max_fan_in"] == 1
        assert features["leaf_count"] == 1
        assert features["bushiness"] == 0.0

    def test_single_node_plan(self):
        plan = PhysicalPlan([
            Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=1,
                     est_rows_out=1)
        ])
        features = dict(zip(STRUCTURE_FEATURE_NAMES, structural_features(plan)))
        assert features["plan_depth"] == 0
        assert features["n_operators"] == 1

    def test_bushy_join_detected(self):
        features = dict(zip(STRUCTURE_FEATURE_NAMES,
                            structural_features(bushy_join())))
        assert features["join_count"] == 3
        # The top join has joins on both sides: not left-deep.
        assert features["join_left_deep_fraction"] < 1.0
        assert features["max_fan_in"] == 2
        assert features["bushiness"] > 0.5

    def test_left_deep_fraction_one_for_tpch(self):
        # The generator builds left-deep join chains.
        features = dict(zip(STRUCTURE_FEATURE_NAMES,
                            structural_features(tpch_plan(5))))
        assert features["join_left_deep_fraction"] == 1.0

    def test_pipeline_breakers_counted(self):
        features = dict(zip(STRUCTURE_FEATURE_NAMES,
                            structural_features(tpch_plan(3))))
        # q3 has joins + aggregate + sort — several breakers.
        assert features["n_pipeline_breakers"] >= 3
        assert features["longest_breaker_chain"] >= 2

    def test_scale_invariant(self):
        plan = tpch_plan(5, 1.0)
        assert np.allclose(
            structural_features(plan), structural_features(plan.scaled(100.0))
        )


class TestEmbedderIntegration:
    def test_dim_grows_with_structure(self):
        base = WorkloadEmbedder()
        extended = WorkloadEmbedder(include_structure=True)
        assert extended.dim == base.dim + len(STRUCTURE_FEATURE_NAMES)
        assert len(extended.feature_names()) == extended.dim

    def test_structure_suffix_matches_direct_computation(self):
        plan = tpch_plan(3)
        emb = WorkloadEmbedder(include_structure=True)
        vec = emb.embed(plan)
        assert np.allclose(vec[-len(STRUCTURE_FEATURE_NAMES):],
                           structural_features(plan))

    def test_structure_separates_same_counts(self):
        """Two plans with identical operator multisets but different shapes
        get different extended embeddings."""
        left_deep = PhysicalPlan([
            Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=1000, est_rows_out=1000),
            Operator(op_id=1, op_type=OpType.TABLE_SCAN, est_rows_in=1000, est_rows_out=1000),
            Operator(op_id=2, op_type=OpType.TABLE_SCAN, est_rows_in=1000, est_rows_out=1000),
            Operator(op_id=3, op_type=OpType.TABLE_SCAN, est_rows_in=1000, est_rows_out=1000),
            Operator(op_id=4, op_type=OpType.JOIN, est_rows_in=2000, est_rows_out=500,
                     children=(0, 1)),
            Operator(op_id=5, op_type=OpType.JOIN, est_rows_in=1500, est_rows_out=500,
                     children=(4, 2)),
            Operator(op_id=6, op_type=OpType.JOIN, est_rows_in=1500, est_rows_out=100,
                     children=(5, 3)),
        ])
        bushy = bushy_join()
        plain = WorkloadEmbedder(use_virtual_operators=False)
        extended = WorkloadEmbedder(use_virtual_operators=False, include_structure=True)
        assert np.allclose(plain.embed(left_deep)[2:], plain.embed(bushy)[2:])
        assert not np.allclose(extended.embed(left_deep), extended.embed(bushy))
