"""Tests for the virtual-operator bucketing scheme (Fig. 4)."""

import pytest

from repro.embedding.virtual_ops import VirtualOperatorScheme
from repro.sparksim.plan import Operator, OpType


def make_filter(rows_in, rows_out, op_id=0):
    return Operator(op_id=op_id, op_type=OpType.FILTER,
                    est_rows_in=rows_in, est_rows_out=rows_out)


class TestValidation:
    def test_thresholds_must_ascend(self):
        with pytest.raises(ValueError):
            VirtualOperatorScheme(input_thresholds=(100.0, 10.0))
        with pytest.raises(ValueError):
            VirtualOperatorScheme(ratio_thresholds=(0.5, 0.1))

    def test_thresholds_positive(self):
        with pytest.raises(ValueError):
            VirtualOperatorScheme(input_thresholds=(0.0, 10.0))


class TestBucketing:
    def test_bucket_counts(self):
        scheme = VirtualOperatorScheme(input_thresholds=(1e3, 1e6),
                                       ratio_thresholds=(0.1,))
        assert scheme.n_input_buckets == 3
        assert scheme.n_ratio_buckets == 2
        assert scheme.buckets_per_type == 6

    def test_input_bucket_boundaries(self):
        scheme = VirtualOperatorScheme(input_thresholds=(100.0, 10_000.0))
        assert scheme.input_bucket(50.0) == 0
        assert scheme.input_bucket(100.0) == 1    # right-closed boundary
        assert scheme.input_bucket(5000.0) == 1
        assert scheme.input_bucket(1e9) == 2

    def test_ratio_bucket_selectivity(self):
        scheme = VirtualOperatorScheme(ratio_thresholds=(0.01, 0.5))
        assert scheme.ratio_bucket(1000.0, 1.0) == 0      # highly selective
        assert scheme.ratio_bucket(1000.0, 100.0) == 1
        assert scheme.ratio_bucket(1000.0, 900.0) == 2    # pass-through

    def test_zero_input_rows_treated_as_passthrough(self):
        scheme = VirtualOperatorScheme(ratio_thresholds=(0.5,))
        assert scheme.ratio_bucket(0.0, 0.0) == 1

    def test_fig4_example_shared_and_distinct_buckets(self):
        """Two filters with small outputs share a virtual type; a
        pass-through filter lands in a different one (the paper's Fig. 4)."""
        scheme = VirtualOperatorScheme(input_thresholds=(1e4,),
                                       ratio_thresholds=(0.1,))
        f1 = make_filter(5_000, 100)      # selective, small input
        f2 = make_filter(8_000, 300)      # selective, small input
        f3 = make_filter(5_000, 4_900)    # pass-through
        assert scheme.virtual_index(f1) == scheme.virtual_index(f2)
        assert scheme.virtual_index(f1) != scheme.virtual_index(f3)

    def test_virtual_index_in_range(self):
        scheme = VirtualOperatorScheme()
        op = make_filter(1e7, 1e5)
        assert 0 <= scheme.virtual_index(op) < scheme.buckets_per_type

    def test_virtual_type_human_readable(self):
        scheme = VirtualOperatorScheme()
        label = scheme.virtual_type(make_filter(100.0, 1.0))
        assert label.startswith("Filter[in=")
