"""Chaos: shard outages and forced queue overflows against the sharded service."""

import hashlib

import numpy as np
import pytest

from repro.core.centroid import CentroidLearning
from repro.core.observation import Observation
from repro.faults.injectors import FaultyShardedService
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.service.sharded import ShardedAutotuneService, TuneRequest
from repro.sparksim.configs import query_level_space

pytestmark = pytest.mark.chaos

SPACE = query_level_space()
WORKLOADS = [f"artifact-{i:04d}" for i in range(10)]


def seed_of(workload_id: str, signature: str) -> int:
    digest = hashlib.blake2b(
        f"{workload_id}/{signature}".encode(), digest_size=4
    ).digest()
    return int.from_bytes(digest, "big")


def optimizer_factory(workload_id: str, signature: str) -> CentroidLearning:
    return CentroidLearning(SPACE, seed=seed_of(workload_id, signature))


def observation_for(vector, iteration):
    return Observation(
        config=np.asarray(vector, dtype=float),
        performance=10.0 + 0.1 * iteration,
        data_size=1000.0,
        iteration=iteration,
    )


def drive(service, n_iterations=6, workloads=WORKLOADS, start=0):
    """Phased rounds with shed-tolerant submission; returns session trails."""
    for t in range(start, start + n_iterations):
        requests = [TuneRequest.suggest(w, f"{w}/q0") for w in workloads]
        for request in requests:
            while not service.submit(request).accepted:
                service.drain_all()
        service.drain_all()
        for w, request in zip(workloads, requests):
            obs = observation_for(request.result, t)
            observe = TuneRequest.observe(w, f"{w}/q0", obs)
            while not service.submit(observe).accepted:
                service.drain_all()
        service.drain_all()
    return {
        key: [tuple(o.config) for o in s.optimizer.observations.history]
        for key, s in service.sessions().items()
    }


def reference_trails():
    return drive(
        ShardedAutotuneService(4, optimizer_factory, queue_capacity=256)
    )


class TestShardOutage:
    def test_explicit_failover_keeps_all_tenants_bit_identical(self):
        reference = reference_trails()
        service = ShardedAutotuneService(4, optimizer_factory, queue_capacity=256)
        drive(service, n_iterations=3)
        victim = service.shard_ids[0]
        moved_tenants = {
            key[0] for key in service.shard(victim).host.sessions
        }
        lost = service.fail_shard(victim)
        assert lost == []  # queues were drained, nothing stranded
        drive(service, n_iterations=3, start=3)
        trails = {
            key: [tuple(o.config) for o in s.optimizer.observations.history]
            for key, s in service.sessions().items()
        }
        assert trails == reference
        # The failed shard's tenants now live on survivors that own them.
        for workload_id in moved_tenants:
            owner = service.ring.owner(workload_id)
            assert (workload_id, f"{workload_id}/q0") in service.shard(owner).host.sessions

    def test_outage_with_queued_requests_requeues_them(self):
        service = ShardedAutotuneService(4, optimizer_factory, queue_capacity=256)
        requests = [TuneRequest.suggest(w, f"{w}/q0") for w in WORKLOADS]
        for request in requests:
            service.submit(request)
        victim = service.shard_ids[0]
        stranded = [r for r in requests if r.shard_id == victim]
        service.fail_shard(victim)
        service.drain_all()
        # Every request — including the failed shard's backlog — completed.
        assert all(r.done for r in requests)
        assert all(r.shard_id != victim for r in stranded)

    def test_scheduled_outages_converge_to_reference(self):
        reference = reference_trails()
        plan = FaultPlan(
            [FaultSpec(FaultKind.SHARD_OUTAGE, at=(3, 9))], seed=7
        )
        service = FaultyShardedService(
            ShardedAutotuneService(4, optimizer_factory, queue_capacity=256), plan
        )
        trails = drive(service)
        assert plan.fired(FaultKind.SHARD_OUTAGE) == 2
        assert service.n_shards == 2
        assert trails == reference

    def test_outage_never_kills_last_shard(self):
        plan = FaultPlan(
            [FaultSpec(FaultKind.SHARD_OUTAGE, rate=1.0)], seed=3
        )
        service = FaultyShardedService(
            ShardedAutotuneService(2, optimizer_factory, queue_capacity=256), plan
        )
        drive(service, n_iterations=2, workloads=WORKLOADS[:4])
        assert service.n_shards == 1


class TestQueueOverflow:
    def test_forced_sheds_are_retryable_and_lossless(self):
        reference = reference_trails()
        plan = FaultPlan(
            [FaultSpec(FaultKind.QUEUE_OVERFLOW, rate=0.2)], seed=11
        )
        service = FaultyShardedService(
            ShardedAutotuneService(4, optimizer_factory, queue_capacity=256), plan
        )
        trails = drive(service)
        assert plan.fired(FaultKind.QUEUE_OVERFLOW) > 0
        assert trails == reference

    def test_call_surfaces_forced_shed(self):
        from repro.service.admission import ShedError

        plan = FaultPlan(
            [FaultSpec(FaultKind.QUEUE_OVERFLOW, at=(0,))], seed=0
        )
        service = FaultyShardedService(
            ShardedAutotuneService(2, optimizer_factory, queue_capacity=256), plan
        )
        with pytest.raises(ShedError):
            service.call(TuneRequest.suggest("w", "w/q0"))
        # The next opportunity does not fire; the call goes through.
        assert service.call(TuneRequest.suggest("w", "w/q0")) is not None


class TestFaultStreamStability:
    def test_new_kinds_do_not_shift_existing_streams(self):
        # The per-kind child seeds are spawned in enum order; appending
        # SHARD_OUTAGE / QUEUE_OVERFLOW must leave LATENCY_SPIKE's stream
        # untouched.  Golden draw pinned when the kind was introduced.
        plan = FaultPlan(
            [FaultSpec(FaultKind.LATENCY_SPIKE, rate=0.5)], seed=42
        )
        fired = [plan.should_fire(FaultKind.LATENCY_SPIKE) for _ in range(16)]
        plan2 = FaultPlan(
            [
                FaultSpec(FaultKind.LATENCY_SPIKE, rate=0.5),
                FaultSpec(FaultKind.SHARD_OUTAGE, rate=0.5),
            ],
            seed=42,
        )
        fired2 = [plan2.should_fire(FaultKind.LATENCY_SPIKE) for _ in range(16)]
        assert fired == fired2
