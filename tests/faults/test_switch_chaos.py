"""Chaos mirror for the task-switch detector (``pytest -m chaos``).

The detector exists to catch *regime changes*, not *faults* — the CUSUM
clip bounds any single observation's contribution, so injected latency
spikes and short blowup storms must never re-anchor a session, while a
real regime change must still be declared through the fault noise.  The
counter-trail contract: a faulty run and its clean twin emit identical
``switch.*`` counter trails when nothing switches.
"""

import tempfile

import numpy as np
import pytest

from repro import telemetry
from repro.core.centroid import CentroidLearning
from repro.core.guardrail import Guardrail
from repro.core.session import TuningSession
from repro.core.switch import TaskSwitchDetector
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultySimulator
from repro.faults.injectors import FaultyBackend
from repro.service.auth import SasTokenIssuer
from repro.service.backend import AutotuneBackend
from repro.service.storage import StorageManager
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise
from repro.workloads.dynamics import StepSize
from repro.workloads.tpch import tpch_plan

pytestmark = pytest.mark.chaos


def make_session(space, detector=None, faults=None, scale_fn=None,
                 warm_start=None, seed=0):
    simulator = SparkSimulator(noise=low_noise(), seed=seed)
    if faults is not None:
        simulator = FaultySimulator(simulator, faults)
    optimizer = CentroidLearning(
        space,
        guardrail=Guardrail(min_iterations=4, threshold=0.3, patience=3),
        seed=seed,
        switch_detector=detector,
        switch_warm_start=warm_start,
    )
    return TuningSession(
        tpch_plan(3), simulator, optimizer, scale_fn=scale_fn
    )


class TestFaultsDoNotReanchor:
    def test_isolated_10x_spikes_are_absorbed(self, spark_space):
        faults = FaultPlan(
            [FaultSpec(kind=FaultKind.LATENCY_SPIKE, at=(10, 15, 20),
                       magnitude=10.0)],
            seed=1,
        )
        session = make_session(
            spark_space, detector=TaskSwitchDetector(), faults=faults,
        )
        session.run(25)
        assert faults.fired(FaultKind.LATENCY_SPIKE) == 3
        assert session.switch_count == 0
        assert session.optimizer.reanchor_count == 0

    def test_three_step_blowup_storm_is_absorbed(self, spark_space):
        # Three consecutive clipped residuals contribute at most
        # 3 * (clip - drift) = 7.5 < threshold = 8.
        faults = FaultPlan(
            [FaultSpec(kind=FaultKind.LATENCY_SPIKE, at=(12,), duration=3,
                       magnitude=10.0)],
            seed=2,
        )
        session = make_session(
            spark_space, detector=TaskSwitchDetector(), faults=faults,
        )
        session.run(25)
        assert faults.fired(FaultKind.LATENCY_SPIKE) == 3
        assert session.switch_count == 0

    def test_random_spike_shower_is_absorbed(self, spark_space):
        # 10% isolated 8x spikes: each drains before the next accumulates.
        faults = FaultPlan(
            [FaultSpec(kind=FaultKind.LATENCY_SPIKE, rate=0.1,
                       magnitude=8.0)],
            seed=3,
        )
        session = make_session(
            spark_space, detector=TaskSwitchDetector(), faults=faults,
        )
        session.run(40)
        assert faults.fired(FaultKind.LATENCY_SPIKE) >= 1
        assert session.switch_count == 0


class TestRealSwitchStillFires:
    def test_regime_change_detected_through_fault_noise(self, spark_space):
        faults = FaultPlan(
            [FaultSpec(kind=FaultKind.LATENCY_SPIKE, rate=0.1,
                       magnitude=8.0)],
            seed=4,
        )
        session = make_session(
            spark_space,
            detector=TaskSwitchDetector(warmup=4, threshold=4.0, size_jump=3.0),
            faults=faults,
            scale_fn=StepSize(initial=1.0, factor=6.0, at=12),
        )
        session.run(18)
        assert session.switch_count >= 1
        assert session.optimizer.reanchor_count >= 1


class TestCounterTrailEquivalence:
    def test_switch_counters_identical_with_and_without_faults(self, spark_space):
        def switch_counters(faults):
            with telemetry.capture() as cap:
                session = make_session(
                    spark_space, detector=TaskSwitchDetector(), faults=faults,
                )
                session.run(20)
                return {
                    k: v for k, v in cap.counters().items()
                    if k.startswith("switch.")
                }

        clean = switch_counters(None)
        faulty = switch_counters(FaultPlan(
            [FaultSpec(kind=FaultKind.LATENCY_SPIKE, at=(8, 14),
                       magnitude=10.0)],
            seed=5,
        ))
        assert clean == faulty
        assert clean.get("switch.checks") == 20.0
        assert not any(k.startswith("switch.reanchors") for k in clean)


class TestFaultyBackendWarmStart:
    def test_warm_start_outage_is_contained(self, spark_space):
        """A dead retrieval service fails the warm start, not the session."""
        with tempfile.TemporaryDirectory() as root:
            backend = AutotuneBackend(
                StorageManager(root), SasTokenIssuer("chaos-switch"),
                spark_space,
            )
            grant = backend.register_job("app-chaos", "artifact-chaos", "user-0")
            flaky = FaultyBackend(backend, FaultPlan(
                [FaultSpec(kind=FaultKind.STORAGE_READ_ERROR, rate=1.0)],
                seed=6,
            ))
            plan = tpch_plan(3)

            def warm_start(obs):
                suggestion = flaky.fetch_warm_start(
                    grant.model_read_token, "user-0", plan.signature(),
                    np.zeros(8), data_size=float(obs.data_size),
                )
                if suggestion is None:
                    return None
                return spark_space.to_vector(suggestion.config)

            with telemetry.capture() as cap:
                session = make_session(
                    spark_space,
                    detector=TaskSwitchDetector(
                        warmup=4, threshold=4.0, size_jump=3.0
                    ),
                    scale_fn=StepSize(initial=1.0, factor=6.0, at=8),
                    warm_start=warm_start,
                )
                session.run(12)  # must not raise
                counters = cap.counters()
            assert session.switch_count >= 1
            assert counters.get("switch.warm_start_failures", 0) >= 1.0
            assert not counters.get("switch.warm_starts")
