"""Per-session fault streams under the lock-step engine.

Mirror of ``test_injectors_batch.py`` for :class:`LockstepSessions`: each
session's :class:`FaultySimulator` consults exactly one LATENCY_SPIKE
opportunity per step, in step order, from its *own* fault plan — so a
lock-step fleet sees the same per-session fault schedules as K sequential
:class:`~repro.core.session.TuningSession` loops, and explicit ``at=``
indices hit the expected iterations regardless of fleet size or position.
"""

import pytest

from repro.core.centroid import CentroidLearning
from repro.experiments.lockstep import (
    LockstepSessions,
    SessionSpec,
    run_sequential,
)
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultySimulator
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import no_noise
from repro.workloads.tpch import tpch_plan

MAGNITUDE = 5.0
N_ITERATIONS = 5


def spiky_plan(at=(1, 3), rate=0.0):
    return FaultPlan(
        [FaultSpec(kind=FaultKind.LATENCY_SPIKE, at=at, rate=rate,
                   magnitude=MAGNITUDE)],
        seed=0,
    )


def make_specs(n_sessions=3, fault_plans=None):
    """Fresh specs; session ``k`` tunes TPC-H query shapes round-robin."""
    space = query_level_space()
    queries = (1, 3, 6)
    specs = []
    for k in range(n_sessions):
        simulator = SparkSimulator(noise=no_noise(), seed=100 + k)
        if fault_plans is not None and fault_plans[k] is not None:
            simulator = FaultySimulator(simulator, fault_plans[k])
        specs.append(SessionSpec(
            plan=tpch_plan(queries[k % len(queries)]),
            simulator=simulator,
            optimizer=CentroidLearning(space, seed=k),
        ))
    return specs


def test_lockstep_one_opportunity_per_step_in_order():
    fault_plans = [spiky_plan() for _ in range(3)]
    traces = LockstepSessions(make_specs(3, fault_plans)).run(N_ITERATIONS)

    for fault_plan, trace in zip(fault_plans, traces):
        # One opportunity per step, consumed in iteration order.
        assert fault_plan.opportunities(FaultKind.LATENCY_SPIKE) == N_ITERATIONS
        assert [(f.kind, f.index) for f in fault_plan.log] == [
            (FaultKind.LATENCY_SPIKE, 1), (FaultKind.LATENCY_SPIKE, 3),
        ]
        for t, record in enumerate(trace.records):
            if t in (1, 3):
                assert record.observed_seconds == record.true_seconds * MAGNITUDE
            else:
                assert record.observed_seconds == record.true_seconds


def test_lockstep_fault_streams_match_sequential():
    # Mixed population: sessions 0 and 2 faulty, session 1 clean.
    def plans():
        return [spiky_plan(at=(0, 2)), None, spiky_plan(at=(1, 4))]

    lock_plans, seq_plans = plans(), plans()
    lock_traces = LockstepSessions(make_specs(3, lock_plans)).run(N_ITERATIONS)
    seq_traces = run_sequential(make_specs(3, seq_plans), N_ITERATIONS)

    for lock_trace, seq_trace in zip(lock_traces, seq_traces):
        assert [r.observed_seconds for r in lock_trace.records] == [
            r.observed_seconds for r in seq_trace.records
        ]
        assert [r.true_seconds for r in lock_trace.records] == [
            r.true_seconds for r in seq_trace.records
        ]
    for lock_plan, seq_plan in zip(lock_plans, seq_plans):
        if lock_plan is not None:
            assert lock_plan.log == seq_plan.log


def test_lockstep_true_times_never_spiked():
    always = [spiky_plan(at=(), rate=1.0) for _ in range(3)]
    specs = make_specs(3, always)
    traces = LockstepSessions(specs).run(N_ITERATIONS)

    for spec, trace in zip(specs, traces):
        for record in trace.records:
            # The injection targets observations; truth stays the noiseless
            # cost of the suggested config.
            assert record.true_seconds == spec.simulator.true_time(
                spec.plan, record.config
            )
            assert record.observed_seconds == record.true_seconds * MAGNITUDE


def test_fault_schedule_is_per_session_not_per_fleet():
    # A fleet-global stream would give session k its spikes at shifted
    # steps; per-session plans must be position-independent.
    solo_plan = [spiky_plan()]
    solo = LockstepSessions(make_specs(1, solo_plan)).run(N_ITERATIONS)[0]

    fleet_plans = [spiky_plan() for _ in range(3)]
    fleet = LockstepSessions(make_specs(3, fleet_plans)).run(N_ITERATIONS)

    assert [r.observed_seconds for r in fleet[0].records] == [
        r.observed_seconds for r in solo.records
    ]
    for fault_plan in fleet_plans:
        assert [f.index for f in fault_plan.log] == [1, 3]
