"""FaultySimulator.run_batch ordering guarantee.

The injector consults exactly one LATENCY_SPIKE opportunity per result, in
batch order — so a batch of N sees the same fault schedule as N sequential
``run()`` calls (fault-stream equivalence), and explicit ``at=`` indices hit
the expected batch elements.
"""

import numpy as np
import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultySimulator
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import no_noise
from repro.workloads.tpch import tpch_plan

MAGNITUDE = 5.0


def spiky_plan():
    return FaultPlan(
        [FaultSpec(kind=FaultKind.LATENCY_SPIKE, at=(1, 3), magnitude=MAGNITUDE)],
        seed=0,
    )


@pytest.fixture
def space():
    return query_level_space()


@pytest.fixture
def vectors(space):
    return space.sample_vectors(5, np.random.default_rng(42))


def test_run_batch_one_opportunity_per_result_in_order(q3_plan, space, vectors):
    fault_plan = spiky_plan()
    sim = FaultySimulator(SparkSimulator(noise=no_noise(), seed=0), fault_plan)
    results = sim.run_batch(q3_plan, vectors, space=space)

    assert fault_plan.opportunities(FaultKind.LATENCY_SPIKE) == len(vectors)
    assert [(f.kind, f.index) for f in fault_plan.log] == [
        (FaultKind.LATENCY_SPIKE, 1), (FaultKind.LATENCY_SPIKE, 3),
    ]
    for i, result in enumerate(results):
        if i in (1, 3):
            assert result.elapsed_seconds == result.true_seconds * MAGNITUDE
        else:
            assert result.elapsed_seconds == result.true_seconds


def test_run_batch_matches_sequential_runs(q3_plan, space, vectors):
    batch_sim = FaultySimulator(
        SparkSimulator(noise=no_noise(), seed=0), spiky_plan()
    )
    batch = batch_sim.run_batch(q3_plan, vectors, space=space)

    scalar_sim = FaultySimulator(
        SparkSimulator(noise=no_noise(), seed=0), spiky_plan()
    )
    sequential = [scalar_sim.run(q3_plan, space.to_dict(v)) for v in vectors]

    assert [r.elapsed_seconds for r in batch] == [
        r.elapsed_seconds for r in sequential
    ]
    assert [r.true_seconds for r in batch] == [
        r.true_seconds for r in sequential
    ]
    assert batch_sim.plan.log == scalar_sim.plan.log


def test_true_times_never_spiked(q3_plan, space, vectors):
    fault_plan = FaultPlan(
        [FaultSpec(kind=FaultKind.LATENCY_SPIKE, rate=1.0, magnitude=MAGNITUDE)],
        seed=0,
    )
    sim = FaultySimulator(SparkSimulator(noise=no_noise(), seed=0), fault_plan)
    spiked = sim.run_batch(q3_plan, vectors, space=space)
    clean = SparkSimulator(noise=no_noise(), seed=0).run_batch(
        q3_plan, vectors, space=space
    )
    for s, c in zip(spiked, clean):
        assert s.true_seconds == c.true_seconds
        assert s.elapsed_seconds == c.elapsed_seconds * MAGNITUDE
    batch_true = sim.true_time_batch(q3_plan, vectors, space=space)
    assert np.array_equal(batch_true, [c.true_seconds for c in clean])


def test_run_to_event_consults_the_same_stream(q3_plan, space):
    fault_plan = spiky_plan()
    sim = FaultySimulator(SparkSimulator(noise=no_noise(), seed=0), fault_plan)
    config = space.default_dict()
    events = [
        sim.run_to_event(
            q3_plan, config, app_id="a", artifact_id="b", user_id="u",
            iteration=i,
        )
        for i in range(4)
    ]
    baseline = events[0].duration_seconds
    assert events[1].duration_seconds == baseline * MAGNITUDE
    assert events[3].duration_seconds == baseline * MAGNITUDE
    assert events[2].duration_seconds == baseline
