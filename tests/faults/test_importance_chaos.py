"""Chaos mirror for knob-importance ranking (``pytest -m chaos``, ``make stages``).

A ranking is a property of the noiseless cost *surface*, not of any
observation stream — so injected latency spikes, spike storms and random
showers must never flip one, and a re-rank triggered mid-session through a
fault-ridden observation stream must still equal its clean twin bit for
bit.  The counter-trail contract mirrors the switch-detector chaos suite:
a faulty run and its clean twin emit identical ``importance.*`` trails.
"""

import pytest

from repro import telemetry
from repro.core.centroid import CentroidLearning
from repro.core.importance import ImportanceTracker, rank_knobs
from repro.core.session import TuningSession
from repro.core.switch import TaskSwitchDetector
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultySimulator
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise
from repro.workloads.dynamics import StepSize
from repro.workloads.tpch import tpch_plan

pytestmark = pytest.mark.chaos


def spike_plan(at=(), rate=0.0, magnitude=8.0, seed=0):
    return FaultPlan(
        [FaultSpec(kind=FaultKind.LATENCY_SPIKE, at=at, rate=rate,
                   magnitude=magnitude)],
        seed=seed,
    )


class TestFaultsCannotFlipRankings:
    def test_scheduled_spikes_leave_the_ranking_bitwise_identical(
        self, spark_space, q3_plan
    ):
        clean = rank_knobs(
            q3_plan, spark_space,
            simulator=SparkSimulator(noise=low_noise(), seed=0), seed=0,
        )
        faults = spike_plan(at=(0, 1, 2, 3), magnitude=10.0, seed=1)
        faulty = rank_knobs(
            q3_plan, spark_space,
            simulator=FaultySimulator(
                SparkSimulator(noise=low_noise(), seed=0), faults
            ),
            seed=0,
        )
        assert faulty == clean
        # The sweep reads the true surface: the fault schedule never even
        # sees an opportunity.
        assert faults.fired(FaultKind.LATENCY_SPIKE) == 0

    def test_full_rate_spike_shower_cannot_flip_a_ranking(
        self, spark_space, q3_plan
    ):
        clean = rank_knobs(
            q3_plan, spark_space,
            simulator=SparkSimulator(noise=low_noise(), seed=3), seed=7,
        )
        faulty = rank_knobs(
            q3_plan, spark_space,
            simulator=FaultySimulator(
                SparkSimulator(noise=low_noise(), seed=3),
                spike_plan(rate=1.0, magnitude=10.0, seed=4),
            ),
            seed=7,
        )
        assert faulty == clean
        assert faulty.ranked_names == clean.ranked_names


class TestRerankThroughFaultySession:
    def test_rerank_fired_amid_spikes_equals_its_clean_twin(self, spark_space):
        # A real regime change declared *through* fault noise triggers the
        # tracker's re-rank; the resulting ranking must equal the one a
        # clean session would have produced at the same data scale.
        plan = tpch_plan(3)
        faults = spike_plan(rate=0.1, magnitude=8.0, seed=5)
        simulator = FaultySimulator(
            SparkSimulator(noise=low_noise(), seed=2), faults
        )
        tracker = ImportanceTracker(plan, spark_space, simulator=simulator, seed=11)
        optimizer = CentroidLearning(
            spark_space, seed=3,
            switch_detector=TaskSwitchDetector(
                warmup=4, threshold=4.0, size_jump=3.0
            ),
        )
        tracker.attach(optimizer)
        session = TuningSession(
            plan, simulator, optimizer,
            scale_fn=StepSize(initial=1.0, factor=6.0, at=12),
        )
        session.run(18)
        assert session.switch_count >= 1
        assert tracker.rerank_count >= 1
        clean_twin = rank_knobs(
            plan, spark_space,
            simulator=SparkSimulator(noise=low_noise(), seed=99),
            data_scale=tracker.ranking.data_scale,
            seed=11 + (len(tracker.rankings) - 1),
        )
        assert tracker.ranking == clean_twin

    def test_absorbed_spikes_never_trigger_a_rerank(self, spark_space):
        plan = tpch_plan(3)
        faults = spike_plan(at=(10, 15, 20), magnitude=10.0, seed=1)
        simulator = FaultySimulator(
            SparkSimulator(noise=low_noise(), seed=0), faults
        )
        tracker = ImportanceTracker(plan, spark_space, simulator=simulator)
        optimizer = CentroidLearning(
            spark_space, seed=0, switch_detector=TaskSwitchDetector(),
        )
        tracker.attach(optimizer)
        TuningSession(plan, simulator, optimizer).run(25)
        assert faults.fired(FaultKind.LATENCY_SPIKE) == 3
        assert tracker.rerank_count == 0
        assert len(tracker.rankings) == 1


class TestCounterTrailEquivalence:
    def test_importance_counters_identical_with_and_without_faults(
        self, spark_space
    ):
        def importance_counters(faults):
            plan = tpch_plan(3)
            simulator = SparkSimulator(noise=low_noise(), seed=0)
            if faults is not None:
                simulator = FaultySimulator(simulator, faults)
            with telemetry.capture() as cap:
                tracker = ImportanceTracker(plan, spark_space, simulator=simulator)
                optimizer = CentroidLearning(
                    spark_space, seed=0, switch_detector=TaskSwitchDetector(),
                )
                tracker.attach(optimizer)
                TuningSession(plan, simulator, optimizer).run(20)
                return {
                    k: v for k, v in cap.counters().items()
                    if k.startswith("importance.")
                }

        clean = importance_counters(None)
        faulty = importance_counters(
            spike_plan(at=(8, 14), magnitude=10.0, seed=5)
        )
        assert clean == faulty
        assert clean.get("importance.rankings") == 1.0
        assert "importance.reranks" not in clean
