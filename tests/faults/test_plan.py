"""FaultPlan determinism and scheduling semantics."""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec


def fire_pattern(plan, kind, n):
    return [plan.should_fire(kind) for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        spec = FaultSpec(kind=FaultKind.DROP_EVENT, rate=0.3)
        a = fire_pattern(FaultPlan([spec], seed=7), FaultKind.DROP_EVENT, 200)
        b = fire_pattern(FaultPlan([spec], seed=7), FaultKind.DROP_EVENT, 200)
        assert a == b
        assert any(a) and not all(a)

    def test_different_seeds_differ(self):
        spec = FaultSpec(kind=FaultKind.DROP_EVENT, rate=0.3)
        a = fire_pattern(FaultPlan([spec], seed=1), FaultKind.DROP_EVENT, 200)
        b = fire_pattern(FaultPlan([spec], seed=2), FaultKind.DROP_EVENT, 200)
        assert a != b

    def test_kinds_are_independent(self):
        """Adding a second kind must not shift the first kind's schedule."""
        drop = FaultSpec(kind=FaultKind.DROP_EVENT, rate=0.3)
        spike = FaultSpec(kind=FaultKind.LATENCY_SPIKE, rate=0.5)
        alone = fire_pattern(FaultPlan([drop], seed=3), FaultKind.DROP_EVENT, 100)
        plan = FaultPlan([drop, spike], seed=3)
        together = []
        for _ in range(100):
            together.append(plan.should_fire(FaultKind.DROP_EVENT))
            plan.should_fire(FaultKind.LATENCY_SPIKE)  # interleaved draws
        assert alone == together

    def test_interleaving_does_not_change_decisions(self):
        """Decision at opportunity n depends only on (seed, kind, n)."""
        drop = FaultSpec(kind=FaultKind.DROP_EVENT, rate=0.4)
        dup = FaultSpec(kind=FaultKind.DUPLICATE_EVENT, rate=0.4)
        p1 = FaultPlan([drop, dup], seed=11)
        seq1 = [(p1.should_fire(FaultKind.DROP_EVENT),
                 p1.should_fire(FaultKind.DUPLICATE_EVENT)) for _ in range(50)]
        p2 = FaultPlan([drop, dup], seed=11)
        drops = [p2.should_fire(FaultKind.DROP_EVENT) for _ in range(50)]
        dups = [p2.should_fire(FaultKind.DUPLICATE_EVENT) for _ in range(50)]
        assert [a for a, _ in seq1] == drops
        assert [b for _, b in seq1] == dups


class TestScheduling:
    def test_explicit_at_indices_always_fire(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.TOKEN_EXPIRY, at=(2, 5))], seed=0)
        pattern = fire_pattern(plan, FaultKind.TOKEN_EXPIRY, 8)
        assert pattern == [False, False, True, False, False, True, False, False]

    def test_storm_duration(self):
        """A firing with duration d keeps the fault active for d opportunities."""
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.TOKEN_EXPIRY, at=(3,), duration=3)], seed=0
        )
        pattern = fire_pattern(plan, FaultKind.TOKEN_EXPIRY, 9)
        assert pattern == [False] * 3 + [True] * 3 + [False] * 3

    def test_unscheduled_kind_never_fires(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.DROP_EVENT, rate=1.0)], seed=0)
        assert not any(fire_pattern(plan, FaultKind.TRAIN_ERROR, 50))

    def test_audit_log_records_fired_faults(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.DROP_EVENT, at=(1, 4))], seed=0)
        fire_pattern(plan, FaultKind.DROP_EVENT, 6)
        assert [f.index for f in plan.log] == [1, 4]
        assert plan.fired(FaultKind.DROP_EVENT) == 2
        assert plan.fired() == 2
        assert plan.summary() == {"drop_event": 2}
        assert plan.opportunities(FaultKind.DROP_EVENT) == 6

    def test_rate_one_always_fires(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.MODEL_CORRUPTION, rate=1.0)], seed=9)
        assert all(fire_pattern(plan, FaultKind.MODEL_CORRUPTION, 20))


class TestValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.DROP_EVENT, rate=1.5)

    def test_duration_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.DROP_EVENT, duration=0)

    def test_magnitude_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.LATENCY_SPIKE, magnitude=0.0)

    def test_duplicate_specs_rejected(self):
        spec = FaultSpec(kind=FaultKind.DROP_EVENT, rate=0.1)
        with pytest.raises(ValueError):
            FaultPlan([spec, spec], seed=0)
