"""Chaos suite: the full tuning loop under every fault class.

Deselected from default runs (see ``tests/conftest.py``); run with
``PYTHONPATH=src python -m pytest -m chaos`` or ``make chaos``.

For each fault class and each of three seeds the suite drives the real
client/backend/simulator loop through an injected-fault run and asserts:

* **determinism** — the same seed replays to a bit-identical trace
  (observed durations, stored event log, and fired-fault audit log);
* **exactly-once accounting** — no ``QueryEndEvent`` is ever double-counted,
  in storage or on the event hub, and every acknowledged event landed;
* **graceful degradation** — nothing leaks into ``hub.failures`` and the
  tuner still converges within tolerance of the fault-free trace.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultyBackend,
    FaultySimulator,
    flaky_model_factory,
)
from repro.ml.linear import RidgeRegression
from repro.service.auth import SasTokenIssuer
from repro.service.backend import AutotuneBackend
from repro.service.client import AutotuneClient
from repro.service.storage import StorageManager
from repro.sparksim.configs import query_level_space
from repro.sparksim.events import QueryEndEvent
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise
from repro.workloads.tpch import tpch_plan

pytestmark = [pytest.mark.chaos, pytest.mark.integration]

ITERATIONS = 14
SEEDS = (0, 1, 2)

# One entry per fault class from the taxonomy (docs/resilience.md); rates are
# chosen so every class fires several times in 14 iterations while the
# default retry policy can still drain the run.
FAULT_CLASSES = {
    "drop_event": [FaultSpec(kind=FaultKind.DROP_EVENT, rate=0.3)],
    "duplicate_event": [FaultSpec(kind=FaultKind.DUPLICATE_EVENT, rate=0.3)],
    "reorder_events": [FaultSpec(kind=FaultKind.REORDER_EVENTS, rate=0.3)],
    "storage_write_error": [FaultSpec(kind=FaultKind.STORAGE_WRITE_ERROR, rate=0.25)],
    "storage_read_error": [FaultSpec(kind=FaultKind.STORAGE_READ_ERROR, rate=0.25)],
    "model_corruption": [FaultSpec(kind=FaultKind.MODEL_CORRUPTION, rate=0.3)],
    "token_expiry_storm": [
        FaultSpec(kind=FaultKind.TOKEN_EXPIRY, rate=0.15, at=(2,), duration=2)
    ],
    "train_error": [FaultSpec(kind=FaultKind.TRAIN_ERROR, rate=0.5)],
    "latency_spike": [
        FaultSpec(kind=FaultKind.LATENCY_SPIKE, rate=0.25, magnitude=4.0)
    ],
}

# A faulted run's best *true* latency may trail the fault-free run's by this
# factor: faults cost observations (shed batches, inflated measurements) but
# must not break the optimizer.  Latency spikes get a looser bound — they
# poison the observations themselves, so the optimizer is steered by bad
# data rather than merely starved of good data.
CONVERGENCE_TOL = 1.35
CONVERGENCE_TOL_BY_CLASS = {"latency_spike": 2.0}


class ChaosRun:
    def __init__(self, durations, true_times, backend, client, plan):
        self.durations = durations
        self.true_times = true_times
        self.backend = backend
        self.client = client
        self.plan = plan

    def trace(self):
        """Bit-exact fingerprint of everything the run produced."""
        stored = [
            (e.app_id, e.sequence, e.iteration, e.duration_seconds,
             tuple(sorted(e.config.items())))
            for e in self.backend.storage.read_app_events("app-1")
        ]
        return (tuple(self.durations), tuple(stored),
                tuple((f.kind, f.index) for f in self.plan.log))

    def stored_sequences(self):
        return [e.sequence for e in self.backend.storage.read_app_events("app-1")]

    def hub_sequences(self):
        return [e.sequence for e in self.backend.hub.recent(10_000)
                if isinstance(e, QueryEndEvent)]


def run_tuning(root, specs, seed):
    qspace = query_level_space()
    plan = FaultPlan(specs, seed=seed)
    backend = AutotuneBackend(
        storage=StorageManager(root),
        issuer=SasTokenIssuer("secret"),
        query_space=qspace,
        min_events_for_model=4,
        model_factory=flaky_model_factory(lambda: RidgeRegression(alpha=1.0), plan),
    )
    client = AutotuneClient(
        FaultyBackend(backend, plan), "app-1", "art-1", "u-1", qspace, seed=seed
    )
    sim = FaultySimulator(SparkSimulator(noise=low_noise(), seed=seed), plan)
    query = tpch_plan(3, 1.0)
    durations, true_times = [], []
    for t in range(ITERATIONS):
        config = client.suggest_config(query)
        event = sim.run_to_event(
            query, config, app_id="app-1", artifact_id="art-1", user_id="u-1",
            iteration=t, embedding=client.embedder.embed(query),
        )
        client.on_query_end(event)
        client.flush_events()
        durations.append(event.duration_seconds)
        true_times.append(sim.true_time(query, config))
    for _ in range(30):  # drain anything a storm left buffered
        if not client._pending_events:
            break
        client.flush_events()
    client.finish_app()
    return ChaosRun(durations, true_times, backend, client, plan)


@pytest.fixture(scope="module")
def clean_runs(tmp_path_factory):
    """Fault-free reference trace per seed (shared by every fault class)."""
    return {
        seed: run_tuning(tmp_path_factory.mktemp(f"clean-{seed}"), [], seed)
        for seed in SEEDS
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("fault_class", sorted(FAULT_CLASSES))
class TestChaos:
    def test_run_survives_and_converges(self, fault_class, seed, tmp_path, clean_runs):
        specs = FAULT_CLASSES[fault_class]
        run = run_tuning(tmp_path / "a", specs, seed)

        # The scheduled fault actually happened — this is a chaos run.
        assert run.plan.fired() > 0, "fault class never fired; test is vacuous"

        # Determinism: identical seed => bit-identical trace.
        rerun = run_tuning(tmp_path / "b", specs, seed)
        assert rerun.trace() == run.trace()
        assert rerun.plan.summary() == run.plan.summary()

        # Exactly-once accounting, end to end.
        sequences = run.stored_sequences()
        assert len(sequences) == len(set(sequences)), "double-counted event"
        assert sorted(sequences) == list(range(ITERATIONS)), "event lost"
        hub_seqs = run.hub_sequences()
        assert len(hub_seqs) == len(set(hub_seqs)), "hub saw an event twice"

        # Graceful degradation: nothing leaked, tuning still worked.
        assert not run.backend.hub.failures
        clean = clean_runs[seed]
        tol = CONVERGENCE_TOL_BY_CLASS.get(fault_class, CONVERGENCE_TOL)
        assert min(run.true_times) <= tol * min(clean.true_times)
        # And the run never regressed below its own starting point.
        assert min(run.true_times) <= run.true_times[0] * 1.05

    def test_clean_baseline_is_deterministic(self, fault_class, seed, clean_runs,
                                             tmp_path):
        if fault_class != sorted(FAULT_CLASSES)[0]:
            pytest.skip("baseline determinism is seed-level, checked once")
        rerun = run_tuning(tmp_path, [], seed)
        assert rerun.trace() == clean_runs[seed].trace()
        assert rerun.plan.fired() == 0


def run_traced(root, specs, seed):
    """A chaos run with telemetry captured; returns (run, counters, events)."""
    with telemetry.capture() as cap:
        run = run_tuning(root, specs, seed)
        counters = cap.counters()
        events = [(e.name, tuple(sorted(e.fields.items()))) for e in cap.events.records]
    return run, counters, events


class TestChaosTelemetry:
    """Injected faults must be *visible*: every fault class that exercises a
    resilience path leaves a counter trail, and the counters agree exactly
    with the components' own ground-truth tallies — telemetry is a second
    witness, not a second opinion."""

    def test_storage_write_retries_are_counted(self, tmp_path):
        run, counters, _ = run_traced(
            tmp_path, FAULT_CLASSES["storage_write_error"], seed=0)
        assert run.plan.fired() > 0
        retries = sum(v for k, v in counters.items()
                      if k.startswith("retry.retries"))
        assert retries == run.client.retry_policy.retries
        assert retries > 0, "write faults fired but no retry was counted"

    def test_model_corruption_visible_as_decode_failures_and_stale_serves(
            self, tmp_path):
        run, counters, _ = run_traced(
            tmp_path, FAULT_CLASSES["model_corruption"], seed=0)
        assert run.plan.fired() > 0
        loader = run.client.model_loader
        assert counters.get("client.decode_failures", 0) == loader.decode_failures
        assert counters.get("client.stale_serves", 0) == loader.stale_serves
        assert loader.decode_failures > 0, "corruption fired but nothing decoded badly"

    def test_token_storm_refreshes_are_counted(self, tmp_path):
        run, counters, _ = run_traced(
            tmp_path, FAULT_CLASSES["token_expiry_storm"], seed=0)
        assert run.plan.fired() > 0
        refreshes = sum(v for k, v in counters.items()
                        if k.startswith("client.token_refreshes"))
        assert refreshes == run.client.credentials.refresh_count
        assert counters.get("client.token_refreshes{trigger=reactive}", 0) > 0

    def test_duplicate_events_dropped_and_counted(self, tmp_path):
        run, counters, _ = run_traced(
            tmp_path, FAULT_CLASSES["duplicate_event"], seed=0)
        assert run.plan.fired() > 0
        assert counters.get("backend.duplicates_dropped", 0) == \
            run.backend.duplicates_dropped
        assert run.backend.duplicates_dropped > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_counter_trail_replays_bit_identically(self, seed, tmp_path):
        """Same seed, same storm => the *telemetry*, not just the data,
        is deterministic (counters and structured events alike)."""
        specs = [spec for group in FAULT_CLASSES.values() for spec in group]
        _, counters_a, events_a = run_traced(tmp_path / "a", specs, seed)
        _, counters_b, events_b = run_traced(tmp_path / "b", specs, seed)
        assert counters_a == counters_b
        assert events_a == events_b

    def test_guardrail_cooldown_lifecycle_counters(self):
        """A deterministic worsening series walks the guardrail through
        disable -> cooldown -> probation re-enable, and the counters
        reconstruct the whole lifecycle."""
        from repro.core.guardrail import Guardrail
        from repro.core.observation import Observation

        guardrail = Guardrail(min_iterations=3, threshold=0.1, patience=2,
                              fit_window=3, cooldown=2)
        n_obs = 20
        with telemetry.capture() as cap:
            for i in range(n_obs):
                guardrail.update(Observation(
                    config=np.zeros(2), data_size=1.0,
                    performance=float(1.5 ** i), iteration=i,
                ))
            counters = cap.counters()
            events = cap.events
        assert counters["guardrail.checks"] == len(guardrail.decisions)
        assert counters["guardrail.verdicts{verdict=violation}"] == \
            sum(d.violated for d in guardrail.decisions)
        assert counters["guardrail.disables"] >= 1
        assert counters["guardrail.reenables"] == guardrail.reenable_count
        assert guardrail.reenable_count >= 1
        # Every update is exactly one of: warmup (the first min_iterations-1
        # appends), a check, or a cooldown hold — so holds are derivable.
        warmups = guardrail.min_iterations - 1
        assert counters["guardrail.cooldown_holds"] == \
            n_obs - warmups - counters["guardrail.checks"]
        # The structured narration matches the counters one-to-one.
        assert len(events.by_name("guardrail.disable")) == counters["guardrail.disables"]
        assert len(events.by_name("guardrail.reenable")) == guardrail.reenable_count


@pytest.mark.parametrize("seed", SEEDS)
def test_combined_fault_storm(seed, tmp_path):
    """All fault classes at once — the full chaos monkey — still drains to an
    exactly-once event log and a working model path."""
    specs = [spec for group in FAULT_CLASSES.values() for spec in group]
    run = run_tuning(tmp_path, specs, seed)
    sequences = run.stored_sequences()
    assert len(sequences) == len(set(sequences))
    assert sorted(sequences) == list(range(ITERATIONS))
    assert not run.backend.hub.failures
    assert run.plan.fired() > 5
    rerun_sequences = sorted(run.stored_sequences())
    assert rerun_sequences == sorted(set(rerun_sequences))


@pytest.mark.parametrize("seed", SEEDS)
def test_invariant_registry_sweeps_clean_under_faults(seed):
    """The chaos suite exercises the verify hook: a session driven by a
    latency-spiking FaultySimulator must keep every state invariant intact
    (spiked observations are bad *data*, never broken *state*)."""
    from repro.core.centroid import CentroidLearning
    from repro.core.guardrail import Guardrail
    from repro.core.session import TuningSession
    from repro.verify import default_registry

    fault_plan = FaultPlan(
        [FaultSpec(kind=FaultKind.LATENCY_SPIKE, rate=0.25, magnitude=4.0)],
        seed=seed,
    )
    space = query_level_space()
    registry = default_registry()
    session = TuningSession(
        plan=tpch_plan(3, 1.0),
        simulator=FaultySimulator(
            SparkSimulator(noise=low_noise(), seed=seed), fault_plan
        ),
        optimizer=CentroidLearning(
            space, window_size=8, seed=seed,
            guardrail=Guardrail(min_iterations=10, patience=2, cooldown=4),
        ),
        verify=registry,  # raises InvariantViolation on any broken invariant
    )
    session.run(30)
    assert fault_plan.fired(FaultKind.LATENCY_SPIKE) > 0
    checked = {
        r.invariant
        for r in registry.check_session(session, raise_on_violation=False)
        if r.checked and r.violation is None
    }
    assert {"centroid_in_bounds", "guardrail_cooldown",
            "window_statistics", "noise_stream"} <= checked
