"""End-to-end integration: offline phase → baseline → online tuning → service.

Mirrors the full Fig.-5 / Fig.-7 loop on the simulator substrate.
"""

import numpy as np
import pytest

from repro.core.app_level import AppCache
from repro.core.centroid import CentroidLearning, default_window_model_factory
from repro.core.selectors import BaselineModelAdapter, SurrogateSelector
from repro.core.session import TuningSession
from repro.embedding.embedder import WorkloadEmbedder
from repro.offline.baseline import BaselineModelTrainer
from repro.offline.etl import build_training_table
from repro.offline.flighting import FlightingConfig, FlightingPipeline
from repro.service.auth import SasTokenIssuer
from repro.service.backend import AutotuneBackend
from repro.service.client import AutotuneClient
from repro.service.dashboard import MonitoringDashboard
from repro.service.storage import StorageManager
from repro.sparksim.configs import app_level_space, full_space, query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import NoiseModel, low_noise
from repro.workloads.tpch import tpch_plan


@pytest.mark.integration
def test_offline_to_online_warm_start_pipeline():
    """Flight TPC-DS → ETL → baseline model → warm-started CL on TPC-H."""
    space = query_level_space()
    embedder = WorkloadEmbedder()
    flight = FlightingPipeline(
        FlightingConfig(benchmark="tpcds", query_ids=[1, 2, 3, 4],
                        scale_factors=[1.0], n_configs=6, seed=0),
        space=space, embedder=embedder,
    )
    events = flight.execute()
    table = build_training_table(events, space)
    assert table.embedding_dim == embedder.dim

    baseline = BaselineModelTrainer().train(table)
    adapter = BaselineModelAdapter(baseline, embedder.dim)
    selector = SurrogateSelector(
        default_window_model_factory, baseline=adapter, min_observations=4
    )
    optimizer = CentroidLearning(space, selector=selector, seed=0)
    session = TuningSession(
        tpch_plan(3, 1.0),
        SparkSimulator(noise=low_noise(), seed=1),
        optimizer,
        embedder=embedder,
    )
    trace = session.run(20)
    assert trace.best_true_so_far()[-1] <= trace.true[0]


@pytest.mark.integration
def test_full_service_loop_with_dashboard(tmp_path):
    """Client/backend loop for two recurrent apps + dashboard analysis."""
    qspace = query_level_space()
    backend = AutotuneBackend(
        storage=StorageManager(tmp_path),
        issuer=SasTokenIssuer("secret"),
        query_space=qspace,
        app_space=app_level_space(),
        full_space=full_space(),
        app_cache=AppCache(),
    )
    plan = tpch_plan(10, 1.0)
    sim = SparkSimulator(noise=NoiseModel(0.2, 0.3), seed=3)

    # Two consecutive runs of the same recurrent artifact.
    for run_idx in range(2):
        app_id = f"app-{run_idx}"
        client = AutotuneClient(
            backend, app_id, "notebook-7", "customer-1", qspace, seed=run_idx
        )
        app_config = client.app_level_config() or app_level_space().default_dict()
        for t in range(6):
            config = client.suggest_config(plan)
            event = sim.run_to_event(
                plan, {**app_config, **config}, app_id=app_id,
                artifact_id="notebook-7", user_id="customer-1", iteration=t,
                embedding=client.embedder.embed(plan),
            )
            client.on_query_end(event)
            client.flush_events()
        client.finish_app(app_config=app_config)

    assert not backend.hub.failures
    assert backend.models_trained > 0
    assert "notebook-7" in backend.app_cache

    # Second run started from the pre-computed app cache.
    grant = backend.register_job("app-2", "notebook-7", "customer-1")
    assert grant.app_config is not None

    # Posterior analysis over everything the artifact produced.
    dash = MonitoringDashboard(window=3)
    dash.ingest_many(backend.storage.read_artifact_events("notebook-7"))
    summary = dash.summary(plan.signature())
    assert summary.iterations == 12
    assert summary.mean_data_size > 0


@pytest.mark.integration
def test_gdpr_cleanup_preserves_models(tmp_path):
    clock = {"now": 0.0}
    storage = StorageManager(tmp_path, clock=lambda: clock["now"])
    backend = AutotuneBackend(
        storage=storage, issuer=SasTokenIssuer("s", clock=lambda: clock["now"]),
        query_space=query_level_space(), min_events_for_model=2,
    )
    client = AutotuneClient(backend, "app-1", "art-1", "u1", query_level_space())
    plan = tpch_plan(6, 1.0)
    sim = SparkSimulator(noise=low_noise(), seed=0)
    for t in range(3):
        config = client.suggest_config(plan)
        client.on_query_end(sim.run_to_event(
            plan, config, app_id="app-1", artifact_id="art-1", user_id="u1",
            iteration=t, embedding=client.embedder.embed(plan),
        ))
        client.flush_events()
    assert backend.models_trained > 0

    clock["now"] = 1e7
    removed = storage.cleanup(ttl_seconds=3600.0)
    assert removed                                      # event files purged
    assert storage.read_app_events("app-1") == []
    assert storage.read_model("u1", plan.signature()) is not None  # model kept
