"""Cross-algorithm convergence properties — the paper's headline claims,
checked end-to-end with fixed seeds on reduced budgets."""

import numpy as np
import pytest

from repro.core.centroid import CentroidLearning
from repro.experiments.runner import run_replicated
from repro.optimizers.bayesian import BayesianOptimization
from repro.optimizers.flow2 import FLOW2
from repro.optimizers.hill_climbing import HillClimbing
from repro.sparksim.noise import high_noise, no_noise
from repro.workloads.synthetic import default_synthetic_objective


@pytest.mark.integration
class TestHeadlineClaims:
    def test_cl_beats_bo_and_flow2_under_high_noise(self):
        """Sec. 6.1: CL converges where BO/FLOW2 wander (Fig. 2 vs Fig. 10)."""
        objective = default_synthetic_objective(noise=high_noise(), seed=7)
        space = objective.space
        n_iters, n_runs = 120, 8
        cl = run_replicated(
            lambda i: CentroidLearning(space, seed=i), objective, n_iters, n_runs,
            seed=0,
        )
        bo = run_replicated(
            lambda i: BayesianOptimization(space, n_init=5, n_candidates=64, seed=i),
            objective, n_iters, n_runs, seed=0,
        )
        flow2 = run_replicated(
            lambda i: FLOW2(space, seed=i), objective, n_iters, n_runs, seed=0
        )
        assert cl.final_median() < bo.final_median()
        assert cl.final_median() < flow2.final_median()

    def test_cl_avoids_catastrophic_suggestions(self):
        """The β-restricted neighborhood keeps even CL's p95 well below BO's
        worst suggestions — the 'avoiding performance regression' claim."""
        objective = default_synthetic_objective(noise=high_noise(), seed=7)
        space = objective.space
        cl = run_replicated(
            lambda i: CentroidLearning(space, seed=100 + i), objective, 80, 6, seed=1
        )
        bo = run_replicated(
            lambda i: BayesianOptimization(space, n_init=5, n_candidates=64,
                                           seed=100 + i),
            objective, 80, 6, seed=1,
        )
        assert np.max(cl.runs) < np.max(bo.runs)

    def test_cl_more_robust_than_hill_climbing_under_noise(self):
        """De-noising via last-N observations vs last-2 greedy moves."""
        objective = default_synthetic_objective(noise=high_noise(), seed=7)
        space = objective.space
        cl = run_replicated(
            lambda i: CentroidLearning(space, seed=i), objective, 120, 8, seed=3
        )
        hc = run_replicated(
            lambda i: HillClimbing(space, seed=i), objective, 120, 8, seed=3
        )
        assert cl.final_median() <= hc.final_median() * 1.05

    def test_all_methods_fine_without_noise(self):
        """With noise removed every method should make progress — the gap is
        specifically a noise-robustness gap."""
        objective = default_synthetic_objective(noise=no_noise(), seed=7)
        space = objective.space
        default = objective.true_value(space.default_vector())
        for factory in (
            lambda i: CentroidLearning(space, seed=i),
            lambda i: FLOW2(space, seed=i),
            lambda i: HillClimbing(space, seed=i),
        ):
            bands = run_replicated(factory, objective, 100, 3, seed=4)
            assert bands.final_median() < default
