"""Cross-module property-based tests (hypothesis).

These pin down invariants the whole system leans on: the cost model's
monotonicity and determinism over arbitrary generated workloads, and the
Centroid Learning loop's safety properties under arbitrary observation
streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.centroid import CentroidLearning
from repro.core.observation import Observation
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import NoiseModel, no_noise
from repro.workloads.generator import QuerySpec, build_plan
from repro.workloads.tables import TPCH_TABLES

_SPACE = query_level_space()
_SIM = SparkSimulator(noise=no_noise(), seed=0)


@st.composite
def query_specs(draw):
    """Random but valid QuerySpecs over the TPC-H catalog."""
    tables = list(TPCH_TABLES.values())
    fact = tables[draw(st.integers(0, len(tables) - 1))]
    n_dims = draw(st.integers(0, 3))
    dims = tuple(
        tables[draw(st.integers(0, len(tables) - 1))] for _ in range(n_dims)
    )
    return QuerySpec(
        name="prop_query",
        fact=fact,
        dimensions=dims,
        fact_selectivity=draw(st.floats(0.01, 1.0)),
        dim_selectivities=tuple(
            draw(st.floats(0.01, 1.0)) for _ in range(n_dims)
        ),
        agg_reduction=draw(st.floats(0.0, 0.5)),
        has_sort=draw(st.booleans()),
        has_window=draw(st.booleans()),
        has_limit=draw(st.booleans()),
    )


@settings(max_examples=25, deadline=None)
@given(spec=query_specs(), seed=st.integers(0, 100))
def test_cost_model_positive_and_deterministic(spec, seed):
    plan = build_plan(spec, scale_factor=1.0)
    config = _SPACE.to_dict(_SPACE.sample_vector(np.random.default_rng(seed)))
    t1 = _SIM.true_time(plan, config)
    t2 = _SIM.true_time(plan, config)
    assert t1 > 0
    assert t1 == t2


@settings(max_examples=20, deadline=None)
@given(spec=query_specs(), factor=st.floats(8.0, 50.0))
def test_cost_model_monotone_in_data_scale(spec, factor):
    """Much more data is never faster.

    Small scale-ups can legitimately *reduce* time (an extra scan partition
    unlocks idle cores — real Spark behaves the same way), so the property
    is asserted for large factors where the quantization effects wash out.
    """
    plan = build_plan(spec, scale_factor=1.0)
    config = _SPACE.default_dict()
    assert _SIM.true_time(plan, config, data_scale=factor) > _SIM.true_time(
        plan, config, data_scale=1.0
    )


@settings(max_examples=20, deadline=None)
@given(spec=query_specs())
def test_generated_plans_are_valid_dags(spec):
    plan = build_plan(spec, scale_factor=1.0)
    assert plan.root_cardinality >= 1
    assert plan.total_leaf_cardinality >= 1
    # Topological order: every child precedes its parent.
    order = {op.op_id: i for i, op in enumerate(plan.operators)}
    for op in plan.operators:
        for child in op.children:
            assert order[child] < order[op.op_id]


@settings(max_examples=15, deadline=None)
@given(
    perfs=st.lists(st.floats(0.01, 1e4), min_size=6, max_size=25),
    sizes=st.lists(st.floats(1.0, 1e6), min_size=6, max_size=25),
    seed=st.integers(0, 1000),
)
def test_centroid_stays_in_bounds_under_arbitrary_observations(perfs, sizes, seed):
    """Whatever performance stream arrives — adversarial included — the
    centroid and every suggestion remain inside the configuration space."""
    cl = CentroidLearning(_SPACE, seed=seed)
    n = min(len(perfs), len(sizes))
    for t in range(n):
        vector = cl.suggest(data_size=sizes[t])
        assert _SPACE.contains_vector(vector)
        cl.observe(Observation(
            config=vector, data_size=sizes[t], performance=perfs[t], iteration=t
        ))
        assert _SPACE.contains_vector(cl.centroid)


@settings(max_examples=10, deadline=None)
@given(
    fl=st.floats(0.0, 1.5),
    sl=st.floats(0.0, 2.0),
    seed=st.integers(0, 1000),
)
def test_simulator_noise_never_speeds_up_runs(fl, sl, seed):
    sim = SparkSimulator(
        noise=NoiseModel(fluctuation_level=fl, spike_level=sl), seed=seed
    )
    from repro.workloads.tpch import tpch_plan

    plan = tpch_plan(6, 1.0)
    config = _SPACE.default_dict()
    for _ in range(5):
        result = sim.run(plan, config)
        assert result.elapsed_seconds >= result.true_seconds - 1e-9
