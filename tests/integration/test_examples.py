"""Smoke tests: every shipped example must run end to end.

The examples double as living documentation of the public API; they run via
their ``main()`` so import errors, API drift, and broken output formatting
all fail loudly here.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.integration
@pytest.mark.parametrize("name", [
    "quickstart",
    "dynamic_workload",
    "app_level_tuning",
    "end_to_end_service",
    "streaming_tuning",
    "posterior_analysis",
])
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


@pytest.mark.integration
def test_quickstart_reports_speedup(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "speed-up vs default" in out


@pytest.mark.integration
def test_dynamic_workload_guardrail_fires(capsys):
    load_example("dynamic_workload").main()
    out = capsys.readouterr().out
    assert "guardrail disabled autotuning" in out
    assert "default configuration: True" in out
