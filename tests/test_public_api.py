"""Public-API surface tests: everything advertised must exist and work."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module", [
    "repro.core", "repro.ml", "repro.optimizers", "repro.sparksim",
    "repro.workloads", "repro.embedding", "repro.offline", "repro.service",
    "repro.experiments", "repro.verify",
])
def test_subpackage_all_names_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_readme_quickstart_executes():
    """The README / package-docstring quickstart must keep working."""
    from repro import (
        CentroidLearning,
        SparkSimulator,
        TuningSession,
        low_noise,
        query_level_space,
        tpch_plan,
    )

    space = query_level_space()
    session = TuningSession(
        plan=tpch_plan(3, scale_factor=1.0),
        simulator=SparkSimulator(noise=low_noise(), seed=0),
        optimizer=CentroidLearning(space, seed=0),
    )
    trace = session.run(8)
    speedup = trace.speedup_vs(session.default_true_time())
    assert isinstance(speedup, float)


def test_lower_is_better_convention_documented():
    """Performance means execution time, minimized, everywhere."""
    from repro.core.optimizer_base import Optimizer

    assert "lower is better" in (Optimizer.__module__ and
                                 importlib.import_module(
                                     "repro.core.optimizer_base").__doc__.lower())
