"""Tests for the shared Optimizer interface."""

import numpy as np
import pytest

from repro.core.observation import Observation
from repro.core.optimizer_base import Optimizer
from repro.workloads.synthetic import synthetic_space


class DummyOptimizer(Optimizer):
    def suggest(self, data_size=None, embedding=None):
        return self.space.default_vector()


@pytest.fixture
def opt():
    return DummyOptimizer(synthetic_space(2))


def test_base_suggest_not_implemented():
    base = Optimizer(synthetic_space(2))
    with pytest.raises(NotImplementedError):
        base.suggest()


def test_name_is_class_name(opt):
    assert opt.name == "DummyOptimizer"


def test_iteration_counts_observations(opt):
    assert opt.iteration == 0
    for t in range(3):
        opt.observe(Observation(config=opt.suggest(), data_size=1.0,
                                performance=1.0, iteration=t))
    assert opt.iteration == 3


def test_observation_shape_validated(opt):
    with pytest.raises(ValueError, match="shape"):
        opt.observe(Observation(config=np.zeros(5), data_size=1.0,
                                performance=1.0, iteration=0))


def test_best_observation_requires_history(opt):
    with pytest.raises(RuntimeError):
        opt.best_observation()


def test_best_observation_is_raw_minimum(opt):
    for t, perf in enumerate((5.0, 2.0, 9.0)):
        opt.observe(Observation(config=opt.suggest(), data_size=1.0,
                                performance=perf, iteration=t))
    assert opt.best_observation().performance == 2.0


def test_optimizers_module_reexports():
    from repro.optimizers.base import Optimizer as Reexported

    assert Reexported is Optimizer
