"""Tests for the three FIND_BEST refinements (Eq. 3–5)."""

import numpy as np
import pytest

from repro.core.centroid import default_window_model_factory
from repro.core.find_best import FindBestMode, find_best, fit_window_model
from repro.core.observation import Observation, ObservationWindow


def window_from(rows):
    """rows: list of (config, data_size, perf)."""
    window = ObservationWindow(len(rows) if len(rows) >= 2 else 2)
    for i, (config, size, perf) in enumerate(rows):
        window.append(Observation(
            config=np.asarray(config, dtype=float), data_size=size,
            performance=perf, iteration=i,
        ))
    return window


def test_empty_window_raises():
    with pytest.raises(ValueError, match="empty"):
        find_best(ObservationWindow(2), FindBestMode.RAW)


def test_raw_picks_min_time():
    window = window_from([
        ([1.0], 100.0, 10.0),
        ([2.0], 10.0, 5.0),    # fastest raw, but tiny input
        ([3.0], 100.0, 8.0),
    ])
    best = find_best(window, FindBestMode.RAW)
    assert best.config[0] == 2.0


def test_normalized_corrects_for_size():
    window = window_from([
        ([1.0], 100.0, 10.0),  # 0.10 s/row
        ([2.0], 10.0, 5.0),    # 0.50 s/row — raw winner loses after Eq. 3
        ([3.0], 100.0, 8.0),   # 0.08 s/row — normalized winner
    ])
    best = find_best(window, FindBestMode.NORMALIZED)
    assert best.config[0] == 3.0


def test_model_mode_predicts_at_fixed_size():
    # Linear world: perf = config + 0.1*size.  At any fixed size the best
    # config is the smallest one even if it was observed at a large size.
    rows = []
    rng = np.random.default_rng(0)
    for i in range(12):
        c = float(rng.uniform(1, 10))
        p = float(rng.uniform(50, 150))
        rows.append(([c], p, c + 0.1 * p))
    # Inject the best config observed at the largest (most penalized) size.
    rows.append(([0.5], 200.0, 0.5 + 20.0))
    window = window_from(rows)
    best = find_best(
        window, FindBestMode.MODEL, model_factory=default_window_model_factory,
        fixed_data_size=100.0,
    )
    assert best.config[0] == 0.5


def test_model_mode_requires_model_or_factory():
    window = window_from([([1.0], 1.0, 1.0), ([2.0], 1.0, 2.0)])
    with pytest.raises(ValueError, match="model"):
        find_best(window, FindBestMode.MODEL)


def test_model_mode_single_observation_shortcut():
    window = window_from([([4.0], 1.0, 1.0)])
    best = find_best(window, FindBestMode.MODEL, model_factory=default_window_model_factory)
    assert best.config[0] == 4.0


def test_model_reuse_skips_refit():
    window = window_from([
        ([1.0], 100.0, 10.0),
        ([2.0], 100.0, 5.0),
        ([3.0], 100.0, 8.0),
    ])
    model = fit_window_model(window, default_window_model_factory)
    best = find_best(window, FindBestMode.MODEL, model=model)
    assert best.config[0] == pytest.approx(2.0)


def test_fit_window_model_learns_trend():
    window = window_from([
        ([float(c)], 100.0, 2.0 * c) for c in range(1, 8)
    ])
    model = fit_window_model(window, default_window_model_factory)
    lo = model.predict(np.array([[1.0, 100.0]]))[0]
    hi = model.predict(np.array([[7.0, 100.0]]))[0]
    assert hi > lo


def test_unknown_mode_rejected():
    window = window_from([([1.0], 1.0, 1.0), ([2.0], 1.0, 2.0)])
    with pytest.raises(ValueError):
        find_best(window, mode="bogus")
