"""Tests for optimizer/guardrail state snapshots (cross-run continuity)."""

import json

import numpy as np
import pytest

from repro.core.centroid import CentroidLearning
from repro.core.guardrail import Guardrail
from repro.core.observation import Observation
from repro.sparksim.noise import no_noise
from repro.workloads.synthetic import default_synthetic_objective


@pytest.fixture
def objective():
    return default_synthetic_objective(noise=no_noise(), seed=3)


def drive(optimizer, objective, n, rng, start_iter=0):
    for t in range(start_iter, start_iter + n):
        v = optimizer.suggest(data_size=objective.reference_size)
        r = objective.observe(v, objective.reference_size, rng)
        optimizer.observe(Observation(
            config=v, data_size=objective.reference_size,
            performance=r, iteration=t,
        ))


class TestCentroidState:
    def test_roundtrip_preserves_centroid_and_history(self, objective, rng):
        cl = CentroidLearning(objective.space, seed=0)
        drive(cl, objective, 12, rng)
        state = cl.to_state()
        # JSON round-trip, as the production store would do it.
        state = json.loads(json.dumps(state))

        restored = CentroidLearning(objective.space, seed=0).restore_state(state)
        assert np.allclose(restored.centroid, cl.centroid)
        assert restored.iteration == cl.iteration
        assert restored._n_updates == cl._n_updates
        assert np.allclose(
            restored.observations.performances(), cl.observations.performances()
        )

    def test_restored_optimizer_continues_tuning(self, objective, rng):
        cl = CentroidLearning(objective.space, seed=0)
        drive(cl, objective, 10, rng)
        state = cl.to_state()
        restored = CentroidLearning(objective.space, seed=1).restore_state(state)
        before = restored.centroid
        drive(restored, objective, 5, rng, start_iter=10)
        # The centroid keeps moving from where it was, not from the default.
        assert not np.allclose(restored.centroid, objective.space.default_vector())
        assert restored.iteration == 15

    def test_embeddings_survive_roundtrip(self, objective, rng):
        cl = CentroidLearning(objective.space, seed=0)
        emb = np.array([1.0, 2.0, 3.0])
        v = cl.suggest(data_size=100.0)
        cl.observe(Observation(config=v, data_size=100.0, performance=1.0,
                               iteration=0, embedding=emb))
        state = json.loads(json.dumps(cl.to_state()))
        restored = CentroidLearning(objective.space, seed=0).restore_state(state)
        assert np.allclose(restored.observations.history[0].embedding, emb)

    def test_dim_mismatch_rejected(self, objective):
        cl = CentroidLearning(objective.space, seed=0)
        state = cl.to_state()
        state["centroid"] = [1.0]
        with pytest.raises(ValueError, match="centroid"):
            CentroidLearning(objective.space, seed=0).restore_state(state)

    def test_guardrail_state_needs_guardrail(self, objective):
        guarded = CentroidLearning(
            objective.space, guardrail=Guardrail(min_iterations=3), seed=0
        )
        state = guarded.to_state()
        assert state["guardrail"] is not None
        plain = CentroidLearning(objective.space, seed=0)
        with pytest.raises(ValueError, match="guardrail"):
            plain.restore_state(state)


class TestGuardrailState:
    def test_disabled_flag_survives(self):
        g = Guardrail(min_iterations=4, threshold=0.05, patience=1)
        for t in range(12):
            g.update(Observation(config=np.array([1.0]), data_size=1.0,
                                 performance=10.0 + 10.0 * t, iteration=t))
        assert not g.active
        restored = Guardrail(min_iterations=4, threshold=0.05, patience=1)
        restored.restore_state(json.loads(json.dumps(g.to_state())))
        assert not restored.active

    def test_history_continues(self):
        g = Guardrail(min_iterations=10)
        for t in range(6):
            g.update(Observation(config=np.array([1.0]), data_size=1.0,
                                 performance=5.0, iteration=t))
        restored = Guardrail(min_iterations=10).restore_state(g.to_state())
        assert restored.n_observations == 6


class TestClientStateIntegration:
    def test_client_state_carries_across_runs(self, tmp_path):
        from repro.service import AutotuneBackend, AutotuneClient, SasTokenIssuer, StorageManager
        from repro.sparksim.configs import query_level_space
        from repro.sparksim.executor import SparkSimulator
        from repro.workloads.tpch import tpch_plan

        backend = AutotuneBackend(
            storage=StorageManager(tmp_path), issuer=SasTokenIssuer("s"),
            query_space=query_level_space(),
        )
        plan = tpch_plan(6, 1.0)
        sim = SparkSimulator(noise=no_noise(), seed=0)

        first = AutotuneClient(backend, "app-1", "art", "u", query_level_space(), seed=0)
        for t in range(5):
            config = first.suggest_config(plan)
            first.on_query_end(sim.run_to_event(
                plan, config, app_id="app-1", artifact_id="art", user_id="u",
                iteration=t, embedding=first.embedder.embed(plan),
            ))
        state = json.loads(json.dumps(first.export_state()))
        assert plan.signature() in state

        second = AutotuneClient(
            backend, "app-2", "art", "u", query_level_space(), seed=0,
            initial_state=state,
        )
        second.suggest_config(plan)
        optimizer = second._optimizers[plan.signature()]
        assert optimizer.iteration == 5  # history carried over
