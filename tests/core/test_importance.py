"""Unit tests for knob-importance ranking and the pruned-subspace view."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.core.importance import (
    ImportanceTracker,
    KnobRanking,
    KnobScore,
    PrunedSpace,
    build_sweep,
    rank_knobs,
)
from repro.core.observation import Observation
from repro.sparksim.configs import full_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise
from repro.workloads.tpch import tpch_plan


def make_scores():
    return [
        KnobScore(name="a", index=0, oat_range=1.0, morris_mu_star=2.0,
                  morris_sigma=0.1),
        KnobScore(name="b", index=1, oat_range=5.0, morris_mu_star=1.0,
                  morris_sigma=0.5),
        KnobScore(name="c", index=2, oat_range=0.0, morris_mu_star=0.0,
                  morris_sigma=0.0),
    ]


class TestKnobRanking:
    def test_score_is_oat_plus_mu_star(self):
        s = KnobScore(name="x", index=0, oat_range=2.5, morris_mu_star=1.5,
                      morris_sigma=0.0)
        assert s.score == 4.0

    def test_ranked_sorts_by_score_then_index(self):
        ranking = KnobRanking("wl", make_scores())
        assert ranking.ranked_names == ["b", "a", "c"]
        assert ranking.top(2) == ["b", "a"]
        assert len(ranking) == 3

    def test_zero_score_ties_break_on_space_index(self):
        scores = [
            KnobScore(name="z2", index=2, oat_range=0.0, morris_mu_star=0.0,
                      morris_sigma=0.0),
            KnobScore(name="z1", index=1, oat_range=0.0, morris_mu_star=0.0,
                      morris_sigma=0.0),
            KnobScore(name="hot", index=0, oat_range=1.0, morris_mu_star=0.0,
                      morris_sigma=0.0),
        ]
        ranking = KnobRanking("wl", scores)
        assert ranking.ranked_names == ["hot", "z1", "z2"]

    def test_score_of_and_unknown_name(self):
        ranking = KnobRanking("wl", make_scores())
        assert ranking.score_of("b").oat_range == 5.0
        with pytest.raises(KeyError):
            ranking.score_of("nope")

    def test_top_rejects_nonpositive_k(self):
        ranking = KnobRanking("wl", make_scores())
        with pytest.raises(ValueError):
            ranking.top(0)

    def test_empty_scores_rejected(self):
        with pytest.raises(ValueError):
            KnobRanking("wl", [])

    def test_json_roundtrip_and_equality(self):
        ranking = KnobRanking(
            "wl", make_scores(),
            data_scale=2.0, n_oat_points=9, n_trajectories=8, seed=3,
        )
        twin = KnobRanking.from_json(ranking.to_json())
        assert twin == ranking
        assert twin.data_scale == 2.0
        assert twin.seed == 3
        state = json.loads(ranking.to_json())
        assert state["workload_signature"] == "wl"

    def test_inequality_on_different_scores(self):
        a = KnobRanking("wl", make_scores())
        scores = make_scores()
        scores[0] = KnobScore(name="a", index=0, oat_range=9.0,
                              morris_mu_star=2.0, morris_sigma=0.1)
        assert a != KnobRanking("wl", scores)


class TestBuildSweep:
    def test_validation_errors(self, small_space):
        with pytest.raises(ValueError):
            build_sweep(small_space, n_oat_points=1)
        with pytest.raises(ValueError):
            build_sweep(small_space, n_trajectories=0)
        with pytest.raises(ValueError):
            build_sweep(small_space, morris_delta=0.0)
        with pytest.raises(ValueError):
            build_sweep(small_space, morris_delta=1.0)
        with pytest.raises(ValueError):
            build_sweep(small_space, sweep_order=["linear", "logscale"])

    def test_row_layout_covers_design(self, small_space):
        sweep = build_sweep(small_space, n_oat_points=5, n_trajectories=3)
        dim = small_space.dim
        assert sweep.rows.shape == (dim * 5 + 3 + dim * 3, dim)
        assert sweep.base_indices.shape == (3,)
        for name in small_space.names:
            assert sweep.oat_indices[name].shape == (5,)
            assert sweep.perturb_indices[name].shape == (3,)

    def test_rows_stay_in_bounds(self, small_space):
        sweep = build_sweep(small_space, seed=7)
        bounds = small_space.internal_bounds
        assert np.all(sweep.rows >= bounds[:, 0] - 1e-12)
        assert np.all(sweep.rows <= bounds[:, 1] + 1e-12)

    def test_gathered_rows_invariant_to_sweep_order(self, small_space):
        forward = build_sweep(small_space, seed=1)
        backward = build_sweep(
            small_space, seed=1, sweep_order=list(reversed(small_space.names))
        )
        for name in small_space.names:
            np.testing.assert_array_equal(
                forward.rows[forward.oat_indices[name]],
                backward.rows[backward.oat_indices[name]],
            )
            np.testing.assert_array_equal(
                forward.rows[forward.perturb_indices[name]],
                backward.rows[backward.perturb_indices[name]],
            )
        np.testing.assert_array_equal(
            forward.rows[forward.base_indices],
            backward.rows[backward.base_indices],
        )


class TestRankKnobs:
    def test_deterministic_for_a_seed(self, q3_plan):
        space = full_space()
        a = rank_knobs(q3_plan, space, seed=5)
        b = rank_knobs(q3_plan, space, seed=5)
        assert a == b

    def test_sweep_order_is_bitwise_irrelevant(self, q3_plan):
        space = full_space()
        a = rank_knobs(q3_plan, space, seed=2)
        b = rank_knobs(
            q3_plan, space, seed=2, sweep_order=list(reversed(space.names))
        )
        assert a == b

    def test_unread_knobs_score_exactly_zero(self, q3_plan):
        # TPC-H Q3 at the default memory budget never spills, so the cost
        # model provably ignores these two app-level knobs on this plan.
        ranking = rank_knobs(q3_plan, full_space())
        assert ranking.score_of("spark.executor.memory").score == 0.0
        assert ranking.score_of("spark.memory.offHeap.size").score == 0.0
        assert ranking.ranked_names[0] == "spark.sql.shuffle.partitions"
        # Zero-score knobs rank strictly below every responsive knob.
        scores = [s.score for s in ranking.ranked]
        assert scores == sorted(scores, reverse=True)

    def test_simulator_and_cost_model_paths_agree(self, q3_plan):
        space = full_space()
        via_model = rank_knobs(q3_plan, space, seed=0)
        via_sim = rank_knobs(
            q3_plan, space, seed=0,
            simulator=SparkSimulator(noise=low_noise(), seed=0),
        )
        # true_time_batch is the noiseless surface — identical scores.
        assert via_sim == via_model

    def test_bad_estimator_shape_rejected(self, q3_plan):
        with pytest.raises(ValueError):
            rank_knobs(
                q3_plan, full_space(),
                estimator=lambda rows: np.zeros((len(rows), 2)),
            )

    def test_emits_ranking_counter(self, q3_plan):
        with telemetry.capture() as cap:
            rank_knobs(q3_plan, full_space())
        assert cap.counters().get("importance.rankings") == 1.0


class TestPrunedSpace:
    def make(self, keep=("spark.sql.shuffle.partitions",
                         "spark.executor.instances"), pins=None):
        space = full_space()
        return space, PrunedSpace(space, keep, pins=pins)

    def test_kept_params_in_full_space_order(self):
        space, pruned = self.make(
            keep=("spark.executor.instances", "spark.sql.shuffle.partitions")
        )
        assert pruned.dim == 2
        assert pruned.names == [
            "spark.sql.shuffle.partitions", "spark.executor.instances",
        ]
        assert pruned.full_space is space
        assert len(pruned.dropped_names) == space.dim - 2

    def test_empty_keep_rejected(self):
        with pytest.raises(ValueError):
            PrunedSpace(full_space(), [])

    def test_unknown_keep_rejected(self):
        with pytest.raises(KeyError):
            PrunedSpace(full_space(), ["nope"])

    def test_pins_for_kept_knob_rejected(self):
        with pytest.raises(KeyError):
            self.make(pins={"spark.sql.shuffle.partitions": 100.0})

    def test_decode_encode_identity_is_bitwise(self, rng):
        space, pruned = self.make()
        vecs = pruned.sample_vectors(16, rng)
        for v in vecs:
            full = pruned.decode(v)
            np.testing.assert_array_equal(pruned.encode(full), v)

    def test_decode_pins_dropped_knobs_to_defaults(self):
        space, pruned = self.make()
        config = pruned.to_dict(pruned.default_vector())
        assert set(config) == set(space.names)
        defaults = space.default_dict()
        for name in pruned.dropped_names:
            assert config[name] == defaults[name]

    def test_explicit_pins_surface_in_decoded_dicts(self):
        space, pruned = self.make(pins={"spark.executor.memory": 16.0})
        assert pruned.pinned_dict()["spark.executor.memory"] == 16.0
        assert pruned.default_dict()["spark.executor.memory"] == 16.0

    def test_decode_matrix_matches_scalar_decode(self, rng):
        space, pruned = self.make()
        vecs = pruned.sample_vectors(8, rng)
        batch = pruned.decode_matrix(vecs)
        assert batch.shape == (8, space.dim)
        for i, v in enumerate(vecs):
            np.testing.assert_array_equal(batch[i], pruned.decode(v))

    def test_shape_errors(self):
        space, pruned = self.make()
        with pytest.raises(ValueError):
            pruned.decode(np.zeros(space.dim))
        with pytest.raises(ValueError):
            pruned.decode_matrix(np.zeros((4, space.dim)))
        with pytest.raises(ValueError):
            pruned.encode(np.zeros(pruned.dim))

    def test_from_ranking_keeps_top_k(self, q3_plan):
        space = full_space()
        ranking = rank_knobs(q3_plan, space)
        pruned = PrunedSpace.from_ranking(ranking, space, 3)
        assert set(pruned.names) == set(ranking.top(3))
        assert "PrunedSpace" in repr(pruned)

    def test_default_dict_round_trips_through_full_space(self):
        space, pruned = self.make()
        assert pruned.default_dict() == space.default_dict()


class TestImportanceTracker:
    def test_initial_ranking_computed_eagerly(self, q3_plan):
        tracker = ImportanceTracker(q3_plan, full_space(), top_k=3, seed=4)
        assert tracker.rerank_count == 0
        assert len(tracker.rankings) == 1
        assert tracker.ranking == rank_knobs(q3_plan, full_space(), seed=4)

    def test_pruned_space_uses_latest_ranking(self, q3_plan):
        tracker = ImportanceTracker(q3_plan, full_space(), top_k=3)
        pruned = tracker.pruned_space()
        assert pruned.dim == 3
        assert set(pruned.names) == set(tracker.ranking.top(3))
        assert tracker.pruned_space(k=5).dim == 5

    def test_rerank_derives_seed_from_count(self, q3_plan):
        tracker = ImportanceTracker(q3_plan, full_space(), seed=9)
        with telemetry.capture() as cap:
            second = tracker.rerank()
        assert tracker.rerank_count == 1
        assert second.seed == 10  # base seed + ranking index
        assert second == rank_knobs(q3_plan, full_space(), seed=10)
        assert cap.counters().get("importance.reranks") == 1.0

    def test_attach_reranks_then_delegates(self, q3_plan):
        tracker = ImportanceTracker(q3_plan, full_space())
        calls = []

        class FakeOptimizer:
            def switch_warm_start(self, obs):
                calls.append(obs)
                return "warm"

        opt = FakeOptimizer()
        previous = opt.switch_warm_start
        tracker.attach(opt)
        assert opt.switch_warm_start is not previous
        obs = Observation(
            config=np.zeros(8), data_size=3e6, performance=10.0, iteration=7,
        )
        assert opt.switch_warm_start(obs) == "warm"
        assert calls == [obs]
        assert tracker.rerank_count == 1
        # The rerank ran at the firing observation's data scale.
        assert tracker.ranking.data_scale == pytest.approx(
            3e6 / max(q3_plan.total_leaf_cardinality, 1.0)
        )

    def test_attach_without_previous_hook_returns_none(self, q3_plan):
        tracker = ImportanceTracker(q3_plan, full_space())

        class BareOptimizer:
            switch_warm_start = None

        opt = BareOptimizer()
        tracker.attach(opt)
        obs = Observation(
            config=np.zeros(8), data_size=1.0, performance=1.0, iteration=0,
        )
        assert opt.switch_warm_start(obs) is None
        assert tracker.rerank_count == 1
