"""Tests for the conservative explore-only-while-improving policy."""

import numpy as np
import pytest

from repro.core.centroid import CentroidLearning
from repro.core.conservative import ConservativePolicy
from repro.core.observation import Observation
from repro.sparksim.noise import high_noise, no_noise
from repro.workloads.synthetic import default_synthetic_objective


@pytest.fixture
def objective():
    return default_synthetic_objective(noise=no_noise(), seed=3)


def make_policy(objective, **kwargs):
    inner = CentroidLearning(objective.space, seed=0)
    defaults = dict(margin=0.2, recent_window=3, cooldown=4, min_observations=4)
    defaults.update(kwargs)
    return ConservativePolicy(inner, **defaults)


class TestValidation:
    def test_margin(self, objective):
        with pytest.raises(ValueError):
            make_policy(objective, margin=0.0)

    def test_recent_window(self, objective):
        with pytest.raises(ValueError):
            make_policy(objective, recent_window=1)

    def test_cooldown(self, objective):
        with pytest.raises(ValueError):
            make_policy(objective, cooldown=0)


class TestBehavior:
    def test_explores_initially(self, objective):
        policy = make_policy(objective)
        assert policy.exploring
        v = policy.suggest(data_size=100.0)
        assert objective.space.contains_vector(v)

    def test_incumbent_is_best_of_best_window(self, objective):
        policy = make_policy(objective)  # recent_window=3
        a = objective.space.default_vector()
        b = objective.space.clip(a + 1.0)
        perfs = [50.0, 20.0, 40.0]
        configs = [a, b, a]
        for t, (c, r) in enumerate(zip(configs, perfs)):
            policy.observe(Observation(config=c, data_size=100.0,
                                       performance=r, iteration=t))
        # First full window: incumbent = its best-normalized member (b).
        assert np.allclose(policy.incumbent, b)
        # A worse window does not displace it.
        for t in range(3, 6):
            policy.observe(Observation(config=a, data_size=100.0,
                                       performance=90.0, iteration=t))
        assert np.allclose(policy.incumbent, b)

    def test_regression_triggers_cooldown_replaying_incumbent(self, objective):
        policy = make_policy(objective)
        good = objective.space.default_vector()
        # Establish a good incumbent, then regress hard.
        for t in range(4):
            policy.observe(Observation(config=good, data_size=100.0,
                                       performance=10.0, iteration=t))
        for t in range(4, 8):
            v = policy.suggest(data_size=100.0)
            policy.observe(Observation(config=v, data_size=100.0,
                                       performance=30.0, iteration=t))
        assert not policy.exploring
        assert policy.pause_count == 1
        suggestion = policy.suggest(data_size=100.0)
        assert np.allclose(suggestion, policy.incumbent)

    def test_cooldown_expires_and_exploration_resumes(self, objective):
        policy = make_policy(objective, cooldown=2)
        good = objective.space.default_vector()
        # Normal operation: every observe follows a suggest.
        t = 0
        for perf in (10.0, 10.0, 10.0, 10.0, 40.0, 40.0, 40.0, 40.0):
            policy.suggest(data_size=100.0)
            policy.observe(Observation(config=good, data_size=100.0,
                                       performance=perf, iteration=t))
            t += 1
        assert policy.pause_count == 1
        # Replaying the incumbent at good performance burns the cooldown
        # (and the post-pause window) without re-triggering.
        while not policy.exploring:
            v = policy.suggest(data_size=100.0)
            policy.observe(Observation(config=v, data_size=100.0,
                                       performance=10.0, iteration=t))
            t += 1
            assert t < 30, "cooldown never expired"
        # Keep running at good performance: exploration eventually stays on
        # (one more pause is legitimate while regressed runs age out of the
        # recent window).
        for _ in range(12):
            v = policy.suggest(data_size=100.0)
            policy.observe(Observation(config=v, data_size=100.0,
                                       performance=10.0, iteration=t))
            t += 1
        assert policy.exploring
        assert policy.pause_count <= 2

    def test_inner_optimizer_keeps_learning_while_paused(self, objective):
        policy = make_policy(objective)
        good = objective.space.default_vector()
        for t in range(8):
            policy.observe(Observation(config=good, data_size=100.0,
                                       performance=10.0 + 5.0 * t, iteration=t))
        assert policy.inner.iteration == 8  # every run reached the inner state

    def test_data_size_normalization_prevents_false_pauses(self, objective):
        """Growing inputs alone (time up, rate flat) must not pause tuning."""
        policy = make_policy(objective, margin=0.2)
        config = objective.space.default_vector()
        for t in range(12):
            size = 100.0 * (1 + t)
            policy.observe(Observation(config=config, data_size=size,
                                       performance=0.1 * size, iteration=t))
        assert policy.pause_count == 0

    def test_no_pauses_without_true_regression_under_moderate_noise(self):
        """Window-mean comparisons share the noise inflation, so a healthy
        converging tuner under production-grade noise is not paused."""
        from repro.sparksim.noise import NoiseModel

        objective = default_synthetic_objective(
            noise=NoiseModel(fluctuation_level=0.25, spike_level=0.3), seed=7
        )
        policy = ConservativePolicy(
            CentroidLearning(objective.space, seed=0),
            margin=0.6, recent_window=5, cooldown=5,
        )
        rng = np.random.default_rng(11)
        for t in range(80):
            v = policy.suggest(data_size=objective.reference_size)
            r = objective.observe(v, objective.reference_size, rng)
            policy.observe(Observation(
                config=v, data_size=objective.reference_size,
                performance=r, iteration=t,
            ))
        assert policy.pause_count <= 1

    def test_pauses_on_genuine_regression(self):
        """A config-independent 2x slowdown mid-run triggers the policy."""
        objective = default_synthetic_objective(noise=no_noise(), seed=7)
        policy = make_policy(objective, margin=0.3, recent_window=3, cooldown=4)
        rng = np.random.default_rng(0)
        for t in range(30):
            v = policy.suggest(data_size=objective.reference_size)
            r = objective.observe(v, objective.reference_size, rng)
            if t >= 15:
                r *= 2.0   # external regression, unrelated to the config
            policy.observe(Observation(
                config=v, data_size=objective.reference_size,
                performance=r, iteration=t,
            ))
        assert policy.pause_count >= 1
