"""Unit + property tests for ConfigSpace / Parameter / Configuration."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config_space import ConfigSpace, Configuration, Parameter


class TestParameter:
    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="low"):
            Parameter(name="x", low=10, high=1, default=5)

    def test_default_must_be_in_bounds(self):
        with pytest.raises(ValueError, match="default"):
            Parameter(name="x", low=0, high=1, default=5)

    def test_log_scale_requires_positive_low(self):
        with pytest.raises(ValueError, match="log-scale"):
            Parameter(name="x", low=0, high=10, default=1, log_scale=True)

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            Parameter(name="x", low=0, high=1, default=0, scope="cluster")

    def test_log_roundtrip(self):
        p = Parameter(name="x", low=1, high=1000, default=10, log_scale=True)
        assert p.to_internal(100.0) == pytest.approx(2.0)
        assert p.to_natural(2.0) == pytest.approx(100.0)

    def test_integer_rounding_and_clipping(self):
        p = Parameter(name="x", low=1, high=10, default=5, integer=True)
        assert p.to_natural(3.4) == 3.0
        assert p.to_natural(99.0) == 10.0
        assert p.to_natural(-5.0) == 1.0

    def test_internal_span(self):
        p = Parameter(name="x", low=1, high=100, default=10, log_scale=True)
        assert p.internal_span == pytest.approx(2.0)


class TestConfigSpace:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            ConfigSpace([])

    def test_duplicate_names_rejected(self):
        p = Parameter(name="x", low=0, high=1, default=0)
        with pytest.raises(ValueError, match="duplicate"):
            ConfigSpace([p, p])

    def test_container_protocol(self, small_space):
        assert len(small_space) == 3
        assert "linear" in small_space
        assert "missing" not in small_space
        assert small_space["count"].integer
        assert [p.name for p in small_space] == ["linear", "logscale", "count"]
        assert small_space.index_of("logscale") == 1

    def test_vector_dict_roundtrip(self, small_space):
        config = {"linear": 25.0, "logscale": 1000.0, "count": 16}
        vec = small_space.to_vector(config)
        back = small_space.to_dict(vec)
        assert back["linear"] == pytest.approx(25.0)
        assert back["logscale"] == pytest.approx(1000.0)
        assert back["count"] == 16

    def test_to_vector_missing_key(self, small_space):
        with pytest.raises(KeyError):
            small_space.to_vector({"linear": 1.0})

    def test_to_dict_wrong_shape(self, small_space):
        with pytest.raises(ValueError, match="shape"):
            small_space.to_dict(np.zeros(5))

    def test_defaults(self, small_space):
        d = small_space.default_dict()
        assert d == {"linear": 50.0, "logscale": 100.0, "count": 8.0}
        vec = small_space.default_vector()
        assert small_space.to_dict(vec) == d

    def test_clip_respects_bounds(self, small_space):
        clipped = small_space.clip(np.array([1e9, -1e9, 3.0]))
        assert small_space.contains_vector(clipped)

    def test_normalize_denormalize(self, small_space, rng):
        vec = small_space.sample_vector(rng)
        unit = small_space.normalize(vec)
        assert np.all(unit >= 0) and np.all(unit <= 1)
        assert np.allclose(small_space.denormalize(unit), vec)

    def test_sampling_within_bounds(self, small_space, rng):
        samples = small_space.sample_vectors(100, rng)
        assert samples.shape == (100, 3)
        for s in samples:
            assert small_space.contains_vector(s)

    def test_latin_hypercube_stratification(self, small_space, rng):
        n = 50
        lhs = small_space.latin_hypercube(n, rng)
        unit = np.array([small_space.normalize(v) for v in lhs])
        # Each column should have exactly one sample per 1/n stratum.
        for j in range(3):
            bins = np.floor(unit[:, j] * n).astype(int)
            assert len(set(bins.tolist())) == n

    def test_subspace_by_scope(self):
        space = ConfigSpace([
            Parameter(name="q", low=0, high=1, default=0, scope="query"),
            Parameter(name="a", low=0, high=1, default=0, scope="app"),
        ])
        assert space.subspace("query").names == ["q"]
        assert space.subspace("app").names == ["a"]

    def test_subspace_missing_scope(self, small_space):
        with pytest.raises(ValueError):
            small_space.subspace("app")

    def test_equality(self, small_space):
        other = ConfigSpace(list(small_space))
        assert small_space == other


class TestConfiguration:
    def test_default_construction(self, small_space):
        c = Configuration(small_space)
        assert c.as_dict() == small_space.default_dict()

    def test_from_dict_and_getitem(self, small_space):
        c = Configuration.from_dict(small_space, {"linear": 10, "logscale": 50, "count": 2})
        assert c["count"] == 2

    def test_replace(self, small_space):
        c = Configuration(small_space).replace(linear=75.0)
        assert c["linear"] == 75.0
        with pytest.raises(KeyError):
            c.replace(bogus=1.0)

    def test_out_of_bounds_vector_clipped(self, small_space):
        c = Configuration(small_space, vector=np.array([1e9, 1e9, 1e9]))
        assert small_space.contains_vector(c.vector)


class TestToNaturalMatrix:
    def test_rows_match_to_dict_bitwise(self, small_space, rng):
        vectors = small_space.sample_vectors(50, rng)
        matrix = small_space.to_natural_matrix(vectors)
        for i, vec in enumerate(vectors):
            expected = [small_space.to_dict(vec)[name] for name in small_space.names]
            assert matrix[i].tolist() == expected  # bitwise, not approx

    def test_integer_column_is_exact_integers(self, small_space, rng):
        vectors = small_space.sample_vectors(50, rng)
        matrix = small_space.to_natural_matrix(vectors)
        count_col = matrix[:, small_space.index_of("count")]
        assert np.array_equal(count_col, np.round(count_col))
        assert np.all((count_col >= 1) & (count_col <= 64))

    def test_round_trip_integer_and_log_knobs(self, small_space, rng):
        vectors = small_space.sample_vectors(50, rng)
        matrix = small_space.to_natural_matrix(vectors)
        back = np.column_stack([
            [p.to_internal(matrix[i, j]) for i in range(len(matrix))]
            for j, p in enumerate(small_space)
        ])
        again = small_space.to_natural_matrix(back)
        # Integer knob: natural values are whole numbers, so the second
        # pass must reproduce them exactly.
        j_int = small_space.index_of("count")
        assert np.array_equal(again[:, j_int], matrix[:, j_int])
        # Log knob: 10**log10(x) drifts by ~1 ulp, nothing more.
        j_log = small_space.index_of("logscale")
        assert np.allclose(again[:, j_log], matrix[:, j_log], rtol=1e-12, atol=0)
        # Linear knob: to_internal is the identity inside the bounds.
        j_lin = small_space.index_of("linear")
        assert np.array_equal(again[:, j_lin], matrix[:, j_lin])

    def test_shape_validation(self, small_space):
        with pytest.raises(ValueError, match="shape"):
            small_space.to_natural_matrix(np.zeros((4, 7)))
        with pytest.raises(ValueError, match="shape"):
            small_space.to_natural_matrix(np.zeros(3))


@given(
    value=st.floats(min_value=1.0, max_value=10000.0,
                    allow_nan=False, allow_infinity=False)
)
def test_log_parameter_roundtrip_property(value):
    p = Parameter(name="x", low=1.0, high=10000.0, default=10.0, log_scale=True)
    assert p.to_natural(p.to_internal(value)) == pytest.approx(value, rel=1e-9)


@given(
    unit=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=3, max_size=3
    )
)
def test_normalize_is_inverse_of_denormalize_property(unit):
    space = ConfigSpace([
        Parameter(name="a", low=0.0, high=100.0, default=50.0),
        Parameter(name="b", low=1.0, high=1000.0, default=10.0, log_scale=True),
        Parameter(name="c", low=-5.0, high=5.0, default=0.0),
    ])
    unit_arr = np.array(unit)
    vec = space.denormalize(unit_arr)
    assert np.allclose(space.normalize(vec), unit_arr, atol=1e-9)


@given(
    raw=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=3, max_size=3
    )
)
def test_clip_idempotent_and_in_bounds_property(raw):
    space = ConfigSpace([
        Parameter(name="a", low=0.0, high=100.0, default=50.0),
        Parameter(name="b", low=1.0, high=1000.0, default=10.0, log_scale=True),
        Parameter(name="c", low=-5.0, high=5.0, default=0.0),
    ])
    clipped = space.clip(np.array(raw))
    assert space.contains_vector(clipped)
    assert np.allclose(space.clip(clipped), clipped)
