"""Tests for TuningSession / TuningTrace."""

import numpy as np
import pytest

from repro.core.centroid import CentroidLearning
from repro.core.session import IterationRecord, TuningSession, TuningTrace
from repro.embedding.embedder import WorkloadEmbedder
from repro.optimizers.random_search import RandomSearch
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise, no_noise
from repro.workloads.dynamics import LinearGrowth
from repro.workloads.tpch import tpch_plan


@pytest.fixture
def session(q3_plan):
    space = query_level_space()
    return TuningSession(
        q3_plan,
        SparkSimulator(noise=no_noise(), seed=0),
        CentroidLearning(space, seed=0),
        embedder=WorkloadEmbedder(),
    )


class TestTuningTrace:
    def test_views(self):
        trace = TuningTrace()
        for i in range(4):
            trace.append(IterationRecord(
                iteration=i, config={}, observed_seconds=10.0 - i,
                true_seconds=9.0 - i, data_size=100.0,
            ))
        assert len(trace) == 4
        assert trace.observed.tolist() == [10.0, 9.0, 8.0, 7.0]
        assert trace.best_true_so_far().tolist() == [9.0, 8.0, 7.0, 6.0]
        assert np.allclose(trace.normalized_true(), trace.true / 100.0)

    def test_speedup_vs(self):
        trace = TuningTrace()
        for i in range(10):
            trace.append(IterationRecord(
                iteration=i, config={}, observed_seconds=5.0,
                true_seconds=5.0, data_size=1.0,
            ))
        assert trace.speedup_vs(10.0) == pytest.approx(1.0)  # 2x faster = +100%
        with pytest.raises(ValueError):
            TuningTrace().speedup_vs(1.0)


class TestTuningSession:
    def test_run_produces_trace(self, session):
        trace = session.run(5)
        assert len(trace) == 5
        assert np.all(trace.true > 0)
        assert np.all(trace.observed >= trace.true - 1e-9)  # no-noise: equal

    def test_invalid_iterations(self, session):
        with pytest.raises(ValueError):
            session.run(0)

    def test_records_contain_config_dict(self, session):
        record = session.step()
        assert set(record.config) == set(query_level_space().names)

    def test_default_true_time_positive(self, session):
        assert session.default_true_time() > 0

    def test_scale_fn_changes_data_size(self, q3_plan):
        space = query_level_space()
        session = TuningSession(
            q3_plan,
            SparkSimulator(noise=no_noise(), seed=0),
            RandomSearch(space, seed=0),
            scale_fn=lambda t: 1.0 + t,
        )
        trace = session.run(3)
        assert trace.data_sizes[1] > trace.data_sizes[0]
        assert trace.data_sizes[2] > trace.data_sizes[1]

    def test_noisy_observed_at_least_true(self, q3_plan):
        space = query_level_space()
        session = TuningSession(
            q3_plan,
            SparkSimulator(noise=low_noise(), seed=0),
            RandomSearch(space, seed=0),
        )
        trace = session.run(10)
        # Eq.-8 noise only slows down: observed >= true always.
        assert np.all(trace.observed >= trace.true - 1e-9)

    def test_tuning_improves_over_default_noiseless(self, q3_plan):
        space = query_level_space()
        session = TuningSession(
            tpch_plan(3, 10.0),
            SparkSimulator(noise=no_noise(), seed=0),
            CentroidLearning(space, seed=0),
            embedder=WorkloadEmbedder(),
        )
        trace = session.run(30)
        assert trace.best_true_so_far()[-1] < session.default_true_time()
