"""Tests for categorical-knob tuning (Sec. 4.3's continuous embedding)."""

import numpy as np
import pytest

from repro.core.categorical import (
    CategoricalParameter,
    CategoricalSpaceAdapter,
    PerformanceOrderedEncoder,
)
from repro.core.config_space import Parameter


@pytest.fixture
def codec():
    return CategoricalParameter(
        name="spark.io.compression.codec",
        choices=("lz4", "snappy", "zstd"),
        default="lz4",
    )


class TestCategoricalParameter:
    def test_needs_two_choices(self):
        with pytest.raises(ValueError):
            CategoricalParameter(name="x", choices=("only",), default="only")

    def test_duplicate_choices_rejected(self):
        with pytest.raises(ValueError):
            CategoricalParameter(name="x", choices=("a", "a"), default="a")

    def test_default_must_be_a_choice(self):
        with pytest.raises(ValueError):
            CategoricalParameter(name="x", choices=("a", "b"), default="c")

    def test_scope_validated(self):
        with pytest.raises(ValueError):
            CategoricalParameter(name="x", choices=("a", "b"), default="a",
                                 scope="galaxy")


class TestPerformanceOrderedEncoder:
    def test_initial_positions_span_unit_interval(self, codec):
        enc = PerformanceOrderedEncoder(codec)
        positions = sorted(enc.positions.values())
        assert positions[0] == 0.0
        assert positions[-1] == 1.0
        assert not enc.fitted

    def test_encode_decode_roundtrip(self, codec):
        enc = PerformanceOrderedEncoder(codec)
        for choice in codec.choices:
            assert enc.decode(enc.encode(choice)) == choice

    def test_decode_snaps_to_nearest(self, codec):
        enc = PerformanceOrderedEncoder(codec)
        assert enc.decode(0.05) == "lz4"       # nominal order: lz4 at 0
        assert enc.decode(0.95) == "zstd"

    def test_unknown_choice_rejected(self, codec):
        enc = PerformanceOrderedEncoder(codec)
        with pytest.raises(ValueError):
            enc.encode("gzip")

    def test_fit_orders_by_mean_performance(self, codec):
        enc = PerformanceOrderedEncoder(codec)
        enc.fit(
            ["lz4", "lz4", "zstd", "zstd", "snappy"],
            [10.0, 12.0, 3.0, 5.0, 20.0],
        )
        assert enc.fitted
        pos = enc.positions
        assert pos["zstd"] < pos["lz4"] < pos["snappy"]   # best → 0
        assert pos["zstd"] == 0.0
        assert pos["snappy"] == 1.0

    def test_unobserved_choices_keep_relative_order(self, codec):
        enc = PerformanceOrderedEncoder(codec)
        enc.fit(["zstd"], [1.0])
        pos = enc.positions
        assert pos["zstd"] == 0.0
        assert pos["lz4"] < pos["snappy"]  # previous (nominal) order retained

    def test_fit_alignment_checked(self, codec):
        with pytest.raises(ValueError):
            PerformanceOrderedEncoder(codec).fit(["lz4"], [1.0, 2.0])


class TestCategoricalSpaceAdapter:
    @pytest.fixture
    def adapter(self, codec):
        return CategoricalSpaceAdapter(
            continuous=[Parameter(name="partitions", low=8, high=512, default=64)],
            categorical=[codec],
        )

    def test_requires_categorical(self):
        with pytest.raises(ValueError):
            CategoricalSpaceAdapter(
                continuous=[Parameter(name="x", low=0, high=1, default=0)],
                categorical=[],
            )

    def test_space_is_continuous_superset(self, adapter):
        assert adapter.space.dim == 2
        assert "spark.io.compression.codec" in adapter.space

    def test_default_vector_maps_to_default_choice(self, adapter):
        config = adapter.to_config(adapter.space.default_vector())
        assert config["spark.io.compression.codec"] == "lz4"
        assert config["partitions"] == 64

    def test_roundtrip(self, adapter):
        config = {"partitions": 128.0, "spark.io.compression.codec": "zstd"}
        vec = adapter.to_vector(config)
        back = adapter.to_config(vec)
        assert back["spark.io.compression.codec"] == "zstd"
        assert back["partitions"] == pytest.approx(128.0)

    def test_refit_reorders_axis(self, adapter):
        # zstd consistently fastest → after refit it sits at position 0.
        for codec_choice, perf in (("lz4", 10.0), ("zstd", 2.0),
                                   ("snappy", 20.0), ("zstd", 3.0)):
            adapter.record(
                {"partitions": 64, "spark.io.compression.codec": codec_choice}, perf
            )
        refit = adapter.refit()
        assert refit == ["spark.io.compression.codec"]
        enc = adapter.encoders["spark.io.compression.codec"]
        assert enc.positions["zstd"] == 0.0

    def test_refit_needs_diverse_data(self, adapter):
        adapter.record({"partitions": 64, "spark.io.compression.codec": "lz4"}, 1.0)
        adapter.record({"partitions": 64, "spark.io.compression.codec": "lz4"}, 2.0)
        assert adapter.refit() == []   # only one distinct choice seen

    def test_warmup_covers_every_choice(self, adapter):
        configs = adapter.warmup_configs(repeats=2)
        codecs = [c["spark.io.compression.codec"] for c in configs]
        assert codecs.count("lz4") == 2
        assert codecs.count("zstd") == 2
        assert len(configs) == 6
        with pytest.raises(ValueError):
            adapter.warmup_configs(repeats=0)

    def test_optimizer_integration_finds_best_codec(self, codec):
        """End to end: warmup probes each choice, the encoder re-orders the
        axis, and CL converges on the choice the objective prefers."""
        from repro.core.centroid import CentroidLearning
        from repro.core.observation import Observation

        adapter = CategoricalSpaceAdapter(
            continuous=[Parameter(name="partitions", low=8, high=512, default=64)],
            categorical=[codec],
        )
        penalty = {"lz4": 5.0, "snappy": 9.0, "zstd": 0.0}

        def objective(config):
            return 10.0 + penalty[config["spark.io.compression.codec"]] + abs(
                config["partitions"] - 200.0
            ) / 50.0

        # Warmup: probe every codec once, then re-order the axis.
        for config in adapter.warmup_configs():
            adapter.record(config, objective(config))
        adapter.refit()
        enc = adapter.encoders[codec.name]
        assert enc.positions["zstd"] == 0.0   # best choice now at the origin

        cl = CentroidLearning(adapter.space, alpha=0.08, beta=0.2, seed=0)
        chosen = []
        for t in range(40):
            vec = cl.suggest(data_size=100.0)
            config = adapter.to_config(vec)
            r = objective(config)
            adapter.record(config, r)
            cl.observe(Observation(config=vec, data_size=100.0,
                                   performance=r, iteration=t))
            chosen.append(config["spark.io.compression.codec"])
        assert chosen[-10:].count("zstd") >= 6


class TestSparkCatalog:
    def test_catalog_exports(self):
        from repro.sparksim.configs import (
            COMPRESSION_CODEC,
            SERIALIZER,
            categorical_query_knobs,
        )
        knobs = categorical_query_knobs()
        assert COMPRESSION_CODEC in knobs and SERIALIZER in knobs

    def test_cost_model_honors_codec_and_serializer(self, quiet_simulator, q3_plan,
                                                    spark_space):
        base = spark_space.default_dict()
        t_lz4 = quiet_simulator.true_time(q3_plan, {**base,
                                                    "spark.io.compression.codec": "lz4"})
        t_zstd = quiet_simulator.true_time(q3_plan, {**base,
                                                     "spark.io.compression.codec": "zstd"})
        assert t_zstd != t_lz4
        t_java = quiet_simulator.true_time(q3_plan, {**base, "spark.serializer": "java"})
        t_kryo = quiet_simulator.true_time(q3_plan, {**base, "spark.serializer": "kryo"})
        assert t_kryo < t_java
