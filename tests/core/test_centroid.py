"""Tests for the Centroid Learning optimizer (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.centroid import CentroidLearning
from repro.core.find_best import FindBestMode
from repro.core.guardrail import Guardrail
from repro.core.observation import Observation
from repro.core.selectors import PseudoSurrogateSelector
from repro.workloads.synthetic import default_synthetic_objective, synthetic_space
from repro.sparksim.noise import no_noise


@pytest.fixture
def objective():
    return default_synthetic_objective(noise=no_noise(), seed=3)


def drive(optimizer, objective, n, rng, data_size=None):
    p = data_size or objective.reference_size
    for t in range(n):
        v = optimizer.suggest(data_size=p)
        r = objective.observe(v, p, rng)
        optimizer.observe(Observation(config=v, data_size=p, performance=r, iteration=t))


class TestValidation:
    def test_alpha_bounds(self):
        space = synthetic_space()
        with pytest.raises(ValueError, match="alpha"):
            CentroidLearning(space, alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            CentroidLearning(space, alpha=1.0)

    def test_alpha_decay_bounds(self):
        with pytest.raises(ValueError, match="alpha_decay"):
            CentroidLearning(synthetic_space(), alpha_decay=-0.1)

    def test_gradient_mode(self):
        with pytest.raises(ValueError, match="gradient_mode"):
            CentroidLearning(synthetic_space(), gradient_mode="newton")

    def test_min_update_observations(self):
        with pytest.raises(ValueError):
            CentroidLearning(synthetic_space(), min_update_observations=1)


class TestSuggest:
    def test_suggestions_in_bounds(self, objective, rng):
        cl = CentroidLearning(objective.space, seed=0)
        for _ in range(5):
            v = cl.suggest(data_size=100.0)
            assert objective.space.contains_vector(v)

    def test_suggestions_within_beta_of_centroid(self, objective):
        cl = CentroidLearning(objective.space, beta=0.05, seed=0)
        bounds = objective.space.internal_bounds
        span = bounds[:, 1] - bounds[:, 0]
        v = cl.suggest(data_size=100.0)
        assert np.all(np.abs(v - cl.centroid) <= 0.05 * span + 1e-9)

    def test_starts_at_default(self, objective):
        cl = CentroidLearning(objective.space, seed=0)
        assert np.allclose(cl.centroid, objective.space.default_vector())

    def test_custom_start(self, objective):
        start = objective.space.sample_vector(np.random.default_rng(1))
        cl = CentroidLearning(objective.space, start=start, seed=0)
        assert np.allclose(cl.centroid, start)


class TestCentroidUpdate:
    def test_centroid_fixed_until_min_observations(self, objective, rng):
        cl = CentroidLearning(objective.space, min_update_observations=4, seed=0)
        e0 = cl.centroid
        drive(cl, objective, 3, rng)
        assert np.allclose(cl.centroid, e0)
        drive(cl, objective, 1, rng)
        assert not np.allclose(cl.centroid, e0)

    def test_update_exposes_gradient_and_best(self, objective, rng):
        cl = CentroidLearning(objective.space, seed=0)
        drive(cl, objective, 6, rng)
        assert cl.last_gradient is not None
        assert set(np.abs(cl.last_gradient).tolist()) <= {0.0, 1.0}
        assert cl.last_best is not None

    def test_update_magnitude_is_alpha_span(self, objective, rng):
        alpha = 0.07
        cl = CentroidLearning(objective.space, alpha=alpha, seed=0)
        drive(cl, objective, 6, rng)
        bounds = objective.space.internal_bounds
        span = bounds[:, 1] - bounds[:, 0]
        move = np.abs(cl.centroid - cl.last_best)
        # Each dimension moved by exactly alpha*span (unless clipped).
        interior = (cl.centroid > bounds[:, 0] + 1e-9) & (cl.centroid < bounds[:, 1] - 1e-9)
        assert np.allclose(move[interior], alpha * span[interior], rtol=1e-6)

    def test_alpha_decay_shrinks_step(self, objective, rng):
        cl = CentroidLearning(objective.space, alpha=0.1, alpha_decay=0.5, seed=0)
        assert cl.effective_alpha == pytest.approx(0.1)
        drive(cl, objective, 10, rng)
        assert cl.effective_alpha < 0.1

    def test_linear_gradient_mode_runs(self, objective, rng):
        cl = CentroidLearning(objective.space, gradient_mode="linear", seed=0)
        drive(cl, objective, 10, rng)
        assert cl.last_gradient is not None

    def test_multiplicative_probe_runs(self, objective, rng):
        cl = CentroidLearning(objective.space, probe="multiplicative", seed=0)
        drive(cl, objective, 10, rng)
        assert objective.space.contains_vector(cl.centroid)


class TestConvergence:
    def test_converges_on_noiseless_bowl(self, objective, rng):
        """Sanity: on a noiseless convex objective CL approaches the optimum."""
        cl = CentroidLearning(objective.space, alpha=0.05, seed=0)
        drive(cl, objective, 120, rng)
        final = objective.true_value(cl.centroid)
        default = objective.true_value(objective.space.default_vector())
        assert final < 0.5 * default
        assert final < 1.35 * objective.optimal_value

    def test_pseudo_level1_converges_faster_than_level9(self, rng):
        objective = default_synthetic_objective(noise=no_noise(), seed=3)
        finals = {}
        for level in (1, 9):
            cl = CentroidLearning(
                objective.space,
                selector=PseudoSurrogateSelector(objective.true_value, level),
                seed=0,
            )
            drive(cl, objective, 60, np.random.default_rng(5))
            finals[level] = objective.true_value(cl.centroid)
        assert finals[1] <= finals[9]


class TestGuardrailIntegration:
    def test_disabled_returns_default(self, rng):
        objective = default_synthetic_objective(noise=no_noise(), seed=3)
        guardrail = Guardrail(min_iterations=5, threshold=0.05, patience=1)
        cl = CentroidLearning(objective.space, guardrail=guardrail, seed=0)
        # Feed artificial steep regressions to trip the guardrail.
        for t in range(12):
            v = cl.suggest(data_size=100.0)
            cl.observe(Observation(
                config=v, data_size=100.0, performance=10.0 + 20.0 * t, iteration=t
            ))
        assert not cl.tuning_active
        assert np.allclose(cl.suggest(data_size=100.0), objective.space.default_vector())

    def test_centroid_frozen_after_disable(self):
        objective = default_synthetic_objective(noise=no_noise(), seed=3)
        guardrail = Guardrail(min_iterations=5, threshold=0.05, patience=1)
        cl = CentroidLearning(objective.space, guardrail=guardrail, seed=0)
        for t in range(12):
            v = cl.suggest(data_size=100.0)
            cl.observe(Observation(
                config=v, data_size=100.0, performance=10.0 + 20.0 * t, iteration=t
            ))
        frozen = cl.centroid
        cl.observe(Observation(
            config=objective.space.default_vector(), data_size=100.0,
            performance=1.0, iteration=99,
        ))
        assert np.allclose(cl.centroid, frozen)
