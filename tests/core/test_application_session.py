"""Tests for ApplicationSession (the Sec.-4.4 recurrent-application loop)."""

import numpy as np
import pytest

from repro.core.app_level import AppCache
from repro.core.session import ApplicationSession
from repro.sparksim.configs import app_level_space, query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise
from repro.workloads.tpcds import tpcds_plan


@pytest.fixture
def session():
    return ApplicationSession(
        artifact_id="nightly-etl",
        plans=[tpcds_plan(8, 20.0), tpcds_plan(23, 20.0)],
        simulator=SparkSimulator(noise=low_noise(), seed=1),
        query_space=query_level_space(),
        app_space=app_level_space(),
        app_cache=AppCache(),
        seed=0,
    )


class TestConstruction:
    def test_requires_plans(self):
        with pytest.raises(ValueError):
            ApplicationSession(
                artifact_id="x", plans=[],
                simulator=SparkSimulator(seed=0),
                query_space=query_level_space(),
                app_space=app_level_space(),
            )

    def test_first_run_uses_defaults(self, session):
        assert session.current_app_config() == app_level_space().default_dict()


class TestLifecycle:
    def test_run_returns_summaries(self, session):
        summaries = session.run(3)
        assert len(summaries) == 3
        assert session.iteration == 3
        assert all(s["total_true_seconds"] > 0 for s in summaries)
        assert session.run_history == summaries

    def test_invalid_run_count(self, session):
        with pytest.raises(ValueError):
            session.run(0)

    def test_app_cache_populated_after_enough_runs(self, session):
        session.run(4)  # windows need >= 3 observations before Alg. 2 runs
        assert "nightly-etl" in session.app_cache
        entry = session.app_cache.get("nightly-etl")
        assert entry.n_queries == 2
        assert set(entry.config) == set(app_level_space().names)

    def test_later_runs_read_the_cache(self, session):
        session.run(4)
        cached = session.app_cache.get("nightly-etl").config
        merged = session.current_app_config()
        for knob, value in cached.items():
            assert merged[knob] == value

    def test_cache_shared_across_sessions(self, session):
        session.run(4)
        # A "new submission" (fresh session object, same artifact + cache)
        # starts from the pre-computed configuration.
        successor = ApplicationSession(
            artifact_id="nightly-etl",
            plans=session.plans,
            simulator=SparkSimulator(noise=low_noise(), seed=9),
            query_space=query_level_space(),
            app_space=app_level_space(),
            app_cache=session.app_cache,
            seed=5,
        )
        assert successor.current_app_config() != app_level_space().default_dict()

    def test_joint_tuning_improves_total_time(self):
        """Over repeated submissions, app+query tuning beats the defaults."""
        cache = AppCache()
        session = ApplicationSession(
            artifact_id="etl",
            plans=[tpcds_plan(8, 50.0), tpcds_plan(51, 50.0)],
            simulator=SparkSimulator(noise=low_noise(), seed=3),
            query_space=query_level_space(),
            app_space=app_level_space(),
            app_cache=cache,
            seed=0,
        )
        summaries = session.run(15)
        first = np.mean([s["total_true_seconds"] for s in summaries[:3]])
        last = np.mean([s["total_true_seconds"] for s in summaries[-3:]])
        assert last < first
