"""Tests for task-switch detection and safe online tuning (repro.core.switch)."""

import numpy as np
import pytest

from repro import telemetry
from repro.core.centroid import CentroidLearning
from repro.core.guardrail import Guardrail
from repro.core.observation import Observation
from repro.core.session import TuningSession
from repro.core.switch import (
    SafeExplorationGate,
    SwitchDecision,
    TaskSwitchDetector,
    cosine_distance,
)
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise
from repro.workloads.dynamics import StepSize
from repro.workloads.tpch import tpch_plan


def feed(det, values, size=100.0, start=0):
    """Push normalized costs ``x`` as (performance, data_size) pairs."""
    return [
        det.update(x * size, size, iteration=start + i)
        for i, x in enumerate(values)
    ]


class TestDetectorValidation:
    @pytest.mark.parametrize("kwargs", [
        {"warmup": 1},
        {"threshold": 0.0},
        {"drift": -0.1},
        {"clip": 0.5, "drift": 0.5},
        {"min_rel_scale": 0.0},
        {"size_jump": 1.0},
        {"embedding_jump": 0.0},
    ])
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            TaskSwitchDetector(**kwargs)


class TestCostChannel:
    def test_warmup_never_detects(self):
        det = TaskSwitchDetector(warmup=8)
        decisions = feed(det, [1.0, 100.0, 1.0, 50.0, 1.0, 1.0, 1.0, 1.0])
        assert all(not d.detected for d in decisions)
        assert all(d.reason == "warmup" for d in decisions)
        assert det.reference is not None  # frozen at the 8th observation

    def test_stationary_stream_is_quiet(self):
        rng = np.random.default_rng(0)
        det = TaskSwitchDetector(warmup=8)
        xs = 1.0 + 0.05 * rng.standard_normal(200)
        decisions = feed(det, xs)
        assert det.switch_count == 0
        assert all(not d.detected for d in decisions)

    def test_sustained_shift_fires(self):
        det = TaskSwitchDetector(warmup=4, threshold=4.0)
        feed(det, [1.0, 1.02, 0.98, 1.0])
        decisions = feed(det, [3.0] * 10, start=4)
        assert det.switch_count == 1
        fired = [d for d in decisions if d.detected]
        assert fired and fired[0].reason == "cost_shift"
        # clip=3, drift=0.5 => at most 2.5 sigma per step; threshold 4
        # needs at least ceil(4 / 2.5) = 2 sustained observations.
        assert fired[0].iteration >= 5

    def test_single_spike_is_absorbed(self):
        det = TaskSwitchDetector(warmup=4, threshold=4.0)
        feed(det, [1.0, 1.02, 0.98, 1.0])
        # One 50x fault spike, then back to normal: clip bounds its
        # contribution to clip - drift and the drift drains the rest.
        decisions = feed(det, [50.0] + [1.0] * 20, start=4)
        assert det.switch_count == 0
        assert all(not d.detected for d in decisions)

    def test_improving_costs_never_fire(self):
        det = TaskSwitchDetector(warmup=4, threshold=4.0)
        feed(det, [1.0, 1.02, 0.98, 1.0])
        decisions = feed(det, np.linspace(1.0, 0.01, 40), start=4)
        assert det.switch_count == 0
        assert all(not d.detected for d in decisions)

    def test_reanchor_restarts_warmup_on_firing_observation(self):
        det = TaskSwitchDetector(warmup=4, threshold=4.0)
        feed(det, [1.0] * 4 + [5.0] * 10)
        assert det.switch_count == 1
        assert det.n_since_anchor >= 1  # firing obs seeds the new block
        assert det.statistic == 0.0 or det.reference is not None


class TestSignatureChannels:
    def test_size_jump_fires_immediately_upward(self):
        det = TaskSwitchDetector(warmup=8, size_jump=4.0)
        det.update(100.0, 100.0, iteration=0)
        decision = det.update(600.0, 600.0, iteration=1)
        assert decision.detected and decision.reason == "input_size"

    def test_size_jump_fires_downward(self):
        det = TaskSwitchDetector(warmup=8, size_jump=4.0)
        det.update(600.0, 600.0, iteration=0)
        decision = det.update(100.0, 100.0, iteration=1)
        assert decision.detected and decision.reason == "input_size"

    def test_size_channel_disabled_with_none(self):
        det = TaskSwitchDetector(warmup=8, size_jump=None)
        det.update(100.0, 100.0, iteration=0)
        decision = det.update(600.0, 600.0, iteration=1)
        assert not decision.detected

    def test_embedding_jump_fires(self):
        det = TaskSwitchDetector(warmup=8, embedding_jump=0.25)
        e0 = np.array([1.0, 0.0, 0.0])
        e1 = np.array([0.0, 1.0, 0.0])
        det.update(100.0, 100.0, embedding=e0, iteration=0)
        decision = det.update(100.0, 100.0, embedding=e1, iteration=1)
        assert decision.detected and decision.reason == "plan_shape"

    def test_cosine_distance_basics(self):
        assert cosine_distance([1, 0], [1, 0]) == pytest.approx(0.0)
        assert cosine_distance([1, 0], [0, 1]) == pytest.approx(1.0)
        assert cosine_distance([1, 0], [-1, 0]) == pytest.approx(2.0)


class TestDetectorPersistence:
    def test_round_trip_mid_stream(self):
        a = TaskSwitchDetector(warmup=4, threshold=4.0)
        feed(a, [1.0] * 4 + [1.1, 2.0, 2.5])
        b = TaskSwitchDetector(warmup=4, threshold=4.0).restore_state(a.to_state())
        tail = [3.0] * 6
        da = feed(a, tail, start=7)
        db = feed(b, tail, start=7)
        assert da == db
        assert a.switch_count == b.switch_count == 1
        assert a.to_state() == b.to_state()

    def test_state_is_json_friendly(self):
        import json

        det = TaskSwitchDetector(warmup=4)
        feed(det, [1.0] * 6)
        json.dumps(det.to_state())  # must not raise


class TestSafeExplorationGate:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SafeExplorationGate(bound=0.0)
        with pytest.raises(ValueError):
            SafeExplorationGate(min_observations=1)

    def test_safe_mask_threshold(self):
        gate = SafeExplorationGate(bound=0.25)
        preds = np.array([1.0, 1.2, 1.26, 2.0])
        mask = gate.safe_mask(preds, 1.0)
        assert mask.tolist() == [True, True, False, False]

    def test_apply_filters_candidates(self, small_space):
        gate = SafeExplorationGate(bound=0.25)

        class Flat:
            def predict(self, rows):
                # Cost = first knob; default (50) sits mid-range.
                return rows[:, 0]

        rng = np.random.default_rng(3)
        candidates = small_space.latin_hypercube(16, rng)
        safe = gate.apply(candidates, Flat(), 10.0, small_space.default_vector())
        assert len(safe) >= 1
        assert np.all(safe[:, 0] <= 50.0 * 1.25)

    def test_apply_falls_back_to_default(self, small_space):
        gate = SafeExplorationGate(bound=0.1)

        class Hostile:
            def predict(self, rows):
                out = np.full(len(rows), 100.0)
                out[-1] = 1.0  # only the default row is cheap
                return out

        rng = np.random.default_rng(4)
        candidates = small_space.latin_hypercube(8, rng)
        with telemetry.capture() as cap:
            safe = gate.apply(
                candidates, Hostile(), 10.0, small_space.default_vector()
            )
            assert cap.counters().get("safe.fallbacks") == 1.0
        assert safe.shape == (1, small_space.dim)
        np.testing.assert_array_equal(safe[0], small_space.default_vector())


class TestCentroidIntegration:
    def _session(self, space, plan, optimizer, at=8, factor=6.0):
        return TuningSession(
            plan,
            SparkSimulator(noise=low_noise(), seed=0),
            optimizer,
            scale_fn=StepSize(initial=1.0, factor=factor, at=at),
        )

    def test_detector_reanchors_window_and_guardrail(self, spark_space, q3_plan):
        opt = CentroidLearning(
            spark_space,
            guardrail=Guardrail(min_iterations=4, threshold=0.3, patience=2),
            seed=0,
            switch_detector=TaskSwitchDetector(warmup=4, threshold=4.0, size_jump=3.0),
        )
        session = self._session(spark_space, q3_plan, opt, at=8)
        session.run(10)
        assert session.switch_count >= 1
        assert opt.reanchor_count >= 1
        assert opt.guardrail.reset_count >= 1
        # The window was rebuilt at the switch: it holds only post-switch
        # observations (switch at t=8 of 10 steps -> at most 2).
        assert len(opt.observations.window) <= 2

    def test_warm_start_jumps_centroid(self, spark_space, q3_plan):
        target = spark_space.sample_vector(np.random.default_rng(7))
        opt = CentroidLearning(
            spark_space, seed=0,
            switch_detector=TaskSwitchDetector(warmup=4, threshold=4.0, size_jump=3.0),
            switch_warm_start=lambda obs: target,
        )
        session = self._session(spark_space, q3_plan, opt, at=8)
        with telemetry.capture() as cap:
            session.run(10)
            assert cap.counters().get("switch.warm_starts", 0) >= 1.0
        np.testing.assert_array_equal(opt._centroid, spark_space.clip(target))

    def test_failing_warm_start_is_contained(self, spark_space, q3_plan):
        def boom(obs):
            raise RuntimeError("corpus offline")

        opt = CentroidLearning(
            spark_space, seed=0,
            switch_detector=TaskSwitchDetector(warmup=4, threshold=4.0, size_jump=3.0),
            switch_warm_start=boom,
        )
        session = self._session(spark_space, q3_plan, opt, at=8)
        with telemetry.capture() as cap:
            session.run(10)  # must not raise
            assert cap.counters().get("switch.warm_start_failures", 0) >= 1.0
        assert opt.reanchor_count >= 1

    def test_safe_gate_keeps_suggestions_in_space(self, spark_space, q3_plan):
        opt = CentroidLearning(
            spark_space, seed=0,
            safe_gate=SafeExplorationGate(bound=0.5, min_observations=3),
        )
        session = self._session(spark_space, q3_plan, opt, at=100)
        with telemetry.capture() as cap:
            trace = session.run(8)
            assert cap.counters().get("safe.checks", 0) >= 1.0
        for record in trace.records:
            vec = spark_space.to_vector(record.config)
            np.testing.assert_array_equal(vec, spark_space.clip(vec))

    def test_state_round_trip_carries_switch_state(self, spark_space, q3_plan):
        opt = CentroidLearning(
            spark_space, seed=0,
            switch_detector=TaskSwitchDetector(warmup=4, threshold=4.0, size_jump=3.0),
        )
        session = self._session(spark_space, q3_plan, opt, at=6)
        session.run(9)
        assert opt.reanchor_count >= 1
        state = opt.to_state()
        clone = CentroidLearning(
            spark_space, seed=0,
            switch_detector=TaskSwitchDetector(warmup=4, threshold=4.0, size_jump=3.0),
        ).restore_state(state)
        assert clone.reanchor_count == opt.reanchor_count
        assert clone.switch_detector.to_state() == opt.switch_detector.to_state()

    def test_session_switch_count_without_detector(self, spark_space, q3_plan):
        opt = CentroidLearning(spark_space, seed=0)
        session = self._session(spark_space, q3_plan, opt, at=100)
        session.run(3)
        assert session.switch_count == 0


class TestDecisionRecord:
    def test_decision_fields(self):
        d = SwitchDecision(3, 5.0, 4.0, True, "cost_shift")
        assert (d.iteration, d.statistic, d.bound, d.detected, d.reason) == (
            3, 5.0, 4.0, True, "cost_shift"
        )
