"""Tests for the regression guardrail (Sec. 4.3)."""

import numpy as np
import pytest

from repro.core.guardrail import Guardrail
from repro.core.observation import Observation


def obs(i, perf, size=100.0):
    return Observation(config=np.array([1.0]), data_size=size,
                       performance=perf, iteration=i)


class TestGuardrailValidation:
    def test_min_iterations(self):
        with pytest.raises(ValueError):
            Guardrail(min_iterations=1)

    def test_threshold(self):
        with pytest.raises(ValueError):
            Guardrail(threshold=0.0)

    def test_patience(self):
        with pytest.raises(ValueError):
            Guardrail(patience=0)


class TestGuardrailBehavior:
    def test_no_checks_before_min_iterations(self):
        g = Guardrail(min_iterations=10, threshold=0.1, patience=1)
        # Steep regression, but only 9 observations: must stay active.
        for i in range(9):
            g.update(obs(i, 10.0 + 10.0 * i))
        assert g.active
        assert not g.decisions

    def test_improving_query_never_disabled(self):
        g = Guardrail(min_iterations=5, threshold=0.2, patience=2)
        for i in range(40):
            g.update(obs(i, 100.0 - i))
        assert g.active

    def test_steady_regression_disables(self):
        g = Guardrail(min_iterations=5, threshold=0.1, patience=2)
        active = True
        for i in range(40):
            active = g.update(obs(i, 10.0 + 5.0 * i))
            if not active:
                break
        assert not g.active
        assert not active

    def test_disable_is_sticky(self):
        g = Guardrail(min_iterations=5, threshold=0.1, patience=1)
        for i in range(20):
            g.update(obs(i, 10.0 + 5.0 * i))
        assert not g.active
        # Even perfect performance afterwards does not re-enable.
        for i in range(20, 30):
            g.update(obs(i, 1.0))
        assert not g.active

    def test_patience_requires_consecutive_violations(self):
        g = Guardrail(min_iterations=4, threshold=0.05, patience=3)
        # Alternate regress / recover so violations never chain 3 deep.
        times = [10.0, 11.0, 10.0, 11.0] * 10
        for i, t in enumerate(times):
            g.update(obs(i, t))
        assert g.active

    def test_data_size_increase_not_blamed_on_tuning(self):
        # Time grows only because the input grows; the regression on
        # (iteration, cardinality) should attribute it to the size feature.
        g = Guardrail(min_iterations=5, threshold=0.2, patience=2)
        for i in range(40):
            size = 100.0 + 10.0 * i
            g.update(obs(i, 0.05 * size, size=size))
        assert g.active

    def test_decisions_recorded(self):
        g = Guardrail(min_iterations=3, threshold=0.5, patience=5)
        for i in range(10):
            g.update(obs(i, 10.0))
        assert len(g.decisions) == 8  # checks start once 3 observations exist
        assert all(not d.violated for d in g.decisions)
