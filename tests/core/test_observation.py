"""Tests for Observation and the Ω(t, N) window."""

import numpy as np
import pytest

from repro.core.observation import Observation, ObservationWindow


def make_obs(i, perf=1.0, size=100.0):
    return Observation(
        config=np.array([float(i), 2.0 * i]), data_size=size, performance=perf, iteration=i
    )


class TestObservation:
    def test_config_coerced_to_array(self):
        obs = Observation(config=[1, 2], data_size=1.0, performance=0.5, iteration=0)
        assert isinstance(obs.config, np.ndarray)

    def test_negative_performance_rejected(self):
        with pytest.raises(ValueError, match="performance"):
            Observation(config=[1], data_size=1.0, performance=-1.0, iteration=0)

    def test_nonpositive_data_size_rejected(self):
        with pytest.raises(ValueError, match="data_size"):
            Observation(config=[1], data_size=0.0, performance=1.0, iteration=0)

    def test_embedding_coerced(self):
        obs = Observation(
            config=[1], data_size=1.0, performance=1.0, iteration=0, embedding=[1, 2, 3]
        )
        assert obs.embedding.dtype == float


class TestObservationWindow:
    def test_window_size_minimum(self):
        with pytest.raises(ValueError):
            ObservationWindow(1)

    def test_window_keeps_latest_n(self):
        window = ObservationWindow(3)
        for i in range(10):
            window.append(make_obs(i))
        assert len(window) == 10                      # full history retained
        assert [o.iteration for o in window.window] == [7, 8, 9]
        assert window.latest.iteration == 9

    def test_latest_empty_raises(self):
        with pytest.raises(IndexError):
            ObservationWindow(3).latest

    def test_dense_views_shapes(self):
        window = ObservationWindow(4)
        for i in range(6):
            window.append(make_obs(i, perf=float(i), size=10.0 + i))
        assert window.configs().shape == (4, 2)
        assert window.performances().tolist() == [2.0, 3.0, 4.0, 5.0]
        assert window.data_sizes().tolist() == [12.0, 13.0, 14.0, 15.0]
        dm = window.design_matrix()
        assert dm.shape == (4, 3)
        assert np.allclose(dm[:, -1], window.data_sizes())

    def test_full_history_views(self):
        window = ObservationWindow(2)
        for i in range(5):
            window.append(make_obs(i, perf=float(i)))
        assert window.all_performances().tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert len(window.all_data_sizes()) == 5

    def test_history_is_immutable_view(self):
        window = ObservationWindow(2)
        window.append(make_obs(0))
        history = window.history
        assert isinstance(history, tuple)
