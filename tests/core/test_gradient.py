"""Tests for FIND_GRADIENT (linear sign fit and Eq.-6 ML sign search)."""

import numpy as np
import pytest

from repro.core.config_space import ConfigSpace, Parameter
from repro.core.find_best import fit_window_model
from repro.core.centroid import default_window_model_factory
from repro.core.gradient import linear_sign_gradient, ml_sign_gradient, probe_points
from repro.core.observation import Observation, ObservationWindow


@pytest.fixture
def space2():
    return ConfigSpace([
        Parameter(name="a", low=0.0, high=10.0, default=5.0),
        Parameter(name="b", low=0.0, high=10.0, default=5.0),
    ])


def build_window(fn, rng, n=12, dim=2, size_range=(80, 120)):
    window = ObservationWindow(n)
    for i in range(n):
        c = rng.uniform(2, 8, size=dim)
        p = rng.uniform(*size_range)
        window.append(Observation(config=c, data_size=p, performance=fn(c, p), iteration=i))
    return window


class TestLinearSignGradient:
    def test_recovers_monotone_trend(self, rng):
        # perf increases in a, decreases in b.
        window = build_window(lambda c, p: 3 * c[0] - 2 * c[1] + 0.01 * p + 50, rng)
        signs = linear_sign_gradient(window)
        assert signs[0] == 1.0
        assert signs[1] == -1.0

    def test_no_variation_gives_zero(self, rng):
        window = ObservationWindow(5)
        for i in range(5):
            window.append(Observation(
                config=np.array([3.0, float(i)]), data_size=100.0,
                performance=float(i), iteration=i,
            ))
        signs = linear_sign_gradient(window)
        assert signs[0] == 0.0  # dimension 0 never varied

    def test_too_few_observations(self):
        window = ObservationWindow(2)
        window.append(Observation(config=np.array([1.0, 1.0]), data_size=1.0,
                                  performance=1.0, iteration=0))
        assert np.all(linear_sign_gradient(window) == 0.0)


class TestProbePoints:
    def test_span_probe_geometry(self, space2):
        c_star = np.array([5.0, 5.0])
        deltas = np.array([[1.0, -1.0]])
        pts = probe_points(space2, c_star, deltas, alpha=0.1, probe="span")
        assert pts.shape == (1, 2)
        assert pts[0, 0] == pytest.approx(4.0)   # 5 - 0.1*10
        assert pts[0, 1] == pytest.approx(6.0)   # 5 + 0.1*10

    def test_multiplicative_probe_geometry(self, space2):
        c_star = np.array([5.0, 5.0])
        deltas = np.array([[1.0, -1.0]])
        pts = probe_points(space2, c_star, deltas, alpha=0.1, probe="multiplicative")
        assert pts[0, 0] == pytest.approx(4.5)   # 5·(1−0.1)
        assert pts[0, 1] == pytest.approx(5.5)   # 5·(1+0.1)

    def test_probes_clipped(self, space2):
        pts = probe_points(space2, np.array([0.1, 9.9]),
                           np.array([[1.0, -1.0]]), alpha=0.5, probe="span")
        assert space2.contains_vector(pts[0])

    def test_unknown_probe(self, space2):
        with pytest.raises(ValueError, match="probe"):
            probe_points(space2, np.zeros(2), np.ones((1, 2)), 0.1, probe="bogus")


class TestMLSignGradient:
    def test_descends_convex_bowl(self, space2, rng):
        # Bowl centered at (3, 7): from c*=(5, 5) the descent direction should
        # decrease a (delta_a=+1) and increase b (delta_b=-1).
        def fn(c, p):
            return (c[0] - 3.0) ** 2 + (c[1] - 7.0) ** 2 + 10.0

        window = build_window(fn, rng, n=20)
        model = fit_window_model(window, default_window_model_factory)
        delta = ml_sign_gradient(space2, model, np.array([5.0, 5.0]), 100.0, alpha=0.1)
        assert delta[0] == 1.0
        assert delta[1] == -1.0

    def test_delta_entries_are_signs(self, space2, rng):
        window = build_window(lambda c, p: c[0] + c[1], rng)
        model = fit_window_model(window, default_window_model_factory)
        delta = ml_sign_gradient(space2, model, np.array([5.0, 5.0]), 100.0, alpha=0.1)
        assert set(np.abs(delta).tolist()) == {1.0}

    def test_high_dimensional_coordinate_fallback(self, rng):
        dim = 14  # above the 2^d enumeration cap
        space = ConfigSpace([
            Parameter(name=f"p{i}", low=0.0, high=10.0, default=5.0) for i in range(dim)
        ])
        window = ObservationWindow(40)
        for i in range(40):
            c = rng.uniform(2, 8, size=dim)
            window.append(Observation(
                config=c, data_size=100.0,
                performance=float(np.sum((c - 3.0) ** 2)), iteration=i,
            ))
        model = fit_window_model(window, default_window_model_factory)
        delta = ml_sign_gradient(space, model, np.full(dim, 6.0), 100.0, alpha=0.05)
        assert delta.shape == (dim,)
        assert set(np.abs(delta).tolist()) == {1.0}
