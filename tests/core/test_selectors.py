"""Tests for candidate-selection policies."""

import numpy as np
import pytest

from repro.core.centroid import default_window_model_factory
from repro.core.config_space import ConfigSpace, Parameter
from repro.core.observation import Observation, ObservationWindow
from repro.core.selectors import (
    BaselineModelAdapter,
    PseudoSurrogateSelector,
    RandomSelector,
    SurrogateSelector,
)
from repro.ml.linear import LinearRegression


@pytest.fixture
def space1():
    return ConfigSpace([Parameter(name="x", low=0.0, high=10.0, default=5.0)])


def filled_window(n=6):
    window = ObservationWindow(10)
    for i in range(n):
        c = np.array([float(i)])
        window.append(Observation(
            config=c, data_size=100.0, performance=(c[0] - 2.0) ** 2 + 1.0, iteration=i
        ))
    return window


class TestPseudoSurrogateSelector:
    def test_level_bounds(self):
        with pytest.raises(ValueError):
            PseudoSurrogateSelector(lambda c, p: 0.0, level=0)
        with pytest.raises(ValueError):
            PseudoSurrogateSelector(lambda c, p: 0.0, level=10)

    def test_level_1_close_to_best(self, rng):
        true_fn = lambda c, p: float(c[0])
        candidates = np.arange(11.0).reshape(-1, 1)
        sel = PseudoSurrogateSelector(true_fn, level=1)
        idx = sel.select(candidates, ObservationWindow(2), 1.0, None, rng)
        assert candidates[idx, 0] == 1.0  # 10th percentile of 0..10

    def test_level_9_near_worst(self, rng):
        true_fn = lambda c, p: float(c[0])
        candidates = np.arange(11.0).reshape(-1, 1)
        sel = PseudoSurrogateSelector(true_fn, level=9)
        idx = sel.select(candidates, ObservationWindow(2), 1.0, None, rng)
        assert candidates[idx, 0] == 9.0

    def test_levels_are_ordered(self, rng):
        true_fn = lambda c, p: float(c[0])
        candidates = rng.uniform(0, 100, size=(50, 1))
        values = []
        for level in (1, 5, 9):
            sel = PseudoSurrogateSelector(true_fn, level=level)
            idx = sel.select(candidates, ObservationWindow(2), 1.0, None, rng)
            values.append(candidates[idx, 0])
        assert values[0] < values[1] < values[2]


class TestSurrogateSelector:
    def test_min_observations_validation(self):
        with pytest.raises(ValueError):
            SurrogateSelector(default_window_model_factory, min_observations=1)

    def test_cold_start_random_without_baseline(self, rng):
        sel = SurrogateSelector(default_window_model_factory, min_observations=3)
        candidates = np.arange(10.0).reshape(-1, 1)
        idx = sel.select(candidates, ObservationWindow(5), 1.0, None, rng)
        assert 0 <= idx < 10

    def test_model_guided_after_warmup(self, rng):
        sel = SurrogateSelector(default_window_model_factory, min_observations=3)
        window = filled_window(8)
        candidates = np.array([[0.0], [2.0], [9.0]])
        idx = sel.select(candidates, window, 100.0, None, rng)
        assert candidates[idx, 0] == 2.0  # bowl minimum at x=2

    def test_baseline_used_when_window_small(self, rng):
        # Baseline over [emb(1), config(1), p] predicting perf = config value.
        base = LinearRegression()
        X = np.array([[0.0, c, 100.0] for c in range(10)], dtype=float)
        base.fit(X, X[:, 1])
        adapter = BaselineModelAdapter(base, embedding_dim=1)
        sel = SurrogateSelector(
            default_window_model_factory, baseline=adapter, min_observations=3
        )
        candidates = np.array([[7.0], [1.0], [4.0]])
        idx = sel.select(candidates, ObservationWindow(5), 100.0, np.zeros(1), rng)
        assert candidates[idx, 0] == 1.0


class TestBaselineModelAdapter:
    def test_embedding_shape_checked(self):
        base = LinearRegression().fit(np.ones((3, 4)), np.ones(3))
        adapter = BaselineModelAdapter(base, embedding_dim=2)
        with pytest.raises(ValueError, match="embedding"):
            adapter.predict(np.ones((2, 1)), 1.0, np.zeros(5))

    def test_missing_embedding_defaults_to_zeros(self):
        base = LinearRegression().fit(np.ones((3, 4)), np.ones(3))
        adapter = BaselineModelAdapter(base, embedding_dim=2)
        preds = adapter.predict(np.ones((2, 1)), 1.0, None)
        assert preds.shape == (2,)


def test_random_selector_uniform(rng):
    sel = RandomSelector()
    candidates = np.zeros((7, 1))
    picks = {sel.select(candidates, ObservationWindow(2), 1.0, None, rng)
             for _ in range(100)}
    assert picks <= set(range(7))
    assert len(picks) > 3
