"""Tests for β-neighborhood candidate generation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.candidates import generate_candidates
from repro.core.config_space import ConfigSpace, Parameter


def test_candidates_shape_and_bounds(small_space, rng):
    centroid = small_space.default_vector()
    cands = generate_candidates(small_space, centroid, beta=0.1, n_candidates=20, rng=rng)
    assert cands.shape == (20, small_space.dim)
    for c in cands:
        assert small_space.contains_vector(c)


def test_centroid_included_first(small_space, rng):
    centroid = small_space.default_vector()
    cands = generate_candidates(small_space, centroid, 0.1, 5, rng)
    assert np.allclose(cands[0], centroid)


def test_centroid_excluded(small_space, rng):
    centroid = small_space.default_vector()
    cands = generate_candidates(
        small_space, centroid, 0.1, 5, rng, include_centroid=False
    )
    assert cands.shape == (5, small_space.dim)


def test_neighborhood_respects_beta(small_space, rng):
    centroid = small_space.default_vector()
    beta = 0.05
    cands = generate_candidates(small_space, centroid, beta, 200, rng)
    bounds = small_space.internal_bounds
    span = bounds[:, 1] - bounds[:, 0]
    assert np.all(np.abs(cands - centroid) <= beta * span + 1e-9)


def test_out_of_bounds_centroid_clipped(small_space, rng):
    crazy = np.array([1e9, 1e9, 1e9])
    cands = generate_candidates(small_space, crazy, 0.1, 10, rng)
    for c in cands:
        assert small_space.contains_vector(c)


def test_invalid_beta(small_space, rng):
    with pytest.raises(ValueError, match="beta"):
        generate_candidates(small_space, small_space.default_vector(), 0.0, 5, rng)
    with pytest.raises(ValueError, match="beta"):
        generate_candidates(small_space, small_space.default_vector(), 1.5, 5, rng)


def test_invalid_count(small_space, rng):
    with pytest.raises(ValueError, match="n_candidates"):
        generate_candidates(small_space, small_space.default_vector(), 0.1, 0, rng)


def test_single_candidate_is_centroid(small_space, rng):
    centroid = small_space.default_vector()
    cands = generate_candidates(small_space, centroid, 0.1, 1, rng)
    assert cands.shape == (1, small_space.dim)
    assert np.allclose(cands[0], centroid)


@given(
    beta=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    n=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_candidates_always_in_neighborhood_property(beta, n, seed):
    space = ConfigSpace([
        Parameter(name="a", low=0.0, high=10.0, default=5.0),
        Parameter(name="b", low=1.0, high=100.0, default=10.0, log_scale=True),
    ])
    rng = np.random.default_rng(seed)
    centroid = space.sample_vector(rng)
    cands = generate_candidates(space, centroid, beta, n, rng)
    bounds = space.internal_bounds
    span = bounds[:, 1] - bounds[:, 0]
    assert cands.shape == (n, 2)
    assert np.all(np.abs(cands - centroid) <= beta * span + 1e-9)
    assert all(space.contains_vector(c) for c in cands)
