"""Tests for Algorithm 2 and the AppCache."""

import numpy as np
import pytest

from repro.core.app_level import (
    AppCache,
    AppCacheEntry,
    QueryTuningContext,
    optimize_app_config,
)
from repro.core.config_space import ConfigSpace, Parameter


@pytest.fixture
def app_space():
    return ConfigSpace([
        Parameter(name="executors", low=1, high=16, default=4, integer=True, scope="app"),
        Parameter(name="memory", low=2, high=32, default=8, scope="app"),
    ])


@pytest.fixture
def query_space():
    return ConfigSpace([
        Parameter(name="partitions", low=8, high=512, default=64, scope="query"),
    ])


class TestOptimizeAppConfig:
    def test_requires_queries(self, app_space):
        with pytest.raises(ValueError, match="at least one query"):
            optimize_app_config(app_space, app_space.default_vector(), [])

    def test_returns_in_bounds_vector(self, app_space, query_space, rng):
        ctx = QueryTuningContext(
            query_space=query_space,
            centroid=query_space.default_vector(),
            score_fn=lambda v, w: -float(v[0]),  # fewer executors is better
        )
        best = optimize_app_config(app_space, app_space.default_vector(), [ctx], rng=rng)
        assert app_space.contains_vector(best)

    def test_prefers_high_scoring_app_config(self, app_space, query_space, rng):
        # Score rewards large executor counts: the chosen candidate should
        # exceed the current setting (candidates are generated around it).
        ctx = QueryTuningContext(
            query_space=query_space,
            centroid=query_space.default_vector(),
            score_fn=lambda v, w: float(v[0]),
        )
        current = app_space.default_vector()
        best = optimize_app_config(
            app_space, current, [ctx], n_app_candidates=30, beta_app=0.3, rng=rng
        )
        assert best[0] >= current[0]

    def test_sums_scores_across_queries(self, app_space, query_space, rng):
        # Query A wants small executors, query B wants large, but B's stake
        # is 10x bigger — the sum should lean large.
        ctx_a = QueryTuningContext(
            query_space=query_space, centroid=query_space.default_vector(),
            score_fn=lambda v, w: -float(v[0]),
        )
        ctx_b = QueryTuningContext(
            query_space=query_space, centroid=query_space.default_vector(),
            score_fn=lambda v, w: 10.0 * float(v[0]),
        )
        best = optimize_app_config(
            app_space, app_space.default_vector(), [ctx_a, ctx_b],
            n_app_candidates=30, beta_app=0.3, rng=rng,
        )
        assert best[0] >= app_space.default_vector()[0]

    def test_query_candidates_influence_score(self, app_space, query_space, rng):
        # The score uses the best w per app candidate; make the score depend
        # on w so generation around the centroid matters.
        seen_ws = []

        def score(v, w):
            seen_ws.append(w.copy())
            return -abs(float(w[0]) - 64.0)

        ctx = QueryTuningContext(
            query_space=query_space, centroid=query_space.default_vector(),
            score_fn=score, beta=0.1,
        )
        optimize_app_config(app_space, app_space.default_vector(), [ctx], rng=rng)
        assert seen_ws
        assert all(query_space.contains_vector(w) for w in seen_ws)


class TestAppCache:
    def test_put_get_roundtrip(self):
        cache = AppCache()
        entry = AppCacheEntry(artifact_id="a1", config={"executors": 8.0}, n_queries=2)
        cache.put(entry)
        assert "a1" in cache
        assert cache.get("a1").config == {"executors": 8.0}
        assert cache.get("missing") is None

    def test_invalidate(self):
        cache = AppCache()
        cache.put(AppCacheEntry(artifact_id="a1", config={}))
        assert cache.invalidate("a1")
        assert not cache.invalidate("a1")
        assert "a1" not in cache

    def test_file_persistence(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = AppCache(path=path)
        cache.put(AppCacheEntry(artifact_id="a1", config={"x": 1.5}, n_queries=3))
        reloaded = AppCache(path=path)
        assert len(reloaded) == 1
        entry = reloaded.get("a1")
        assert entry.config == {"x": 1.5}
        assert entry.n_queries == 3

    def test_overwrite_updates(self):
        cache = AppCache()
        cache.put(AppCacheEntry(artifact_id="a1", config={"x": 1.0}))
        cache.put(AppCacheEntry(artifact_id="a1", config={"x": 2.0}))
        assert len(cache) == 1
        assert cache.get("a1").config == {"x": 2.0}
