"""Tests for random forests and gradient boosting."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score


@pytest.fixture
def friedman_like(rng):
    X = rng.uniform(size=(200, 5))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 20 * (X[:, 2] - 0.5) ** 2 + 5 * X[:, 3]
    return X, y


class TestRandomForest:
    def test_n_estimators_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_fits_nonlinear_function(self, friedman_like):
        X, y = friedman_like
        model = RandomForestRegressor(n_estimators=30, seed=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.7

    def test_predict_with_std_shapes(self, friedman_like):
        X, y = friedman_like
        model = RandomForestRegressor(n_estimators=10, seed=0).fit(X, y)
        mean, std = model.predict_with_std(X[:5])
        assert mean.shape == (5,)
        assert np.all(std > 0)

    def test_more_trees_reduce_oob_style_variance(self, friedman_like, rng):
        X, y = friedman_like
        test = rng.uniform(size=(50, 5))
        preds = []
        for seed in range(3):
            model = RandomForestRegressor(n_estimators=40, seed=seed).fit(X, y)
            preds.append(model.predict(test))
        spread_big = np.mean(np.std(preds, axis=0))
        preds_small = []
        for seed in range(3):
            model = RandomForestRegressor(n_estimators=2, seed=seed).fit(X, y)
            preds_small.append(model.predict(test))
        spread_small = np.mean(np.std(preds_small, axis=0))
        assert spread_big < spread_small

    def test_max_features_options(self, friedman_like):
        X, y = friedman_like
        for mf in (None, "sqrt", "third", 2):
            model = RandomForestRegressor(n_estimators=5, max_features=mf, seed=0)
            model.fit(X, y)
            assert np.all(np.isfinite(model.predict(X[:3])))
        with pytest.raises(ValueError):
            RandomForestRegressor(max_features="all").fit(X, y)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((1, 2)))


class TestGradientBoosting:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)

    def test_fits_nonlinear_function(self, friedman_like):
        X, y = friedman_like
        model = GradientBoostingRegressor(n_estimators=60, seed=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.85

    def test_staged_predictions_improve(self, friedman_like):
        X, y = friedman_like
        model = GradientBoostingRegressor(n_estimators=30, seed=0).fit(X, y)
        errors = [np.mean((stage - y) ** 2) for stage in model.staged_predict(X)]
        assert errors[-1] < errors[0]
        assert errors[-1] < errors[len(errors) // 2]

    def test_subsample_and_max_features(self, friedman_like):
        X, y = friedman_like
        model = GradientBoostingRegressor(
            n_estimators=20, subsample=0.7, max_features=2, seed=0
        ).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.5

    def test_zero_stage_predicts_mean(self, friedman_like):
        X, y = friedman_like
        model = GradientBoostingRegressor(n_estimators=1, learning_rate=1e-9, seed=0)
        model.fit(X, y)
        assert np.allclose(model.predict(X), y.mean(), atol=1e-3)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.ones((1, 2)))

    def test_deterministic_given_seed(self, friedman_like):
        X, y = friedman_like
        p1 = GradientBoostingRegressor(n_estimators=10, subsample=0.8, seed=3).fit(X, y).predict(X)
        p2 = GradientBoostingRegressor(n_estimators=10, subsample=0.8, seed=3).fit(X, y).predict(X)
        assert np.allclose(p1, p2)
