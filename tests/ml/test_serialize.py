"""Round-trip tests for model serialization (the ONNX stand-in)."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import Matern52Kernel, RBFKernel
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.serialize import dumps_model, load_model, loads_model, save_model
from repro.ml.svr import SVR
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture
def data(rng):
    X = rng.uniform(-2, 2, size=(40, 3))
    y = X[:, 0] ** 2 + X[:, 1] - 0.5 * X[:, 2]
    return X, y


def roundtrip(model):
    return loads_model(dumps_model(model))


@pytest.mark.parametrize("factory", [
    lambda: LinearRegression(),
    lambda: RidgeRegression(alpha=2.0),
    lambda: DecisionTreeRegressor(max_depth=4),
    lambda: RandomForestRegressor(n_estimators=8, seed=0),
    lambda: GradientBoostingRegressor(n_estimators=10, seed=0),
    lambda: SVR(kernel=RBFKernel(length_scale=1.5), C=5.0, epsilon=0.05),
    lambda: GaussianProcessRegressor(
        kernel=Matern52Kernel(length_scale=1.0), optimize_hypers=False
    ),
])
def test_roundtrip_preserves_predictions(factory, data, rng):
    X, y = data
    model = factory().fit(X, y)
    restored = roundtrip(model)
    test = rng.uniform(-2, 2, size=(15, 3))
    assert np.allclose(model.predict(test), restored.predict(test), rtol=1e-9)


def test_unfitted_model_rejected():
    with pytest.raises(ValueError, match="unfitted"):
        dumps_model(LinearRegression())


def test_unsupported_type_rejected():
    class Mystery:
        coef_ = None

    with pytest.raises(TypeError, match="unsupported"):
        dumps_model(Mystery())


def test_unknown_payload_type_rejected():
    with pytest.raises(TypeError, match="unsupported"):
        loads_model('{"type": "Mystery"}')


def test_file_roundtrip(tmp_path, data):
    X, y = data
    model = RidgeRegression().fit(X, y)
    path = save_model(model, tmp_path / "sub" / "model.json")
    assert path.exists()
    restored = load_model(path)
    assert np.allclose(model.predict(X), restored.predict(X))


def test_payload_is_json_text(data):
    import json
    X, y = data
    payload = dumps_model(RandomForestRegressor(n_estimators=3, seed=0).fit(X, y))
    parsed = json.loads(payload)
    assert parsed["type"] == "RandomForestRegressor"
    assert len(parsed["trees"]) == 3
