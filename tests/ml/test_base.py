"""Tests for the ML base validation helpers and protocols."""

import numpy as np
import pytest

from repro.ml.base import ProbabilisticRegressor, Regressor, check_X, check_X_y
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression


class TestCheckX:
    def test_1d_promoted_to_row(self):
        X = check_X(np.array([1.0, 2.0, 3.0]))
        assert X.shape == (1, 3)

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            check_X(np.zeros((2, 2, 2)))

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            check_X(np.array([[1.0, np.nan]]))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            check_X(np.array([[np.inf]]))

    def test_list_coerced(self):
        X = check_X([[1, 2], [3, 4]])
        assert X.dtype == float


class TestCheckXY:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            check_X_y(np.ones((3, 2)), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            check_X_y(np.empty((0, 2)), np.empty(0))

    def test_y_flattened(self):
        _, y = check_X_y(np.ones((3, 1)), np.ones((3, 1)))
        assert y.shape == (3,)

    def test_nan_target_rejected(self):
        with pytest.raises(ValueError):
            check_X_y(np.ones((2, 1)), np.array([1.0, np.nan]))


class TestProtocols:
    def test_linear_satisfies_regressor(self):
        assert isinstance(LinearRegression(), Regressor)

    def test_forest_satisfies_probabilistic(self):
        assert isinstance(RandomForestRegressor(), ProbabilisticRegressor)

    def test_linear_is_not_probabilistic(self):
        assert not isinstance(LinearRegression(), ProbabilisticRegressor)
