"""Rank-1 incremental GP updates vs full refits.

The contract of :meth:`GaussianProcessRegressor.update`: absorbing points
one at a time must reproduce what a full :meth:`fit` on the same data
computes — exactly when target normalization is off (the linear algebra is
identical), and to within the frozen-normalization tolerance when it is on
(with the drift guard bounding the divergence).
"""

import numpy as np
import pytest

import repro.ml.gp as gp_module
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import Matern52Kernel


def _trajectory(n: int, dim: int = 3, seed: int = 0, drift: float = 0.0):
    """A smooth objective sampled along a random trajectory."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, size=(n, dim))
    y = np.sin(X @ np.array([2.0, -1.0, 0.5])[:dim]) + 0.1 * (X ** 2).sum(axis=1)
    y += drift * np.arange(n) / n
    return X, y


def _fresh_pair(normalize_y: bool, n_init: int, X, y):
    """An incremental model seeded with ``n_init`` points and a factory for
    reference models sharing its (fixed) hyperparameters."""
    kernel = Matern52Kernel(length_scale=0.7)
    inc = GaussianProcessRegressor(
        kernel=kernel, noise=1e-3, normalize_y=normalize_y,
        optimize_hypers=False,
    )
    inc.fit(X[:n_init], y[:n_init])

    def reference(m):
        ref = GaussianProcessRegressor(
            kernel=kernel.clone(), noise=1e-3, normalize_y=normalize_y,
            optimize_hypers=False,
        )
        return ref.fit(X[:m], y[:m])

    return inc, reference


def test_update_matches_fit_exactly_without_normalization():
    # 100-observation trajectory: with normalization off, the rank-1 append
    # and the full factorization compute the same posterior to machine
    # precision at every step.
    X, y = _trajectory(100)
    X_test = np.random.default_rng(99).uniform(-1.0, 1.0, size=(40, X.shape[1]))
    inc, reference = _fresh_pair(normalize_y=False, n_init=10, X=X, y=y)
    for m in range(10, 100):
        inc.update(X[m:m + 1], float(y[m]))
        ref = reference(m + 1)
        mean_i, std_i = inc.predict_with_std(X_test)
        mean_r, std_r = ref.predict_with_std(X_test)
        np.testing.assert_allclose(mean_i, mean_r, atol=1e-8)
        np.testing.assert_allclose(std_i, std_r, atol=1e-8)
    assert inc.n_incremental_updates == 90
    assert inc.n_update_fallbacks == 0
    assert inc.n_observations == 100


def test_update_tracks_fit_with_frozen_normalization():
    # With normalize_y=True the incremental path freezes (y_mean, y_std) at
    # the last full fit; the drift guard keeps predictions within a small
    # relative band of the fully refit model.
    X, y = _trajectory(100, seed=3)
    X_test = np.random.default_rng(7).uniform(-1.0, 1.0, size=(40, X.shape[1]))
    inc, reference = _fresh_pair(normalize_y=True, n_init=10, X=X, y=y)
    for m in range(10, 100):
        inc.update(X[m:m + 1], float(y[m]))
    ref = reference(100)
    mean_i = inc.predict(X_test)
    mean_r = ref.predict(X_test)
    scale = np.abs(mean_r).max()
    np.testing.assert_allclose(mean_i, mean_r, atol=2e-2 * scale)


def test_drift_fallback_refits_and_restores_exactness():
    # A strong upward trend pushes the running mean past drift_tolerance:
    # update() must fall back to a full refit (counted), after which the
    # frozen constants match the data again.
    X, y = _trajectory(60, seed=5, drift=30.0)
    inc, reference = _fresh_pair(normalize_y=True, n_init=10, X=X, y=y)
    for m in range(10, 60):
        inc.update(X[m:m + 1], float(y[m]))
    assert inc.n_update_fallbacks > 0
    assert inc.n_observations == 60
    # The last operation on this trajectory ends at the same training set as
    # the reference; a fallback refit re-normalizes, so even under heavy
    # drift the final posterior stays close to the scratch fit.
    X_test = X[:20]
    scale = np.abs(reference(60).predict(X_test)).max()
    np.testing.assert_allclose(
        inc.predict(X_test), reference(60).predict(X_test), atol=5e-3 * scale
    )


def test_numerical_fallback_on_unsafe_schur_complement(monkeypatch):
    # If the Schur complement of the appended row is not safely positive the
    # rank-1 extension would corrupt the factor; update() must detect it and
    # refit from scratch instead.
    X, y = _trajectory(20)
    inc, reference = _fresh_pair(normalize_y=False, n_init=19, X=X, y=y)
    monkeypatch.setattr(
        gp_module, "solve_triangular",
        lambda L, k, lower=True: np.full(len(k), 1e8),
    )
    inc.update(X[19:20], float(y[19]))
    monkeypatch.undo()
    assert inc.n_update_fallbacks == 1
    assert inc.n_incremental_updates == 0
    np.testing.assert_allclose(
        inc.predict(X), reference(20).predict(X), atol=1e-8
    )


def test_update_accepts_multiple_rows():
    X, y = _trajectory(30)
    inc, reference = _fresh_pair(normalize_y=False, n_init=10, X=X, y=y)
    inc.update(X[10:30], y[10:30])
    assert inc.n_observations == 30
    np.testing.assert_allclose(
        inc.predict(X), reference(30).predict(X), atol=1e-8
    )
    with pytest.raises(ValueError):
        inc.update(X[:3], y[:2])


def test_update_requires_fit_and_matching_dim():
    model = GaussianProcessRegressor(optimize_hypers=False)
    with pytest.raises(RuntimeError):
        model.update(np.zeros((1, 2)), 0.0)
    X, y = _trajectory(10, dim=2)
    model.fit(X, y)
    with pytest.raises(ValueError):
        model.update(np.zeros((1, 5)), 0.0)


def test_predict_mean_matches_predict_with_std():
    X, y = _trajectory(25)
    model = GaussianProcessRegressor(optimize_hypers=False).fit(X, y)
    X_test = np.random.default_rng(1).uniform(-1, 1, size=(15, X.shape[1]))
    mean_fast = model.predict(X_test)
    mean_full, std = model.predict_with_std(X_test)
    np.testing.assert_allclose(mean_fast, mean_full, rtol=0, atol=0)
    assert np.all(std >= 0)


def test_failed_hyperparameter_search_leaves_kernel_untouched(monkeypatch):
    # Satellite (a): when every L-BFGS-B restart fails (non-finite NLL), the
    # kernel hyperparameters and noise must stay exactly as they were — no
    # mutated state from the trial evaluations may leak out.
    X, y = _trajectory(20)
    kernel = Matern52Kernel(length_scale=0.7)
    model = GaussianProcessRegressor(kernel=kernel, noise=1e-2, n_restarts=3)
    noise_before = model.noise

    class FailedResult:
        fun = np.nan
        x = np.zeros(1)

    monkeypatch.setattr(gp_module, "minimize", lambda *a, **kw: FailedResult())
    model.fit(X, y)
    # fit() expands isotropic length scales to ARD before optimizing; the
    # per-dimension values must all still equal the original scalar.
    assert np.allclose(model.kernel.length_scale, 0.7, rtol=1e-12)
    assert model.noise == noise_before


def test_fit_counts_and_restart_improvement_commits():
    X, y = _trajectory(30)
    model = GaussianProcessRegressor(
        kernel=Matern52Kernel(length_scale=0.7), noise=1e-2, seed=0
    )
    model.fit(X, y)
    assert model.n_full_fits == 1
    # Committed hyperparameters must not be worse than the warm start.
    theta = np.concatenate([model.kernel.get_theta(), [np.log(model.noise)]])
    yn = (y - y.mean()) / (y.std() or 1.0)
    assert np.isfinite(model._neg_log_marginal_likelihood(theta, X, yn))
