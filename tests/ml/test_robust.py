"""Tests for the Theil–Sen robust regressor."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression
from repro.ml.robust import TheilSenRegressor


class TestTheilSen:
    def test_validation(self):
        with pytest.raises(ValueError):
            TheilSenRegressor(n_iterations=0)
        with pytest.raises(ValueError):
            TheilSenRegressor().fit(np.ones((1, 1)), np.ones(1))

    def test_exact_on_clean_line(self, rng):
        X = rng.uniform(-5, 5, size=(30, 1))
        y = 2.0 * X.ravel() + 3.0
        model = TheilSenRegressor().fit(X, y)
        assert model.coef_[0] == pytest.approx(2.0, abs=1e-9)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-9)

    def test_two_features_backfitting(self, rng):
        X = rng.uniform(-5, 5, size=(50, 2))
        y = 1.5 * X[:, 0] - 0.5 * X[:, 1] + 1.0
        model = TheilSenRegressor(n_iterations=3).fit(X, y)
        assert np.allclose(model.coef_, [1.5, -0.5], atol=0.05)

    def test_robust_to_spikes_where_ols_is_not(self, rng):
        """A quarter of observations doubled (Eq.-8 spikes): Theil–Sen keeps
        the slope, OLS drifts."""
        X = np.arange(40, dtype=float).reshape(-1, 1)
        y = 2.0 * X.ravel() + 5.0
        spike_idx = rng.choice(40, size=10, replace=False)
        y_noisy = y.copy()
        y_noisy[spike_idx] *= 2.0
        ts = TheilSenRegressor().fit(X, y_noisy)
        ols = LinearRegression().fit(X, y_noisy)
        assert abs(ts.coef_[0] - 2.0) < abs(ols.coef_[0] - 2.0)
        assert ts.coef_[0] == pytest.approx(2.0, rel=0.1)

    def test_constant_feature_gets_zero_coef(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        y = 3.0 * X[:, 1]
        model = TheilSenRegressor().fit(X, y)
        assert model.coef_[0] == 0.0
        assert model.coef_[1] == pytest.approx(3.0, abs=1e-9)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            TheilSenRegressor().predict(np.ones((1, 1)))


class TestRobustGuardrail:
    def test_robust_guardrail_ignores_isolated_spikes(self):
        """Flat performance with occasional 2x spikes must not disable
        tuning when the robust fitter is used."""
        from repro.core.guardrail import Guardrail
        from repro.core.observation import Observation

        rng = np.random.default_rng(3)
        g = Guardrail(min_iterations=8, threshold=0.15, patience=2, robust=True)
        for t in range(40):
            perf = 10.0 * (2.0 if rng.uniform() < 0.15 else 1.0)
            g.update(Observation(config=np.array([1.0]), data_size=100.0,
                                 performance=perf, iteration=t))
        assert g.active

    def test_robust_guardrail_still_fires_on_real_regression(self):
        from repro.core.guardrail import Guardrail
        from repro.core.observation import Observation

        g = Guardrail(min_iterations=5, threshold=0.1, patience=2, robust=True)
        for t in range(30):
            g.update(Observation(config=np.array([1.0]), data_size=100.0,
                                 performance=10.0 + 5.0 * t, iteration=t))
            if not g.active:
                break
        assert not g.active
