"""Tests for covariance kernels."""

import numpy as np
import pytest

from repro.ml.kernels import Matern52Kernel, RBFKernel, cdist_sq


@pytest.fixture(params=[RBFKernel, Matern52Kernel])
def kernel_cls(request):
    return request.param


def test_cdist_sq_matches_direct(rng):
    A = rng.uniform(size=(5, 3))
    B = rng.uniform(size=(7, 3))
    ls = np.array([1.0, 2.0, 0.5])
    d2 = cdist_sq(A, B, ls)
    direct = np.array([
        [np.sum(((a - b) / ls) ** 2) for b in B] for a in A
    ])
    assert np.allclose(d2, direct)


class TestKernelProperties:
    def test_diagonal_equals_variance(self, kernel_cls, rng):
        k = kernel_cls(length_scale=1.5, variance=2.5)
        X = rng.uniform(size=(6, 2))
        K = k(X, X)
        assert np.allclose(np.diag(K), 2.5)
        assert np.allclose(k.diag(X), 2.5)

    def test_symmetry(self, kernel_cls, rng):
        k = kernel_cls()
        X = rng.uniform(size=(8, 3))
        K = k(X, X)
        assert np.allclose(K, K.T)

    def test_positive_semidefinite(self, kernel_cls, rng):
        k = kernel_cls()
        X = rng.uniform(size=(10, 2))
        K = k(X, X)
        eigvals = np.linalg.eigvalsh(K)
        assert np.all(eigvals > -1e-8)

    def test_decay_with_distance(self, kernel_cls):
        k = kernel_cls(length_scale=1.0)
        x0 = np.zeros((1, 1))
        near = k(x0, np.array([[0.1]]))[0, 0]
        far = k(x0, np.array([[5.0]]))[0, 0]
        assert near > far

    def test_ard_length_scales(self, kernel_cls):
        # Huge length scale on dim 1 makes it irrelevant.
        k = kernel_cls(length_scale=np.array([1.0, 1e6]))
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.0, 100.0]])
        assert k(a, b)[0, 0] == pytest.approx(k.variance, rel=1e-4)

    def test_theta_roundtrip(self, kernel_cls):
        k = kernel_cls(length_scale=np.array([0.5, 2.0]), variance=3.0)
        theta = k.get_theta()
        k2 = kernel_cls(length_scale=np.ones(2))
        k2.set_theta(theta)
        assert np.allclose(k2.length_scale, k.length_scale)
        assert k2.variance == pytest.approx(k.variance)

    def test_invalid_params(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(length_scale=-1.0)
        with pytest.raises(ValueError):
            kernel_cls(variance=0.0)

    def test_length_scale_dim_mismatch(self, kernel_cls, rng):
        k = kernel_cls(length_scale=np.ones(3))
        X = rng.uniform(size=(4, 2))
        with pytest.raises(ValueError, match="dimensions"):
            k(X, X)

    def test_clone_independent(self, kernel_cls):
        k = kernel_cls(length_scale=2.0, variance=1.0)
        c = k.clone()
        c.set_theta(np.log([9.0, 9.0]))
        assert k.variance == pytest.approx(1.0)
