"""Tests for acquisition functions (minimization convention)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.acquisition import (
    ExpectedImprovement,
    LowerConfidenceBound,
    MeanMinimizer,
    ProbabilityOfImprovement,
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)


class TestExpectedImprovement:
    def test_nonnegative(self, rng):
        mean = rng.uniform(0, 10, 20)
        std = rng.uniform(0.1, 2, 20)
        assert np.all(expected_improvement(mean, std, best=5.0) >= 0)

    def test_prefers_lower_mean(self):
        ei = expected_improvement(np.array([1.0, 9.0]), np.array([1.0, 1.0]), best=5.0)
        assert ei[0] > ei[1]

    def test_prefers_higher_std_at_equal_mean(self):
        ei = expected_improvement(np.array([5.0, 5.0]), np.array([0.1, 3.0]), best=5.0)
        assert ei[1] > ei[0]

    def test_zero_when_far_above_best_with_tiny_std(self):
        ei = expected_improvement(np.array([100.0]), np.array([1e-9]), best=5.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-12)

    def test_approaches_gap_when_certain(self):
        ei = expected_improvement(np.array([2.0]), np.array([1e-9]), best=5.0)
        assert ei[0] == pytest.approx(3.0)

    def test_xi_reduces_scores(self):
        mean = np.array([4.0])
        std = np.array([1.0])
        assert (ExpectedImprovement(xi=1.0)(mean, std, 5.0)
                < ExpectedImprovement(xi=0.0)(mean, std, 5.0))


class TestProbabilityOfImprovement:
    def test_bounded_01(self, rng):
        pi = probability_of_improvement(rng.uniform(0, 10, 50), rng.uniform(0.1, 2, 50), 5.0)
        assert np.all(pi >= 0) and np.all(pi <= 1)

    def test_half_at_best(self):
        pi = probability_of_improvement(np.array([5.0]), np.array([1.0]), best=5.0)
        assert pi[0] == pytest.approx(0.5)

    def test_class_wrapper(self):
        scores = ProbabilityOfImprovement()(np.array([1.0, 9.0]), np.array([1.0, 1.0]), 5.0)
        assert scores[0] > scores[1]


class TestLCB:
    def test_exploration_bonus(self):
        scores = lower_confidence_bound(np.array([5.0, 5.0]), np.array([0.1, 2.0]), kappa=2.0)
        assert scores[1] > scores[0]

    def test_kappa_zero_is_pure_exploitation(self):
        mean = np.array([3.0, 1.0])
        scores = LowerConfidenceBound(kappa=0.0)(mean, np.ones(2), 0.0)
        assert np.allclose(scores, -mean)


class TestMeanMinimizer:
    def test_ignores_std(self):
        mean = np.array([3.0, 1.0, 2.0])
        scores = MeanMinimizer()(mean, np.array([10.0, 0.0, 5.0]), 0.0)
        assert int(np.argmax(scores)) == 1


@given(
    best=st.floats(min_value=-10, max_value=10, allow_nan=False),
    mean=st.floats(min_value=-10, max_value=10, allow_nan=False),
    std=st.floats(min_value=1e-6, max_value=5.0, allow_nan=False),
)
def test_ei_monotone_in_best_property(best, mean, std):
    """A looser incumbent (higher best time) can only increase EI."""
    ei_tight = expected_improvement(np.array([mean]), np.array([std]), best)
    ei_loose = expected_improvement(np.array([mean]), np.array([std]), best + 1.0)
    assert ei_loose[0] >= ei_tight[0] - 1e-12
