"""Tests for regression metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import mae, mape, quantile_band, r2_score, rmse, spearman_rho


class TestBasicMetrics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rmse(y, y) == 0.0
        assert mae(y, y) == 0.0
        assert r2_score(y, y) == 1.0
        assert mape(y, y) == 0.0

    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_mae_known_value(self):
        assert mae([0.0, 0.0], [3.0, 4.0]) == pytest.approx(3.5)

    def test_r2_mean_predictor_is_zero(self, rng):
        y = rng.uniform(size=30)
        assert r2_score(y, np.full(30, y.mean())) == pytest.approx(0.0, abs=1e-12)

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae([], [])


class TestSpearman:
    def test_perfect_monotone(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rho(y, y ** 3) == pytest.approx(1.0)

    def test_reversed(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rho(y, -y) == pytest.approx(-1.0)

    def test_constant_gives_zero(self):
        assert spearman_rho([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_single_point(self):
        assert spearman_rho([1.0], [1.0]) == 0.0


class TestQuantileBand:
    def test_band_ordering(self, rng):
        samples = rng.normal(size=(200, 10))
        med, lo, hi = quantile_band(samples)
        assert np.all(lo <= med)
        assert np.all(med <= hi)

    def test_custom_percentiles(self, rng):
        samples = rng.normal(size=(500, 4))
        _, lo5, hi95 = quantile_band(samples, 5, 95)
        _, lo25, hi75 = quantile_band(samples, 25, 75)
        assert np.all(lo5 <= lo25)
        assert np.all(hi75 <= hi95)


@given(
    ys=st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                min_size=2, max_size=20)
)
def test_rmse_at_least_mae_property(ys):
    y = np.array(ys)
    pred = np.zeros_like(y)
    assert rmse(y, pred) >= mae(y, pred) - 1e-12
