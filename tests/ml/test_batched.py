"""Bit-identity contract of :mod:`repro.ml.batched`, pinned per primitive.

The lock-step session engine replaces K scalar model fits per step with one
batched fit; the replacement is only sound because every batched operation
below is *bitwise* identical per slice to the scalar path it replaces (the
GP block solve is the documented atol exception).  These tests pin each
primitive in isolation so an engine-level divergence can be bisected to the
operation that drifted.

Two RNG/encoding primitives the engine also relies on are pinned here too:

* ``Generator.uniform(low, high, size)`` with array bounds is exactly
  ``low + (high - low) * rng.random(size)`` with identical stream
  consumption — the engine draws raw doubles per session and applies the
  affine map across the fleet;
* ``ConfigSpace.to_natural_matrix`` over a flattened ``(K*n, f)`` stack is
  exactly the per-session calls (all transforms are elementwise).
"""

import numpy as np
import pytest

from repro.ml.batched import (
    BatchedRidgePipeline,
    batched_gp_posterior,
    fit_ridge_pipeline,
    ols_predict,
    polynomial_features_batch,
)
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import Matern52Kernel
from repro.ml.linear import PolynomialFeatures, RidgeRegression
from repro.ml.scaler import Pipeline, StandardScaler
from repro.sparksim.configs import query_level_space

K, N, F, Q = 7, 9, 4, 5


@pytest.fixture
def batch_rng():
    return np.random.default_rng(1234)


@pytest.fixture
def window(batch_rng):
    X = batch_rng.normal(size=(K, N, F)) * batch_rng.uniform(0.5, 3.0, size=(K, 1, F))
    y = batch_rng.normal(size=(K, N)) * 10.0
    queries = batch_rng.normal(size=(K, Q, F))
    return X, y, queries


def scalar_pipeline(alpha, degree=2, interaction_only=False):
    return Pipeline([
        ("scale", StandardScaler()),
        ("poly", PolynomialFeatures(degree=degree, interaction_only=interaction_only)),
        ("ridge", RidgeRegression(alpha=alpha)),
    ])


class TestPolynomialFeaturesBatch:
    @pytest.mark.parametrize("interaction_only", [False, True])
    def test_matches_scalar_column_order_bitwise(self, batch_rng, interaction_only):
        X = batch_rng.normal(size=(K, N, F))
        batched = polynomial_features_batch(X, 2, interaction_only)
        scalar = PolynomialFeatures(degree=2, interaction_only=interaction_only)
        for k in range(K):
            assert np.array_equal(batched[k], scalar.transform(X[k]))

    def test_degree_one_is_identity(self, batch_rng):
        X = batch_rng.normal(size=(K, N, F))
        assert polynomial_features_batch(X, 1) is X

    def test_rejects_unsupported_degree(self, batch_rng):
        with pytest.raises(ValueError, match="degree"):
            polynomial_features_batch(batch_rng.normal(size=(2, 3, 2)), 3)


class TestFitRidgePipeline:
    @pytest.mark.parametrize("interaction_only", [False, True])
    def test_each_slice_matches_scalar_fit_bitwise(self, window, interaction_only):
        X, y, queries = window
        alphas = np.linspace(0.2, 2.0, K)
        model = fit_ridge_pipeline(X, y, alphas, interaction_only=interaction_only)
        batched = model.predict(queries)
        for k in range(K):
            scalar = scalar_pipeline(alphas[k], interaction_only=interaction_only)
            scalar.fit(X[k], y[k])
            assert np.array_equal(batched[k], scalar.predict(queries[k]))

    def test_constant_feature_column_matches_scalar(self, window):
        X, y, queries = window
        X = X.copy()
        X[:, :, 1] = 3.5  # StandardScaler zero-variance guard on both paths
        queries = queries.copy()
        queries[:, :, 1] = 3.5
        model = fit_ridge_pipeline(X, y, np.full(K, 1.0))
        batched = model.predict(queries)
        for k in range(K):
            scalar = scalar_pipeline(1.0).fit(X[k], y[k])
            assert np.array_equal(batched[k], scalar.predict(queries[k]))

    def test_scatter_into_writes_selected_rows(self, window):
        X, y, _ = window
        full = fit_ridge_pipeline(X, y, np.ones(K))
        target = BatchedRidgePipeline(
            mean=np.zeros((K, F)), scale=np.ones((K, F)),
            coef=np.zeros_like(full.coef), intercept=np.zeros(K),
        )
        idx = np.array([1, 4])
        sub = fit_ridge_pipeline(X[idx], y[idx], np.ones(2))
        sub.scatter_into(target, idx)
        assert np.array_equal(target.coef[idx], full.coef[idx])
        assert np.array_equal(target.intercept[idx], full.intercept[idx])
        assert np.all(target.coef[0] == 0.0)


class TestOlsPredict:
    def test_scalar_call_is_a_batched_slice_bitwise(self, window):
        X, y, queries = window
        batched = ols_predict(X, y, queries)
        for k in range(K):
            assert np.array_equal(batched[k], ols_predict(X[k], y[k], queries[k]))

    def test_tracks_lstsq_on_well_posed_designs(self, batch_rng):
        X = batch_rng.normal(size=(20, 3))
        y = X @ np.array([1.5, -2.0, 0.5]) + 4.0 + 0.01 * batch_rng.normal(size=20)
        queries = batch_rng.normal(size=(6, 3))
        design = np.column_stack([np.ones(len(X)), X])
        coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        expected = np.column_stack([np.ones(len(queries)), queries]) @ coef
        assert np.allclose(ols_predict(X, y, queries), expected, atol=1e-6)

    def test_degenerate_column_gets_zero_coefficient(self, batch_rng):
        X = batch_rng.normal(size=(12, 2))
        X[:, 1] = 7.0
        y = 2.0 * X[:, 0] + 1.0
        queries = np.array([[0.0, 7.0], [1.0, 7.0]])
        assert np.allclose(ols_predict(X, y, queries), [1.0, 3.0], atol=1e-6)


class TestBatchedGpPosterior:
    def test_matches_per_session_refits_within_atol(self, batch_rng):
        B, n, f, m = 4, 12, 3, 6
        X = batch_rng.uniform(-1.0, 1.0, size=(n, f))
        Y = batch_rng.normal(size=(B, n))
        X_star = batch_rng.uniform(-1.0, 1.0, size=(m, f))
        template = GaussianProcessRegressor(
            kernel=Matern52Kernel(), noise=1e-3,
            normalize_y=True, optimize_hypers=False,
        )
        means, stds = batched_gp_posterior(template, X, Y, X_star)
        for b in range(B):
            gp = GaussianProcessRegressor(
                kernel=Matern52Kernel(), noise=1e-3,
                normalize_y=True, optimize_hypers=False,
            ).fit(X, Y[b])
            mean_b, std_b = gp.predict_with_std(X_star)
            assert np.allclose(means[b], mean_b, atol=1e-8)
            assert np.allclose(stds[b], std_b, atol=1e-6)

    def test_rejects_mismatched_target_shape(self, batch_rng):
        template = GaussianProcessRegressor(optimize_hypers=False)
        X = batch_rng.normal(size=(5, 2))
        with pytest.raises(ValueError, match="shape"):
            batched_gp_posterior(template, X, batch_rng.normal(size=(3, 4)), X[:2])


class TestEnginePrimitives:
    """RNG/encoding identities the lock-step suggest path is built on."""

    def test_uniform_is_affine_of_raw_doubles_with_same_stream(self):
        low = np.array([-1.0, 0.5, 2.0])
        high = np.array([1.0, 4.5, 2.5])
        a = np.random.default_rng(99)
        b = np.random.default_rng(99)
        direct = a.uniform(low, high, size=(8, 3))
        affine = low + np.subtract(high, low) * b.random((8, 3))
        assert np.array_equal(direct, affine)
        # Identical stream consumption: the next draw agrees too.
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_to_natural_matrix_flattens_across_sessions(self):
        space = query_level_space()
        rng = np.random.default_rng(5)
        k, n = 6, 11
        V = np.stack([space.sample_vectors(n, rng) for _ in range(k)])
        flat = space.to_natural_matrix(V.reshape(k * n, space.dim))
        flat = flat.reshape(k, n, -1)
        for i in range(k):
            assert np.array_equal(flat[i], space.to_natural_matrix(V[i]))
