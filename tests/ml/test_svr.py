"""Tests for ε-insensitive SVR."""

import numpy as np
import pytest

from repro.ml.kernels import RBFKernel
from repro.ml.svr import SVR


class TestSVR:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SVR(C=0.0)
        with pytest.raises(ValueError):
            SVR(epsilon=-0.1)

    def test_fits_linear_function(self, rng):
        X = rng.uniform(-2, 2, size=(40, 1))
        y = 3.0 * X.ravel() + 1.0
        model = SVR(kernel=RBFKernel(length_scale=2.0), C=100.0, epsilon=0.01)
        model.fit(X, y)
        preds = model.predict(X)
        assert np.mean(np.abs(preds - y)) < 0.25

    def test_fits_convex_bowl(self, rng):
        X = rng.uniform(-3, 3, size=(60, 2))
        y = np.sum(X ** 2, axis=1)
        model = SVR(kernel=RBFKernel(length_scale=2.0), C=50.0, epsilon=0.05)
        model.fit(X, y)
        # Ranking fidelity matters more than absolute error for selection.
        grid = rng.uniform(-3, 3, size=(30, 2))
        truth = np.sum(grid ** 2, axis=1)
        preds = model.predict(grid)
        rho = np.corrcoef(truth, preds)[0, 1]
        assert rho > 0.8

    def test_robust_to_noise(self, rng):
        X = rng.uniform(-2, 2, size=(80, 1))
        clean = X.ravel() ** 2
        noisy = clean * (1.0 + np.abs(rng.normal(0, 0.5, size=80)))
        model = SVR(C=10.0, epsilon=0.1).fit(X, noisy)
        preds = model.predict(X)
        # Predicted ordering should still track the clean function.
        rho = np.corrcoef(clean, preds)[0, 1]
        assert rho > 0.7

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            SVR().predict(np.ones((1, 1)))

    def test_support_fraction_between_0_and_1(self, rng):
        X = rng.uniform(size=(30, 2))
        y = rng.uniform(size=30)
        model = SVR(epsilon=0.2).fit(X, y)
        assert 0.0 <= model.support_fraction <= 1.0

    def test_large_epsilon_gives_sparse_duals(self, rng):
        X = rng.uniform(size=(40, 1))
        y = X.ravel() * 0.01  # nearly flat inside a wide tube
        model = SVR(epsilon=1.0).fit(X, y)
        assert model.support_fraction < 0.5

    def test_target_scaling_invariance(self, rng):
        X = rng.uniform(-1, 1, size=(30, 1))
        y = X.ravel() ** 2
        small = SVR(C=50.0, epsilon=0.01).fit(X, y).predict(X)
        big = SVR(C=50.0, epsilon=0.01).fit(X, 1e4 * y).predict(X)
        assert np.allclose(big / 1e4, small, atol=0.1)
