"""Tests for scalers and the Pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.linear import LinearRegression, PolynomialFeatures
from repro.ml.scaler import MinMaxScaler, Pipeline, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.uniform(10, 20, size=(100, 3))
        Xt = StandardScaler().fit_transform(X)
        assert np.allclose(Xt.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Xt.std(axis=0), 1, atol=1e-9)

    def test_constant_column_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Xt = StandardScaler().fit_transform(X)
        assert np.allclose(Xt[:, 0], 0.0)
        assert np.all(np.isfinite(Xt))

    def test_inverse_transform(self, rng):
        X = rng.uniform(size=(20, 2))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))


class TestMinMaxScaler:
    def test_range_01(self, rng):
        X = rng.uniform(-50, 50, size=(40, 3))
        Xt = MinMaxScaler().fit_transform(X)
        assert Xt.min() >= 0.0 and Xt.max() <= 1.0
        assert np.allclose(Xt.min(axis=0), 0.0)
        assert np.allclose(Xt.max(axis=0), 1.0)

    def test_inverse_transform(self, rng):
        X = rng.uniform(size=(15, 2))
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_column_safe(self):
        X = np.column_stack([np.full(5, 3.0), np.arange(5.0)])
        Xt = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(Xt))


class TestPipeline:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_scaler_plus_regressor(self, rng):
        X = rng.uniform(100, 200, size=(50, 2))
        y = X @ np.array([1.0, -1.0])
        pipe = Pipeline([("scale", StandardScaler()), ("ols", LinearRegression())])
        pipe.fit(X, y)
        assert np.allclose(pipe.predict(X), y, atol=1e-6)

    def test_poly_pipeline_fits_quadratic(self, rng):
        X = rng.uniform(-2, 2, size=(60, 1))
        y = X.ravel() ** 2
        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("poly", PolynomialFeatures(degree=2)),
            ("ols", LinearRegression()),
        ])
        pipe.fit(X, y)
        assert np.allclose(pipe.predict(X), y, atol=1e-6)

    def test_predict_with_std_requires_support(self, rng):
        X = rng.uniform(size=(10, 1))
        pipe = Pipeline([("ols", LinearRegression())])
        pipe.fit(X, X.ravel())
        with pytest.raises(AttributeError):
            pipe.predict_with_std(X)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999))
def test_standard_scaler_roundtrip_property(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(loc=rng.uniform(-10, 10), scale=rng.uniform(0.5, 5),
                   size=(25, 3))
    scaler = StandardScaler().fit(X)
    assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9)
