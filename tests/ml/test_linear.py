"""Tests for OLS / ridge / polynomial features."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.linear import LinearRegression, PolynomialFeatures, RidgeRegression


@pytest.fixture
def linear_data(rng):
    X = rng.uniform(-5, 5, size=(60, 3))
    y = X @ np.array([2.0, -1.0, 0.5]) + 3.0
    return X, y


class TestLinearRegression:
    def test_exact_recovery(self, linear_data):
        X, y = linear_data
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, [2.0, -1.0, 0.5], atol=1e-8)
        assert model.intercept_ == pytest.approx(3.0)
        assert np.allclose(model.predict(X), y)

    def test_no_intercept(self, linear_data):
        X, y = linear_data
        model = LinearRegression(fit_intercept=False).fit(X, y - 3.0)
        assert model.intercept_ == 0.0
        assert np.allclose(model.coef_, [2.0, -1.0, 0.5], atol=1e-8)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.ones((2, 3)))

    def test_rank_deficient_does_not_crash(self, rng):
        X = np.ones((10, 3))  # constant columns
        y = rng.uniform(size=10)
        model = LinearRegression().fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.array([[np.nan]]), np.array([1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.ones((3, 2)), np.ones(4))


class TestRidgeRegression:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)

    def test_zero_alpha_matches_ols(self, linear_data):
        X, y = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-6)

    def test_shrinkage_monotone(self, linear_data):
        X, y = linear_data
        norms = [
            np.linalg.norm(RidgeRegression(alpha=a).fit(X, y).coef_)
            for a in (0.0, 10.0, 1000.0)
        ]
        assert norms[0] >= norms[1] >= norms[2]

    def test_intercept_unpenalized(self, rng):
        # Pure-intercept data: huge alpha must not shrink the mean.
        X = rng.uniform(-1, 1, size=(50, 2))
        y = np.full(50, 42.0)
        model = RidgeRegression(alpha=1e6).fit(X, y)
        assert model.predict(X).mean() == pytest.approx(42.0, rel=1e-3)


class TestPolynomialFeatures:
    def test_degree_validation(self):
        with pytest.raises(ValueError):
            PolynomialFeatures(degree=3)

    def test_degree1_identity(self, rng):
        X = rng.uniform(size=(5, 3))
        assert np.allclose(PolynomialFeatures(degree=1).fit_transform(X), X)

    def test_degree2_column_count(self, rng):
        X = rng.uniform(size=(5, 3))
        out = PolynomialFeatures(degree=2).fit_transform(X)
        assert out.shape == (5, 3 + 6)  # originals + upper triangle incl. squares

    def test_interaction_only(self, rng):
        X = rng.uniform(size=(5, 3))
        out = PolynomialFeatures(degree=2, interaction_only=True).fit_transform(X)
        assert out.shape == (5, 3 + 3)  # no squared terms

    def test_values_correct(self):
        X = np.array([[2.0, 3.0]])
        out = PolynomialFeatures(degree=2).fit_transform(X)
        assert out.tolist() == [[2.0, 3.0, 4.0, 6.0, 9.0]]


@given(
    coef=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                  min_size=2, max_size=2),
    intercept=st.floats(min_value=-10, max_value=10, allow_nan=False),
)
def test_ols_recovers_any_linear_function_property(coef, intercept):
    rng = np.random.default_rng(0)
    X = rng.uniform(-3, 3, size=(30, 2))
    y = X @ np.array(coef) + intercept
    model = LinearRegression().fit(X, y)
    assert np.allclose(model.predict(X), y, atol=1e-6)
