"""Tests for the CART regressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import DecisionTreeRegressor


class TestDecisionTree:
    def test_min_samples_leaf_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_fits_step_function_exactly(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = (X.ravel() >= 10).astype(float) * 5.0
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_constant_target_single_leaf(self, rng):
        X = rng.uniform(size=(20, 3))
        y = np.full(20, 7.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.depth() == 0
        assert np.allclose(tree.predict(X), 7.0)

    def test_max_depth_respected(self, rng):
        X = rng.uniform(size=(200, 2))
        y = rng.uniform(size=200)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf_respected(self, rng):
        X = rng.uniform(size=(50, 1))
        y = rng.uniform(size=50)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)

        def leaf_counts(node, X_sub):
            if node.is_leaf:
                return [len(X_sub)]
            mask = X_sub[:, node.feature] <= node.threshold
            return leaf_counts(node.left, X_sub[mask]) + leaf_counts(node.right, X_sub[~mask])

        assert min(leaf_counts(tree._root, X)) >= 10

    def test_prediction_within_target_range(self, rng):
        X = rng.uniform(size=(100, 3))
        y = rng.uniform(2.0, 9.0, size=100)
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        preds = tree.predict(rng.uniform(size=(50, 3)))
        assert np.all(preds >= 2.0 - 1e-9)
        assert np.all(preds <= 9.0 + 1e-9)

    def test_feature_subsampling_limits_splits(self, rng):
        X = rng.uniform(size=(100, 5))
        y = X[:, 0] * 10.0  # only feature 0 matters
        # With max_features=1 and a fixed seed, some splits miss feature 0,
        # but the tree should still fit and predict finite values.
        tree = DecisionTreeRegressor(max_features=1, seed=0).fit(X, y)
        assert np.all(np.isfinite(tree.predict(X)))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))

    def test_deterministic_given_seed(self, rng):
        X = rng.uniform(size=(60, 4))
        y = rng.uniform(size=60)
        p1 = DecisionTreeRegressor(max_features=2, seed=5).fit(X, y).predict(X)
        p2 = DecisionTreeRegressor(max_features=2, seed=5).fit(X, y).predict(X)
        assert np.allclose(p1, p2)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_tree_predictions_bounded_by_targets_property(seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(40, 2))
    y = rng.uniform(-5, 5, size=40)
    tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
    preds = tree.predict(rng.uniform(size=(20, 2)))
    assert np.all(preds >= y.min() - 1e-9)
    assert np.all(preds <= y.max() + 1e-9)
