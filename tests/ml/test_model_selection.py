"""Tests for train/test splitting and cross-validation."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression
from repro.ml.model_selection import KFold, cross_val_score, train_test_split


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.uniform(size=(40, 2))
        y = rng.uniform(size=40)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.25, rng=rng)
        assert len(X_te) == 10
        assert len(X_tr) == 30
        assert len(y_tr) == 30 and len(y_te) == 10

    def test_partition_is_disjoint_and_complete(self, rng):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = X.ravel()
        X_tr, X_te, *_ = train_test_split(X, y, 0.3, rng)
        combined = sorted(X_tr.ravel().tolist() + X_te.ravel().tolist())
        assert combined == list(range(20))

    def test_invalid_fraction(self, rng):
        X = np.ones((5, 1))
        with pytest.raises(ValueError):
            train_test_split(X, np.ones(5), test_fraction=0.0, rng=rng)
        with pytest.raises(ValueError):
            train_test_split(X, np.ones(5), test_fraction=1.0, rng=rng)


class TestKFold:
    def test_n_splits_validation(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_folds_cover_everything_once(self):
        kf = KFold(n_splits=4, seed=0)
        seen = []
        for train_idx, test_idx in kf.split(22):
            assert set(train_idx) & set(test_idx) == set()
            assert len(train_idx) + len(test_idx) == 22
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(22))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_no_shuffle_is_contiguous(self):
        kf = KFold(n_splits=2, shuffle=False)
        (train1, test1), _ = list(kf.split(10))
        assert test1.tolist() == [0, 1, 2, 3, 4]


class TestCrossValScore:
    def test_linear_model_near_zero_error(self, rng):
        X = rng.uniform(size=(50, 2))
        y = X @ np.array([1.0, 2.0]) + 1.0
        scores = cross_val_score(LinearRegression, X, y, n_splits=5, seed=0)
        assert len(scores) == 5
        assert max(scores) < 1e-6

    def test_custom_metric(self, rng):
        X = rng.uniform(size=(30, 1))
        y = X.ravel()
        scores = cross_val_score(
            LinearRegression, X, y, n_splits=3,
            metric=lambda a, b: float(len(a)), seed=0,
        )
        assert sum(scores) == 30.0
