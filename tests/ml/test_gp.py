"""Tests for Gaussian process regression."""

import numpy as np
import pytest

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import RBFKernel


@pytest.fixture
def sine_data(rng):
    X = np.linspace(0, 2 * np.pi, 25).reshape(-1, 1)
    y = np.sin(X.ravel())
    return X, y


class TestGPFit:
    def test_interpolates_noiseless_data(self, sine_data):
        X, y = sine_data
        gp = GaussianProcessRegressor(noise=1e-6, optimize_hypers=False,
                                      kernel=RBFKernel(length_scale=1.0))
        gp.fit(X, y)
        assert np.allclose(gp.predict(X), y, atol=1e-3)

    def test_uncertainty_grows_away_from_data(self, sine_data):
        X, y = sine_data
        gp = GaussianProcessRegressor(optimize_hypers=False,
                                      kernel=RBFKernel(length_scale=1.0))
        gp.fit(X, y)
        _, std_at = gp.predict_with_std(X[:1])
        _, std_far = gp.predict_with_std(np.array([[30.0]]))
        assert std_far[0] > std_at[0]

    def test_hyperopt_improves_fit(self, rng):
        X = rng.uniform(0, 10, size=(40, 1))
        y = np.sin(X.ravel() * 3.0)  # needs a short length scale
        bad = GaussianProcessRegressor(
            kernel=RBFKernel(length_scale=5.0), optimize_hypers=False, noise=1e-4
        ).fit(X, y)
        tuned = GaussianProcessRegressor(
            kernel=RBFKernel(length_scale=5.0), optimize_hypers=True, n_restarts=1,
            seed=0,
        ).fit(X, y)
        grid = np.linspace(0, 10, 50).reshape(-1, 1)
        truth = np.sin(grid.ravel() * 3.0)
        err_bad = np.mean((bad.predict(grid) - truth) ** 2)
        err_tuned = np.mean((tuned.predict(grid) - truth) ** 2)
        assert err_tuned < err_bad

    def test_y_normalization_handles_large_targets(self, rng):
        X = rng.uniform(size=(20, 2))
        y = 1e6 + 1e4 * rng.uniform(size=20)
        gp = GaussianProcessRegressor(optimize_hypers=False).fit(X, y)
        mean = gp.predict(X)
        assert np.all(mean > 5e5)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.ones((1, 2)))

    def test_std_positive(self, sine_data):
        X, y = sine_data
        gp = GaussianProcessRegressor(optimize_hypers=False).fit(X, y)
        _, std = gp.predict_with_std(np.linspace(-5, 15, 30).reshape(-1, 1))
        assert np.all(std > 0)

    def test_isotropic_kernel_expanded_to_ard(self, rng):
        X = rng.uniform(size=(10, 4))
        y = rng.uniform(size=10)
        gp = GaussianProcessRegressor(kernel=RBFKernel(length_scale=1.0),
                                      optimize_hypers=False).fit(X, y)
        assert gp.kernel.length_scale.size == 4

    def test_posterior_samples_shape_and_spread(self, sine_data, rng):
        X, y = sine_data
        gp = GaussianProcessRegressor(optimize_hypers=False).fit(X, y)
        grid = np.linspace(0, 2 * np.pi, 10).reshape(-1, 1)
        samples = gp.sample_posterior(grid, n_samples=20, rng=rng)
        assert samples.shape == (20, 10)
        mean, _ = gp.predict_with_std(grid)
        assert np.allclose(samples.mean(axis=0), mean, atol=0.5)

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise=0.0)
