"""Tests for dashboard root-cause analysis."""

import numpy as np
import pytest

from repro.service.dashboard import MonitoringDashboard
from repro.sparksim.events import QueryEndEvent


def make_event(i, duration, size=1e6, partitions=200.0, tasks=100.0):
    return QueryEndEvent(
        app_id="app", artifact_id="art", query_signature="sig", user_id="u",
        iteration=i, config={"spark.sql.shuffle.partitions": partitions},
        data_size=size, duration_seconds=duration, metrics={"tasks": tasks},
    )


class TestExplain:
    def test_needs_enough_events(self):
        dash = MonitoringDashboard()
        dash.ingest(make_event(0, 1.0))
        with pytest.raises(ValueError, match="RCA"):
            dash.explain("sig")

    def test_knob_driven_regression_attributed_to_knob(self, rng):
        dash = MonitoringDashboard()
        for i in range(20):
            partitions = 100.0 + 50.0 * i
            duration = 5.0 + 0.01 * partitions + rng.normal(0, 0.05)
            dash.ingest(make_event(i, duration, partitions=partitions,
                                   tasks=partitions))
        report = dash.explain("sig")
        assert report.knob_correlations["spark.sql.shuffle.partitions"] > 0.8
        assert abs(report.data_size_correlation) < 0.5
        assert report.dominant_factor != "data_size"

    def test_data_driven_slowdown_attributed_to_data(self, rng):
        dash = MonitoringDashboard()
        for i in range(20):
            size = 1e6 * (1 + i)
            duration = 1.0 + size * 1e-6 + rng.normal(0, 0.1)
            # Knob wiggles randomly, uncorrelated with time.
            dash.ingest(make_event(i, duration, size=size,
                                   partitions=float(rng.integers(100, 300))))
        report = dash.explain("sig")
        assert report.data_size_correlation > 0.9
        assert report.dominant_factor == "data_size"
        knob_corr = report.knob_correlations["spark.sql.shuffle.partitions"]
        assert abs(knob_corr) < 0.6

    def test_constant_knob_excluded(self, rng):
        dash = MonitoringDashboard()
        for i in range(10):
            dash.ingest(make_event(i, 5.0 + rng.normal(0, 0.1)))
        report = dash.explain("sig")
        assert "spark.sql.shuffle.partitions" not in report.knob_correlations

    def test_metric_correlations_present(self, rng):
        dash = MonitoringDashboard()
        for i in range(15):
            tasks = 50.0 + 20.0 * i
            dash.ingest(make_event(i, 1.0 + 0.05 * tasks + rng.normal(0, 0.1),
                                   partitions=tasks, tasks=tasks))
        report = dash.explain("sig")
        assert report.metric_correlations["tasks"] > 0.8
