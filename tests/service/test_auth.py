"""Tests for SAS-style token auth."""

import pytest

from repro.service.auth import SasToken, SasTokenIssuer, TokenError


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def issuer(clock):
    return SasTokenIssuer("top-secret", default_ttl=60.0, clock=clock)


class TestIssue:
    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            SasTokenIssuer("")

    def test_invalid_permissions_rejected(self, issuer):
        with pytest.raises(ValueError):
            issuer.issue("r1", permissions="x")
        with pytest.raises(ValueError):
            issuer.issue("r1", permissions="")

    def test_expiry_uses_ttl(self, issuer, clock):
        token = issuer.issue("r1", ttl=30.0)
        assert token.expires_at == pytest.approx(1030.0)


class TestValidate:
    def test_valid_token_passes(self, issuer):
        token = issuer.issue("models/u1", "r")
        issuer.validate(token, "models/u1", "r")  # no raise

    def test_wrong_resource_rejected(self, issuer):
        token = issuer.issue("models/u1", "r")
        with pytest.raises(TokenError, match="scoped"):
            issuer.validate(token, "models/u2", "r")

    def test_missing_permission_rejected(self, issuer):
        token = issuer.issue("events/a1", "w")
        with pytest.raises(TokenError, match="grants"):
            issuer.validate(token, "events/a1", "r")

    def test_rw_grants_both(self, issuer):
        token = issuer.issue("x", "rw")
        issuer.validate(token, "x", "r")
        issuer.validate(token, "x", "w")

    def test_expired_token_rejected(self, issuer, clock):
        token = issuer.issue("x", "r", ttl=10.0)
        clock.now += 11.0
        with pytest.raises(TokenError, match="expired"):
            issuer.validate(token, "x", "r")

    def test_forged_signature_rejected(self, issuer):
        token = issuer.issue("x", "r")
        forged = SasToken(
            resource=token.resource, permissions="rw",
            expires_at=token.expires_at, signature=token.signature,
        )
        with pytest.raises(TokenError):
            issuer.validate(forged, "x", "w")

    def test_different_issuer_secret_rejected(self, clock):
        a = SasTokenIssuer("secret-a", clock=clock)
        b = SasTokenIssuer("secret-b", clock=clock)
        token = a.issue("x", "r")
        with pytest.raises(TokenError, match="signature"):
            b.validate(token, "x", "r")


class TestUrlFormat:
    def test_url_roundtrip(self, issuer):
        token = issuer.issue("events/app-1", "rw")
        parsed = SasToken.parse(token.url)
        assert parsed == token

    def test_parse_rejects_non_sas(self):
        with pytest.raises(TokenError):
            SasToken.parse("https://example.com/x?sig=1")

    def test_parse_rejects_malformed(self):
        with pytest.raises(TokenError):
            SasToken.parse("sas://resource?perm=r")  # missing exp/sig
