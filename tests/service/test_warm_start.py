"""Backend cold-start path: retrieval hit / baseline fallback / miss."""

import json

import numpy as np
import pytest

from repro.faults.injectors import FaultyBackend, FaultyStorage
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.service.resilience import TransientServiceError
from repro.ml.serialize import dumps_model
from repro.retrieval import CorpusRecord, RetrievalCorpus
from repro.service.auth import SasTokenIssuer, TokenError
from repro.service.backend import AutotuneBackend, WarmStartSuggestion
from repro.service.storage import StorageManager
from repro.sparksim.configs import query_level_space

pytestmark = pytest.mark.retrieval

DIM = 6
SPACE = query_level_space()


def make_corpus(n=5):
    corpus = RetrievalCorpus(DIM)
    rng = np.random.default_rng(0)
    corpus.add([
        CorpusRecord(
            workload_id=f"wl-{i}",
            signature=f"sig-{i}",
            embedding=rng.normal(size=DIM),
            config=SPACE.to_dict(SPACE.sample_vector(rng)),
            observed_cost=float(i + 1),
        )
        for i in range(n)
    ])
    corpus.build_index("flat")
    return corpus


def make_backend(tmp_path, **kwargs):
    backend = AutotuneBackend(
        storage=StorageManager(tmp_path),
        issuer=SasTokenIssuer("secret"),
        query_space=SPACE,
        **kwargs,
    )
    grant = backend.register_job("app-ws", "artifact-ws", "user-ws")
    return backend, grant.model_read_token


def publish_model(backend, signature):
    """Store a per-query baseline model the fallback path can score."""
    rng = np.random.default_rng(1)
    X = np.hstack([
        SPACE.sample_vectors(12, rng), np.ones((12, 1))
    ])
    y = rng.uniform(1.0, 5.0, size=12)
    model = backend.model_factory()
    model.fit(X, y)
    backend.storage.write_model("user-ws", signature, dumps_model(model))


class TestRetrievalHit:
    def test_near_neighbor_answers_from_corpus(self, tmp_path):
        backend, token = make_backend(tmp_path)
        corpus = make_corpus()
        backend.publish_retrieval_corpus(corpus)
        target = corpus.records[2]
        suggestion = backend.fetch_warm_start(
            token, "user-ws", "sig-new", target.embedding, k=1
        )
        assert isinstance(suggestion, WarmStartSuggestion)
        assert suggestion.source == "retrieval"
        assert suggestion.config == pytest.approx(target.config)
        assert suggestion.distance == pytest.approx(0.0, abs=1e-9)
        assert len(suggestion.neighbors) == 1
        assert suggestion.neighbors[0].record.signature == "sig-2"
        # With k neighbors the served config is their size-adapted mean.
        from repro.retrieval import recommend_config

        multi = backend.fetch_warm_start(
            token, "user-ws", "sig-new", target.embedding, k=3
        )
        assert len(multi.neighbors) == 3
        assert multi.config == pytest.approx(
            recommend_config(multi.neighbors, SPACE, data_size=1.0)
        )
        assert backend.retrieval_hits == 2
        assert backend.retrieval_fallbacks == 0
        assert backend.warm_start_misses == 0

    def test_token_scope_enforced(self, tmp_path):
        backend, _ = make_backend(tmp_path)
        backend.publish_retrieval_corpus(make_corpus())
        other = backend.register_job("app-x", "art-x", "user-other")
        with pytest.raises(TokenError):
            backend.fetch_warm_start(
                other.model_read_token, "user-ws", "sig", np.zeros(DIM)
            )

    def test_republish_resets_cached_corpus(self, tmp_path):
        backend, token = make_backend(tmp_path)
        backend.publish_retrieval_corpus(make_corpus(n=2))
        assert backend.fetch_warm_start(token, "user-ws", "s", np.zeros(DIM)) is not None
        bigger = make_corpus(n=5)
        backend.publish_retrieval_corpus(bigger)
        suggestion = backend.fetch_warm_start(
            token, "user-ws", "s", bigger.records[4].embedding, k=1
        )
        assert suggestion.neighbors[0].record.workload_id == "wl-4"


class TestFallbackAndMiss:
    def test_no_corpus_no_model_is_miss(self, tmp_path):
        backend, token = make_backend(tmp_path)
        assert backend.fetch_warm_start(token, "user-ws", "sig", np.zeros(DIM)) is None
        assert backend.warm_start_misses == 1

    def test_distance_gate_falls_back_to_model(self, tmp_path):
        backend, token = make_backend(tmp_path, retrieval_max_distance=1e-6)
        corpus = make_corpus()
        backend.publish_retrieval_corpus(corpus)
        publish_model(backend, "sig-far")
        far = -corpus.records[0].embedding  # cosine distance ~2 from wl-0
        suggestion = backend.fetch_warm_start(token, "user-ws", "sig-far", far)
        assert suggestion.source == "baseline"
        assert suggestion.neighbors == ()
        assert np.isnan(suggestion.distance)
        assert backend.retrieval_hits == 0
        assert backend.retrieval_fallbacks == 1
        assert set(suggestion.config) == set(SPACE.names)

    def test_baseline_respects_candidate_budget(self, tmp_path):
        backend, token = make_backend(tmp_path, warm_start_candidates=4)
        publish_model(backend, "sig-b")
        suggestion = backend.fetch_warm_start(token, "user-ws", "sig-b", np.zeros(DIM))
        assert suggestion.source == "baseline"
        # Deterministic: same seeded sweep, same argmin.
        again = backend.fetch_warm_start(token, "user-ws", "sig-b", np.zeros(DIM))
        assert suggestion.config == again.config

    def test_corrupt_corpus_counts_failure_and_falls_back(self, tmp_path):
        backend, token = make_backend(tmp_path)
        backend.publish_retrieval_corpus(make_corpus())
        backend.storage.corpus_path().write_text("{not json", encoding="utf-8")
        backend._corpus_loaded = False
        backend._corpus = None
        publish_model(backend, "sig-c")
        suggestion = backend.fetch_warm_start(token, "user-ws", "sig-c", np.zeros(DIM))
        assert suggestion.source == "baseline"
        assert backend.corpus_load_failures == 1
        # The failure is cached: the next request does not re-read the file.
        backend.fetch_warm_start(token, "user-ws", "sig-c", np.zeros(DIM))
        assert backend.corpus_load_failures == 1

    def test_metrics_expose_cold_start_counters(self, tmp_path):
        backend, token = make_backend(tmp_path)
        backend.publish_retrieval_corpus(make_corpus())
        backend.fetch_warm_start(token, "user-ws", "s", np.zeros(DIM))
        stats = backend.metrics()["backend"]
        assert stats["retrieval_hits"] == 1
        assert stats["retrieval_fallbacks"] == 0
        assert stats["warm_start_misses"] == 0
        assert stats["corpus_load_failures"] == 0


class TestStorageRoundTrip:
    def test_corpus_lives_outside_events_tree(self, tmp_path):
        storage = StorageManager(tmp_path)
        storage.write_retrieval_corpus(make_corpus().dumps())
        path = storage.corpus_path()
        assert path.exists()
        assert "events" not in path.relative_to(tmp_path).parts
        restored = RetrievalCorpus.loads(storage.read_retrieval_corpus())
        assert len(restored) == 5

    def test_missing_corpus_reads_none(self, tmp_path):
        assert StorageManager(tmp_path).read_retrieval_corpus() is None


class TestFaultInjection:
    def test_faulty_storage_read_and_corruption(self, tmp_path):
        storage = StorageManager(tmp_path)
        storage.write_retrieval_corpus(make_corpus().dumps())
        plan = FaultPlan([
            FaultSpec(FaultKind.STORAGE_READ_ERROR, at=(0,)),
            FaultSpec(FaultKind.MODEL_CORRUPTION, at=(0,)),
        ])
        faulty = FaultyStorage(storage, plan)
        with pytest.raises(TransientServiceError):
            faulty.read_retrieval_corpus()
        # Corruption opportunities only tick on successful reads, so the
        # second call (first success) returns a mangled payload.
        corrupted = faulty.read_retrieval_corpus()
        clean = faulty.read_retrieval_corpus()
        assert corrupted != clean
        assert RetrievalCorpus.loads(clean) is not None

    def test_faulty_storage_write_error(self, tmp_path):
        storage = StorageManager(tmp_path)
        plan = FaultPlan([FaultSpec(FaultKind.STORAGE_WRITE_ERROR, at=(0,))])
        faulty = FaultyStorage(storage, plan)
        with pytest.raises(TransientServiceError):
            faulty.write_retrieval_corpus(make_corpus().dumps())
        assert storage.read_retrieval_corpus() is None

    def test_faulty_backend_warm_start_faults_then_recovers(self, tmp_path):
        backend, token = make_backend(tmp_path)
        backend.publish_retrieval_corpus(make_corpus())
        plan = FaultPlan([FaultSpec(FaultKind.STORAGE_READ_ERROR, at=(0,))])
        faulty = FaultyBackend(backend, plan)
        with pytest.raises(TransientServiceError):
            faulty.fetch_warm_start(token, "user-ws", "s", np.zeros(DIM))
        assert faulty.fetch_warm_start(token, "user-ws", "s", np.zeros(DIM)) is not None

    def test_backend_survives_storage_fault_on_corpus_load(self, tmp_path):
        """A storage-layer read fault degrades to fallback/miss, not a crash."""
        storage = StorageManager(tmp_path)
        plan = FaultPlan([FaultSpec(FaultKind.STORAGE_READ_ERROR, at=(0,))])
        backend = AutotuneBackend(
            storage=FaultyStorage(storage, plan),
            issuer=SasTokenIssuer("secret"),
            query_space=SPACE,
        )
        grant = backend.register_job("app-f", "art-f", "user-ws")
        assert backend.fetch_warm_start(
            grant.model_read_token, "user-ws", "s", np.zeros(DIM)
        ) is None
        assert backend.corpus_load_failures == 1
        assert backend.warm_start_misses == 1
