"""Tests for the storage manager (event folders, models, GDPR cleanup)."""

import pytest

from repro.service.storage import StorageManager
from repro.sparksim.events import QueryEndEvent


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make_event(app="app-1", artifact="art-1", i=0):
    return QueryEndEvent(
        app_id=app, artifact_id=artifact, query_signature="sig",
        user_id="u1", iteration=i, config={"k": 1.0}, data_size=10.0,
        duration_seconds=1.0,
    )


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def storage(tmp_path, clock):
    return StorageManager(tmp_path, clock=clock)


class TestEvents:
    def test_append_and_read_by_app(self, storage):
        storage.append_events("app-1", "art-1", [make_event(i=0), make_event(i=1)])
        events = storage.read_app_events("app-1")
        assert [e.iteration for e in events] == [0, 1]

    def test_append_is_cumulative(self, storage):
        storage.append_events("app-1", "art-1", [make_event(i=0)])
        storage.append_events("app-1", "art-1", [make_event(i=1)])
        assert len(storage.read_app_events("app-1")) == 2

    def test_read_by_artifact_spans_apps(self, storage):
        storage.append_events("app-1", "art-1", [make_event(app="app-1")])
        storage.append_events("app-2", "art-1", [make_event(app="app-2")])
        events = storage.read_artifact_events("art-1")
        assert {e.app_id for e in events} == {"app-1", "app-2"}

    def test_missing_app_returns_empty(self, storage):
        assert storage.read_app_events("nope") == []
        assert storage.read_artifact_events("nope") == []

    def test_empty_append_is_noop(self, storage):
        storage.append_events("app-1", "art-1", [])
        assert storage.read_app_events("app-1") == []


class TestModels:
    def test_write_read_roundtrip(self, storage):
        storage.write_model("u1", "sig-a", '{"type": "fake"}')
        assert storage.read_model("u1", "sig-a") == '{"type": "fake"}'

    def test_missing_model_is_none(self, storage):
        assert storage.read_model("u1", "nope") is None

    def test_models_isolated_per_user(self, storage):
        storage.write_model("u1", "sig", "m1")
        storage.write_model("u2", "sig", "m2")
        assert storage.read_model("u1", "sig") == "m1"
        assert storage.read_model("u2", "sig") == "m2"


class TestGDPRCleanup:
    def test_old_event_files_removed(self, storage, clock):
        storage.append_events("app-old", "art-1", [make_event(app="app-old")])
        clock.now = 100.0
        storage.append_events("app-new", "art-1", [make_event(app="app-new")])
        removed = storage.cleanup(ttl_seconds=50.0)
        assert any("app-old" in r for r in removed)
        assert storage.read_app_events("app-old") == []
        assert len(storage.read_app_events("app-new")) == 1

    def test_models_survive_cleanup(self, storage, clock):
        storage.write_model("u1", "sig", "model")
        clock.now = 1e9
        storage.cleanup(ttl_seconds=1.0)
        assert storage.read_model("u1", "sig") == "model"

    def test_invalid_ttl(self, storage):
        with pytest.raises(ValueError):
            storage.cleanup(0.0)

    def test_manifest_survives_restart(self, tmp_path, clock):
        s1 = StorageManager(tmp_path, clock=clock)
        s1.append_events("app-1", "art-1", [make_event()])
        clock.now = 100.0
        s2 = StorageManager(tmp_path, clock=clock)  # reload manifest
        removed = s2.cleanup(ttl_seconds=50.0)
        assert removed

    def test_corrupt_manifest_rebuilt_from_disk(self, tmp_path, clock):
        s1 = StorageManager(tmp_path, clock=clock)
        s1.append_events("app-1", "art-1", [make_event()])
        (tmp_path / "manifest.json").write_text("{corrupt!!")
        clock.now = 1000.0
        s2 = StorageManager(tmp_path, clock=clock)
        assert s2.manifest_recovered
        # Events are still readable and re-registered for cleanup.
        assert len(s2.read_app_events("app-1")) == 1
        clock.now = 5000.0
        assert s2.cleanup(ttl_seconds=1000.0)  # rebuilt entries age out
