"""Integration-style tests for the Autotune backend + client pair."""

import numpy as np
import pytest

from repro.core.app_level import AppCache
from repro.core.guardrail import Guardrail
from repro.service.auth import SasTokenIssuer, TokenError
from repro.service.backend import AutotuneBackend
from repro.service.client import AutotuneClient, ENABLE_KNOB
from repro.service.storage import StorageManager
from repro.sparksim.configs import app_level_space, full_space, query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise
from repro.workloads.tpch import tpch_plan


@pytest.fixture
def backend(tmp_path):
    return AutotuneBackend(
        storage=StorageManager(tmp_path),
        issuer=SasTokenIssuer("secret"),
        query_space=query_level_space(),
        app_space=app_level_space(),
        full_space=full_space(),
        app_cache=AppCache(),
        min_events_for_model=3,
    )


@pytest.fixture
def client(backend):
    return AutotuneClient(
        backend, "app-1", "artifact-1", "user-1", query_level_space(), seed=0
    )


def run_queries(client, backend, n=6, plan=None, app_id="app-1"):
    plan = plan or tpch_plan(6, 1.0)
    sim = SparkSimulator(noise=low_noise(), seed=1)
    for t in range(n):
        config = client.suggest_config(plan)
        event = sim.run_to_event(
            plan, config, app_id=app_id, artifact_id="artifact-1",
            user_id="user-1", iteration=t,
            embedding=client.embedder.embed(plan),
        )
        client.on_query_end(event)
        client.flush_events()
    return plan


class TestRegistration:
    def test_grant_tokens_are_scoped(self, backend):
        grant = backend.register_job("app-9", "art-9", "user-9")
        backend.issuer.validate(grant.event_write_token, "events/app-9", "w")
        backend.issuer.validate(grant.model_read_token, "models/user-9", "r")
        with pytest.raises(TokenError):
            backend.issuer.validate(grant.model_read_token, "models/other", "r")

    def test_no_app_cache_on_first_run(self, backend):
        grant = backend.register_job("app-9", "art-9", "user-9")
        assert grant.app_config is None


class TestModelUpdater:
    def test_models_trained_after_min_events(self, backend, client):
        run_queries(client, backend, n=5)
        assert backend.models_trained >= 1
        assert not backend.hub.failures

    def test_model_fetch_requires_valid_token(self, backend, client):
        plan = run_queries(client, backend, n=5)
        grant = backend.register_job("app-2", "artifact-1", "user-1")
        payload = backend.fetch_model(
            grant.model_read_token, "user-1", plan.signature()
        )
        assert payload is not None
        other = backend.register_job("app-3", "artifact-1", "user-2")
        with pytest.raises(TokenError):
            backend.fetch_model(other.model_read_token, "user-1", plan.signature())

    def test_retrain_throttling(self, tmp_path):
        backend = AutotuneBackend(
            storage=StorageManager(tmp_path / "throttle"),
            issuer=SasTokenIssuer("s"),
            query_space=query_level_space(),
            min_events_for_model=2,
            retrain_every=3,
        )
        client = AutotuneClient(backend, "app-t", "art-t", "u-t",
                                query_level_space(), seed=0)
        run_queries(client, backend, n=8, app_id="app-t")
        # Trains at event 2, then every 3rd: events 5 and 8 → 3 total.
        assert backend.models_trained == 3

    def test_retrain_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            AutotuneBackend(
                storage=StorageManager(tmp_path / "bad"),
                issuer=SasTokenIssuer("s"),
                query_space=query_level_space(),
                retrain_every=0,
            )

    def test_privacy_models_per_user(self, backend, client):
        plan = run_queries(client, backend, n=5)
        # Same signature, different user: no model leakage.
        assert backend.storage.read_model("user-2", plan.signature()) is None


class TestClientInference:
    def test_disabled_client_returns_defaults(self, backend):
        client = AutotuneClient(
            backend, "app-d", "art-d", "user-d", query_level_space(), enabled=False
        )
        config = client.suggest_config(tpch_plan(6, 1.0))
        assert config == query_level_space().default_dict()

    def test_from_spark_conf_parses_enabled_flag(self, backend):
        client = AutotuneClient.from_spark_conf(
            backend,
            {
                "spark.app.id": "a", "spark.autotune.artifact.id": "r",
                "spark.autotune.user.id": "u", ENABLE_KNOB: "false",
            },
            query_level_space(),
        )
        assert not client.enabled

    def test_suggestion_log_records_rationale(self, backend, client):
        run_queries(client, backend, n=5)
        log = client.suggestion_log
        assert len(log) == 5
        assert log[0].model_available is False        # no model at iteration 0
        assert log[-1].model_available is True        # updater has trained one
        assert all(entry.tuning_active for entry in log)

    def test_guardrail_integration(self, backend):
        client = AutotuneClient(
            backend, "app-g", "art-g", "user-g", query_level_space(),
            guardrail_factory=lambda: Guardrail(min_iterations=3, threshold=0.05,
                                                patience=1),
            seed=0,
        )
        plan = tpch_plan(6, 1.0)
        # Feed events with artificially exploding durations.
        from repro.sparksim.events import QueryEndEvent
        for t in range(8):
            config = client.suggest_config(plan)
            client.on_query_end(QueryEndEvent(
                app_id="app-g", artifact_id="art-g",
                query_signature=plan.signature(), user_id="user-g", iteration=t,
                config=config, data_size=1e6, duration_seconds=10.0 + 30.0 * t,
            ))
        assert client.suggestion_log[-1].tuning_active is False
        assert client.suggest_config(plan) == query_level_space().default_dict()


class TestAppCacheFlow:
    def test_finish_app_populates_cache(self, backend, client):
        run_queries(client, backend, n=5)
        client.finish_app(app_config=app_level_space().default_dict())
        assert not backend.hub.failures
        assert "artifact-1" in backend.app_cache
        # The next submission of the same artifact gets the cached config.
        grant = backend.register_job("app-2", "artifact-1", "user-1")
        assert grant.app_config is not None
        assert set(grant.app_config) == set(app_level_space().names)

    def test_corrupt_model_payload_degrades_gracefully(self, backend, client):
        plan = run_queries(client, backend, n=5)
        # Overwrite the stored model with garbage: the next suggestion must
        # fall back to exploration instead of crashing the submission path.
        backend.storage.write_model("user-1", plan.signature(), "{not json")
        client.model_loader.invalidate()
        config = client.suggest_config(plan)
        assert set(config) == set(query_level_space().names)
        assert client.model_loader.decode_failures > 0
        assert client.suggestion_log[-1].model_available is False

    def test_token_refresh_on_expiry(self, tmp_path):
        clock = {"now": 0.0}
        issuer = SasTokenIssuer("s", default_ttl=10.0, clock=lambda: clock["now"])
        backend = AutotuneBackend(
            storage=StorageManager(tmp_path / "s"), issuer=issuer,
            query_space=query_level_space(),
        )
        client = AutotuneClient(backend, "app-1", "art-1", "u", query_level_space())
        run_count = client.credentials.refresh_count
        plan = run_queries(client, backend, n=2)
        clock["now"] = 100.0  # expire everything
        run_queries(client, backend, n=2)
        assert client.credentials.refresh_count > run_count


class TestMetricsEndpoint:
    """backend.metrics() + dashboard.render_metrics (docs/observability.md)."""

    def test_metrics_reports_backend_counters(self, backend, client):
        run_queries(client, backend, n=4)
        payload = backend.metrics()
        assert payload["backend"]["hub_published"] == backend.hub.published_count
        assert payload["backend"]["hub_published"] >= 4
        assert payload["backend"]["duplicates_dropped"] == backend.duplicates_dropped
        assert payload["backend"]["tracked_query_groups"] >= 1
        # Telemetry disabled (the default): the registry snapshot is absent.
        assert payload["telemetry"] is None

    @pytest.mark.telemetry
    def test_metrics_carries_registry_snapshot_when_enabled(self, backend, client):
        from repro import telemetry

        with telemetry.capture():
            run_queries(client, backend, n=4)
            payload = backend.metrics()
        snap = payload["telemetry"]
        assert snap is not None
        assert snap["counters"]["backend.requests{op=submit_events}"] == 4.0
        assert "backend.request_seconds{op=submit_events}" in snap["histograms"]

    @pytest.mark.telemetry
    def test_render_metrics_text(self, backend, client):
        from repro import telemetry
        from repro.service.dashboard import render_metrics

        disabled_text = render_metrics(backend.metrics())
        assert "telemetry disabled" in disabled_text
        with telemetry.capture():
            run_queries(client, backend, n=3)
            text = render_metrics(backend.metrics())
        assert "hub_published" in text
        assert "[counters]" in text and "[histograms]" in text
        assert "backend.requests{op=submit_events}" in text
