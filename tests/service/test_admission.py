"""Admission control: priority thresholds, shed verdicts, queue bookkeeping."""

import pytest

from repro import telemetry
from repro.service.admission import (
    AdmissionController,
    Priority,
    ShardQueue,
    ShedError,
    ShedVerdict,
)
from repro.service.resilience import RetryPolicy, TransientServiceError

pytestmark = pytest.mark.service


class TestAdmissionController:
    def test_thresholds_follow_default_fractions(self):
        ctrl = AdmissionController(capacity=100)
        assert ctrl.thresholds[Priority.INTERACTIVE] == 100
        assert ctrl.thresholds[Priority.BATCH] == 75
        assert ctrl.thresholds[Priority.BEST_EFFORT] == 50

    def test_sheds_lower_classes_first(self):
        ctrl = AdmissionController(capacity=100)
        # At depth 60: best-effort shed, batch and interactive admitted.
        assert not ctrl.admit(60, Priority.BEST_EFFORT)
        assert ctrl.admit(60, Priority.BATCH)
        assert ctrl.admit(60, Priority.INTERACTIVE)
        # At depth 80: only interactive admitted.
        assert not ctrl.admit(80, Priority.BATCH)
        assert ctrl.admit(80, Priority.INTERACTIVE)
        # At capacity: everyone shed, reason flips to queue_full.
        full = ctrl.admit(100, Priority.INTERACTIVE)
        assert not full and full.reason == "queue_full"

    def test_priority_shed_reason(self):
        verdict = AdmissionController(capacity=100).admit(60, Priority.BEST_EFFORT)
        assert verdict.reason == "priority_shed"

    def test_retry_after_grows_with_overload(self):
        ctrl = AdmissionController(capacity=100)
        light = ctrl.admit(50, Priority.BEST_EFFORT).retry_after
        heavy = ctrl.admit(99, Priority.BEST_EFFORT).retry_after
        assert 0 < light < heavy

    def test_capacity_one_always_admits_empty(self):
        ctrl = AdmissionController(capacity=1)
        assert ctrl.admit(0, Priority.BEST_EFFORT)
        assert not ctrl.admit(1, Priority.INTERACTIVE)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=10, fractions={Priority.BATCH: 0.5})
        with pytest.raises(ValueError):
            AdmissionController(
                capacity=10,
                fractions={p: 1.5 for p in Priority},
            )
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)


class TestShardQueue:
    def test_fifo_order_preserved_across_priorities(self):
        queue = ShardQueue(capacity=10)
        queue.offer("a", Priority.BEST_EFFORT)
        queue.offer("b", Priority.INTERACTIVE)
        queue.offer("c", Priority.BATCH)
        assert queue.drain() == ["a", "b", "c"]

    def test_shed_counts_by_reason(self):
        queue = ShardQueue(capacity=4)
        queue.offer(0, Priority.INTERACTIVE)
        queue.offer(1, Priority.INTERACTIVE)
        assert not queue.offer("x", Priority.BEST_EFFORT)  # depth 2 ≥ ceil(4·0.5)
        queue.offer(2, Priority.INTERACTIVE)
        queue.offer(3, Priority.INTERACTIVE)
        assert not queue.offer("y", Priority.INTERACTIVE)  # depth 4 = capacity
        assert queue.shed == 2
        assert queue.shed_by_reason == {"priority_shed": 1, "queue_full": 1}

    def test_high_watermark_tracks_peak_depth(self):
        queue = ShardQueue(capacity=10)
        for item in range(7):
            queue.offer(item)
        queue.drain(5)
        queue.offer("more")
        assert queue.high_watermark == 7
        assert queue.depth == 3

    def test_drain_respects_max_items(self):
        queue = ShardQueue(capacity=10)
        for item in range(6):
            queue.offer(item)
        assert queue.drain(4) == [0, 1, 2, 3]
        assert queue.drain() == [4, 5]

    def test_shed_telemetry_labels(self):
        with telemetry.capture() as cap:
            queue = ShardQueue(capacity=1)
            queue.offer("a", Priority.BATCH)
            queue.offer("b", Priority.BATCH)
        counters = cap.counters()
        assert counters["service.queue.sheds{priority=BATCH,reason=queue_full}"] == 1

    def test_mismatched_admission_capacity_rejected(self):
        with pytest.raises(ValueError):
            ShardQueue(capacity=10, admission=AdmissionController(capacity=5))


class TestShedError:
    def test_is_retryable_transient_error(self):
        error = ShedError(ShedVerdict(False, "queue_full", retry_after=0.2), "shard-1")
        assert isinstance(error, TransientServiceError)
        assert error.retry_after == 0.2
        assert "shard-1" in str(error)

    def test_retry_policy_honors_retry_after_floor(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=5.0, sleep=slept.append
        )
        error = ShedError(ShedVerdict(False, "queue_full", retry_after=0.5))

        def always_shed():
            raise error

        with pytest.raises(Exception):
            policy.call(always_shed)
        # Schedule would be [0.01, 0.02]; the shed verdict floors both at 0.5.
        assert slept == [0.5, 0.5]

    def test_retry_after_still_capped_by_max_delay(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=2, base_delay=0.01, max_delay=0.1, sleep=slept.append
        )
        error = ShedError(ShedVerdict(False, "queue_full", retry_after=9.0))

        def always_shed():
            raise error

        with pytest.raises(Exception):
            policy.call(always_shed)
        assert slept == [0.1]

    def test_plain_transient_errors_keep_schedule(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.01, multiplier=2.0, sleep=slept.append
        )

        def flaky():
            raise TransientServiceError("no retry_after attr")

        with pytest.raises(Exception):
            policy.call(flaky)
        assert slept == [0.01, 0.02]
