"""Resilience of the service layer under injected faults.

Each fault class from ``repro.faults`` has at least one test here (or in
``test_replay.py`` / the chaos suite) that the pre-resilience service layer
fails — demonstrated where practical by re-running the same fault with the
resilience knob disabled (``dedup_events=False``, ``serve_stale=False``,
``cooldown=None``, single-attempt retry policies).
"""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config_space import ConfigSpace, Parameter
from repro.core.guardrail import Guardrail
from repro.core.observation import Observation
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultyBackend,
    FaultyStorage,
    flaky_model_factory,
)
from repro.ml.linear import RidgeRegression
from repro.service.auth import SasTokenIssuer, TokenError
from repro.service.backend import AutotuneBackend
from repro.service.client import AutotuneClient, AutotuneCredentialManager
from repro.service.resilience import (
    RetryExhaustedError,
    RetryPolicy,
    TransientServiceError,
)
from repro.service.storage import StorageManager
from repro.sparksim.events import QueryEndEvent


def tiny_space() -> ConfigSpace:
    return ConfigSpace([
        Parameter(name="a", low=0.0, high=10.0, default=5.0),
        Parameter(name="b", low=1.0, high=100.0, default=10.0),
    ])


def make_event(i: int, app_id: str = "app-1", signature: str = "q1") -> QueryEndEvent:
    return QueryEndEvent(
        app_id=app_id,
        artifact_id="art-1",
        query_signature=signature,
        user_id="u-1",
        iteration=i,
        config={"a": 5.0, "b": 10.0},
        data_size=1e6,
        duration_seconds=10.0 + i,
    )


def make_backend(root, plan=None, **kwargs):
    kwargs.setdefault("min_events_for_model", 999)  # keep delivery tests cheap
    backend = AutotuneBackend(
        storage=StorageManager(root),
        issuer=SasTokenIssuer("secret"),
        query_space=tiny_space(),
        **kwargs,
    )
    return FaultyBackend(backend, plan) if plan is not None else backend


def make_client(backend, **kwargs):
    kwargs.setdefault("enabled", False)  # delivery tests skip the optimizer
    return AutotuneClient(backend, "app-1", "art-1", "u-1", tiny_space(), **kwargs)


def stored_sequences(storage, app_id="app-1"):
    return [e.sequence for e in storage.read_app_events(app_id)]


# -- RetryPolicy properties ----------------------------------------------------------


class TestRetryPolicy:
    @given(
        max_attempts=st.integers(1, 12),
        base_delay=st.floats(0.0, 5.0),
        multiplier=st.floats(1.0, 4.0),
        max_delay=st.floats(0.0, 10.0),
        deadline=st.floats(0.0, 30.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_backoff_monotone_and_deadline_bounded(
        self, max_attempts, base_delay, multiplier, max_delay, deadline
    ):
        policy = RetryPolicy(
            max_attempts=max_attempts, base_delay=base_delay,
            multiplier=multiplier, max_delay=max_delay, deadline=deadline,
        )
        delays = policy.delays()
        assert len(delays) <= max_attempts - 1
        assert all(b >= a for a, b in zip(delays, delays[1:]))  # monotone
        assert all(d <= max_delay for d in delays)
        assert sum(delays) <= deadline + 1e-9

    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientServiceError("boom")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay=0.01)
        assert policy.call(flaky) == "ok"
        assert calls["n"] == 3
        assert policy.retries == 2

    def test_exhaustion_raises_with_cause(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        with pytest.raises(RetryExhaustedError) as exc:
            policy.call(lambda: (_ for _ in ()).throw(TransientServiceError("x")))
        assert isinstance(exc.value.last_error, TransientServiceError)
        assert exc.value.attempts == 3

    def test_non_retryable_errors_propagate(self):
        policy = RetryPolicy(max_attempts=5)

        def bad():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(bad)

    def test_single_attempt_policy_never_retries(self):
        policy = RetryPolicy(max_attempts=1)
        assert policy.delays() == []
        with pytest.raises(RetryExhaustedError):
            policy.call(lambda: (_ for _ in ()).throw(TransientServiceError("x")))
        assert policy.retries == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


# -- idempotent event delivery (drop / duplicate / partial write) -----------------------


class TestIdempotentDelivery:
    def test_partial_batch_write_is_exactly_once(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind=FaultKind.DROP_EVENT, at=(0,))], seed=3)
        backend = make_backend(tmp_path, plan)
        client = make_client(backend)
        for i in range(5):
            client.on_query_end(make_event(i))
        assert client.flush_events() == 5
        sequences = stored_sequences(backend.storage)
        assert sorted(sequences) == [0, 1, 2, 3, 4]
        assert len(set(sequences)) == 5          # no double-counting
        assert plan.fired(FaultKind.DROP_EVENT) == 1

    def test_duplicate_delivery_deduplicated(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind=FaultKind.DUPLICATE_EVENT, at=(0,))], seed=0)
        backend = make_backend(tmp_path, plan)
        client = make_client(backend)
        for i in range(3):
            client.on_query_end(make_event(i))
        client.flush_events()
        assert sorted(stored_sequences(backend.storage)) == [0, 1, 2]
        assert backend.duplicates_dropped == 3

    def test_duplicate_delivery_double_counts_without_dedup(self, tmp_path):
        """The pre-resilience vulnerability: same fault, dedup disabled."""
        plan = FaultPlan([FaultSpec(kind=FaultKind.DUPLICATE_EVENT, at=(0,))], seed=0)
        backend = make_backend(tmp_path, plan, dedup_events=False)
        client = make_client(backend)
        for i in range(3):
            client.on_query_end(make_event(i))
        client.flush_events()
        assert len(stored_sequences(backend.inner.storage)) == 6  # double-counted

    def test_flush_failure_keeps_events_buffered(self, tmp_path):
        """Pre-resilience, a failed flush dropped its buffer on the floor."""
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.STORAGE_WRITE_ERROR, at=(0,), duration=3)], seed=0
        )
        backend = make_backend(tmp_path, plan)
        client = make_client(backend, retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0))
        client.on_query_end(make_event(0))
        assert client.flush_events() == 0        # storm outlasts the 2 attempts
        assert client.flush_failures == 1
        assert len(client._pending_events) == 1  # nothing lost
        assert client.flush_events() == 1        # retry lands past the storm
        assert stored_sequences(backend.storage) == [0]

    @given(
        seed=st.integers(0, 1_000_000),
        drop=st.floats(0.0, 0.4),
        dup=st.floats(0.0, 0.4),
        reorder=st.floats(0.0, 0.4),
        n_events=st.integers(1, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_fault_plans_never_double_count(self, seed, drop, dup, reorder, n_events):
        """Property: whatever the fault plan, no QueryEndEvent is ever
        counted twice, and whatever was acknowledged is stored exactly once."""
        plan = FaultPlan(
            [
                FaultSpec(kind=FaultKind.DROP_EVENT, rate=drop),
                FaultSpec(kind=FaultKind.DUPLICATE_EVENT, rate=dup),
                FaultSpec(kind=FaultKind.REORDER_EVENTS, rate=reorder),
            ],
            seed=seed,
        )
        with tempfile.TemporaryDirectory() as root:
            backend = make_backend(root, plan)
            client = make_client(
                backend, retry_policy=RetryPolicy(max_attempts=6, base_delay=0.0)
            )
            for i in range(n_events):
                client.on_query_end(make_event(i))
                client.flush_events()
            for _ in range(20):                   # drain any persistent failures
                if not client._pending_events:
                    break
                client.flush_events()
            sequences = stored_sequences(backend.storage)
            assert len(sequences) == len(set(sequences))
            if not client._pending_events:
                assert sorted(sequences) == list(range(n_events))
            # The streaming jobs saw each event at most once too.
            hub_sequences = [
                e.sequence for e in backend.hub.recent(10_000)
                if isinstance(e, QueryEndEvent)
            ]
            assert len(hub_sequences) == len(set(hub_sequences))


# -- flaky storage under the backend ----------------------------------------------


class TestFlakyStorage:
    def test_transient_write_failures_are_retried_end_to_end(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.STORAGE_WRITE_ERROR, at=(0, 1))], seed=0
        )
        storage = FaultyStorage(StorageManager(tmp_path), plan)
        backend = AutotuneBackend(
            storage=storage, issuer=SasTokenIssuer("s"),
            query_space=tiny_space(), min_events_for_model=999,
        )
        client = make_client(backend)
        client.on_query_end(make_event(0))
        assert client.flush_events() == 1        # two failures, third attempt lands
        assert stored_sequences(storage.inner) == [0]
        assert plan.fired(FaultKind.STORAGE_WRITE_ERROR) == 2


# -- token expiry (storms) ------------------------------------------------------------


class TestTokenExpiry:
    def test_grant_reregisters_after_ttl(self, tmp_path):
        """Regression (pre-resilience bug): the credential manager cached a
        grant forever, serving tokens long past their TTL."""
        clock = {"now": 0.0}
        issuer = SasTokenIssuer("s", default_ttl=10.0, clock=lambda: clock["now"])
        backend = AutotuneBackend(
            storage=StorageManager(tmp_path), issuer=issuer,
            query_space=tiny_space(), min_events_for_model=999,
        )
        creds = AutotuneCredentialManager(
            backend, "app-1", "art-1", "u-1", clock=lambda: clock["now"]
        )
        first = creds.grant
        assert creds.grant is first              # cached within TTL
        clock["now"] = 60.0                      # TTL long gone
        fresh = creds.grant
        assert fresh is not first
        assert creds.refresh_count == 1
        issuer.validate(fresh.event_write_token, "events/app-1", "w")
        with pytest.raises(TokenError):          # the stale grant really was dead
            issuer.validate(first.event_write_token, "events/app-1", "w")

    def test_flush_survives_token_expiry_storm(self, tmp_path):
        """Pre-resilience the client retried exactly once after a TokenError,
        so any storm of length >= 2 lost the batch."""
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.TOKEN_EXPIRY, at=(0,), duration=3)], seed=0
        )
        backend = make_backend(tmp_path, plan)
        client = make_client(backend)            # default policy: 5 attempts
        client.on_query_end(make_event(0))
        assert client.flush_events() == 1
        assert stored_sequences(backend.storage) == [0]
        assert client.credentials.refresh_count >= 3

    def test_single_retry_policy_fails_the_storm_without_losing_events(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.TOKEN_EXPIRY, at=(0,), duration=3)], seed=0
        )
        backend = make_backend(tmp_path, plan)
        client = make_client(backend, retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0))
        client.on_query_end(make_event(0))
        assert client.flush_events() == 0
        assert client.flush_failures == 1
        assert client.flush_events() == 1        # delivered once the storm passed
        assert stored_sequences(backend.storage) == [0]


# -- model fetch: outages and corruption ----------------------------------------------


def train_one_model(tmp_path, plan=None):
    """Backend + client with one trained ridge surrogate for signature q1."""
    backend = AutotuneBackend(
        storage=StorageManager(tmp_path),
        issuer=SasTokenIssuer("secret"),
        query_space=tiny_space(),
        min_events_for_model=3,
        model_factory=lambda: RidgeRegression(alpha=1.0),
    )
    outer = FaultyBackend(backend, plan) if plan is not None else backend
    client = make_client(outer, enabled=False)
    rng = np.random.default_rng(0)
    for i in range(4):
        client.on_query_end(QueryEndEvent(
            app_id="app-1", artifact_id="art-1", query_signature="q1",
            user_id="u-1", iteration=i,
            config={"a": float(rng.uniform(0, 10)), "b": float(rng.uniform(1, 100))},
            data_size=1e6, duration_seconds=float(10 + rng.uniform(0, 5)),
        ))
    client.flush_events()
    assert backend.models_trained >= 1
    return backend, outer, client


class TestModelPath:
    def test_fetch_outage_serves_stale_model(self, tmp_path):
        """Pre-resilience a transient fetch error crashed query submission."""
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.STORAGE_READ_ERROR, at=(1,), duration=50)], seed=0
        )
        _backend, outer, client = train_one_model(tmp_path, plan)
        loader = client.model_loader
        loader.retry_policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        good = loader.load("q1", use_cache=False)     # opportunity 0: populates cache
        assert good is not None
        stale = loader.load("q1", use_cache=False)    # outage: stale cache served
        assert stale is good
        assert loader.stale_serves >= 1
        assert loader.fetch_failures >= 1

    def test_fetch_outage_without_stale_serving_degrades_to_none(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.STORAGE_READ_ERROR, at=(1,), duration=50)], seed=0
        )
        _backend, outer, client = train_one_model(tmp_path, plan)
        loader = client.model_loader
        loader.retry_policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        loader.serve_stale = False               # the pre-resilience behavior
        assert loader.load("q1", use_cache=False) is not None
        assert loader.load("q1", use_cache=False) is None   # model lost mid-tuning

    def test_corrupt_payload_serves_stale_model(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.MODEL_CORRUPTION, at=(1,), duration=50)], seed=1
        )
        _backend, outer, client = train_one_model(tmp_path, plan)
        loader = client.model_loader
        good = loader.load("q1", use_cache=False)
        assert good is not None
        served = loader.load("q1", use_cache=False)   # corrupted fetch
        assert served is good
        assert loader.decode_failures >= 1
        assert loader.stale_serves >= 1


# -- surrogate training failures ----------------------------------------------------


class TestTrainingFailures:
    def test_training_exceptions_do_not_leak_and_retrain_later(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind=FaultKind.TRAIN_ERROR, at=(0,))], seed=0)
        backend = AutotuneBackend(
            storage=StorageManager(tmp_path),
            issuer=SasTokenIssuer("s"),
            query_space=tiny_space(),
            min_events_for_model=3,
            model_factory=flaky_model_factory(lambda: RidgeRegression(alpha=1.0), plan),
        )
        client = make_client(backend)
        rng = np.random.default_rng(1)
        for i in range(5):
            client.on_query_end(QueryEndEvent(
                app_id="app-1", artifact_id="art-1", query_signature="q1",
                user_id="u-1", iteration=i,
                config={"a": float(rng.uniform(0, 10)), "b": float(rng.uniform(1, 100))},
                data_size=1e6, duration_seconds=float(10 + rng.uniform(0, 5)),
            ))
            client.flush_events()
        assert backend.train_failures == 1       # event 3's training failed...
        assert backend.models_trained >= 1       # ...and event 4 retried successfully
        assert not backend.hub.failures          # nothing leaked to the hub
        assert backend.storage.read_model("u-1", "q1") is not None


# -- latency spikes and the guardrail -------------------------------------------------


class TestGuardrailCooldown:
    def _spiky_times(self):
        # Healthy flat 10s query with a burst of 4x latency spikes.
        times = [10.0] * 20
        times[8:14] = [40.0] * 6
        return times

    def _run(self, guardrail):
        for i, t in enumerate(self._spiky_times()):
            guardrail.update(Observation(
                config=np.array([0.5]), data_size=1e6, performance=t, iteration=i,
            ))
        return guardrail

    def test_spike_storm_disables_tuning_forever_without_cooldown(self):
        """The pre-resilience failure mode: one storm, tuning dead forever."""
        g = self._run(Guardrail(min_iterations=5, threshold=0.2, patience=2, fit_window=5))
        assert not g.active
        assert g.reenable_count == 0

    def test_cooldown_reenables_after_the_storm(self):
        g = self._run(Guardrail(
            min_iterations=5, threshold=0.2, patience=2, fit_window=5, cooldown=3,
        ))
        assert g.active                           # recovered once spikes passed
        assert g.reenable_count >= 1

    def test_cooldown_state_round_trips(self):
        g = Guardrail(min_iterations=5, threshold=0.2, patience=2, fit_window=5, cooldown=4)
        self._run(g)
        clone = Guardrail(
            min_iterations=5, threshold=0.2, patience=2, fit_window=5, cooldown=4,
        ).restore_state(g.to_state())
        assert clone.active == g.active
        assert clone.to_state() == g.to_state()

    def test_cooldown_validation(self):
        with pytest.raises(ValueError):
            Guardrail(cooldown=0)
