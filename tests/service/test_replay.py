"""Tests for posterior trajectory replay and guardrail audits."""

import numpy as np
import pytest

from repro.core.guardrail import Guardrail
from repro.service.replay import audit_guardrail, replay_artifact
from repro.service.storage import StorageManager
from repro.sparksim.configs import query_level_space
from repro.sparksim.events import QueryEndEvent


def make_event(app, i, sig="sig-a", duration=10.0, partitions=200.0, size=1e6):
    space = query_level_space()
    config = space.default_dict()
    config["spark.sql.shuffle.partitions"] = partitions
    return QueryEndEvent(
        app_id=app, artifact_id="art", query_signature=sig, user_id="u",
        iteration=i, config=config, data_size=size, duration_seconds=duration,
    )


@pytest.fixture
def storage(tmp_path):
    s = StorageManager(tmp_path)
    # Two app runs; partitions drift downward; duration improves.
    for run, app in enumerate(("app-0", "app-1")):
        events = [
            make_event(app, i, duration=10.0 - run - 0.2 * i,
                       partitions=200.0 - 20 * (run * 5 + i))
            for i in range(5)
        ]
        events.append(make_event(app, 0, sig="sig-b", duration=3.0))
        s.append_events(app, "art", events)
    return s


class TestReplay:
    def test_trajectories_grouped_and_ordered(self, storage):
        trajectories = replay_artifact(storage, "art")
        assert set(trajectories) == {"sig-a", "sig-b"}
        a = trajectories["sig-a"]
        assert len(a) == 10
        assert a.durations[0] == 10.0
        assert a.durations[-1] < a.durations[0]

    def test_unknown_artifact_empty(self, storage):
        assert replay_artifact(storage, "nope") == {}

    def test_config_series(self, storage):
        a = replay_artifact(storage, "art")["sig-a"]
        series = a.config_series("spark.sql.shuffle.partitions")
        assert series[0] == 200.0
        assert series[-1] < series[0]

    def test_knob_travel_sign(self, storage):
        space = query_level_space()
        travel = replay_artifact(storage, "art")["sig-a"].knob_travel(space)
        assert travel["spark.sql.shuffle.partitions"] < 0   # tuned downward
        assert travel["spark.sql.files.maxPartitionBytes"] == pytest.approx(0.0)

    def test_to_observations_roundtrip(self, storage):
        space = query_level_space()
        obs = replay_artifact(storage, "art")["sig-a"].to_observations(space)
        assert len(obs) == 10
        assert obs[3].performance == pytest.approx(10.0 - 0.6)


def make_sequenced_event(app, seq, i, duration):
    e = make_event(app, i, duration=duration)
    return e.__class__(**{**e.__dict__, "sequence": seq})


def trace(trajectories):
    """A hashable, bit-exact fingerprint of a replayed artifact."""
    return {
        sig: [
            (e.app_id, e.sequence, e.iteration, e.duration_seconds,
             tuple(sorted(e.config.items())))
            for e in traj.events
        ]
        for sig, traj in trajectories.items()
    }


class TestReplayDeterminism:
    def _events(self, n=8):
        return [
            make_sequenced_event("app-0", seq=i, i=i, duration=10.0 - 0.3 * i)
            for i in range(n)
        ]

    def test_same_log_replays_bit_identical(self, tmp_path):
        a, b = StorageManager(tmp_path / "a"), StorageManager(tmp_path / "b")
        for s in (a, b):
            s.append_events("app-0", "art", self._events())
        assert trace(replay_artifact(a, "art")) == trace(replay_artifact(b, "art"))

    def test_reordered_delivery_replays_identically(self, tmp_path):
        """A transport that shuffles batches must not change the replayed
        trajectory: sequence numbers restore the client's delivery order."""
        events = self._events()
        clean = StorageManager(tmp_path / "clean")
        clean.append_events("app-0", "art", events)
        shuffled = StorageManager(tmp_path / "shuffled")
        order = np.random.default_rng(5).permutation(len(events))
        shuffled.append_events("app-0", "art", [events[i] for i in order])
        assert trace(replay_artifact(clean, "art")) == \
            trace(replay_artifact(shuffled, "art"))

    def test_duplicated_delivery_replays_identically(self, tmp_path):
        events = self._events()
        clean = StorageManager(tmp_path / "clean")
        clean.append_events("app-0", "art", events)
        dupped = StorageManager(tmp_path / "dupped")
        dupped.append_events("app-0", "art", events + events[2:5])
        assert trace(replay_artifact(clean, "art")) == \
            trace(replay_artifact(dupped, "art"))
        assert len(replay_artifact(dupped, "art")["sig-a"]) == len(events)

    def test_legacy_unsequenced_events_keep_iteration_order(self, tmp_path):
        """Events without sequence numbers (old logs) still replay in
        iteration order — and duplicates cannot be detected, by design."""
        storage = StorageManager(tmp_path)
        events = [make_event("app-0", i, duration=10.0 - i) for i in (3, 0, 2, 1)]
        storage.append_events("app-0", "art", events)
        traj = replay_artifact(storage, "art")["sig-a"]
        assert [e.iteration for e in traj.events] == [0, 1, 2, 3]


class TestGuardrailAudit:
    def test_healthy_trajectory_not_disabled(self, storage):
        space = query_level_space()
        traj = replay_artifact(storage, "art")["sig-a"]
        audit = audit_guardrail(
            traj, space,
            guardrail_factory=lambda: Guardrail(min_iterations=4, threshold=0.2,
                                                patience=2),
        )
        assert not audit.would_disable
        assert audit.disable_iteration is None

    def test_regressing_trajectory_flagged_with_iteration(self, tmp_path):
        storage = StorageManager(tmp_path)
        events = [make_event("app-0", i, duration=5.0 + 4.0 * i) for i in range(20)]
        storage.append_events("app-0", "art", events)
        traj = replay_artifact(storage, "art")["sig-a"]
        audit = audit_guardrail(
            traj, query_level_space(),
            guardrail_factory=lambda: Guardrail(min_iterations=4, threshold=0.1,
                                                patience=2),
        )
        assert audit.would_disable
        assert audit.disable_iteration is not None
        assert audit.decisions  # the dashboard can show why

    def test_reparameterized_audit_changes_outcome(self, tmp_path):
        """The what-if workflow: a stricter threshold flags what the
        production setting tolerated."""
        storage = StorageManager(tmp_path)
        events = [make_event("app-0", i, duration=5.0 * (1.03 ** i))
                  for i in range(40)]
        storage.append_events("app-0", "art", events)
        traj = replay_artifact(storage, "art")["sig-a"]
        space = query_level_space()
        lax = audit_guardrail(
            traj, space,
            guardrail_factory=lambda: Guardrail(min_iterations=5, threshold=0.5,
                                                patience=3),
        )
        strict = audit_guardrail(
            traj, space,
            guardrail_factory=lambda: Guardrail(min_iterations=5, threshold=0.02,
                                                patience=2),
        )
        assert not lax.would_disable
        assert strict.would_disable
