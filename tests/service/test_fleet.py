"""Fleet driver: deterministic fleet construction and the phased run loop."""

import pytest

from repro.service.fleet import (
    FleetReport,
    build_fleet,
    default_optimizer_factory,
    fleet_user_map,
    run_fleet,
)
from repro.service.sharded import ShardedAutotuneService
from repro.workloads.customer import fleet_priority_class

pytestmark = pytest.mark.service


def small_service(fleet, n_shards=2, **kwargs):
    kwargs.setdefault("queue_capacity", max(64, 4 * len(fleet)))
    return ShardedAutotuneService(
        n_shards,
        default_optimizer_factory(fleet, base_seed=0),
        user_id_fn=fleet_user_map(fleet),
        **kwargs,
    )


class TestBuildFleet:
    def test_deterministic_construction(self):
        a = build_fleet(6, seed=3, max_queries_per_workload=2)
        b = build_fleet(6, seed=3, max_queries_per_workload=2)
        assert [s.signature for s in a] == [s.signature for s in b]
        assert [s.workload_id for s in a] == [s.workload_id for s in b]
        assert [s.priority for s in a] == [s.priority for s in b]

    def test_signatures_unique_across_fleet(self):
        fleet = build_fleet(8, seed=0, max_queries_per_workload=3)
        signatures = [s.signature for s in fleet]
        assert len(signatures) == len(set(signatures))

    def test_priority_mix_follows_workload_cycle(self):
        fleet = build_fleet(8, seed=1, max_queries_per_workload=1)
        for session in fleet:
            expected = fleet_priority_class(session.workload_index)
            assert session.priority.name.lower() == expected

    def test_optimizer_seeds_unique(self):
        fleet = build_fleet(10, seed=5, max_queries_per_workload=3)
        seeds = [s.optimizer_seed(5) for s in fleet]
        assert len(seeds) == len(set(seeds))

    def test_max_queries_caps_fleet_size(self):
        fleet = build_fleet(4, seed=0, max_queries_per_workload=2)
        per_workload = {}
        for session in fleet:
            per_workload[session.workload_id] = (
                per_workload.get(session.workload_id, 0) + 1
            )
        assert all(count <= 2 for count in per_workload.values())


class TestRunFleet:
    def test_report_fields_consistent(self):
        fleet = build_fleet(6, seed=0, max_queries_per_workload=2)
        service = small_service(fleet)
        report = run_fleet(service, fleet, n_iterations=3)
        assert isinstance(report, FleetReport)
        assert report.n_sessions == len(fleet)
        assert report.n_iterations == 3
        # suggest + observe per session per iteration, nothing lost.
        assert report.n_requests == len(fleet) * 3 * 2
        assert report.lost_requests == 0
        assert report.shed_events == 0
        assert report.service_throughput_rps > 0
        assert report.sessions_per_sec > 0
        assert 0 < report.latency_p50_ms <= report.latency_p99_ms
        assert report.utilization_skew >= 1.0

    def test_sessions_trained_after_run(self):
        fleet = build_fleet(5, seed=2, max_queries_per_workload=1)
        service = small_service(fleet)
        run_fleet(service, fleet, n_iterations=4)
        sessions = service.sessions()
        assert len(sessions) == len(fleet)
        for session in sessions.values():
            assert len(session.optimizer.observations.history) == 4

    def test_overload_sheds_then_recovers(self):
        fleet = build_fleet(12, seed=1, max_queries_per_workload=2)
        # Tiny queues force admission control to engage.
        service = small_service(fleet, n_shards=2, queue_capacity=4)
        report = run_fleet(service, fleet, n_iterations=2)
        assert report.shed_events > 0
        assert report.shed_rate > 0
        # Shed-retry drains recover every request within the retry budget.
        assert report.lost_requests == 0
        assert report.n_requests == len(fleet) * 2 * 2

    def test_parallel_drain_matches_serial_trails(self):
        def trails(parallel):
            fleet = build_fleet(6, seed=4, max_queries_per_workload=2)
            service = small_service(fleet, n_shards=3)
            run_fleet(service, fleet, n_iterations=3, parallel_drain=parallel)
            return {
                key: [tuple(o.config) for o in s.optimizer.observations.history]
                for key, s in service.sessions().items()
            }

        assert trails(parallel=True) == trails(parallel=False)

    def test_to_dict_round_trips_scalars(self):
        fleet = build_fleet(4, seed=0, max_queries_per_workload=1)
        report = run_fleet(small_service(fleet), fleet, n_iterations=2)
        payload = report.to_dict()
        assert payload["n_sessions"] == 4
        assert payload["n_requests"] == 4 * 2 * 2
        assert set(payload) >= {
            "service_throughput_rps",
            "sessions_per_sec",
            "latency_p50_ms",
            "latency_p99_ms",
            "shed_events",
            "shed_rate",
            "lost_requests",
            "utilization_skew",
        }
