"""Consistent-hash ring: determinism, bounded movement, structural guarantees."""

import numpy as np
import pytest

from repro.service.ring import ConsistentHashRing, _hash64

pytestmark = pytest.mark.service

KEYS = [f"artifact-{i:04d}" for i in range(400)]


def fresh_ring(n=4, replicas=64):
    return ConsistentHashRing([f"shard-{i}" for i in range(n)], replicas=replicas)


class TestDeterminism:
    def test_hash_is_process_restart_stable(self):
        # Golden values: blake2b is keyless and unsalted, so these must
        # never change across runs, processes, or Python versions.
        assert _hash64("shard-0#0") == 0x3A138B1616E0D2C1
        assert _hash64("artifact-0000") == 0xEFA2A1708D231272

    def test_same_shard_set_same_assignment(self):
        a = fresh_ring().assignment(KEYS)
        b = fresh_ring().assignment(KEYS)
        assert a == b

    def test_order_of_addition_is_irrelevant(self):
        forward = ConsistentHashRing(["s0", "s1", "s2"])
        backward = ConsistentHashRing(["s2", "s1", "s0"])
        assert forward.assignment(KEYS) == backward.assignment(KEYS)

    def test_owner_matches_assignment(self):
        ring = fresh_ring()
        for key in KEYS[:50]:
            assert ring.owner(key) == ring.assignment([key])[key]

    def test_golden_assignment_snapshot(self):
        # A routing change is a *state migration* for a deployed fleet —
        # pin a few concrete owners so one shows up in review.
        ring = fresh_ring()
        assert ring.owner("artifact-0000") == "shard-1"
        assert ring.owner("artifact-0001") == "shard-3"
        assert ring.owner("artifact-0007") == "shard-3"


class TestBoundedMovement:
    def test_add_moves_at_most_expected_share(self):
        ring = fresh_ring(4)
        before = ring.assignment(KEYS)
        ring.add_shard("shard-new")
        after = ring.assignment(KEYS)
        moved = [k for k in KEYS if before[k] != after[k]]
        # Expected movement is K/N = 1/5 of keys; allow generous slack for
        # hash-placement variance at 64 replicas.
        assert len(moved) <= len(KEYS) * 2 / 5

    def test_add_moves_keys_only_into_new_shard(self):
        ring = fresh_ring(4)
        before = ring.assignment(KEYS)
        ring.add_shard("shard-new")
        after = ring.assignment(KEYS)
        for key in KEYS:
            if before[key] != after[key]:
                assert after[key] == "shard-new"

    def test_remove_moves_only_removed_shards_keys(self):
        ring = fresh_ring(4)
        before = ring.assignment(KEYS)
        ring.remove_shard("shard-1")
        after = ring.assignment(KEYS)
        for key in KEYS:
            if before[key] == "shard-1":
                assert after[key] != "shard-1"
            else:
                assert after[key] == before[key]

    def test_add_then_remove_round_trips(self):
        ring = fresh_ring(4)
        before = ring.assignment(KEYS)
        ring.add_shard("shard-new")
        ring.remove_shard("shard-new")
        assert ring.assignment(KEYS) == before


class TestLoadSplit:
    def test_split_covers_all_keys_and_shards(self):
        ring = fresh_ring(4)
        split = ring.load_split(KEYS)
        assert sorted(split) == [f"shard-{i}" for i in range(4)]
        assert sum(split.values()) == len(KEYS)

    def test_split_is_roughly_balanced(self):
        split = fresh_ring(4, replicas=128).load_split(KEYS)
        counts = np.array(list(split.values()))
        assert counts.max() <= 2.5 * len(KEYS) / 4
        assert counts.min() >= len(KEYS) / 4 / 2.5


class TestMembershipErrors:
    def test_duplicate_add_rejected(self):
        ring = fresh_ring(2)
        with pytest.raises(ValueError):
            ring.add_shard("shard-0")

    def test_unknown_remove_rejected(self):
        with pytest.raises(KeyError):
            fresh_ring(2).remove_shard("shard-9")

    def test_empty_ring_cannot_route(self):
        with pytest.raises(RuntimeError):
            ConsistentHashRing().owner("k")

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)

    def test_contains_and_len(self):
        ring = fresh_ring(3)
        assert len(ring) == 3
        assert "shard-1" in ring
        assert "shard-7" not in ring
        assert ring.shards == ("shard-0", "shard-1", "shard-2")
