"""Tests for the monitoring dashboard."""

import numpy as np
import pytest

from repro.service.dashboard import MonitoringDashboard
from repro.sparksim.events import QueryEndEvent


def make_event(sig, i, duration, size=1e6, partitions=200.0):
    return QueryEndEvent(
        app_id="app", artifact_id="art", query_signature=sig, user_id="u",
        iteration=i, config={"spark.sql.shuffle.partitions": partitions},
        data_size=size, duration_seconds=duration,
    )


@pytest.fixture
def dashboard():
    dash = MonitoringDashboard(window=2)
    # sig-fast improves 10 -> 5; sig-flat stays at 8.
    for i in range(10):
        dash.ingest(make_event("sig-fast", i, 10.0 - 0.5 * i, partitions=200.0 - 10 * i))
        dash.ingest(make_event("sig-flat", i, 8.0))
    return dash


class TestIngestion:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            MonitoringDashboard(window=0)

    def test_signatures_listed(self, dashboard):
        assert dashboard.signatures == ["sig-fast", "sig-flat"]

    def test_events_for(self, dashboard):
        assert len(dashboard.events_for("sig-fast")) == 10
        assert dashboard.events_for("nope") == []


class TestViews:
    def test_config_history_series(self, dashboard):
        history = dashboard.config_history("sig-fast")
        series = history["spark.sql.shuffle.partitions"]
        assert len(series) == 10
        assert series[0] > series[-1]

    def test_config_history_unknown_signature(self, dashboard):
        with pytest.raises(KeyError):
            dashboard.config_history("nope")

    def test_performance_trend_sign(self, dashboard):
        assert dashboard.performance_trend("sig-fast") < 0
        assert abs(dashboard.performance_trend("sig-flat")) < 1e-6

    def test_speedup_pct(self, dashboard):
        assert dashboard.speedup_pct("sig-fast") > 50.0
        assert dashboard.speedup_pct("sig-flat") == pytest.approx(0.0)

    def test_speedup_needs_two_windows(self):
        dash = MonitoringDashboard(window=5)
        for i in range(6):
            dash.ingest(make_event("s", i, 1.0))
        assert dash.speedup_pct("s") == 0.0

    def test_summary_fields(self, dashboard):
        s = dashboard.summary("sig-fast")
        assert s.iterations == 10
        assert s.first_window_mean > s.last_window_mean
        assert s.user_id == "u"

    def test_all_summaries(self, dashboard):
        assert len(dashboard.all_summaries()) == 2

    def test_fleet_speedup_weighted_by_time(self, dashboard):
        fleet = dashboard.fleet_speedup_pct()
        fast = dashboard.speedup_pct("sig-fast")
        assert 0 < fleet < fast  # the flat query dilutes the fleet number

    def test_render_report_lists_signatures(self, dashboard):
        text = dashboard.render_report()
        assert "sig-fast" in text
        assert "fleet speed-up" in text
        assert "speedup%" in text

    def test_render_report_respects_max_rows(self, dashboard):
        text = dashboard.render_report(max_rows=1)
        assert ("sig-fast" in text) != ("sig-flat" in text)


class TestServiceMetricsRender:
    @pytest.fixture
    def payload(self):
        return {
            "service": {
                "n_shards": 2,
                "submitted": 40,
                "shed": 4,
                "shed_rate": 0.1,
                "outages": 1,
                "utilization_skew": 1.25,
                "coalesce": True,
                "shards": {
                    "shard-0": {
                        "sessions": 3, "queue_depth": 0,
                        "queue_high_watermark": 5, "enqueued": 20, "shed": 4,
                        "shed_by_reason": {"queue_full": 4}, "processed": 24,
                        "runs": 6, "drain_seconds": 0.01,
                    },
                    "shard-1": {
                        "sessions": 2, "queue_depth": 1,
                        "queue_high_watermark": 3, "enqueued": 12, "shed": 0,
                        "shed_by_reason": {}, "processed": 12,
                        "runs": 4, "drain_seconds": 0.005,
                    },
                },
            }
        }

    def test_render_lists_every_shard_and_aggregates(self, payload):
        from repro.service.dashboard import render_service_metrics

        text = render_service_metrics(payload)
        assert "2 shard(s)" in text and "coalesce=on" in text
        assert "shard-0" in text and "shard-1" in text
        assert "rate 10.0%" in text
        assert "skew=1.25x" in text
        lines = {l.split()[0]: l for l in text.splitlines() if l.startswith("shard-")}
        # Bar scaled to the busiest shard: full bar for shard-0, half for shard-1.
        assert lines["shard-0"].count("#") == 12
        assert lines["shard-1"].count("#") == 6

    def test_render_handles_empty_service(self):
        from repro.service.dashboard import render_service_metrics

        text = render_service_metrics({"service": {"shards": {}}})
        assert "0 shard(s)" in text
        assert "submitted=0" in text
