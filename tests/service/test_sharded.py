"""Sharded service: routing, batched drains, rebalance handoff, failover."""

import hashlib

import numpy as np
import pytest

from repro import telemetry
from repro.core.centroid import CentroidLearning
from repro.core.observation import Observation
from repro.service.admission import Priority, ShedError
from repro.service.sessions import TenantSessionHost
from repro.service.sharded import ShardedAutotuneService, TuneRequest
from repro.sparksim.configs import query_level_space

pytestmark = pytest.mark.service

SPACE = query_level_space()


def seed_of(workload_id: str, signature: str) -> int:
    digest = hashlib.blake2b(
        f"{workload_id}/{signature}".encode(), digest_size=4
    ).digest()
    return int.from_bytes(digest, "big")


def optimizer_factory(workload_id: str, signature: str) -> CentroidLearning:
    return CentroidLearning(SPACE, seed=seed_of(workload_id, signature))


def fresh_service(n_shards=3, **kwargs):
    kwargs.setdefault("queue_capacity", 256)
    return ShardedAutotuneService(n_shards, optimizer_factory, **kwargs)


def observation_for(vector, iteration):
    vector = np.asarray(vector, dtype=float)
    return Observation(
        config=vector,
        performance=10.0 + 0.1 * iteration,
        data_size=1000.0,
        iteration=iteration,
    )


def drive(service, workloads, n_iterations=6):
    """Phased suggest/observe rounds; returns per-session trails."""
    for t in range(n_iterations):
        requests = [TuneRequest.suggest(w, f"{w}/q0") for w in workloads]
        for request in requests:
            assert service.submit(request).accepted
        service.drain_all()
        for w, request in zip(workloads, requests):
            obs = observation_for(request.result, t)
            assert service.submit(TuneRequest.observe(w, f"{w}/q0", obs)).accepted
        service.drain_all()
    return {
        key: [tuple(o.config) for o in s.optimizer.observations.history]
        for key, s in service.sessions().items()
    }


WORKLOADS = [f"artifact-{i:04d}" for i in range(12)]


class TestRouting:
    def test_requests_land_on_ring_owner(self):
        service = fresh_service()
        request = TuneRequest.suggest("artifact-0000", "artifact-0000/q0")
        assert service.submit(request).accepted
        assert request.shard_id == service.ring.owner("artifact-0000")

    def test_sessions_stick_to_one_shard(self):
        service = fresh_service()
        drive(service, WORKLOADS, n_iterations=3)
        for shard_id in service.shard_ids:
            host = service.shard(shard_id).host
            for workload_id, _sig in host.sessions:
                assert service.ring.owner(workload_id) == shard_id

    def test_call_returns_result_or_raises_shed(self):
        service = fresh_service(n_shards=1, queue_capacity=1)
        vector = service.call(TuneRequest.suggest("w", "w/q0"))
        assert vector is not None and len(vector) == SPACE.dim
        # Fill the queue, then a blocking call must surface backpressure.
        assert service.submit(TuneRequest.suggest("w", "w/q0")).accepted
        with pytest.raises(ShedError) as exc_info:
            service.call(TuneRequest.suggest("w", "w/q0"))
        assert exc_info.value.retry_after > 0


class TestBatchedDrainEquivalence:
    def test_coalesced_equals_scalar_trails(self):
        batched = drive(fresh_service(coalesce=True), WORKLOADS)
        scalar = drive(fresh_service(n_shards=1, coalesce=False), WORKLOADS)
        assert batched == scalar

    def test_distinct_session_runs_split_repeats(self):
        batch = [
            TuneRequest.suggest("a", "a/q0"),
            TuneRequest.suggest("b", "b/q0"),
            TuneRequest.suggest("a", "a/q0"),
            TuneRequest.suggest("c", "c/q0"),
            TuneRequest.suggest("a", "a/q0"),
        ]
        runs = list(ShardedAutotuneService._distinct_session_runs(batch))
        assert [len(r) for r in runs] == [2, 2, 1]
        # FIFO across runs: flattening recovers the original order.
        assert [r for run in runs for r in run] == batch

    def test_same_session_requests_apply_in_fifo_order(self):
        service = fresh_service(n_shards=1, coalesce=True)
        first = TuneRequest.suggest("w", "w/q0")
        second = TuneRequest.suggest("w", "w/q0")
        service.submit(first)
        service.submit(second)
        service.drain_all()
        reference = CentroidLearning(SPACE, seed=seed_of("w", "w/q0"))
        assert np.array_equal(first.result, reference.suggest())
        assert np.array_equal(second.result, reference.suggest())

    def test_parallel_drain_matches_serial(self):
        serial = drive(fresh_service(n_shards=4), WORKLOADS)

        service = fresh_service(n_shards=4)
        for t in range(6):
            requests = [TuneRequest.suggest(w, f"{w}/q0") for w in WORKLOADS]
            for request in requests:
                service.submit(request)
            service.drain_all(parallel=True)
            for w, request in zip(WORKLOADS, requests):
                service.submit(
                    TuneRequest.observe(w, f"{w}/q0", observation_for(request.result, t))
                )
            service.drain_all(parallel=True)
        parallel = {
            key: [tuple(o.config) for o in s.optimizer.observations.history]
            for key, s in service.sessions().items()
        }
        assert parallel == serial


class TestRebalance:
    def test_add_shard_moves_only_into_new_shard(self):
        service = fresh_service(n_shards=3)
        drive(service, WORKLOADS, n_iterations=2)
        before = {w: service.ring.owner(w) for w in WORKLOADS}
        new_shard = service.add_shard()
        for w in WORKLOADS:
            after = service.ring.owner(w)
            if after != before[w]:
                assert after == new_shard
            key = (w, f"{w}/q0")
            assert key in service.shard(after).host.sessions

    def test_resize_mid_run_is_bit_identical(self):
        reference = drive(fresh_service(n_shards=3), WORKLOADS, n_iterations=6)

        service = fresh_service(n_shards=3)
        for t in range(6):
            if t == 3:
                service.resize(5)
            requests = [TuneRequest.suggest(w, f"{w}/q0") for w in WORKLOADS]
            for request in requests:
                service.submit(request)
            service.drain_all()
            for w, request in zip(WORKLOADS, requests):
                service.submit(
                    TuneRequest.observe(w, f"{w}/q0", observation_for(request.result, t))
                )
            service.drain_all()
        resized = {
            key: [tuple(o.config) for o in s.optimizer.observations.history]
            for key, s in service.sessions().items()
        }
        assert resized == reference
        assert service.n_shards == 5

    def test_remove_last_shard_forbidden(self):
        service = fresh_service(n_shards=1)
        with pytest.raises(ValueError):
            service.remove_shard("shard-0")

    def test_shrink_hands_sessions_to_survivors(self):
        service = fresh_service(n_shards=4)
        drive(service, WORKLOADS, n_iterations=2)
        total_before = len(service.sessions())
        service.resize(2)
        assert service.n_shards == 2
        assert len(service.sessions()) == total_before


class TestMisroute:
    def test_misroute_violates_stickiness(self):
        service = fresh_service(n_shards=3)
        victim = WORKLOADS[0]
        owner = service.ring.owner(victim)
        wrong = next(s for s in service.shard_ids if s != owner)
        service.plant_misroute(victim, wrong, after=0)
        request = TuneRequest.suggest(victim, f"{victim}/q0")
        service.submit(request)
        assert request.shard_id == wrong

    def test_misroute_to_unknown_shard_rejected(self):
        with pytest.raises(KeyError):
            fresh_service().plant_misroute("w", "shard-99")


class TestMetrics:
    def test_metrics_shape_and_totals(self):
        service = fresh_service(n_shards=3)
        drive(service, WORKLOADS, n_iterations=2)
        payload = service.metrics()["service"]
        assert payload["n_shards"] == 3
        assert payload["submitted"] == 12 * 2 * 2
        assert payload["shed"] == 0
        assert payload["utilization_skew"] >= 1.0
        processed = sum(s["processed"] for s in payload["shards"].values())
        assert processed == payload["submitted"]

    def test_service_counters_namespaced(self):
        with telemetry.capture() as cap:
            drive(fresh_service(n_shards=2), WORKLOADS[:4], n_iterations=1)
        names = set(cap.counters())
        assert any(n.startswith("service.requests") for n in names)
        assert any(n.startswith("service.shard.processed") for n in names)


class TestTuneRequestValidation:
    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            TuneRequest("fetch", "w", "q")

    def test_observe_requires_observation(self):
        with pytest.raises(ValueError):
            TuneRequest("observe", "w", "q")

    def test_priority_defaults_to_batch(self):
        assert TuneRequest.suggest("w", "q").priority is Priority.BATCH
