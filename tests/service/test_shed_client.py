"""Client-side load-shed handling: retry_after honored, sheds counted."""

import pytest

from repro import telemetry
from repro.core.app_level import AppCache
from repro.service.admission import ShedError, ShedVerdict
from repro.service.auth import SasTokenIssuer
from repro.service.backend import AutotuneBackend
from repro.service.client import AutotuneClient
from repro.service.resilience import RetryPolicy
from repro.service.storage import StorageManager
from repro.sparksim.configs import app_level_space, full_space, query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise
from repro.workloads.tpch import tpch_plan

pytestmark = pytest.mark.service


def shed_error(retry_after=0.25):
    return ShedError(ShedVerdict(False, "queue_full", retry_after=retry_after))


@pytest.fixture
def backend(tmp_path):
    return AutotuneBackend(
        storage=StorageManager(tmp_path),
        issuer=SasTokenIssuer("secret"),
        query_space=query_level_space(),
        app_space=app_level_space(),
        full_space=full_space(),
        app_cache=AppCache(),
        min_events_for_model=3,
    )


def make_client(backend, sleeps, max_attempts=3):
    policy = RetryPolicy(
        max_attempts=max_attempts, base_delay=0.01, max_delay=5.0,
        sleep=sleeps.append,
    )
    return AutotuneClient(
        backend, "app-1", "artifact-1", "user-1", query_level_space(),
        seed=0, retry_policy=policy,
    )


def buffer_one_event(client):
    plan = tpch_plan(6, 1.0)
    config = client.suggest_config(plan)
    event = SparkSimulator(noise=low_noise(), seed=1).run_to_event(
        plan, config, app_id="app-1", artifact_id="artifact-1",
        user_id="user-1", iteration=0,
        embedding=client.embedder.embed(plan),
    )
    client.on_query_end(event)


class ShedNTimes:
    """Wrap a backend method to shed the first ``n`` calls."""

    def __init__(self, inner, n, retry_after=0.25):
        self.inner = inner
        self.remaining = n
        self.retry_after = retry_after
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise shed_error(self.retry_after)
        return self.inner(*args, **kwargs)


class TestClientShedHandling:
    def test_transient_shed_retried_and_counted(self, backend):
        sleeps = []
        client = make_client(backend, sleeps)
        buffer_one_event(client)
        backend.submit_events = ShedNTimes(backend.submit_events, n=2)
        with telemetry.capture() as cap:
            flushed = client.flush_events()
        assert flushed == 1
        assert client.requests_shed == 2
        assert client.flush_failures == 0
        assert cap.counters()["client.requests_shed{phase=retried}"] == 2
        # Backoff floored at the verdict's retry_after hint (schedule would
        # have been [0.01, 0.02]).
        assert sleeps == [0.25, 0.25]

    def test_exhausted_sheds_keep_events_pending(self, backend):
        sleeps = []
        client = make_client(backend, sleeps, max_attempts=2)
        buffer_one_event(client)
        backend.submit_events = ShedNTimes(backend.submit_events, n=99)
        with telemetry.capture() as cap:
            flushed = client.flush_events()
        assert flushed == 0
        assert client.flush_failures == 1
        # One shed per retry sleep plus one for the exhaustion itself.
        assert client.requests_shed == 2
        counters = cap.counters()
        assert counters["client.requests_shed{phase=retried}"] == 1
        assert counters["client.requests_shed{phase=exhausted}"] == 1
        # The buffered event survives for the next flush.
        backend.submit_events = backend.submit_events.inner
        assert client.flush_events() == 1
        assert client.requests_shed == 2

    def test_non_shed_transients_do_not_count(self, backend):
        from repro.service.resilience import TransientServiceError

        sleeps = []
        client = make_client(backend, sleeps)
        buffer_one_event(client)
        original = backend.submit_events
        state = {"failed": False}

        def flaky(*args, **kwargs):
            if not state["failed"]:
                state["failed"] = True
                raise TransientServiceError("blip")
            return original(*args, **kwargs)

        backend.submit_events = flaky
        assert client.flush_events() == 1
        assert client.requests_shed == 0
        assert sleeps == [0.01]
