"""Tests for the in-process event hub."""

import pytest

from repro.service.events_hub import EventHub


def test_buffer_size_validation():
    with pytest.raises(ValueError):
        EventHub(buffer_size=0)


def test_publish_reaches_all_subscribers():
    hub = EventHub()
    seen_a, seen_b = [], []
    hub.subscribe("a", seen_a.append)
    hub.subscribe("b", seen_b.append)
    hub.publish("event-1")
    assert seen_a == ["event-1"]
    assert seen_b == ["event-1"]
    assert hub.published_count == 1


def test_duplicate_subscriber_rejected():
    hub = EventHub()
    hub.subscribe("a", lambda e: None)
    with pytest.raises(ValueError):
        hub.subscribe("a", lambda e: None)


def test_unsubscribe():
    hub = EventHub()
    seen = []
    hub.subscribe("a", seen.append)
    assert hub.unsubscribe("a")
    assert not hub.unsubscribe("a")
    hub.publish("x")
    assert seen == []


def test_failing_subscriber_does_not_block_others():
    hub = EventHub()
    seen = []

    def broken(event):
        raise RuntimeError("boom")

    hub.subscribe("broken", broken)
    hub.subscribe("ok", seen.append)
    hub.publish("e1")
    assert seen == ["e1"]
    assert len(hub.failures) == 1
    assert hub.failures[0].subscriber == "broken"
    assert isinstance(hub.failures[0].error, RuntimeError)


def test_recent_returns_newest_last():
    hub = EventHub(buffer_size=3)
    for i in range(5):
        hub.publish(i)
    assert hub.recent(10) == [2, 3, 4]   # bounded buffer dropped 0, 1
    assert hub.recent(2) == [3, 4]


class _Keyed:
    def __init__(self, dedup_key, payload=None):
        self.dedup_key = dedup_key
        self.payload = payload


class TestDedupBookkeeping:
    """Pin the dedup counters: drops must never inflate published_count."""

    def test_published_count_excludes_dropped_duplicates(self):
        hub = EventHub(dedup=True)
        seen = []
        hub.subscribe("a", seen.append)
        first = _Keyed("k1")
        hub.publish(first)
        hub.publish(_Keyed("k1"))   # duplicate: dropped before fan-out
        hub.publish(_Keyed("k2"))
        assert hub.published_count == 2
        assert hub.duplicates_dropped == 1
        assert seen == [first, hub.recent(1)[0]]
        assert len(hub.recent(10)) == 2   # replay buffer untouched by dupes

    def test_keyless_events_never_deduplicated(self):
        hub = EventHub(dedup=True)
        hub.publish("same")
        hub.publish("same")
        hub.publish(_Keyed(None))
        hub.publish(_Keyed(None))
        assert hub.published_count == 4
        assert hub.duplicates_dropped == 0

    def test_dedup_disabled_by_default(self):
        hub = EventHub()
        hub.publish(_Keyed("k1"))
        hub.publish(_Keyed("k1"))
        assert hub.published_count == 2
        assert hub.duplicates_dropped == 0

    def test_drop_counted_in_telemetry(self):
        from repro import telemetry

        with telemetry.capture() as cap:
            hub = EventHub(dedup=True)
            hub.publish(_Keyed("k"))
            hub.publish(_Keyed("k"))
        counters = cap.counters()
        assert counters["hub.duplicates_dropped"] == 1
        assert counters["hub.published"] == 1

    def test_backend_metrics_expose_hub_deduped(self, tmp_path):
        from repro.service.auth import SasTokenIssuer
        from repro.service.backend import AutotuneBackend
        from repro.service.storage import StorageManager
        from repro.sparksim.configs import query_level_space

        backend = AutotuneBackend(
            storage=StorageManager(tmp_path),
            issuer=SasTokenIssuer("secret"),
            query_space=query_level_space(),
            hub=EventHub(dedup=True),
            min_events_for_model=3,
        )
        backend.hub.publish(_Keyed("k"))
        backend.hub.publish(_Keyed("k"))
        payload = backend.metrics()["backend"]
        assert payload["hub_published"] == 1
        assert payload["hub_deduped"] == 1
