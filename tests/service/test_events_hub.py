"""Tests for the in-process event hub."""

import pytest

from repro.service.events_hub import EventHub


def test_buffer_size_validation():
    with pytest.raises(ValueError):
        EventHub(buffer_size=0)


def test_publish_reaches_all_subscribers():
    hub = EventHub()
    seen_a, seen_b = [], []
    hub.subscribe("a", seen_a.append)
    hub.subscribe("b", seen_b.append)
    hub.publish("event-1")
    assert seen_a == ["event-1"]
    assert seen_b == ["event-1"]
    assert hub.published_count == 1


def test_duplicate_subscriber_rejected():
    hub = EventHub()
    hub.subscribe("a", lambda e: None)
    with pytest.raises(ValueError):
        hub.subscribe("a", lambda e: None)


def test_unsubscribe():
    hub = EventHub()
    seen = []
    hub.subscribe("a", seen.append)
    assert hub.unsubscribe("a")
    assert not hub.unsubscribe("a")
    hub.publish("x")
    assert seen == []


def test_failing_subscriber_does_not_block_others():
    hub = EventHub()
    seen = []

    def broken(event):
        raise RuntimeError("boom")

    hub.subscribe("broken", broken)
    hub.subscribe("ok", seen.append)
    hub.publish("e1")
    assert seen == ["e1"]
    assert len(hub.failures) == 1
    assert hub.failures[0].subscriber == "broken"
    assert isinstance(hub.failures[0].error, RuntimeError)


def test_recent_returns_newest_last():
    hub = EventHub(buffer_size=3)
    for i in range(5):
        hub.publish(i)
    assert hub.recent(10) == [2, 3, 4]   # bounded buffer dropped 0, 1
    assert hub.recent(2) == [3, 4]
