"""Shared fixtures for the test suite.

Opt-in suites (``chaos``, ``verify``) are deselected from default runs to
keep tier-1 fast; run them with ``pytest -m chaos`` / ``pytest -m verify``
(or ``make chaos`` / ``make verify``).  The ``telemetry`` marker is
deliberately *not* deselected: telemetry tests run in tier-1, the marker
only exists to focus them (``pytest -m telemetry``) — the full tier map is
in ``docs/testing.md``.
"""

import re

import numpy as np
import pytest

# Markers whose tests are opt-in: skipped unless the marker appears (as a
# whole word) in the -m expression, so both `-m verify` and `-m "not
# verify"` address the suite explicitly while unrelated markers that merely
# contain the word (e.g. a hypothetical `chaos_storm`) do not.
_OPT_IN_MARKERS = ("chaos", "verify", "drift", "stages")


def pytest_collection_modifyitems(config, items):
    markexpr = config.getoption("-m", default="") or ""
    for marker in _OPT_IN_MARKERS:
        if re.search(rf"\b{marker}\b", markexpr):
            continue  # the user asked for (or excluded) this suite explicitly
        skip = pytest.mark.skip(
            reason=f"{marker} suite: run with `pytest -m {marker}`"
        )
        for item in items:
            # get_closest_marker, not `marker in item.keywords`: keywords
            # also contain parent node names, so a tests/verify/ directory
            # or a test_chaos_* function would otherwise be skipped even
            # without the marker.
            if item.get_closest_marker(marker) is not None:
                item.add_marker(skip)

from repro.core.config_space import ConfigSpace, Parameter
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import no_noise
from repro.workloads.tpch import tpch_plan


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_space():
    """A simple 3-knob space with mixed scales."""
    return ConfigSpace([
        Parameter(name="linear", low=0.0, high=100.0, default=50.0),
        Parameter(name="logscale", low=1.0, high=10000.0, default=100.0, log_scale=True),
        Parameter(name="count", low=1, high=64, default=8, integer=True),
    ])


@pytest.fixture
def spark_space():
    return query_level_space()


@pytest.fixture
def q3_plan():
    return tpch_plan(3, scale_factor=1.0)


@pytest.fixture
def quiet_simulator():
    return SparkSimulator(noise=no_noise(), seed=0)
