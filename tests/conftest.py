"""Shared fixtures for the test suite.

Chaos-marked tests (the fault-injection suite) are deselected from default
runs to keep tier-1 fast; run them with ``pytest -m chaos`` (or
``make chaos``).
"""

import numpy as np
import pytest


def pytest_collection_modifyitems(config, items):
    markexpr = config.getoption("-m", default="") or ""
    if "chaos" in markexpr:
        return  # the user asked for (or excluded) chaos explicitly
    skip_chaos = pytest.mark.skip(reason="chaos suite: run with `pytest -m chaos`")
    for item in items:
        if "chaos" in item.keywords:
            item.add_marker(skip_chaos)

from repro.core.config_space import ConfigSpace, Parameter
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import no_noise
from repro.workloads.tpch import tpch_plan


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_space():
    """A simple 3-knob space with mixed scales."""
    return ConfigSpace([
        Parameter(name="linear", low=0.0, high=100.0, default=50.0),
        Parameter(name="logscale", low=1.0, high=10000.0, default=100.0, log_scale=True),
        Parameter(name="count", low=1, high=64, default=8, integer=True),
    ])


@pytest.fixture
def spark_space():
    return query_level_space()


@pytest.fixture
def q3_plan():
    return tpch_plan(3, scale_factor=1.0)


@pytest.fixture
def quiet_simulator():
    return SparkSimulator(noise=no_noise(), seed=0)
