"""Tier-1 guard: ``import repro.verify`` must stay dependency-free.

The registry and the differential oracles are meant to run inline in
production sessions, where hypothesis (a test extra) may not be installed.
This test imports the package in a subprocess with hypothesis *blocked* at
the import system, proving the split holds; only
:mod:`repro.verify.properties` (loaded by the verify-marked suite) may
import it.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

PROBE = """
import sys


class HypothesisBlocker:
    def find_spec(self, name, path=None, target=None):
        if name == "hypothesis" or name.startswith("hypothesis."):
            raise ImportError("hypothesis is blocked in this probe")
        return None


sys.meta_path.insert(0, HypothesisBlocker())

import repro.verify
from repro.verify import InvariantRegistry, default_registry, diff, run_all

assert "hypothesis" not in sys.modules, "repro.verify pulled in hypothesis"
registry = default_registry()
assert len(registry) == 5, registry.names()
assert registry.names() == [
    "centroid_in_bounds",
    "guardrail_cooldown",
    "window_statistics",
    "gp_posterior",
    "noise_stream",
]
print("IMPORT-GUARD-OK")
"""


def test_verify_imports_without_hypothesis():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", PROBE],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "IMPORT-GUARD-OK" in proc.stdout


def test_properties_module_is_the_only_hypothesis_importer():
    import repro.verify

    root = Path(repro.verify.__file__).parent
    for path in sorted(root.glob("*.py")):
        source = path.read_text(encoding="utf-8")
        uses_hypothesis = "import hypothesis" in source or "from hypothesis" in source
        if path.name == "properties.py":
            assert uses_hypothesis
        else:
            assert not uses_hypothesis, f"{path.name} imports hypothesis"
