"""Metamorphic property suite (verify marker; needs hypothesis).

The strategies live in :mod:`repro.verify.properties`; this module states
the properties themselves:

* FIND_BEST (RAW/NORMALIZED) is invariant under permutation of the window;
* batch execution is bitwise-equivalent to scalar execution on arbitrary
  drawn plans/seeds (the property form of ``verify.diff.diff_scalar_batch``);
* normalized encodings are invariant under uniform rescaling of a space's
  natural units;
* fault plans are pure functions of ``(seed, kind, opportunity)`` and
  per-kind independent;
* Eq.-8 noise is stream-deterministic and never deflates the baseline;
* noise-free Centroid Learning converges on the convex synthetic surface;
* a lock-step population of K=1 is bitwise the plain ``TuningSession`` loop
  on arbitrary drawn plans/noise/hyperparameters/faults;
* lock-step traces are invariant under permutation of the session order
  (including populations mixing faulty and clean simulators).
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.centroid import CentroidLearning
from repro.core.config_space import ConfigSpace, Parameter
from repro.core.find_best import FindBestMode, find_best
from repro.core.observation import Observation, ObservationWindow
from repro.experiments.lockstep import LockstepSessions
from repro.faults.plan import FaultKind, FaultPlan
from repro.sparksim.noise import no_noise
from repro.verify.diff import diff_scalar_batch
from repro.verify.properties import (
    config_spaces,
    fault_plans,
    lockstep_populations,
    noise_models,
    observations,
    physical_plans,
    seeds,
    unit_vectors,
)
from repro.workloads.synthetic import default_synthetic_objective

pytestmark = pytest.mark.verify

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
EXPENSIVE = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- FIND_BEST permutation invariance -----------------------------------------------


@st.composite
def windows_with_permutation(draw):
    space = draw(config_spaces(max_dim=3))
    n = draw(st.integers(min_value=1, max_value=8))
    obs = [draw(observations(space, iteration=i)) for i in range(n)]
    permuted = draw(st.permutations(obs))
    return obs, permuted


def _window_of(obs):
    window = ObservationWindow(max(len(obs), 2))
    for o in obs:
        window.append(o)
    return window


@RELAXED
@given(data=windows_with_permutation())
def test_find_best_raw_is_permutation_invariant(data):
    obs, permuted = data
    best_a = find_best(_window_of(obs), mode=FindBestMode.RAW)
    best_b = find_best(_window_of(permuted), mode=FindBestMode.RAW)
    # Ties may resolve to different observations; the winning *criterion
    # value* must be identical.
    assert best_a.performance == best_b.performance


@RELAXED
@given(data=windows_with_permutation())
def test_find_best_normalized_is_permutation_invariant(data):
    obs, permuted = data
    best_a = find_best(_window_of(obs), mode=FindBestMode.NORMALIZED)
    best_b = find_best(_window_of(permuted), mode=FindBestMode.NORMALIZED)
    assert (best_a.performance / best_a.data_size
            == best_b.performance / best_b.data_size)


# -- scalar/batch equivalence on drawn workloads ------------------------------------


@EXPENSIVE
@given(plan=physical_plans(), seed=seeds(), n=st.integers(min_value=2, max_value=5))
def test_batch_execution_matches_scalar_on_drawn_plans(plan, seed, n):
    report = diff_scalar_batch(plan=plan, n_configs=n, seed=seed)
    assert report.equivalent, report.summary()


# -- scale invariance of normalized encodings ---------------------------------------


@RELAXED
@given(
    space=config_spaces(allow_integer=False),
    data=st.data(),
    k=st.floats(min_value=1e-3, max_value=1e3),
)
def test_normalized_encoding_is_scale_invariant(space, data, k):
    unit = data.draw(unit_vectors(space))
    vec = space.denormalize(unit)
    naturals = [p.to_natural(vec[i]) for i, p in enumerate(space)]
    scaled_space = ConfigSpace([
        Parameter(
            name=p.name,
            low=p.low * k,
            high=p.high * k,
            default=min(max(p.default * k, p.low * k), p.high * k),
            log_scale=p.log_scale,
        )
        for p in space
    ])
    scaled_vec = np.array([
        p.to_internal(naturals[i] * k) for i, p in enumerate(scaled_space)
    ])
    assert np.allclose(
        space.normalize(vec), scaled_space.normalize(scaled_vec), atol=1e-6
    )


# -- fault-plan determinism ---------------------------------------------------------


def _twin(plan: FaultPlan) -> FaultPlan:
    specs = [plan.spec(k) for k in FaultKind if plan.spec(k) is not None]
    return FaultPlan(specs, seed=plan.seed)


@RELAXED
@given(plan=fault_plans(), n=st.integers(min_value=1, max_value=30))
def test_fault_plans_replay_identically(plan, n):
    twin = _twin(plan)
    decisions = {
        kind: [plan.should_fire(kind) for _ in range(n)] for kind in FaultKind
    }
    replayed = {
        kind: [twin.should_fire(kind) for _ in range(n)] for kind in FaultKind
    }
    assert decisions == replayed
    assert plan.log == twin.log


@RELAXED
@given(plan=fault_plans(max_kinds=3), n=st.integers(min_value=1, max_value=30))
def test_fault_kinds_are_mutually_independent(plan, n):
    scheduled = [k for k in FaultKind if plan.spec(k) is not None]
    if not scheduled:
        return
    kind = scheduled[0]
    # Full plan interleaves every kind; the solo plan sees only `kind`.
    full = _twin(plan)
    solo = FaultPlan([plan.spec(kind)], seed=plan.seed)
    full_decisions = []
    solo_decisions = []
    for _ in range(n):
        for k in scheduled:
            fired = full.should_fire(k)
            if k is kind:
                full_decisions.append(fired)
        solo_decisions.append(solo.should_fire(kind))
    assert full_decisions == solo_decisions


# -- Eq.-8 noise determinism and inflation ------------------------------------------


@RELAXED
@given(
    noise=noise_models(),
    seed=seeds(),
    baselines=st.lists(
        st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=6
    ),
)
def test_noise_is_stream_deterministic_and_inflating(noise, seed, baselines):
    draws = [noise.apply(g0, np.random.default_rng(seed + i))
             for i, g0 in enumerate(baselines)]
    replayed = [noise.apply(g0, np.random.default_rng(seed + i))
                for i, g0 in enumerate(baselines)]
    assert draws == replayed
    for g0, g in zip(baselines, draws):
        assert g >= g0
    arr = np.array(baselines)
    many_a = noise.apply_many(arr, np.random.default_rng(seed))
    many_b = noise.apply_many(arr, np.random.default_rng(seed))
    assert np.array_equal(many_a, many_b)
    assert np.all(many_a >= arr)


# -- lock-step engine: K=1 degeneracy and session-order invariance ------------------


def _assert_same_trace(a, b):
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra == rb  # frozen dataclass: bitwise field-tuple equality


@EXPENSIVE
@given(
    build=lockstep_populations(min_sessions=1, max_sessions=1),
    n=st.integers(min_value=3, max_value=10),
)
def test_lockstep_k1_is_the_plain_tuning_session(build, n):
    # A fleet of one must degenerate to TuningSession exactly — same
    # suggestions, same noise/fault streams, same guardrail verdicts.
    lock_specs, seq_specs = build(), build()
    lock_trace = LockstepSessions(lock_specs).run(n)[0]
    seq_trace = seq_specs[0].to_session().run(n)
    _assert_same_trace(lock_trace, seq_trace)
    lock_opt, seq_opt = lock_specs[0].optimizer, seq_specs[0].optimizer
    assert np.array_equal(lock_opt.centroid, seq_opt.centroid)
    assert [o.performance for o in lock_opt.observations.history] == [
        o.performance for o in seq_opt.observations.history
    ]
    if lock_opt.guardrail is not None:
        assert lock_opt.guardrail.decisions == seq_opt.guardrail.decisions
        assert lock_opt.guardrail.active == seq_opt.guardrail.active


@EXPENSIVE
@given(
    build=lockstep_populations(min_sessions=2, max_sessions=5),
    data=st.data(),
    n=st.integers(min_value=3, max_value=8),
)
def test_lockstep_is_invariant_under_session_reordering(build, data, n):
    # Sessions are independent: running the same population in a permuted
    # order (faulty and clean simulators mixed) must yield each session's
    # exact trace, just relabeled.
    specs_a, specs_b = build(), build()
    perm = data.draw(st.permutations(list(range(len(specs_a)))))
    traces_a = LockstepSessions(specs_a).run(n)
    traces_b = LockstepSessions([specs_b[i] for i in perm]).run(n)
    for pos, original in enumerate(perm):
        _assert_same_trace(traces_a[original], traces_b[pos])


# -- noise-free convergence on the convex synthetic surface -------------------------


@EXPENSIVE
@given(seed=st.integers(min_value=0, max_value=100))
def test_noise_free_centroid_learning_converges(seed):
    objective = default_synthetic_objective(noise=no_noise(), seed=7 + seed % 5)
    optimizer = CentroidLearning(objective.space, window_size=6, seed=seed)
    rng = np.random.default_rng(seed + 999)
    best = np.inf
    for t in range(25):
        vector = optimizer.suggest(data_size=1000.0)
        performance = objective.observe(vector, 1000.0, rng)
        optimizer.observe(Observation(
            config=vector, data_size=1000.0,
            performance=performance, iteration=t,
        ))
        best = min(best, objective.true_value(vector))
    default_value = objective.true_value(objective.space.default_vector())
    initial_gap = objective.optimality_gap(objective.space.default_vector())
    final_gap = objective.optimality_gap(optimizer.centroid)
    # Empirical margins over 40 seeds: best/default <= 0.33, gap ratio
    # <= 0.39 — the bounds below leave ~2x headroom.
    assert best <= 0.6 * default_value
    assert final_gap <= 0.7 * initial_gap
