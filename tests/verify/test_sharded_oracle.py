"""The sharded-vs-single differential oracle and its misroute sensitivity.

``diff_sharded_single`` is the contract for the whole sharded service: a
tenant session must not be able to tell whether it was served by one
scalar backend or an N-way sharded deployment with batched drains —
observation trails, centroid state, and every non-``service.*`` telemetry
counter must match bit-for-bit.  The planted hash-ring misroute is the
acceptance check that the oracle actually *can* detect a routing bug: a
misrouted tenant silently grows a second session on the wrong shard, and
the oracle must report the divergence.
"""

import pytest

from repro.verify.diff import diff_sharded_single

pytestmark = pytest.mark.verify


def plant_misroute(service):
    """Reroute one workload to a non-owner shard without state handoff."""
    victim = "artifact-0000"
    owner = service.ring.owner(victim)
    wrong = next(s for s in service.shard_ids if s != owner)
    service.plant_misroute(victim, wrong, after=5)


class TestShardedOracle:
    def test_sharded_equals_single_bitwise(self):
        report = diff_sharded_single(seed=0)
        assert report.equivalent, report.summary()
        assert report.tolerance == 0.0
        # A real fleet comparison, not a vacuous one.
        assert report.steps_compared > 100

    @pytest.mark.parametrize("seed", [1, 2])
    def test_equivalence_across_seeds(self, seed):
        report = diff_sharded_single(
            seed=seed, n_workloads=6, n_iterations=6, n_shards=3
        )
        assert report.equivalent, report.summary()

    def test_equivalence_without_event_forwarding(self):
        report = diff_sharded_single(seed=0, events=False)
        assert report.equivalent, report.summary()

    def test_planted_misroute_is_caught(self):
        report = diff_sharded_single(seed=0, mutate_sharded=plant_misroute)
        assert not report.equivalent
        # The misrouted tenant forked a fresh session on the wrong shard:
        # the oracle reports either the extra session (length mismatch) or
        # the first divergent field.
        summary = report.summary()
        assert "sharded_vs_single" in summary
        if report.divergence is not None:
            assert report.divergence.field
