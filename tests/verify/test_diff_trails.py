"""Tier-1 unit tests for the trail-diff engine (no workloads involved)."""

import numpy as np

from repro.verify import DiffReport, Divergence, diff_trails


def test_identical_trails_are_equivalent():
    trail = [{"a": 1.0, "b": np.array([1.0, 2.0])}, {"a": 2.0, "b": np.array([3.0, 4.0])}]
    report = diff_trails("t", trail, [dict(s) for s in trail])
    assert report.equivalent
    assert report.steps_compared == 2
    assert "equivalent over 2 steps" in report.summary()


def test_first_divergent_step_and_field_reported():
    a = [{"x": 1.0, "y": 1.0}, {"x": 2.0, "y": 9.0}, {"x": 0.0, "y": 0.0}]
    b = [{"x": 1.0, "y": 1.0}, {"x": 2.0, "y": 3.0}, {"x": 5.0, "y": 0.0}]
    report = diff_trails("t", a, b)
    assert not report.equivalent
    assert report.divergence == Divergence(1, "y", 9.0, 3.0)
    assert "step 1" in report.summary()


def test_missing_field_is_a_divergence():
    report = diff_trails("t", [{"x": 1.0}], [{"x": 1.0, "extra": 2.0}])
    assert report.divergence is not None
    assert report.divergence.field == "extra"


def test_length_mismatch_reported_with_clean_prefix():
    a = [{"x": 1.0}, {"x": 2.0}]
    report = diff_trails("t", a, a[:1])
    assert not report.equivalent
    assert report.length_mismatch == (2, 1)
    assert report.divergence is None  # the common prefix agreed
    assert report.steps_compared == 1


def test_tolerance_applies_to_floats_and_arrays():
    a = [{"x": 1.0, "v": np.array([1.0, 2.0])}]
    b = [{"x": 1.0 + 5e-8, "v": np.array([1.0, 2.0 + 5e-8])}]
    assert not diff_trails("t", a, b).equivalent
    assert diff_trails("t", a, b, tolerance=1e-7).equivalent


def test_nan_equals_nan():
    a = [{"x": float("nan")}]
    b = [{"x": float("nan")}]
    assert diff_trails("t", a, b).equivalent


def test_nested_mappings_compared_recursively():
    a = [{"config": {"k1": 1.0, "k2": 2.0}}]
    b = [{"config": {"k1": 1.0, "k2": 2.5}}]
    report = diff_trails("t", a, b)
    assert report.divergence is not None
    assert report.divergence.field == "config"


def test_array_shape_mismatch_is_a_divergence():
    a = [{"v": np.zeros(3)}]
    b = [{"v": np.zeros(4)}]
    assert not diff_trails("t", a, b, tolerance=1.0).equivalent


def test_counter_diffs_respect_ignore_prefixes():
    trail = [{"x": 1.0}]
    report = diff_trails(
        "t", trail, trail,
        counters_a={"gp.fits": 3, "parallel.tasks{mode=fork}": 8, "shared": 1},
        counters_b={"gp.fits": 5, "parallel.tasks{mode=serial}": 8, "shared": 1},
        ignore_counter_prefixes=("parallel.",),
    )
    assert not report.equivalent
    assert report.counter_diffs == {
        "gp.fits": (3.0, 5.0),
        # both parallel.* keys ignored; the asymmetric key pair would
        # otherwise show up as two (0 vs 8) diffs
    }


def test_missing_counter_defaults_to_zero():
    report = diff_trails(
        "t", [{"x": 1.0}], [{"x": 1.0}],
        counters_a={"only.left": 2},
        counters_b={},
    )
    assert report.counter_diffs == {"only.left": (2.0, 0.0)}


def test_empty_report_summary_mentions_divergence_count():
    report = DiffReport(name="t", steps_compared=0)
    assert report.equivalent
