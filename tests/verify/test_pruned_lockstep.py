"""Lock-step parity for pruned-subspace sessions (``make stages``).

The vectorized lock-step engine earned bitwise parity with the sequential
loop on full spaces (tests/experiments/test_lockstep.py, ``make verify``);
this battery pins the same contract when the population tunes inside a
:class:`~repro.core.importance.PrunedSpace` — the engine's trace
materialization must decode kept-dim vectors through ``decode_matrix`` to
the same full-space config dicts the sequential path's per-step
``to_dict`` emits, dropped knobs pinned and all.
"""

import numpy as np
import pytest

from repro.core.centroid import CentroidLearning
from repro.core.guardrail import Guardrail
from repro.core.importance import PrunedSpace, rank_knobs
from repro.experiments.lockstep import (
    LockstepSessions,
    SessionSpec,
    run_sequential,
)
from repro.sparksim.configs import full_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise
from repro.workloads.tpch import tpch_plan

pytestmark = pytest.mark.stages

QUERIES = (1, 3, 5, 6)


def make_population(seed, k=6, top_k=3, guardrailed=True):
    """A fresh K-session population over one shared pruned subspace."""
    space = full_space()
    ranking = rank_knobs(tpch_plan(3), space, seed=seed)
    pruned = PrunedSpace.from_ranking(ranking, space, top_k)
    specs = []
    for i in range(k):
        guardrail = Guardrail(
            min_iterations=4, threshold=0.15, patience=2
        ) if guardrailed else None
        specs.append(SessionSpec(
            plan=tpch_plan(QUERIES[i % len(QUERIES)]),
            simulator=SparkSimulator(noise=low_noise(), seed=seed * 101 + i),
            optimizer=CentroidLearning(
                pruned,
                window_size=8,
                alpha=0.05 + 0.02 * i,
                seed=seed * 13 + i,
                guardrail=guardrail,
            ),
        ))
    return specs, pruned


def record_fields(record):
    return (
        record.config,
        record.observed_seconds,
        record.true_seconds,
        record.data_size,
        record.tuning_active,
    )


class TestPrunedLockstepParity:
    @pytest.mark.parametrize("seed", [0, 1, 4])
    def test_lockstep_matches_sequential_bitwise(self, seed):
        lock_specs, _ = make_population(seed)
        seq_specs, _ = make_population(seed)
        lock_traces = LockstepSessions(lock_specs).run(12)
        seq_traces = run_sequential(seq_specs, 12)
        assert len(lock_traces) == len(seq_traces)
        for lock, seq in zip(lock_traces, seq_traces):
            assert len(lock.records) == len(seq.records) == 12
            for a, b in zip(lock.records, seq.records):
                assert record_fields(a) == record_fields(b)

    def test_unguardrailed_population_also_matches(self):
        lock_specs, _ = make_population(2, k=4, guardrailed=False)
        seq_specs, _ = make_population(2, k=4, guardrailed=False)
        lock_traces = LockstepSessions(lock_specs).run(10)
        seq_traces = run_sequential(seq_specs, 10)
        for lock, seq in zip(lock_traces, seq_traces):
            for a, b in zip(lock.records, seq.records):
                assert record_fields(a) == record_fields(b)

    def test_traces_carry_full_space_configs_with_pins(self):
        specs, pruned = make_population(0, k=3)
        traces = LockstepSessions(specs).run(8)
        pinned = pruned.pinned_dict()
        full_names = set(pruned.full_space.names)
        for trace in traces:
            for record in trace.records:
                assert set(record.config) == full_names
                for name, value in pinned.items():
                    assert record.config[name] == value

    def test_final_optimizer_state_syncs_back(self):
        lock_specs, pruned = make_population(3, k=4)
        seq_specs, _ = make_population(3, k=4)
        LockstepSessions(lock_specs).run(10)
        run_sequential(seq_specs, 10)
        for lock_spec, seq_spec in zip(lock_specs, seq_specs):
            np.testing.assert_array_equal(
                lock_spec.optimizer._centroid, seq_spec.optimizer._centroid
            )
            assert (
                lock_spec.optimizer._centroid.shape == (pruned.dim,)
            )  # the engine tunes in the kept-dim space
