"""Acceptance: the full registry sweeps clean inline on realistic sessions.

Two sessions together exercise all five built-in checkers:

* a fig-02-style noisy Centroid Learning run (high Eq.-8 noise, guardrail
  with cooldown) covers centroid/guardrail/window/noise;
* a Bayesian-optimization run covers the GP-posterior checker.
"""

import pytest

from repro import telemetry
from repro.core.centroid import CentroidLearning
from repro.core.guardrail import Guardrail
from repro.core.session import TuningSession
from repro.optimizers.bayesian import BayesianOptimization
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import high_noise, low_noise
from repro.verify import default_registry
from repro.workloads.tpch import tpch_plan

pytestmark = pytest.mark.verify


def checked_names(registry, session):
    return {
        r.invariant
        for r in registry.check_session(session, raise_on_violation=False)
        if r.checked and r.violation is None
    }


def test_noisy_centroid_session_sweeps_clean():
    space = query_level_space()
    registry = default_registry()
    session = TuningSession(
        plan=tpch_plan(3, scale_factor=1.0),
        simulator=SparkSimulator(noise=high_noise(), seed=0),
        optimizer=CentroidLearning(
            space, window_size=8, seed=0,
            guardrail=Guardrail(min_iterations=15, patience=2, cooldown=4),
        ),
        verify=registry,
    )
    with telemetry.capture() as cap:
        session.run(60)  # raises InvariantViolation on any broken invariant
    counters = cap.counters()
    assert counters.get("session.verify_sweeps") == 60
    assert not any(k.startswith("verify.violations") for k in counters)
    assert checked_names(registry, session) == {
        "centroid_in_bounds", "guardrail_cooldown",
        "window_statistics", "noise_stream",
    }


def test_bayesian_session_covers_gp_checker():
    space = query_level_space()
    registry = default_registry()
    session = TuningSession(
        plan=tpch_plan(6, scale_factor=1.0),
        simulator=SparkSimulator(noise=low_noise(), seed=0),
        optimizer=BayesianOptimization(space, n_init=4, seed=0),
        verify=registry,
    )
    session.run(10)
    assert "gp_posterior" in checked_names(registry, session)


def test_both_sessions_cover_all_five_checkers():
    space = query_level_space()
    registry = default_registry()
    cl = TuningSession(
        plan=tpch_plan(3), simulator=SparkSimulator(noise=high_noise(), seed=1),
        optimizer=CentroidLearning(
            space, window_size=8, seed=1,
            guardrail=Guardrail(min_iterations=15, patience=2, cooldown=4),
        ),
        verify=registry,
    )
    bo = TuningSession(
        plan=tpch_plan(6), simulator=SparkSimulator(noise=low_noise(), seed=1),
        optimizer=BayesianOptimization(space, n_init=4, seed=1),
        verify=registry,
    )
    cl.run(30)
    bo.run(8)
    union = checked_names(registry, cl) | checked_names(registry, bo)
    assert union == set(registry.names())
