"""Differential-oracle drivers (verify suite: ``pytest -m verify``).

Includes the deliberate-bug acceptance test: an off-by-one injected into the
vectorized cost kernel must be caught by ``diff_scalar_batch`` at step 0.
"""

import numpy as np
import pytest

from repro.experiments.lockstep import LockstepSessions
from repro.sparksim.cost_model import CostModel
from repro.verify import run_all
from repro.verify.diff import (
    diff_live_replay,
    diff_lockstep_sequential,
    diff_refit_incremental,
    diff_retrieval_bruteforce,
    diff_scalar_batch,
    diff_serial_parallel,
)

pytestmark = pytest.mark.verify


class TestAllPathsAgree:
    def test_run_all_is_equivalent(self):
        reports = run_all(seed=0)
        assert set(reports) == {
            "scalar_vs_batch", "serial_vs_parallel",
            "refit_vs_incremental", "live_vs_replay",
            "lockstep_vs_sequential", "retrieval_vs_bruteforce",
            "switch_inert", "sharded_vs_single", "pruned_vs_full",
        }
        for report in reports.values():
            assert report.equivalent, report.summary()

    @pytest.mark.parametrize("seed", [1, 2])
    def test_scalar_batch_bitwise_across_seeds(self, seed):
        report = diff_scalar_batch(n_configs=16, seed=seed)
        assert report.equivalent, report.summary()
        assert report.tolerance == 0.0

    def test_serial_parallel_bitwise(self):
        report = diff_serial_parallel(seed=1, n_runs=4, n_iterations=8)
        assert report.equivalent, report.summary()

    def test_refit_incremental_within_atol(self):
        report = diff_refit_incremental(seed=1, n_points=24, n_init=6)
        assert report.equivalent, report.summary()
        assert report.tolerance == 1e-7

    def test_live_replay_bitwise(self):
        report = diff_live_replay(seed=1, n_iterations=24, cooldown=4)
        assert report.equivalent, report.summary()

    def test_lockstep_sequential_bitwise(self):
        # The default population is fig-15-shaped: K >= 64 sessions, noisy,
        # guardrailed, with scheduled latency-spike faults.
        report = diff_lockstep_sequential(seed=0)
        assert report.equivalent, report.summary()
        assert report.tolerance == 0.0
        assert report.steps_compared >= 12 + 2 * 64  # steps + 2 rows/session

    def test_lockstep_sequential_bitwise_across_seeds(self):
        report = diff_lockstep_sequential(
            seed=2, n_workloads=6, n_iterations=10, fault_every=3
        )
        assert report.equivalent, report.summary()

    @pytest.mark.parametrize("seed", [1, 2])
    def test_retrieval_bruteforce_across_seeds(self, seed):
        report = diff_retrieval_bruteforce(seed=seed)
        assert report.equivalent, report.summary()


class TestDeliberateBugIsCaught:
    def test_off_by_one_in_batch_kernel_diverges_at_step_zero(self, monkeypatch):
        original = CostModel.estimate_batch

        def off_by_one(self, plan, configs, layout=None, *, space=None,
                       pool=None, data_scale=1.0, overlay=None,
                       breakdown=False):
            out = original(self, plan, configs, layout, space=space,
                           pool=pool, data_scale=data_scale, overlay=overlay,
                           breakdown=breakdown)
            totals = out.total_seconds if breakdown else out
            if len(totals) > 1:  # scalar path wraps 1-row batches: unaffected
                totals[:] = np.roll(totals, 1)
            return out

        monkeypatch.setattr(CostModel, "estimate_batch", off_by_one)
        report = diff_scalar_batch(n_configs=16, seed=3)
        assert not report.equivalent
        assert report.divergence is not None
        assert report.divergence.step == 0
        assert report.divergence.field in {"observed_seconds", "true_seconds"}
        assert "NOT equivalent" in report.summary()

    def test_shrunken_batch_reports_length_mismatch(self, monkeypatch):
        from repro.sparksim.executor import SparkSimulator

        original_rb = SparkSimulator.run_batch

        def truncating(self, plan, configs, *, space=None, data_scale=1.0):
            return original_rb(
                self, plan, configs, space=space, data_scale=data_scale
            )[:-1]

        monkeypatch.setattr(SparkSimulator, "run_batch", truncating)
        report = diff_scalar_batch(n_configs=8, seed=0)
        assert not report.equivalent
        assert report.length_mismatch == (8, 7)

    def test_one_session_centroid_off_by_one_caught_at_faulting_step(self):
        # A classic vectorization bug: the batched centroid update writes
        # one session's row from its neighbor's result (index off by one
        # within the update batch).  The centroid updated at step FAULT_STEP
        # is first consumed by suggest() at FAULT_STEP + 1, so the oracle
        # must flag exactly that record — and the 'config' field, since only
        # the suggestion is perturbed.
        FAULT_STEP = 5

        class OffByOneEngine(LockstepSessions):
            def _update_centroids(self, upd, t, n_win):
                super()._update_centroids(upd, t, n_win)
                if t == FAULT_STEP and upd.size >= 2:
                    self._centroids[upd[0]] = self._centroids[upd[1]]

        report = diff_lockstep_sequential(
            seed=0, n_workloads=6, n_iterations=10, fault_every=3,
            lockstep_factory=OffByOneEngine,
        )
        assert not report.equivalent
        assert report.divergence is not None
        assert report.divergence.step == FAULT_STEP + 1
        assert report.divergence.field == "config"
        assert "NOT equivalent" in report.summary()

    def test_broken_tie_break_in_index_topk_diverges(self, monkeypatch):
        # Drop the deterministic id tie-break: equal-score entries (the
        # planted duplicates) then surface in partition order, which the
        # brute-force lexsort reference must flag.
        import repro.retrieval.index as index_mod

        original = index_mod._top_k_row

        def reversed_ranking(scores_row, ids_row, k):
            return original(scores_row, ids_row, k)[::-1]

        monkeypatch.setattr(index_mod, "_top_k_row", reversed_ranking)
        report = diff_retrieval_bruteforce(seed=0)
        assert not report.equivalent
        assert report.divergence is not None
        assert "NOT equivalent" in report.summary()
