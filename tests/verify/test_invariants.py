"""Tier-1 tests for the invariant-checker registry (no hypothesis needed)."""

import numpy as np
import pytest

from repro import telemetry
from repro.core.centroid import CentroidLearning
from repro.core.guardrail import Guardrail
from repro.core.observation import Observation, ObservationWindow
from repro.core.session import TuningSession
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import Matern52Kernel
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import NoiseModel, low_noise, no_noise
from repro.verify import (
    Invariant,
    InvariantRegistry,
    InvariantViolation,
    VerificationContext,
    default_registry,
)
from repro.verify.invariants import (
    check_centroid_in_bounds,
    check_guardrail_cooldown,
    check_noise_stream,
    check_window_statistics,
)
from repro.workloads.tpch import tpch_plan


class FakeOptimizer:
    """Just enough attribute surface for targeted checker tests."""

    def __init__(self, **attrs):
        self.__dict__.update(attrs)


class TestRegistry:
    def test_default_registry_contents(self):
        registry = default_registry()
        assert len(registry) == 5
        assert "guardrail_cooldown" in registry
        assert "bogus" not in registry
        assert registry.names() == [inv.name for inv in registry]

    def test_duplicate_name_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError, match="duplicate"):
            registry.add(Invariant("noise_stream", lambda ctx: True))

    def test_register_decorator_and_execution_order(self):
        registry = InvariantRegistry()
        calls = []

        @registry.register("first", description="runs first")
        def _first(ctx):
            calls.append("first")
            return True

        @registry.register("second")
        def _second(ctx):
            calls.append("second")
            return False

        results = registry.check_all(VerificationContext())
        assert calls == ["first", "second"]
        assert [r.checked for r in results] == [True, False]

    def test_without_subsets_and_rejects_unknown(self):
        registry = default_registry()
        slim = registry.without("gp_posterior", "noise_stream")
        assert slim.names() == [
            "centroid_in_bounds", "guardrail_cooldown", "window_statistics",
        ]
        assert len(registry) == 5  # original untouched
        with pytest.raises(KeyError, match="unknown"):
            registry.without("nope")

    def test_check_all_collect_mode_gathers_violations(self):
        registry = InvariantRegistry([
            Invariant("boom", lambda ctx: (_ for _ in ()).throw(
                InvariantViolation("boom", "broken"))),
            Invariant("fine", lambda ctx: True),
        ])
        results = registry.check_all(VerificationContext(), raise_on_violation=False)
        assert results[0].violation is not None
        assert results[0].violation.invariant == "boom"
        assert results[1].violation is None

    def test_empty_context_skips_every_builtin(self):
        results = default_registry().check_all(VerificationContext())
        assert all(not r.checked for r in results)

    def test_violation_counter_emitted(self):
        registry = InvariantRegistry([
            Invariant("boom", lambda ctx: (_ for _ in ()).throw(
                InvariantViolation("boom", "broken"))),
        ])
        with telemetry.capture() as cap:
            registry.check_all(VerificationContext(), raise_on_violation=False)
        counters = cap.counters()
        assert counters.get("verify.violations{invariant=boom}") == 1


class TestCentroidChecker:
    def test_passes_on_live_optimizer(self, small_space):
        opt = CentroidLearning(small_space, seed=0)
        assert check_centroid_in_bounds(VerificationContext(optimizer=opt)) is True

    def test_out_of_bounds_centroid_raises(self, small_space):
        opt = CentroidLearning(small_space, seed=0)
        opt._centroid = opt._centroid + 1e6
        with pytest.raises(InvariantViolation, match="outside internal bounds"):
            check_centroid_in_bounds(VerificationContext(optimizer=opt))

    def test_non_finite_centroid_raises(self, small_space):
        opt = CentroidLearning(small_space, seed=0)
        opt._centroid = np.full(small_space.dim, np.nan)
        with pytest.raises(InvariantViolation, match="non-finite"):
            check_centroid_in_bounds(VerificationContext(optimizer=opt))


def _rising_observation(i):
    return Observation(
        config=np.zeros(1), data_size=1000.0,
        performance=100.0 * i + 10.0, iteration=i,
    )


class TestGuardrailChecker:
    def _tripped_guardrail(self, cooldown=3):
        g = Guardrail(min_iterations=5, threshold=0.2, patience=1,
                      fit_window=5, cooldown=cooldown)
        i = 0
        while g.active:
            g.update(_rising_observation(i))
            i += 1
        return g

    def test_accepts_full_disable_reenable_cycle(self):
        g = self._tripped_guardrail(cooldown=3)
        ctx = VerificationContext(optimizer=FakeOptimizer(guardrail=g))
        # Sweep through the cooldown and the legitimate probation re-enable.
        i = g.n_observations
        for _ in range(6):
            assert check_guardrail_cooldown(ctx) is True
            g.update(_rising_observation(i))
            i += 1
        assert g.reenable_count >= 1

    def test_early_reenable_raises(self):
        g = self._tripped_guardrail(cooldown=3)
        ctx = VerificationContext(optimizer=FakeOptimizer(guardrail=g))
        assert check_guardrail_cooldown(ctx) is True  # snapshot: disabled
        g.update(_rising_observation(g.n_observations))  # 1 of 3 cooldown obs
        # A buggy state machine flips back with the cooldown not served.
        g._disabled = False
        g._consecutive_violations = 0
        with pytest.raises(InvariantViolation, match="re-enabled during cooldown"):
            check_guardrail_cooldown(ctx)

    def test_permanent_disable_must_never_reenable(self):
        g = self._tripped_guardrail(cooldown=None)
        g.reenable_count = 1
        ctx = VerificationContext(optimizer=FakeOptimizer(guardrail=g))
        with pytest.raises(InvariantViolation, match="cooldown=None"):
            check_guardrail_cooldown(ctx)

    def test_overdue_cooldown_raises(self):
        g = self._tripped_guardrail(cooldown=3)
        g._since_disable = 7  # sat past the cooldown without re-enabling
        ctx = VerificationContext(optimizer=FakeOptimizer(guardrail=g))
        with pytest.raises(InvariantViolation, match="still disabled"):
            check_guardrail_cooldown(ctx)


class TestWindowChecker:
    def _window(self, n=7, size=4):
        window = ObservationWindow(size)
        rng = np.random.default_rng(0)
        for i in range(n):
            window.append(Observation(
                config=rng.uniform(size=3), data_size=float(100 + i),
                performance=rng.uniform(1.0, 9.0), iteration=i,
            ))
        return window

    def test_passes_on_consistent_window(self):
        ctx = VerificationContext(optimizer=FakeOptimizer(observations=self._window()))
        assert check_window_statistics(ctx) is True

    def test_stale_version_raises(self):
        window = self._window()
        window._version = 1
        ctx = VerificationContext(optimizer=FakeOptimizer(observations=window))
        with pytest.raises(InvariantViolation, match="version"):
            check_window_statistics(ctx)

    def test_stale_view_raises(self):
        # Simulate a stale cached view: the dense accessor stops tracking
        # the raw history (the exact bug class a memoized window could grow).
        window = self._window()
        frozen = window.performances()
        window.performances = lambda: frozen
        window.append(Observation(
            config=np.ones(3), data_size=200.0, performance=42.0, iteration=99,
        ))
        ctx = VerificationContext(optimizer=FakeOptimizer(observations=window))
        with pytest.raises(InvariantViolation, match="performances"):
            check_window_statistics(ctx)


class TestNoiseChecker:
    def test_passes_on_simulator_noise(self):
        sim = SparkSimulator(noise=low_noise(), seed=0)
        assert check_noise_stream(VerificationContext(simulator=sim)) is True

    def test_extras_fallback(self):
        ctx = VerificationContext(extras={"noise": no_noise()})
        assert check_noise_stream(ctx) is True

    def test_impure_noise_raises(self):
        class ImpureNoise(NoiseModel):
            calls = 0

            def apply(self, g0, rng):
                ImpureNoise.calls += 1
                return g0 * (1.0 + 0.01 * ImpureNoise.calls)

        ctx = VerificationContext(extras={"noise": ImpureNoise(0.1, 0.0)})
        with pytest.raises(InvariantViolation, match="pure function"):
            check_noise_stream(ctx)

    def test_deflating_noise_raises(self):
        class DeflatingNoise(NoiseModel):
            def apply(self, g0, rng):
                return 0.9 * g0

        ctx = VerificationContext(extras={"noise": DeflatingNoise(0.1, 0.0)})
        with pytest.raises(InvariantViolation, match="deflated"):
            check_noise_stream(ctx)


class TestGpChecker:
    def _gp(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(12, 2))
        y = np.sin(X[:, 0]) + X[:, 1]
        return GaussianProcessRegressor(
            kernel=Matern52Kernel(), noise=1e-4,
            normalize_y=False, optimize_hypers=False,
        ).fit(X, y)

    def test_passes_on_fitted_gp(self):
        ctx = VerificationContext(optimizer=FakeOptimizer(_model=self._gp()))
        results = default_registry().check_all(ctx)
        by_name = {r.invariant: r.checked for r in results}
        assert by_name["gp_posterior"] is True

    def test_negative_variance_raises(self):
        gp = self._gp()
        gp.predict_with_std = lambda X: (
            np.zeros(len(X)), np.full(len(X), -1.0)
        )
        ctx = VerificationContext(optimizer=FakeOptimizer(_model=gp))
        with pytest.raises(InvariantViolation, match="finite and >= 0"):
            default_registry().check_all(ctx)


class TestSessionHook:
    def test_bad_verify_argument_raises(self, q3_plan, quiet_simulator, spark_space):
        with pytest.raises(TypeError, match="verify"):
            TuningSession(
                plan=q3_plan, simulator=quiet_simulator,
                optimizer=CentroidLearning(spark_space, seed=0),
                verify=42,
            )

    def test_callable_hook_sees_every_record(self, q3_plan, quiet_simulator, spark_space):
        seen = []

        def hook(session, record):
            seen.append(record)

        session = TuningSession(
            plan=q3_plan, simulator=quiet_simulator,
            optimizer=CentroidLearning(spark_space, seed=0),
            verify=hook,
        )
        trace = session.run(3)
        assert seen == trace.records

    def test_registry_hook_runs_clean_and_counts_sweeps(
        self, q3_plan, quiet_simulator, spark_space
    ):
        session = TuningSession(
            plan=q3_plan, simulator=quiet_simulator,
            optimizer=CentroidLearning(spark_space, seed=0),
            verify=default_registry(),
        )
        with telemetry.capture() as cap:
            session.run(4)
        assert cap.counters().get("session.verify_sweeps") == 4

    def test_violating_hook_aborts_the_step(self, q3_plan, quiet_simulator, spark_space):
        registry = InvariantRegistry([
            Invariant("always_fails", lambda ctx: (_ for _ in ()).throw(
                InvariantViolation("always_fails", "nope"))),
        ])
        session = TuningSession(
            plan=q3_plan, simulator=quiet_simulator,
            optimizer=CentroidLearning(spark_space, seed=0),
            verify=registry,
        )
        with pytest.raises(InvariantViolation, match="always_fails"):
            session.run(2)
