"""Property suite for the task-switch detector (drift marker; needs hypothesis).

Three contracts of :class:`repro.core.switch.TaskSwitchDetector`:

* **bounded false alarms** — benign noise below the ``min_rel_scale``
  floor can *never* fire the cost channel (a deterministic guarantee: the
  floored reference scale caps every residual under the drift allowance),
  and at noise comparable to the floor the per-stream alarm rate over a
  fixed seed ensemble stays under a small budget;
* **detection power** — an injected sustained mean shift of at least 4
  reference-sigmas is declared within 5 post-shift steps (the clipped
  residual gains at least ``clip - drift`` per step, so the threshold is
  crossed in ``ceil(threshold / (clip - drift))`` steps);
* **permutation invariance** — the detection step does not depend on the
  order of the observations inside the warmup block, because only the
  block's mean/std enter the frozen reference.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.switch import TaskSwitchDetector

pytestmark = pytest.mark.drift

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_stream(det, xs, size=100.0):
    """Feed normalized costs; return the first detected step (or None)."""
    for i, x in enumerate(xs):
        if det.update(float(x) * size, size, iteration=i).detected:
            return i
    return None


@given(seed=st.integers(0, 10_000), amplitude=st.floats(0.001, 0.012))
@RELAXED
def test_sub_floor_noise_never_fires(seed, amplitude):
    """Noise under the min_rel_scale floor: zero false alarms, any stream.

    With ``|x - 1| <= 0.012`` the reference mean lands in ``[0.988, 1.012]``
    and the floored scale is at least ``0.05 * 0.988``, so every residual is
    below ``0.024 / 0.0494 < 0.5 = drift`` — the CUSUM cannot accumulate.
    """
    rng = np.random.default_rng(seed)
    xs = 1.0 + amplitude * rng.uniform(-1.0, 1.0, size=300)
    det = TaskSwitchDetector()
    assert run_stream(det, xs) is None
    assert det.switch_count == 0


def test_false_alarm_rate_at_floor_noise_is_bounded():
    """Gaussian noise at the floor (5%): a bounded alarm rate, not zero.

    At sigma = min_rel_scale the floored reference caps the residual
    variance, but the warmup *mean* still carries a sigma/sqrt(warmup)
    estimation error that biases every residual of an unlucky stream — so
    unlike the sub-floor case the rate is positive.  Measured 29/200 on
    this fixed ensemble (deterministic); the assertion leaves headroom for
    platform-level float drift while still pinning the order of magnitude.
    """
    alarms = 0
    for seed in range(200):
        rng = np.random.default_rng(seed)
        xs = np.maximum(1.0 + 0.05 * rng.standard_normal(200), 1e-6)
        det = TaskSwitchDetector()
        if run_stream(det, xs) is not None:
            alarms += 1
    assert alarms <= 35  # measured 29; < 20% of the ensemble


@given(
    seed=st.integers(0, 10_000),
    delta=st.floats(4.0, 8.0),
    amplitude=st.floats(0.001, 0.012),
)
@RELAXED
def test_sustained_shift_detected_within_bound(seed, delta, amplitude):
    """A >= 4-sigma sustained shift fires within 5 post-shift steps.

    Post-shift residuals are at least ``delta - 0.49`` sigma (the bounded
    pre-shift noise perturbs mean and scale by less than half a drift), so
    each step clips to ``clip = 3`` and the statistic gains ``clip - drift
    = 2.5``: threshold 8 is crossed in at most ``ceil(8 / 2.5) = 4`` steps.
    """
    rng = np.random.default_rng(seed)
    pre = 1.0 + amplitude * rng.uniform(-1.0, 1.0, size=40)
    det = TaskSwitchDetector(size_jump=None)  # isolate the cost channel
    assert run_stream(det, pre) is None
    mean, sigma = det.reference
    shift = mean + delta * sigma + amplitude * rng.uniform(-1.0, 1.0, size=8)
    fired_at = run_stream(det, shift)
    assert fired_at is not None
    assert fired_at <= 4
    assert det.detections[-1].reason == "cost_shift"


@given(seed=st.integers(0, 10_000), perm_seed=st.integers(0, 10_000))
@RELAXED
def test_detection_step_invariant_to_warmup_permutation(seed, perm_seed):
    """Permuting the warmup block does not move the detection step.

    The reference is (mean, std) of the block — order-free — and the
    post-warmup stream is identical, so the CUSUM path and therefore the
    firing step must match exactly.
    """
    rng = np.random.default_rng(seed)
    warmup = 8
    block = np.maximum(1.0 + 0.05 * rng.standard_normal(warmup), 1e-6)
    tail = np.concatenate([
        np.maximum(1.0 + 0.05 * rng.standard_normal(4), 1e-6),
        np.full(12, 2.5),
    ])
    perm = np.random.default_rng(perm_seed).permutation(warmup)

    det_a = TaskSwitchDetector(warmup=warmup, threshold=4.0, size_jump=None)
    det_b = TaskSwitchDetector(warmup=warmup, threshold=4.0, size_jump=None)
    step_a = run_stream(det_a, np.concatenate([block, tail]))
    step_b = run_stream(det_b, np.concatenate([block[perm], tail]))
    assert det_a.reference == pytest.approx(det_b.reference)
    assert step_a == step_b
    assert step_a is not None


@given(seed=st.integers(0, 10_000))
@RELAXED
def test_decreasing_costs_never_fire(seed):
    """One-sided test: any monotone non-increasing stream stays quiet."""
    rng = np.random.default_rng(seed)
    drops = np.abs(0.02 * rng.standard_normal(60))
    xs = np.maximum(2.0 - np.cumsum(drops), 0.05)
    det = TaskSwitchDetector(size_jump=None)
    assert run_stream(det, xs) is None
