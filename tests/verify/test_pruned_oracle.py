"""Subspace-equivalence oracle (``make stages``).

``diff_pruned_full`` runs the same tuning session over a
:class:`~repro.core.importance.PrunedSpace` and over an independently
implemented frozen-knob reference space; every materialized config must
match bitwise.  The sensitivity half plants the bug the oracle exists to
catch — a pruned knob silently unpinned partway through a session — and
asserts the report pins the first divergence to exactly that step, on the
``config`` field.
"""

import pytest

from repro.core.importance import PrunedSpace
from repro.verify.diff import diff_pruned_full

pytestmark = pytest.mark.stages


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 3])
    def test_pruned_and_frozen_full_agree_bitwise(self, seed):
        report = diff_pruned_full(seed=seed)
        assert report.equivalent, report.summary()
        assert report.tolerance == 0.0

    def test_wider_subspace_still_agrees(self):
        report = diff_pruned_full(seed=0, top_k=5, n_iterations=12)
        assert report.equivalent, report.summary()


class _MisalignedPrunedSpace(PrunedSpace):
    """The planted bug: one dropped knob drifts off its pin mid-session.

    ``TuningSession.step`` materializes each suggestion through exactly one
    ``space.to_dict`` call, so the materialization counter *is* the step
    index; from ``unpin_from_step`` onward the first dropped knob silently
    reports its upper bound instead of its pinned default.
    """

    def __init__(self, full_space, keep, *, unpin_from_step):
        super().__init__(full_space, keep)
        self.unpin_from_step = unpin_from_step
        self.materializations = 0

    def to_dict(self, vector):
        step = self.materializations
        self.materializations += 1
        config = super().to_dict(vector)
        if step >= self.unpin_from_step:
            loose = self.dropped_names[0]
            config[loose] = float(self.full_space[loose].high)
        return config


class TestSensitivity:
    @pytest.mark.parametrize("planted_step", [0, 3, 7])
    def test_unpinned_knob_caught_at_the_exact_step(self, planted_step):
        report = diff_pruned_full(
            seed=0,
            pruned_space_factory=lambda full, keep: _MisalignedPrunedSpace(
                full, keep, unpin_from_step=planted_step
            ),
        )
        assert not report.equivalent
        assert report.divergence is not None
        assert report.divergence.step == planted_step
        assert report.divergence.field == "config"
        assert "NOT equivalent" in report.summary()

    def test_unpin_after_the_horizon_is_invisible(self):
        # The bug arms only after the session ends: nothing to catch, and
        # the oracle must not false-positive.
        report = diff_pruned_full(
            seed=0, n_iterations=10,
            pruned_space_factory=lambda full, keep: _MisalignedPrunedSpace(
                full, keep, unpin_from_step=10
            ),
        )
        assert report.equivalent, report.summary()
