"""Hypothesis battery for importance ranking and stage overlays (``make stages``).

Properties:

* a knob ranking is **bitwise** invariant to the sweep-assembly order;
* a knob the cost function provably never reads scores exactly zero and
  ranks strictly below every knob with nonzero sensitivity;
* ``PrunedSpace`` decode∘encode is the identity on kept knobs and pins
  dropped knobs, for arbitrary drawn spaces and subsets;
* the stage-overlay batch kernel is bitwise the scalar reference on
  arbitrary drawn plans and overlays.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.importance import PrunedSpace, rank_knobs
from repro.sparksim.configs import full_space
from repro.sparksim.cost_model import CostModel
from repro.sparksim.overlay import StageConfigOverlay, StageOverride
from repro.verify.properties import config_spaces, internal_vectors, physical_plans, seeds

pytestmark = pytest.mark.stages

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
EXPENSIVE = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def weighted_estimator(space, weights):
    """A deterministic synthetic cost surface: |normalize(v)| @ weights."""
    def estimate(vectors):
        unit = space.normalize(np.atleast_2d(vectors))
        return np.abs(unit) @ weights + 1.0
    return estimate


@st.composite
def spaces_with_weights(draw, min_dim=2, max_dim=4, n_flat=None):
    space = draw(config_spaces(min_dim=min_dim, max_dim=max_dim))
    weights = np.array([
        draw(st.floats(min_value=0.5, max_value=10.0))
        for _ in range(space.dim)
    ])
    if n_flat is None:
        n_flat = draw(st.integers(min_value=1, max_value=space.dim - 1)) \
            if space.dim > 1 else 0
    flat = draw(st.permutations(range(space.dim)))[:n_flat]
    weights[list(flat)] = 0.0
    return space, weights


class TestRankingProperties:
    @RELAXED
    @given(sw=spaces_with_weights(), seed=seeds(), order_seed=seeds())
    def test_ranking_bitwise_invariant_to_sweep_order(self, sw, seed, order_seed):
        space, weights = sw
        estimator = weighted_estimator(space, weights)
        order = list(space.names)
        np.random.default_rng(order_seed).shuffle(order)
        a = rank_knobs("wl", space, estimator=estimator, seed=seed)
        b = rank_knobs("wl", space, estimator=estimator, seed=seed,
                       sweep_order=order)
        assert a == b  # to_state equality: bitwise on every score

    @RELAXED
    @given(sw=spaces_with_weights(), seed=seeds())
    def test_flat_knobs_score_zero_and_rank_last(self, sw, seed):
        space, weights = sw
        ranking = rank_knobs(
            "wl", space, estimator=weighted_estimator(space, weights),
            seed=seed,
        )
        flat = {space.names[j] for j in range(space.dim) if weights[j] == 0.0}
        for name in space.names:
            score = ranking.score_of(name).score
            if name in flat:
                assert score == 0.0
            else:
                assert score > 0.0
        ranked = ranking.ranked_names
        if flat and len(flat) < space.dim:
            worst_live = max(
                ranked.index(n) for n in space.names if n not in flat
            )
            best_flat = min(ranked.index(n) for n in flat)
            assert worst_live < best_flat


class TestPrunedSpaceProperties:
    @RELAXED
    @given(data=st.data())
    def test_decode_encode_identity_and_pins(self, data):
        space = data.draw(config_spaces(min_dim=2, max_dim=4))
        keep = data.draw(st.permutations(space.names))
        keep = keep[:data.draw(st.integers(min_value=1, max_value=space.dim - 1))]
        pruned = PrunedSpace(space, keep)
        vector = data.draw(internal_vectors(pruned))
        full = pruned.decode(vector)
        np.testing.assert_array_equal(pruned.encode(full), vector)
        defaults = space.default_vector()
        for j, name in enumerate(space.names):
            if name not in keep:
                assert full[j] == defaults[j]

    @RELAXED
    @given(data=st.data())
    def test_decode_matrix_matches_scalar_decode(self, data):
        space = data.draw(config_spaces(min_dim=2, max_dim=4))
        keep = list(space.names)[: space.dim - 1]
        pruned = PrunedSpace(space, keep)
        vectors = np.array([
            data.draw(internal_vectors(pruned)) for _ in range(4)
        ])
        batch = pruned.decode_matrix(vectors)
        for i in range(len(vectors)):
            np.testing.assert_array_equal(batch[i], pruned.decode(vectors[i]))


class TestOverlayKernelProperty:
    @EXPENSIVE
    @given(plan=physical_plans(), seed=seeds())
    def test_overlay_batch_bitwise_equals_scalar_on_drawn_plans(self, plan, seed):
        rng = np.random.default_rng(seed)
        space = full_space()
        overrides = {
            op.op_id: StageOverride(
                shuffle_partitions=int(rng.integers(1, 4000)),
                memory_fraction=float(rng.uniform(0.1, 1.0)),
            )
            for op in plan.exchange_ops()
            if rng.uniform() < 0.8
        }
        overlay = StageConfigOverlay(overrides)
        model = CostModel()
        vectors = space.sample_vectors(4, rng)
        batch = model.estimate_batch(plan, vectors, space=space, overlay=overlay)
        scalar = np.array([
            model.estimate_scalar(
                plan, space.to_dict(v), overlay=overlay
            ).total_seconds
            for v in vectors
        ])
        np.testing.assert_array_equal(batch, scalar)
