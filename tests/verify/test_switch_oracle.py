"""Switch-detector differential oracle (drift battery: ``make drift``).

Three layers:

* the inertness oracle itself — armed and unarmed sessions bitwise
  identical on drift-free streams (``diff_switch_inert``);
* the sensitivity check — a detector rigged to fire at a planted step must
  be *caught* by the oracle, with the first divergence pinned to the very
  next suggestion (proves the oracle can see what it guards against);
* lock-step parity — fleets whose sessions switch at *different* steps
  (and tune under the safe-exploration gate) stay bitwise identical to
  their sequential twins via ``diff_lockstep_sequential``.
"""

import pytest

from repro.core.switch import TaskSwitchDetector
from repro.verify.diff import diff_lockstep_sequential, diff_switch_inert

pytestmark = pytest.mark.drift


class PlantedDetector(TaskSwitchDetector):
    """Fires unconditionally at one planted iteration (the seeded bug)."""

    def __init__(self, fire_at: int, **kwargs):
        super().__init__(**kwargs)
        self.fire_at = fire_at

    def update(self, performance, data_size, embedding=None, iteration=0):
        if iteration == self.fire_at:
            return self._fire(
                iteration, performance / data_size, data_size, embedding,
                statistic=float("inf"), bound=self.threshold,
                reason="cost_shift",
            )
        return super().update(
            performance, data_size, embedding=embedding, iteration=iteration
        )


class TestInertnessOracle:
    def test_default_detector_is_inert(self):
        report = diff_switch_inert(seed=0)
        assert report.equivalent, report.summary()
        assert report.tolerance == 0.0

    @pytest.mark.parametrize("seed", [1, 2])
    def test_inert_across_seeds(self, seed):
        report = diff_switch_inert(seed=seed, n_sessions=3, n_iterations=12)
        assert report.equivalent, report.summary()


class TestSensitivity:
    @pytest.mark.parametrize("fire_at,expect_step,expect_field", [
        # Quiet guardrail: the re-anchor resets the observation window, so
        # the first divergent artifact is the *next* step's suggestion.
        (6, 7, "config"),
        # At step 9 the unarmed twin's guardrail happens to be tripped; the
        # re-anchor's guardrail reset flips tuning_active on the firing
        # step itself — the oracle pins the divergence one step earlier.
        (9, 9, "tuning_active"),
    ])
    def test_planted_fire_is_pinned(self, fire_at, expect_step, expect_field):
        """A spurious re-anchor at step S diverges at a known step/field."""
        report = diff_switch_inert(
            seed=0,
            n_iterations=fire_at + 4,
            detector_factory=lambda q: (
                PlantedDetector(fire_at) if q == 0 else TaskSwitchDetector()
            ),
        )
        assert not report.equivalent
        assert report.divergence is not None
        assert report.divergence.step == expect_step
        assert report.divergence.field == expect_field

    def test_planted_fire_bumps_reanchor_trail(self):
        """Even a fire on the last step is caught via the re-anchor count."""
        n = 8
        report = diff_switch_inert(
            seed=0,
            n_sessions=2,
            n_iterations=n,
            detector_factory=lambda q: PlantedDetector(n - 1),
        )
        assert not report.equivalent


class TestLockstepParity:
    def test_switching_fleet_bitwise(self):
        """Sessions switch at different steps (4 + q % 4); fleet == sequential."""
        report = diff_lockstep_sequential(
            seed=0, n_workloads=8, n_iterations=14, switching=True
        )
        assert report.equivalent, report.summary()
        assert report.tolerance == 0.0

    def test_switching_and_safe_fleet_bitwise(self):
        report = diff_lockstep_sequential(
            seed=0, n_workloads=8, n_iterations=14, switching=True, safe=True
        )
        assert report.equivalent, report.summary()

    @pytest.mark.parametrize("seed", [1, 3])
    def test_switching_fleet_across_seeds(self, seed):
        report = diff_lockstep_sequential(
            seed=seed, n_workloads=6, n_iterations=12, switching=True, safe=True
        )
        assert report.equivalent, report.summary()
