"""Tests for the flighting pipeline and its configuration file."""

import pytest

from repro.offline.flighting import FlightingConfig, FlightingPipeline


class TestFlightingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlightingConfig(benchmark="tpcx")
        with pytest.raises(ValueError):
            FlightingConfig(pool_id="pool-imaginary")
        with pytest.raises(ValueError):
            FlightingConfig(config_generation="genetic")
        with pytest.raises(ValueError):
            FlightingConfig(n_configs=0)
        with pytest.raises(ValueError):
            FlightingConfig(scale_factors=[])

    def test_file_roundtrip(self, tmp_path):
        config = FlightingConfig(
            benchmark="tpch", query_ids=[1, 6], scale_factors=[1.0, 10.0],
            n_configs=3, runs_per_config=2, pool_id="pool-medium",
            config_generation="lhs", region="eu", seed=9,
        )
        path = config.to_file(tmp_path / "flight.json")
        restored = FlightingConfig.from_file(path)
        assert restored == config


class TestFlightingPipeline:
    def test_event_count(self):
        config = FlightingConfig(
            benchmark="tpch", query_ids=[1, 6], scale_factors=[1.0],
            n_configs=3, runs_per_config=2, seed=0,
        )
        events = FlightingPipeline(config).execute()
        assert len(events) == 2 * 3 * 2  # queries × configs × runs

    def test_events_carry_embeddings_and_region(self):
        config = FlightingConfig(
            benchmark="tpcds", query_ids=[5], n_configs=2, region="west", seed=0
        )
        events = FlightingPipeline(config).execute()
        assert all(e.region == "west" for e in events)
        assert all(len(e.embedding) > 0 for e in events)
        assert all(e.user_id == "flighting" for e in events)

    def test_deterministic_given_seed(self):
        config = FlightingConfig(benchmark="tpch", query_ids=[3], n_configs=2, seed=5)
        a = FlightingPipeline(config).execute()
        b = FlightingPipeline(config).execute()
        assert [e.duration_seconds for e in a] == [e.duration_seconds for e in b]

    def test_lhs_generation(self):
        config = FlightingConfig(
            benchmark="tpch", query_ids=[3], n_configs=4,
            config_generation="lhs", seed=0,
        )
        events = FlightingPipeline(config).execute()
        partitions = {e.config["spark.sql.shuffle.partitions"] for e in events}
        assert len(partitions) == 4

    def test_distinct_signatures_per_query(self):
        config = FlightingConfig(benchmark="tpch", query_ids=[1, 3, 6], n_configs=1, seed=0)
        events = FlightingPipeline(config).execute()
        assert len({e.query_signature for e in events}) == 3
