"""Tests for the embedding ETL (events → training tables)."""

import numpy as np
import pytest

from repro.offline.etl import (
    TrainingTable,
    build_training_table,
    filter_events,
    group_by_signature,
)
from repro.offline.flighting import FlightingConfig, FlightingPipeline
from repro.sparksim.configs import query_level_space
from repro.sparksim.events import QueryEndEvent


@pytest.fixture(scope="module")
def events():
    config = FlightingConfig(benchmark="tpch", query_ids=[1, 3, 6],
                             n_configs=4, seed=0)
    return FlightingPipeline(config).execute()


@pytest.fixture(scope="module")
def table(events):
    return build_training_table(events, query_level_space())


class TestBuildTrainingTable:
    def test_shapes(self, events, table):
        assert len(table) == len(events)
        assert table.config_dim == 3
        assert table.X.shape == (len(events), table.embedding_dim + 3 + 1)
        assert table.feature_dim == table.X.shape[1]

    def test_target_is_duration(self, events, table):
        assert np.allclose(table.y, [e.duration_seconds for e in events])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_training_table([], query_level_space())

    def test_embedding_length_mismatch_rejected(self, events):
        bad = QueryEndEvent(
            app_id="x", artifact_id="x", query_signature="s", user_id="u",
            iteration=0, config=events[0].config, data_size=1.0,
            duration_seconds=1.0, embedding=[1.0, 2.0],
        )
        with pytest.raises(ValueError, match="embedding"):
            build_training_table(list(events) + [bad], query_level_space())


class TestTableOperations:
    def test_subsample(self, table, rng):
        sub = table.subsample(5, rng)
        assert len(sub) == 5
        assert sub.feature_dim == table.feature_dim

    def test_subsample_larger_than_table_is_identity(self, table, rng):
        assert table.subsample(10**6, rng) is table

    def test_exclude_signature(self, table):
        target = table.signatures[0]
        rest = table.exclude_signature(target)
        assert target not in rest.signatures
        assert len(rest) < len(table)

    def test_concat(self, table):
        double = table.concat(table)
        assert len(double) == 2 * len(table)

    def test_concat_incompatible(self, table):
        other = TrainingTable(
            X=np.ones((2, 5)), y=np.ones(2), embedding_dim=1, config_dim=3,
            signatures=["a", "b"], regions=["r", "r"],
        )
        with pytest.raises(ValueError):
            table.concat(other)


class TestPrivacyFilters:
    def test_filter_by_user(self, events):
        assert len(filter_events(events, user_id="flighting")) == len(events)
        assert filter_events(events, user_id="someone-else") == []

    def test_filter_by_signature(self, events):
        sig = events[0].query_signature
        subset = filter_events(events, query_signature=sig)
        assert all(e.query_signature == sig for e in subset)
        assert len(subset) > 0

    def test_filter_by_region(self, events):
        assert filter_events(events, region="mars") == []

    def test_group_by_signature(self, events):
        groups = group_by_signature(events)
        assert len(groups) == 3
        assert sum(len(g) for g in groups.values()) == len(events)
