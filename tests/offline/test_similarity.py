"""Tests for embedding-similarity warm-start selection."""

import numpy as np
import pytest

from repro.embedding.embedder import WorkloadEmbedder
from repro.offline.similarity import (
    embedding_distances,
    nearest_signatures,
    select_similar,
)
from repro.sparksim.configs import query_level_space
from repro.experiments.platform_v0 import build_v0_platform, platform_training_table
from repro.workloads.tpcds import tpcds_plan


@pytest.fixture(scope="module")
def table():
    platform = build_v0_platform([1, 2, 3, 4], n_configs=10, scale_factor=10.0, seed=0)
    return platform_training_table(platform, query_level_space())


@pytest.fixture(scope="module")
def embedder():
    return WorkloadEmbedder()


class TestDistances:
    def test_shape_and_nonnegative(self, table, embedder):
        target = embedder.embed(tpcds_plan(1, 10.0))
        for metric in ("cosine", "euclidean"):
            d = embedding_distances(table, target, metric)
            assert d.shape == (len(table),)
            assert np.all(d >= -1e-12)

    def test_self_distance_zero(self, table, embedder):
        target = embedder.embed(tpcds_plan(2, 10.0))
        d = embedding_distances(table, target, "euclidean")
        sig = tpcds_plan(2, 10.0).signature()
        own = [i for i, s in enumerate(table.signatures) if s == sig]
        assert np.allclose(d[own], 0.0, atol=1e-9)

    def test_bad_metric(self, table, embedder):
        with pytest.raises(ValueError, match="metric"):
            embedding_distances(table, embedder.embed(tpcds_plan(1, 10.0)), "manhattan")

    def test_bad_target_shape(self, table):
        with pytest.raises(ValueError, match="embedding"):
            embedding_distances(table, np.ones(3))


class TestSelectSimilar:
    def test_returns_requested_rows(self, table, embedder):
        target = embedder.embed(tpcds_plan(3, 10.0))
        sub = select_similar(table, target, n_rows=12)
        assert len(sub) == 12
        assert sub.feature_dim == table.feature_dim

    def test_own_query_rows_rank_first(self, table, embedder):
        target = embedder.embed(tpcds_plan(3, 10.0))
        sub = select_similar(table, target, n_rows=10, metric="euclidean")
        sig = tpcds_plan(3, 10.0).signature()
        assert all(s == sig for s in sub.signatures)

    def test_n_rows_validated(self, table, embedder):
        with pytest.raises(ValueError):
            select_similar(table, embedder.embed(tpcds_plan(1, 10.0)), 0)

    def test_oversized_request_returns_everything(self, table, embedder):
        target = embedder.embed(tpcds_plan(1, 10.0))
        assert len(select_similar(table, target, 10**6)) == len(table)


class TestNearestSignatures:
    def test_self_is_nearest(self, table, embedder):
        target = embedder.embed(tpcds_plan(4, 10.0))
        top = nearest_signatures(table, target, k=2, metric="euclidean")
        assert top[0][0] == tpcds_plan(4, 10.0).signature()
        assert top[0][1] <= top[1][1]

    def test_k_validated(self, table, embedder):
        with pytest.raises(ValueError):
            nearest_signatures(table, embedder.embed(tpcds_plan(1, 10.0)), k=0)
