"""Tests for embedding-similarity warm-start selection."""

import math

import numpy as np
import pytest

from repro.embedding.embedder import WorkloadEmbedder
from repro.offline.similarity import (
    embedding_distances,
    nearest_signatures,
    select_similar,
)
from repro.sparksim.configs import query_level_space
from repro.experiments.platform_v0 import build_v0_platform, platform_training_table
from repro.workloads.tpcds import tpcds_plan


@pytest.fixture(scope="module")
def table():
    platform = build_v0_platform([1, 2, 3, 4], n_configs=10, scale_factor=10.0, seed=0)
    return platform_training_table(platform, query_level_space())


@pytest.fixture(scope="module")
def embedder():
    return WorkloadEmbedder()


class TestDistances:
    def test_shape_and_nonnegative(self, table, embedder):
        target = embedder.embed(tpcds_plan(1, 10.0))
        for metric in ("cosine", "euclidean"):
            d = embedding_distances(table, target, metric)
            assert d.shape == (len(table),)
            assert np.all(d >= -1e-12)

    def test_self_distance_zero(self, table, embedder):
        target = embedder.embed(tpcds_plan(2, 10.0))
        d = embedding_distances(table, target, "euclidean")
        sig = tpcds_plan(2, 10.0).signature()
        own = [i for i, s in enumerate(table.signatures) if s == sig]
        assert np.allclose(d[own], 0.0, atol=1e-9)

    def test_bad_metric(self, table, embedder):
        with pytest.raises(ValueError, match="metric"):
            embedding_distances(table, embedder.embed(tpcds_plan(1, 10.0)), "manhattan")

    def test_bad_target_shape(self, table):
        with pytest.raises(ValueError, match="embedding"):
            embedding_distances(table, np.ones(3))


class TestSelectSimilar:
    def test_returns_requested_rows(self, table, embedder):
        target = embedder.embed(tpcds_plan(3, 10.0))
        sub = select_similar(table, target, n_rows=12)
        assert len(sub) == 12
        assert sub.feature_dim == table.feature_dim

    def test_own_query_rows_rank_first(self, table, embedder):
        target = embedder.embed(tpcds_plan(3, 10.0))
        sub = select_similar(table, target, n_rows=10, metric="euclidean")
        sig = tpcds_plan(3, 10.0).signature()
        assert all(s == sig for s in sub.signatures)

    def test_n_rows_validated(self, table, embedder):
        with pytest.raises(ValueError):
            select_similar(table, embedder.embed(tpcds_plan(1, 10.0)), 0)

    def test_oversized_request_returns_everything(self, table, embedder):
        target = embedder.embed(tpcds_plan(1, 10.0))
        assert len(select_similar(table, target, 10**6)) == len(table)


class TestNearestSignatures:
    def test_self_is_nearest(self, table, embedder):
        target = embedder.embed(tpcds_plan(4, 10.0))
        top = nearest_signatures(table, target, k=2, metric="euclidean")
        assert top[0][0] == tpcds_plan(4, 10.0).signature()
        assert top[0][1] <= top[1][1]

    def test_k_validated(self, table, embedder):
        with pytest.raises(ValueError):
            nearest_signatures(table, embedder.embed(tpcds_plan(1, 10.0)), k=0)


class TestVectorizedKernel:
    """The broadcast kernel's bitwise contracts (retrieval warm start
    depends on these being reproducible across batch shapes/platforms)."""

    def _targets(self, embedder, n=5):
        return np.array([embedder.embed(tpcds_plan(q, 10.0)) for q in range(1, n + 1)])

    @pytest.mark.parametrize("metric", ["cosine", "euclidean"])
    def test_batch_bitwise_equals_single(self, table, embedder, metric):
        targets = self._targets(embedder)
        batch = embedding_distances(table, targets, metric)
        assert batch.shape == (len(targets), len(table))
        for j, target in enumerate(targets):
            assert np.array_equal(batch[j], embedding_distances(table, target, metric))

    @pytest.mark.parametrize("metric", ["cosine", "euclidean"])
    def test_matches_per_pair_python_loop(self, table, embedder, metric):
        """The broadcast replaces a per-pair loop; results must agree to
        float-reassociation tolerance on every pair."""
        target = embedder.embed(tpcds_plan(2, 10.0))
        embeddings = table.X[:, : table.embedding_dim]
        if metric == "euclidean":
            ref = np.array([
                math.sqrt(sum((e - t) ** 2 for e, t in zip(row, target)))
                for row in embeddings
            ])
        else:
            tn = math.sqrt(sum(t * t for t in target))
            ref = np.array([
                1.0 - sum(e * t for e, t in zip(row, target))
                / max(math.sqrt(sum(e * e for e in row)) * tn, 1e-12)
                for row in embeddings
            ])
        assert np.allclose(embedding_distances(table, target, metric), ref,
                           rtol=0.0, atol=1e-9)

    def test_batch_target_rejected_by_selectors(self, table, embedder):
        targets = self._targets(embedder, n=2)
        with pytest.raises(ValueError, match="single target"):
            select_similar(table, targets, n_rows=3)
        with pytest.raises(ValueError, match="single target"):
            nearest_signatures(table, targets, k=2)

    def test_nearest_signatures_bitwise_equals_dict_loop(self, table, embedder):
        """Reference: the per-row dict-accumulation loop this replaced."""
        target = embedder.embed(tpcds_plan(3, 10.0))
        distances = embedding_distances(table, target)
        per, cnt = {}, {}
        for sig, dist in zip(table.signatures, distances):
            per[sig] = per.get(sig, 0.0) + float(dist)
            cnt[sig] = cnt.get(sig, 0) + 1
        ref = sorted(
            ((sig, per[sig] / cnt[sig]) for sig in per),
            key=lambda item: (item[1], item[0]),
        )
        assert nearest_signatures(table, target, k=len(per)) == ref


class TestTieDeterminism:
    def test_ties_break_on_signature_id(self):
        """Four signatures at *exactly* equal distance must rank in
        signature order, independent of row order."""
        from repro.offline.etl import TrainingTable

        emb = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 0.0], [1.0, 0.0]])
        base = TrainingTable(
            X=np.hstack([emb, np.ones((4, 1))]),
            y=np.zeros(4),
            embedding_dim=2,
            config_dim=0,
            signatures=["sig-c", "sig-a", "sig-d", "sig-b"],
            regions=["r"] * 4,
        )
        target = np.array([1.0, 0.0])
        expected = [("sig-a", 0.0), ("sig-b", 0.0), ("sig-c", 0.0), ("sig-d", 0.0)]
        got = nearest_signatures(base, target, k=4)
        assert [s for s, _ in got] == [s for s, _ in expected]
        assert all(abs(m) < 1e-12 for _, m in got)
        # Permuting the rows must not change the ranking.
        perm = [2, 0, 3, 1]
        shuffled = TrainingTable(
            X=base.X[perm], y=base.y[perm], embedding_dim=2, config_dim=0,
            signatures=[base.signatures[i] for i in perm], regions=["r"] * 4,
        )
        assert [s for s, _ in nearest_signatures(shuffled, target, k=4)] == \
            [s for s, _ in got]
