"""Tests for the offline-phase CLI."""

import json

import pytest

from repro.ml.serialize import load_model
from repro.offline.__main__ import main
from repro.sparksim.events import events_from_jsonl


@pytest.fixture
def config_file(tmp_path):
    path = tmp_path / "flight.json"
    path.write_text(json.dumps({
        "benchmark": "tpch",
        "query_ids": [1, 6],
        "scale_factors": [1.0],
        "n_configs": 3,
        "runs_per_config": 1,
        "seed": 0,
    }))
    return path


def test_cli_runs_flighting(config_file, capsys):
    assert main([str(config_file)]) == 0
    out = capsys.readouterr().out
    assert "6 executions" in out


def test_cli_writes_events(config_file, tmp_path, capsys):
    events_path = tmp_path / "out" / "events.jsonl"
    assert main([str(config_file), "--events", str(events_path)]) == 0
    events = events_from_jsonl(events_path.read_text())
    assert len(events) == 6


def test_cli_trains_model(config_file, tmp_path, capsys):
    model_path = tmp_path / "baseline.json"
    assert main([str(config_file), "--model", str(model_path)]) == 0
    model = load_model(model_path)
    assert hasattr(model, "predict")
