"""Tests for baseline model training and transfer learning."""

import numpy as np
import pytest

from repro.ml.metrics import spearman_rho
from repro.offline.baseline import BaselineModelTrainer
from repro.offline.etl import TrainingTable, build_training_table
from repro.offline.flighting import FlightingConfig, FlightingPipeline
from repro.offline.transfer import FineTunedSurrogate, warm_start_cbo
from repro.sparksim.configs import query_level_space


@pytest.fixture(scope="module")
def table():
    config = FlightingConfig(benchmark="tpch", query_ids=[1, 3, 6, 12],
                             n_configs=8, seed=0)
    events = FlightingPipeline(config).execute()
    return build_training_table(events, query_level_space())


class TestBaselineModelTrainer:
    def test_train_and_rank_quality(self, table):
        model = BaselineModelTrainer().train(table)
        preds = model.predict(table.X)
        assert spearman_rho(table.y, preds) > 0.8

    def test_too_few_rows_rejected(self, table):
        tiny = TrainingTable(
            X=table.X[:3], y=table.y[:3],
            embedding_dim=table.embedding_dim, config_dim=table.config_dim,
            signatures=table.signatures[:3], regions=table.regions[:3],
        )
        with pytest.raises(ValueError, match="few"):
            BaselineModelTrainer().train(tiny)

    def test_per_region_training(self, table):
        mixed = TrainingTable(
            X=np.vstack([table.X, table.X]),
            y=np.concatenate([table.y, table.y]),
            embedding_dim=table.embedding_dim, config_dim=table.config_dim,
            signatures=table.signatures * 2,
            regions=["east"] * len(table) + ["west"] * len(table),
        )
        models = BaselineModelTrainer().train_per_region(mixed)
        assert set(models) == {"east", "west"}

    def test_model_persistence(self, table, tmp_path):
        trainer = BaselineModelTrainer(
            model_factory=lambda: __import__("repro.ml.forest", fromlist=["f"])
            .RandomForestRegressor(n_estimators=5, seed=0),
            model_dir=tmp_path,
        )
        trained = trainer.train(table, region="eu")
        fresh = BaselineModelTrainer(model_dir=tmp_path)
        loaded = fresh.get("eu")
        assert np.allclose(loaded.predict(table.X[:5]), trained.predict(table.X[:5]))

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            BaselineModelTrainer().get("atlantis")


class TestFineTunedSurrogate:
    def test_query_weight_validation(self, table):
        with pytest.raises(ValueError):
            FineTunedSurrogate(table.X, table.y, query_weight=0)

    def test_baseline_only_prediction(self, table):
        surrogate = FineTunedSurrogate(table.X, table.y)
        preds = surrogate.predict(table.X[:4])
        assert preds.shape == (4,)
        assert surrogate.n_query_rows == 0

    def test_query_rows_shift_predictions(self, table):
        surrogate = FineTunedSurrogate(table.X, table.y, query_weight=20)
        target_row = table.X[:1]
        before = surrogate.predict(target_row)[0]
        # Fine-tune with a wildly different label for that exact row.
        surrogate.fit(target_row, np.array([before * 10.0]))
        after = surrogate.predict(target_row)[0]
        assert after > before

    def test_feature_dim_checked(self, table):
        surrogate = FineTunedSurrogate(table.X, table.y)
        with pytest.raises(ValueError, match="features"):
            surrogate.fit(np.ones((2, 3)), np.ones(2))


class TestWarmStartCBO:
    def test_builds_with_subsample(self, table):
        cbo = warm_start_cbo(query_level_space(), table, n_samples=10, seed=0)
        assert cbo.has_warm_start
        v = cbo.suggest(data_size=1e6)
        assert query_level_space().contains_vector(v)
