"""ANN index contracts: exactness, tie-breaks, edge cases, serialization."""

import json

import numpy as np
import pytest

from repro.ml.serialize import dumps_index, loads_index
from repro.retrieval import FlatIndex, IVFIndex, assign_clusters, kmeans

pytestmark = pytest.mark.retrieval

DIM = 12


@pytest.fixture(scope="module")
def entries():
    return np.random.default_rng(7).normal(size=(300, DIM))


@pytest.fixture(scope="module")
def queries():
    return np.random.default_rng(8).normal(size=(5, DIM))


def brute_force_ids(entries, query, k, metric):
    """Reference ranking: stable lexsort over per-pair distances."""
    if metric == "euclidean":
        dists = np.linalg.norm(entries - query[None, :], axis=1)
    else:
        dots = entries @ query
        norms = np.linalg.norm(entries, axis=1) * max(np.linalg.norm(query), 1e-12)
        dists = 1.0 - dots / np.maximum(norms, 1e-12)
    return np.lexsort((np.arange(len(entries)), dists))[:k]


class TestFlatExactness:
    @pytest.mark.parametrize("metric", ["cosine", "euclidean"])
    def test_matches_brute_force_ordering(self, entries, queries, metric):
        index = FlatIndex(DIM, metric=metric)
        index.add(entries)
        ids, dists = index.search(queries, 10)
        for row, query in enumerate(queries):
            assert np.array_equal(
                ids[row], brute_force_ids(entries, query, 10, metric)
            )
        assert np.all(np.diff(dists, axis=1) >= -1e-12)
        assert np.all(dists >= -1e-12)

    def test_single_query_equals_batch_row(self, entries, queries):
        index = FlatIndex(DIM)
        index.add(entries)
        batch_ids, batch_dists = index.search(queries, 7)
        one_ids, one_dists = index.search(queries[2], 7)
        assert one_ids.shape == (7,)
        assert np.array_equal(one_ids, batch_ids[2])
        # dgemm reassociates with batch shape; ids are exact, distances near.
        assert np.allclose(one_dists, batch_dists[2], rtol=0.0, atol=1e-9)

    def test_incremental_adds_equal_bulk(self, entries, queries):
        bulk = FlatIndex(DIM)
        bulk.add(entries)
        incremental = FlatIndex(DIM)
        for start in range(0, len(entries), 37):   # ragged blocks force growth
            incremental.add(entries[start : start + 37])
        assert incremental.repack_count > 1
        b = bulk.search(queries, 10)
        i = incremental.search(queries, 10)
        assert np.array_equal(b[0], i[0]) and np.array_equal(b[1], i[1])


class TestEdgeCases:
    def test_empty_corpus_returns_padding(self, queries):
        index = FlatIndex(DIM)
        ids, dists = index.search(queries, 4)
        assert np.all(ids == -1) and np.all(np.isinf(dists))
        assert len(index) == 0

    def test_k_exceeding_corpus_pads_tail(self, entries, queries):
        index = FlatIndex(DIM)
        index.add(entries[:3])
        ids, dists = index.search(queries[0], 8)
        assert sorted(ids[:3]) == [0, 1, 2]
        assert np.all(ids[3:] == -1) and np.all(np.isinf(dists[3:]))

    def test_duplicate_embeddings_tie_break_on_id(self):
        index = FlatIndex(4)
        index.add(np.tile([1.0, 2.0, 3.0, 4.0], (6, 1)))
        ids, dists = index.search(np.array([1.0, 2.0, 3.0, 4.0]), 4)
        assert np.array_equal(ids, [0, 1, 2, 3])
        assert np.allclose(dists, 0.0, atol=1e-12)

    def test_custom_ids_returned(self, entries):
        index = FlatIndex(DIM)
        custom = np.arange(100, 100 + len(entries), dtype=np.int64)
        assert np.array_equal(index.add(entries, custom), custom)
        ids, _ = index.search(entries[5], 1)
        assert ids[0] == 105

    def test_validation(self):
        with pytest.raises(ValueError, match="metric"):
            FlatIndex(4, metric="manhattan")
        with pytest.raises(ValueError, match="dim"):
            FlatIndex(0)
        index = FlatIndex(4)
        with pytest.raises(ValueError, match="shape"):
            index.add(np.ones((2, 3)))
        with pytest.raises(ValueError, match="k must be"):
            index.search(np.ones(4), 0)
        with pytest.raises(ValueError, match="ids"):
            index.add(np.ones((2, 4)), np.array([1]))


class TestIVF:
    @pytest.mark.parametrize("metric", ["cosine", "euclidean"])
    def test_single_partition_equals_flat(self, entries, queries, metric):
        flat = FlatIndex(DIM, metric=metric)
        flat.add(entries)
        ivf = IVFIndex(DIM, n_lists=1, metric=metric)
        ivf.add(entries)
        f_ids, f_dists = flat.search(queries, 10)
        i_ids, i_dists = ivf.search(queries, 10)
        assert np.array_equal(f_ids, i_ids)
        assert np.allclose(f_dists, i_dists, rtol=0.0, atol=1e-12)

    def test_full_probe_equals_flat_ids(self, entries, queries):
        flat = FlatIndex(DIM)
        flat.add(entries)
        ivf = IVFIndex(DIM, n_lists=8, seed=3)
        ivf.add(entries)
        f_ids, _ = flat.search(queries, 10)
        i_ids, _ = ivf.search(queries, 10, nprobe=8)
        assert np.array_equal(f_ids, i_ids)

    def test_incremental_adds_preserve_members(self, entries, queries):
        bulk = IVFIndex(DIM, n_lists=4, seed=1)
        bulk.add(entries)
        incremental = IVFIndex(DIM, n_lists=4, seed=1)
        incremental.train(entries)
        for start in range(0, len(entries), 23):
            incremental.add(entries[start : start + 23])
        assert len(incremental) == len(entries)
        b = bulk.search(queries, 10, nprobe=4)
        i = incremental.search(queries, 10, nprobe=4)
        assert np.array_equal(b[0], i[0])
        assert np.allclose(b[1], i[1], rtol=0.0, atol=1e-12)

    def test_lazy_training_needs_enough_vectors(self):
        ivf = IVFIndex(DIM, n_lists=16)
        with pytest.raises(ValueError, match="training vectors"):
            ivf.add(np.ones((4, DIM)))
        assert not ivf.trained

    def test_nprobe_validation(self, entries):
        with pytest.raises(ValueError, match="nprobe"):
            IVFIndex(DIM, n_lists=4, nprobe=5)
        ivf = IVFIndex(DIM, n_lists=4)
        ivf.add(entries)
        with pytest.raises(ValueError, match="nprobe"):
            ivf.search(entries[0], 3, nprobe=0)

    def test_default_nprobe_is_sqrt(self):
        assert IVFIndex(DIM, n_lists=64).nprobe == 8
        assert IVFIndex(DIM, n_lists=1).nprobe == 1


class TestSerialization:
    @pytest.mark.parametrize("metric", ["cosine", "euclidean"])
    def test_flat_round_trip_byte_identity(self, entries, queries, metric):
        index = FlatIndex(DIM, metric=metric)
        index.add(entries)
        payload = dumps_index(index)
        restored = loads_index(payload)
        # Byte identity: serializing the restored index reproduces the
        # payload exactly (float64 survives the JSON repr round-trip).
        assert dumps_index(restored) == payload
        a, b = index.search(queries, 10), restored.search(queries, 10)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_ivf_round_trip_byte_identity(self, entries, queries):
        index = IVFIndex(DIM, n_lists=6, seed=2)
        index.add(entries[:200])
        index.add(entries[200:])   # leaves pending blocks for to_payload to pack
        payload = dumps_index(index)
        restored = loads_index(payload)
        assert dumps_index(restored) == payload
        a, b = index.search(queries, 10), restored.search(queries, 10)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_round_trip_preserves_next_id(self):
        index = FlatIndex(4)
        index.add(np.ones((2, 4)), np.array([5, 9]))
        restored = loads_index(dumps_index(index))
        assert np.array_equal(restored.add(np.ones((1, 4))), [10])

    def test_rejects_unknown_payloads(self):
        with pytest.raises(TypeError, match="index type"):
            dumps_index(object())
        with pytest.raises(TypeError, match="serialized index"):
            loads_index(json.dumps({"type": "HNSW"}))


class TestKMeans:
    def test_deterministic_and_chunking_invariant(self, entries):
        a = kmeans(entries, 5, seed=4)
        b = kmeans(entries, 5, seed=4)
        assert np.array_equal(a, b)
        assert np.array_equal(
            assign_clusters(entries, a, chunk=16),
            assign_clusters(entries, a, chunk=10**6),
        )

    def test_needs_enough_rows(self):
        with pytest.raises(ValueError, match="rows"):
            kmeans(np.ones((3, 2)), 4)

    def test_separated_clusters_recovered(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [100.0, 0.0], [0.0, 100.0]])
        data = np.vstack([
            c + rng.normal(scale=0.1, size=(40, 2)) for c in centers
        ])
        fitted = kmeans(data, 3, seed=2)
        assign = assign_clusters(data, fitted)
        # Each true cluster maps to exactly one fitted centroid.
        groups = [set(assign[i * 40 : (i + 1) * 40]) for i in range(3)]
        assert all(len(g) == 1 for g in groups)
        assert len(set().union(*groups)) == 3
