"""Corpus records, builders, serialization, and warm-start wiring."""

import numpy as np
import pytest

from repro.embedding.embedder import WorkloadEmbedder
from repro.offline.transfer import warm_start_cbo
from repro.retrieval import (
    CorpusRecord,
    RetrievalCorpus,
    RetrievedNeighbor,
    adapt_config,
    corpus_from_population,
    corpus_from_table,
    neighbors_table,
    probe_population,
    recommend_config,
)
from repro.sparksim.configs import query_level_space
from repro.workloads.customer import generate_population

pytestmark = pytest.mark.retrieval

DIM = 8


def make_record(i, dim=DIM):
    rng = np.random.default_rng(i)
    return CorpusRecord(
        workload_id=f"wl-{i}",
        signature=f"sig-{i}",
        embedding=rng.normal(size=dim),
        config={"spark.executor.cores": float(i + 1)},
        observed_cost=10.0 + i,
        default_cost=20.0 + i,
        data_size=float(i + 1),
        region="eu",
    )


class TestRecords:
    def test_payload_round_trip(self):
        record = make_record(3)
        restored = CorpusRecord.from_payload(record.to_payload())
        assert restored.workload_id == record.workload_id
        assert restored.signature == record.signature
        assert np.array_equal(restored.embedding, record.embedding)
        assert restored.config == record.config
        assert restored.observed_cost == record.observed_cost
        assert restored.data_size == record.data_size
        assert restored.region == "eu"


class TestCorpus:
    def test_search_returns_nearest_records(self):
        corpus = RetrievalCorpus(DIM)
        corpus.add([make_record(i) for i in range(20)])
        target = make_record(7)
        neighbors = corpus.search(target.embedding, k=3)
        assert len(neighbors) == 3
        assert neighbors[0].record.workload_id == "wl-7"
        assert neighbors[0].distance == pytest.approx(0.0, abs=1e-12)
        assert all(isinstance(n, RetrievedNeighbor) for n in neighbors)

    def test_empty_corpus_searches_empty(self):
        assert RetrievalCorpus(DIM).search(np.zeros(DIM)) == []

    def test_add_extends_existing_index(self):
        corpus = RetrievalCorpus(DIM)
        corpus.add([make_record(i) for i in range(6)])
        corpus.build_index("flat")
        corpus.add([make_record(6)])
        assert corpus.search(make_record(6).embedding, k=1)[0].record.workload_id == "wl-6"

    def test_embedding_shape_validated(self):
        corpus = RetrievalCorpus(DIM)
        bad = CorpusRecord("w", "s", np.zeros(DIM + 1), {}, 1.0)
        with pytest.raises(ValueError, match="shape"):
            corpus.add([bad])

    def test_ivf_index_kind(self):
        corpus = RetrievalCorpus(DIM)
        corpus.add([make_record(i) for i in range(30)])
        corpus.build_index("ivf", n_lists=3, seed=0)
        hit = corpus.search(make_record(11).embedding, k=1)[0]
        assert hit.record.workload_id == "wl-11"
        with pytest.raises(ValueError, match="index kind"):
            corpus.build_index("hnsw")

    def test_dumps_loads_round_trip_with_index(self):
        corpus = RetrievalCorpus(DIM)
        corpus.add([make_record(i) for i in range(10)])
        corpus.build_index("flat")
        payload = corpus.dumps()
        restored = RetrievalCorpus.loads(payload)
        assert restored.dumps() == payload
        a = corpus.search(make_record(4).embedding, k=2)
        b = restored.search(make_record(4).embedding, k=2)
        assert [n.record.signature for n in a] == [n.record.signature for n in b]
        assert [n.distance for n in a] == [n.distance for n in b]


class TestBuilders:
    @pytest.fixture(scope="class")
    def probe(self):
        space = query_level_space()
        population = generate_population(3, seed=5)
        corpus, table = probe_population(population, space, n_configs=8, seed=5)
        return space, population, corpus, table

    def test_probe_population_shapes(self, probe):
        space, population, corpus, table = probe
        n_plans = sum(len(w.plans) for w in population)
        assert len(corpus) == n_plans
        assert table.X.shape == (n_plans * 8, table.embedding_dim + space.dim + 1)
        # Each record's observed cost is the best of its plan's probe rows.
        for record in corpus.records:
            rows = [i for i, s in enumerate(table.signatures) if s == record.signature]
            assert record.observed_cost == pytest.approx(float(np.min(table.y[rows])))
            assert np.isfinite(record.default_cost)

    def test_corpus_from_table_takes_best_row(self, probe):
        space, _, probe_corpus, table = probe
        corpus = corpus_from_table(table, space, workload_prefix="probe")
        assert len(corpus) == len({s for s in table.signatures})
        by_sig = {r.signature: r for r in corpus.records}
        for record in probe_corpus.records:
            assert by_sig[record.signature].observed_cost == pytest.approx(
                record.observed_cost
            )
        assert all(r.workload_id.startswith("probe:") for r in corpus.records)

    def test_corpus_from_table_validates_space(self, probe):
        space, _, _, table = probe
        from repro.core.config_space import ConfigSpace

        with pytest.raises(ValueError, match="dim"):
            corpus_from_table(table, ConfigSpace(list(space)[:2]))

    def test_corpus_from_population_matches_probe(self, probe):
        space, population, probe_corpus, _ = probe
        corpus = corpus_from_population(population, space, n_configs=8, seed=5)
        assert [r.signature for r in corpus.records] == [
            r.signature for r in probe_corpus.records
        ]
        assert [r.observed_cost for r in corpus.records] == [
            r.observed_cost for r in probe_corpus.records
        ]


class TestRecommendation:
    PARTS = "spark.sql.shuffle.partitions"

    def record_with(self, parts, data_size, i=0):
        space = query_level_space()
        config = space.default_dict()
        config[self.PARTS] = parts
        return CorpusRecord(
            f"w{i}", f"s{i}", np.full(4, float(i)), config, 5.0,
            data_size=data_size,
        )

    def test_adapt_scales_partitions_with_data_size(self):
        space = query_level_space()
        record = self.record_with(parts=50.0, data_size=1e8)
        adapted = adapt_config(record, space, data_size=4e8)
        assert adapted[self.PARTS] == pytest.approx(200.0)
        # Non-proportional knobs transfer verbatim.
        assert adapted["spark.sql.files.maxPartitionBytes"] == pytest.approx(
            record.config["spark.sql.files.maxPartitionBytes"]
        )

    def test_adapt_clips_into_bounds(self):
        space = query_level_space()
        record = self.record_with(parts=1000.0, data_size=1.0)
        adapted = adapt_config(record, space, data_size=1e9)
        assert adapted[self.PARTS] == space[self.PARTS].high

    def test_adapt_without_target_size_is_identity(self):
        space = query_level_space()
        record = self.record_with(parts=50.0, data_size=1e8)
        assert adapt_config(record, space) == pytest.approx(dict(record.config))

    def test_recommend_is_mean_of_adapted_neighbors(self):
        space = query_level_space()
        neighbors = [
            RetrievedNeighbor(self.record_with(20.0, 1e8, i=0), 0.1),
            RetrievedNeighbor(self.record_with(60.0, 1e8, i=1), 0.2),
        ]
        config = recommend_config(neighbors, space, data_size=2e8)
        # 20 and 60 scale 2x to 40 and 120; the mean runs in the space's
        # internal (log) scale, so the result is their geometric mean.
        assert config[self.PARTS] == pytest.approx(
            np.sqrt(40.0 * 120.0), abs=1.0
        )
        with pytest.raises(ValueError, match="no neighbors"):
            recommend_config([], space)


class TestWarmStartPriors:
    def test_neighbors_table_layout(self):
        space = query_level_space()
        embedder = WorkloadEmbedder()
        neighbors = [
            RetrievedNeighbor(
                CorpusRecord(
                    f"w{i}", f"s{i}", np.full(embedder.dim, float(i)),
                    space.default_dict(), 5.0 + i, data_size=2.0,
                ),
                distance=0.1 * i,
            )
            for i in range(3)
        ]
        table = neighbors_table(neighbors, space)
        assert table.X.shape == (3, embedder.dim + space.dim + 1)
        assert table.embedding_dim == embedder.dim
        assert np.array_equal(table.y, [5.0, 6.0, 7.0])
        assert np.all(table.X[:, -1] == 2.0)
        with pytest.raises(ValueError, match="no neighbors"):
            neighbors_table([], space)

    def test_warm_start_cbo_accepts_neighbors(self):
        space = query_level_space()
        population = generate_population(2, seed=3)
        corpus, table = probe_population(population, space, n_configs=6, seed=3)
        target = corpus.records[0]
        neighbors = [RetrievedNeighbor(target, 0.0)]
        cbo = warm_start_cbo(
            space, table, n_samples=10, seed=0, neighbors=neighbors
        )
        plain = warm_start_cbo(space, table, n_samples=10, seed=0)
        # The neighbor rows ride along after subsampling.
        assert len(cbo._warm_X) == len(plain._warm_X) + 1
        assert cbo._warm_y[-1] == pytest.approx(target.observed_cost)
