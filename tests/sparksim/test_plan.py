"""Tests for physical plans (operator DAGs)."""

import pytest

from repro.sparksim.plan import Operator, OpType, PhysicalPlan


def chain_plan():
    return PhysicalPlan([
        Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=1000, est_rows_out=1000),
        Operator(op_id=1, op_type=OpType.FILTER, est_rows_in=1000, est_rows_out=100,
                 children=(0,)),
        Operator(op_id=2, op_type=OpType.HASH_AGGREGATE, est_rows_in=100, est_rows_out=10,
                 children=(1,)),
    ], name="chain")


class TestOperator:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="operator type"):
            Operator(op_id=0, op_type="Teleport", est_rows_in=1, est_rows_out=1)

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            Operator(op_id=0, op_type=OpType.FILTER, est_rows_in=-1, est_rows_out=0)

    def test_bytes_properties(self):
        op = Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=10,
                      est_rows_out=10, row_bytes=50.0)
        assert op.bytes_in == 500.0
        assert op.bytes_out == 500.0


class TestPhysicalPlan:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PhysicalPlan([])

    def test_duplicate_ids_rejected(self):
        op = Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=1, est_rows_out=1)
        with pytest.raises(ValueError, match="duplicate"):
            PhysicalPlan([op, op])

    def test_unknown_child_rejected(self):
        with pytest.raises(ValueError, match="unknown child"):
            PhysicalPlan([
                Operator(op_id=0, op_type=OpType.FILTER, est_rows_in=1,
                         est_rows_out=1, children=(99,))
            ])

    def test_multiple_roots_rejected(self):
        with pytest.raises(ValueError, match="root"):
            PhysicalPlan([
                Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=1, est_rows_out=1),
                Operator(op_id=1, op_type=OpType.TABLE_SCAN, est_rows_in=1, est_rows_out=1),
            ])

    def test_topological_order(self):
        plan = chain_plan()
        ids = [op.op_id for op in plan.operators]
        assert ids.index(0) < ids.index(1) < ids.index(2)

    def test_root_and_leaves(self):
        plan = chain_plan()
        assert plan.root.op_id == 2
        assert [op.op_id for op in plan.leaves] == [0]

    def test_embedding_ingredients(self):
        plan = chain_plan()
        assert plan.root_cardinality == 10
        assert plan.total_leaf_cardinality == 1000
        assert plan.operator_counts() == {
            OpType.TABLE_SCAN: 1, OpType.FILTER: 1, OpType.HASH_AGGREGATE: 1
        }

    def test_signature_stable_across_cardinalities(self):
        plan = chain_plan()
        scaled = plan.scaled(10.0)
        assert plan.signature() == scaled.signature()

    def test_signature_differs_for_different_shapes(self):
        plan = chain_plan()
        other = PhysicalPlan([
            Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=1000, est_rows_out=1000),
            Operator(op_id=1, op_type=OpType.SORT, est_rows_in=1000, est_rows_out=1000,
                     children=(0,)),
            Operator(op_id=2, op_type=OpType.HASH_AGGREGATE, est_rows_in=1000,
                     est_rows_out=10, children=(1,)),
        ])
        assert plan.signature() != other.signature()

    def test_scaled_multiplies_cardinalities(self):
        plan = chain_plan().scaled(3.0)
        assert plan.total_leaf_cardinality == 3000
        assert plan.root_cardinality == 30

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            chain_plan().scaled(0.0)

    def test_len_and_iter(self):
        plan = chain_plan()
        assert len(plan) == 3
        assert len(list(plan)) == 3
