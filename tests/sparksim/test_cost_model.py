"""Tests for the analytic cost model — the knob-response shapes the paper
relies on."""

import numpy as np
import pytest

from repro.sparksim.cluster import ExecutorLayout
from repro.sparksim.configs import query_level_space
from repro.sparksim.cost_model import CostModel, CostParameters
from repro.sparksim.plan import Operator, OpType, PhysicalPlan
from repro.workloads.tables import TPCH_TABLES
from repro.workloads.tpch import tpch_plan


@pytest.fixture
def model():
    return CostModel()


@pytest.fixture
def layout():
    return ExecutorLayout(executors=4, cores_per_executor=4,
                          memory_gb_per_executor=8.0)


def scan_plan(rows=50_000_000, row_bytes=100.0):
    return PhysicalPlan([
        Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=rows,
                 est_rows_out=rows, row_bytes=row_bytes),
        Operator(op_id=1, op_type=OpType.PROJECT, est_rows_in=rows,
                 est_rows_out=rows, row_bytes=row_bytes, children=(0,)),
    ])


def shuffle_plan(rows=20_000_000, row_bytes=100.0):
    return PhysicalPlan([
        Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=rows,
                 est_rows_out=rows, row_bytes=row_bytes),
        Operator(op_id=1, op_type=OpType.EXCHANGE, est_rows_in=rows,
                 est_rows_out=rows, row_bytes=row_bytes, children=(0,)),
        Operator(op_id=2, op_type=OpType.PROJECT, est_rows_in=rows,
                 est_rows_out=rows, row_bytes=row_bytes, children=(1,)),
    ])


def join_plan(build_rows, probe_rows=10_000_000, row_bytes=100.0):
    return PhysicalPlan([
        Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=probe_rows,
                 est_rows_out=probe_rows, row_bytes=row_bytes),
        Operator(op_id=1, op_type=OpType.TABLE_SCAN, est_rows_in=build_rows,
                 est_rows_out=build_rows, row_bytes=row_bytes),
        Operator(op_id=2, op_type=OpType.JOIN, est_rows_in=probe_rows + build_rows,
                 est_rows_out=probe_rows, row_bytes=row_bytes, children=(0, 1)),
    ])


class TestKnobShapes:
    def test_max_partition_bytes_is_convex_like(self, model, layout):
        """Tiny partitions pay overhead; huge ones under-parallelize."""
        plan = scan_plan()
        grid = np.logspace(np.log10(1 << 20), np.log10(1 << 30), 15)
        times = [
            model.estimate(plan, {"spark.sql.files.maxPartitionBytes": m}, layout).total_seconds
            for m in grid
        ]
        best = int(np.argmin(times))
        assert 0 < best < len(grid) - 1           # interior optimum
        assert times[0] > times[best]
        assert times[-1] > times[best]

    def test_shuffle_partitions_is_convex_like(self, model, layout):
        plan = shuffle_plan()
        grid = np.unique(np.logspace(np.log10(8), np.log10(4000), 15).round())
        times = [
            model.estimate(plan, {"spark.sql.shuffle.partitions": p}, layout).total_seconds
            for p in grid
        ]
        best = int(np.argmin(times))
        assert times[0] > times[best]
        assert times[-1] > times[best]

    def test_broadcast_good_for_small_build_side(self, model, layout):
        plan = join_plan(build_rows=50_000)  # 5 MB build side
        smj = model.estimate(
            plan, {"spark.sql.autoBroadcastJoinThreshold": 1024}, layout
        ).total_seconds
        bhj = model.estimate(
            plan, {"spark.sql.autoBroadcastJoinThreshold": 64 << 20}, layout
        ).total_seconds
        assert bhj < smj

    def test_broadcast_penalized_for_huge_build_side(self, model, layout):
        # Build side = the smaller input; make it 8 GB (way past memory).
        plan = join_plan(build_rows=80_000_000, probe_rows=200_000_000)
        smj = model.estimate(
            plan, {"spark.sql.autoBroadcastJoinThreshold": 1024}, layout
        ).total_seconds
        forced_bhj = model.estimate(
            plan, {"spark.sql.autoBroadcastJoinThreshold": float(2 << 40)}, layout
        ).total_seconds
        assert forced_bhj > smj

    def test_more_cores_never_slower_on_scans(self, model):
        plan = scan_plan()
        small = ExecutorLayout(executors=2, cores_per_executor=2,
                               memory_gb_per_executor=8.0)
        big = ExecutorLayout(executors=16, cores_per_executor=8,
                             memory_gb_per_executor=8.0)
        config = {"spark.sql.files.maxPartitionBytes": 64 << 20}
        assert (model.estimate(plan, config, big).total_seconds
                <= model.estimate(plan, config, small).total_seconds)

    def test_memory_relieves_spill(self, model):
        plan = shuffle_plan(rows=200_000_000)
        config = {"spark.sql.shuffle.partitions": 16}  # few, fat reducers
        starved = ExecutorLayout(executors=4, cores_per_executor=4,
                                 memory_gb_per_executor=2.0)
        roomy = ExecutorLayout(executors=4, cores_per_executor=4,
                               memory_gb_per_executor=64.0)
        assert (model.estimate(plan, config, roomy).total_seconds
                < model.estimate(plan, config, starved).total_seconds)


def self_join_plan(rows=5_000_000, row_bytes=100.0):
    """A degenerate JOIN with a single input (self-join)."""
    return PhysicalPlan([
        Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=rows,
                 est_rows_out=rows, row_bytes=row_bytes),
        Operator(op_id=1, op_type=OpType.JOIN, est_rows_in=rows,
                 est_rows_out=rows // 2, row_bytes=row_bytes, children=(0,)),
    ])


class TestJoinCostBranches:
    def test_single_input_join_splits_the_input(self, model, layout):
        # build = 20% of the input bytes, so a threshold straddling that
        # boundary flips the strategy: just above it broadcasts, just below
        # falls back to sort-merge.
        plan = self_join_plan(rows=1_000_000)
        build_bytes = 1_000_000 * 100.0 * 0.2
        bhj = model.estimate(
            plan, {"spark.sql.autoBroadcastJoinThreshold": build_bytes + 1.0},
            layout,
        )
        smj = model.estimate(
            plan, {"spark.sql.autoBroadcastJoinThreshold": build_bytes - 1.0},
            layout,
        )
        assert bhj.metrics.get("broadcast_joins") == 1.0
        assert "sort_merge_joins" not in bhj.metrics
        assert smj.metrics.get("sort_merge_joins") == 1.0
        assert "broadcast_joins" not in smj.metrics
        assert bhj.total_seconds != smj.total_seconds

    def test_single_input_join_finite_and_positive(self, model, layout):
        for rows in (1, 2, 10, 1_000_000):
            breakdown = model.estimate(plan := self_join_plan(rows=rows), {}, layout)
            assert np.isfinite(breakdown.total_seconds)
            assert breakdown.total_seconds > 0
            assert set(breakdown.per_operator) == {op.op_id for op in plan.operators}

    def test_broadcast_memory_pressure_metric_and_penalty(self, model, layout):
        # Forcing a broadcast past the executor memory budget must surface
        # the pressure metric and cost more than a comfortable broadcast.
        comfortable = join_plan(build_rows=50_000)          # ~5 MB build side
        oversized = join_plan(build_rows=80_000_000,        # ~8 GB build side
                              probe_rows=200_000_000)
        force = {"spark.sql.autoBroadcastJoinThreshold": float(2 << 40)}
        ok = model.estimate(comfortable, force, layout)
        pressured = model.estimate(oversized, force, layout)
        assert "broadcast_memory_pressure" not in ok.metrics
        assert pressured.metrics["broadcast_memory_pressure"] > 1.0
        assert pressured.metrics.get("broadcast_joins") == 1.0

    def test_memory_pressure_penalty_is_capped(self, model):
        # The quadratic penalty saturates (min(pressure^2, 25)); past that
        # point, shrinking memory further must not change the estimate at
        # all — the join-heavy plan below saturates under both layouts.
        plan = join_plan(build_rows=200_000_000, probe_rows=2_000_000_000)
        force = {"spark.sql.autoBroadcastJoinThreshold": float(1 << 50)}

        def run(memory_gb):
            layout = ExecutorLayout(executors=2, cores_per_executor=2,
                                    memory_gb_per_executor=memory_gb)
            return model.estimate(plan, force, layout)

        one_gb, two_gb = run(1.0), run(2.0)
        assert one_gb.metrics["broadcast_memory_pressure"] > 5.0
        assert two_gb.metrics["broadcast_memory_pressure"] > 5.0
        assert np.isfinite(one_gb.total_seconds)
        assert one_gb.total_seconds == two_gb.total_seconds


class TestEstimates:
    def test_breakdown_covers_every_operator(self, model, layout, spark_space):
        plan = tpch_plan(3, 1.0)
        breakdown = model.estimate(plan, spark_space.default_dict(), layout)
        assert set(breakdown.per_operator) == {op.op_id for op in plan.operators}
        assert breakdown.total_seconds > sum(breakdown.per_operator.values()) - 1e-9

    def test_metrics_present(self, model, layout, spark_space):
        plan = tpch_plan(3, 1.0)
        metrics = model.estimate(plan, spark_space.default_dict(), layout).metrics
        assert metrics["tasks"] > 0
        assert metrics["input_rows"] == plan.total_leaf_cardinality

    def test_monotone_in_data_scale(self, model, layout, spark_space):
        config = spark_space.default_dict()
        t1 = model.estimate(tpch_plan(6, 1.0), config, layout).total_seconds
        t10 = model.estimate(tpch_plan(6, 10.0), config, layout).total_seconds
        assert t10 > t1

    def test_deterministic(self, model, layout, spark_space):
        plan = tpch_plan(5, 1.0)
        config = spark_space.default_dict()
        a = model.estimate(plan, config, layout).total_seconds
        b = model.estimate(plan, config, layout).total_seconds
        assert a == b
