"""Tests for the vectorized batch evaluation pipeline.

The contract under test is *golden equivalence*: ``estimate_batch`` replays
the scalar cost-model arithmetic column-wise in the same operation order, so
batch results must match the per-config scalar reference not just within the
ISSUE's 1e-9 tolerance but bitwise — and ``run_batch`` must consume the
simulator's noise stream in exactly the order N sequential ``run`` calls
would.
"""

import time

import numpy as np
import pytest

from repro import telemetry
from repro.faults.injectors import FaultySimulator
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.sparksim.batch import (
    ConfigColumns,
    clear_plan_arrays_cache,
    plan_arrays,
    plan_arrays_cache_stats,
    resolve_layouts,
)
from repro.sparksim.cluster import ExecutorLayout, default_pool
from repro.sparksim.configs import full_space, query_level_space
from repro.sparksim.cost_model import CostModel
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import low_noise, no_noise
from repro.sparksim.plan import Operator, OpType, PhysicalPlan
from repro.workloads.tpcds import tpcds_plan
from repro.workloads.tpch import tpch_plan


@pytest.fixture
def model():
    return CostModel()


def degenerate_join_plan():
    """A self-join: the JOIN has a single child."""
    rows = 5_000_000
    return PhysicalPlan([
        Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=rows,
                 est_rows_out=rows, row_bytes=120.0),
        Operator(op_id=1, op_type=OpType.JOIN, est_rows_in=rows,
                 est_rows_out=rows // 2, row_bytes=120.0, children=(0,)),
    ])


def every_op_type_plan():
    """One operator of every type the kernel dispatches on."""
    rows = 2_000_000
    ops = [Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=rows,
                    est_rows_out=rows, row_bytes=90.0)]
    chain = [OpType.FILTER, OpType.PROJECT, OpType.EXCHANGE,
             OpType.HASH_AGGREGATE, OpType.SORT, OpType.WINDOW,
             OpType.UNION, OpType.LIMIT]
    for i, op_type in enumerate(chain, start=1):
        ops.append(Operator(op_id=i, op_type=op_type, est_rows_in=rows,
                            est_rows_out=rows, row_bytes=90.0,
                            children=(i - 1,)))
    ops.append(Operator(op_id=len(ops), op_type=OpType.TABLE_SCAN,
                        est_rows_in=rows // 4, est_rows_out=rows // 4,
                        row_bytes=90.0))
    ops.append(Operator(op_id=len(ops), op_type=OpType.JOIN,
                        est_rows_in=rows + rows // 4, est_rows_out=rows,
                        row_bytes=90.0, children=(len(ops) - 2, len(ops) - 1)))
    return PhysicalPlan(ops)


def single_op_plan():
    return PhysicalPlan([
        Operator(op_id=0, op_type=OpType.TABLE_SCAN, est_rows_in=1,
                 est_rows_out=1, row_bytes=8.0),
    ])


def _scalar_reference(model, plan, configs, layout=None):
    return np.array([
        model.estimate_scalar(plan, config, layout).total_seconds
        for config in configs
    ])


class TestGoldenEquivalence:
    @pytest.mark.parametrize("plan", [
        tpch_plan(1, 10.0), tpch_plan(3, 10.0), tpch_plan(5, 10.0),
        tpch_plan(9, 10.0), tpcds_plan(1, 10.0),
    ], ids=["q01", "q03", "q05", "q09", "ds_q01"])
    def test_bitwise_parity_on_tpc_plans(self, model, plan):
        space = query_level_space()
        vectors = space.latin_hypercube(24, np.random.default_rng(1))
        configs = [space.to_dict(v) for v in vectors]
        batch = model.estimate_batch(plan, configs)
        assert np.array_equal(batch, _scalar_reference(model, plan, configs))

    def test_bitwise_parity_full_space_categoricals(self, model):
        # full_space carries the categorical codec/serializer knobs and the
        # app-level layout knobs, so this covers layout resolution too.
        space = full_space()
        plan = tpcds_plan(23, 50.0)
        vectors = space.latin_hypercube(32, np.random.default_rng(2))
        configs = [space.to_dict(v) for v in vectors]
        batch = model.estimate_batch(plan, configs)
        assert np.array_equal(batch, _scalar_reference(model, plan, configs))

    @pytest.mark.parametrize("plan_fn", [
        degenerate_join_plan, every_op_type_plan, single_op_plan,
    ], ids=["self_join", "all_op_types", "single_op"])
    def test_bitwise_parity_on_degenerate_plans(self, model, plan_fn):
        plan = plan_fn()
        space = query_level_space()
        vectors = space.latin_hypercube(16, np.random.default_rng(3))
        configs = [space.to_dict(v) for v in vectors]
        batch = model.estimate_batch(plan, configs)
        assert np.array_equal(batch, _scalar_reference(model, plan, configs))

    def test_vector_input_matches_dict_input(self, model):
        space = query_level_space()
        plan = tpch_plan(5, 10.0)
        vectors = space.latin_hypercube(16, np.random.default_rng(4))
        from_vectors = model.estimate_batch(plan, vectors, space=space)
        from_dicts = model.estimate_batch(
            plan, [space.to_dict(v) for v in vectors]
        )
        assert np.array_equal(from_vectors, from_dicts)

    def test_data_scale_matches_scaled_plan(self, model):
        plan = tpch_plan(3, 10.0)
        space = query_level_space()
        configs = [space.to_dict(v)
                   for v in space.latin_hypercube(8, np.random.default_rng(5))]
        batch = model.estimate_batch(plan, configs, data_scale=2.7)
        reference = _scalar_reference(model, plan.scaled(2.7), configs)
        assert np.array_equal(batch, reference)

    def test_explicit_layout_matches_scalar(self, model):
        layout = ExecutorLayout(executors=6, cores_per_executor=3,
                                memory_gb_per_executor=12.0)
        plan = tpch_plan(9, 10.0)
        space = query_level_space()
        configs = [space.to_dict(v)
                   for v in space.latin_hypercube(8, np.random.default_rng(6))]
        batch = model.estimate_batch(plan, configs, layout=layout)
        assert np.array_equal(
            batch, _scalar_reference(model, plan, configs, layout)
        )

    def test_breakdown_matches_scalar_breakdowns(self, model):
        space = full_space()
        plan = tpch_plan(5, 10.0)
        configs = [space.to_dict(v)
                   for v in space.latin_hypercube(12, np.random.default_rng(7))]
        batch = model.estimate_batch(plan, configs, breakdown=True)
        assert batch.n == len(configs)
        for i, config in enumerate(configs):
            scalar = model.estimate_scalar(plan, config)
            got = batch.breakdown_at(i)
            assert got.total_seconds == scalar.total_seconds
            assert got.per_operator == scalar.per_operator
            assert got.metrics == scalar.metrics

    def test_estimate_wrapper_matches_scalar(self, model):
        # estimate() is now a 1-row batch; it must stay interchangeable with
        # the preserved scalar reference.
        space = full_space()
        plan = tpcds_plan(8, 25.0)
        for v in space.latin_hypercube(6, np.random.default_rng(8)):
            config = space.to_dict(v)
            wrapped = model.estimate(plan, config)
            scalar = model.estimate_scalar(plan, config)
            assert wrapped.total_seconds == scalar.total_seconds
            assert wrapped.per_operator == scalar.per_operator
            assert wrapped.metrics == scalar.metrics


class TestBatchStructures:
    def test_plan_arrays_cache_hits(self):
        plan = tpch_plan(3, 10.0)
        clear_plan_arrays_cache()
        plan_arrays(plan, 1.0)
        plan_arrays(plan, 1.0)
        stats = plan_arrays_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_plan_arrays_cache_keyed_by_scale(self):
        plan = tpch_plan(3, 10.0)
        clear_plan_arrays_cache()
        plan_arrays(plan, 1.0)
        plan_arrays(plan, 2.0)
        stats = plan_arrays_cache_stats()
        assert stats["misses"] == 2 and stats["size"] == 2

    def test_scaled_plan_and_scale_arg_share_entry(self):
        # plan.scaled(2) at scale 1 describes the same arrays as the base
        # plan at scale 2 *only if* the key disambiguates on totals — the
        # signature alone is scale-invariant.
        plan = tpch_plan(6, 10.0)
        a = plan_arrays(plan, 2.0)
        b = plan_arrays(plan.scaled(2.0), 1.0)
        assert np.array_equal(a.rows_in, b.rows_in)
        assert np.array_equal(a.bytes_in, b.bytes_in)

    def test_resolve_layouts_matches_from_config(self):
        space = full_space()
        pool = default_pool()
        vectors = space.latin_hypercube(20, np.random.default_rng(9))
        dicts = [space.to_dict(v) for v in vectors]
        cols = ConfigColumns.coerce(dicts, None)
        layouts = resolve_layouts(cols, pool)
        for i, config in enumerate(dicts):
            expected = ExecutorLayout.from_config(config, pool)
            assert float(layouts.total_cores[i]) == float(
                max(expected.total_cores, 1)
            )
            assert float(layouts.memory_gb_per_executor[i]) == (
                expected.memory_gb_per_executor
            )

    def test_to_natural_matrix_matches_elementwise(self):
        for space in (query_level_space(), full_space()):
            vectors = space.latin_hypercube(32, np.random.default_rng(10))
            matrix = space.to_natural_matrix(vectors)
            for i, v in enumerate(vectors):
                for j, parameter in enumerate(space):
                    assert matrix[i, j] == parameter.to_natural(v[j])

    def test_to_natural_matrix_rejects_bad_shape(self):
        space = query_level_space()
        with pytest.raises(ValueError):
            space.to_natural_matrix(np.zeros((4, space.dim + 1)))

    def test_batch_telemetry_counters(self, model):
        plan = tpch_plan(6, 1.0)
        space = query_level_space()
        vectors = space.latin_hypercube(5, np.random.default_rng(11))
        with telemetry.capture() as cap:
            model.estimate_batch(plan, vectors, space=space)
        counters = cap.registry.snapshot()["counters"]
        assert counters["sparksim.batch_estimates"] == 1
        assert counters["sparksim.batch_configs"] == 5


class TestRunBatchNoiseStream:
    def _vectors(self, space, n=12, seed=13):
        return space.latin_hypercube(n, np.random.default_rng(seed))

    def test_elapsed_sequence_identical_to_sequential_runs(self):
        space = query_level_space()
        plan = tpch_plan(3, 10.0)
        vectors = self._vectors(space)
        configs = [space.to_dict(v) for v in vectors]

        seq_sim = SparkSimulator(noise=low_noise(), seed=21)
        sequential = [seq_sim.run(plan, c) for c in configs]
        bat_sim = SparkSimulator(noise=low_noise(), seed=21)
        batched = bat_sim.run_batch(plan, configs)

        assert [r.elapsed_seconds for r in batched] == \
               [r.elapsed_seconds for r in sequential]
        for a, b in zip(sequential, batched):
            assert a.true_seconds == b.true_seconds
            assert a.config == b.config
            assert a.metrics == b.metrics
            assert a.data_size == b.data_size
        assert seq_sim.run_count == bat_sim.run_count

    def test_vector_inputs_consume_same_noise_stream(self):
        space = query_level_space()
        plan = tpcds_plan(2, 10.0)
        vectors = self._vectors(space, seed=14)
        seq_sim = SparkSimulator(noise=low_noise(), seed=3)
        sequential = [seq_sim.run(plan, space.to_dict(v)) for v in vectors]
        bat_sim = SparkSimulator(noise=low_noise(), seed=3)
        batched = bat_sim.run_batch(plan, vectors, space=space)
        assert [r.elapsed_seconds for r in batched] == \
               [r.elapsed_seconds for r in sequential]

    def test_faulty_simulator_spikes_match_sequential(self):
        space = query_level_space()
        plan = tpch_plan(5, 10.0)
        vectors = self._vectors(space, n=20, seed=15)
        configs = [space.to_dict(v) for v in vectors]

        def faulty(seed):
            return FaultySimulator(
                SparkSimulator(noise=low_noise(), seed=seed),
                FaultPlan(
                    specs=[FaultSpec(kind=FaultKind.LATENCY_SPIKE,
                                     rate=0.35, magnitude=3.0)],
                    seed=99,
                ),
            )

        seq_sim = faulty(7)
        sequential = [seq_sim.run(plan, c) for c in configs]
        batched = faulty(7).run_batch(plan, configs)
        assert [r.elapsed_seconds for r in batched] == \
               [r.elapsed_seconds for r in sequential]
        # Some (not all) observations must actually have been spiked for the
        # equivalence above to be meaningful: compare against an unfaulted
        # twin consuming the identical noise stream.
        clean_sim = SparkSimulator(noise=low_noise(), seed=7)
        clean = [clean_sim.run(plan, c) for c in configs]
        spiked = sum(1 for a, b in zip(sequential, clean)
                     if a.elapsed_seconds != b.elapsed_seconds)
        assert 0 < spiked < len(configs)

    def test_faulty_true_time_batch_passthrough(self):
        space = query_level_space()
        plan = tpch_plan(6, 10.0)
        vectors = self._vectors(space, n=6, seed=16)
        inner = SparkSimulator(noise=no_noise(), seed=0)
        sim = FaultySimulator(
            inner,
            FaultPlan(specs=[FaultSpec(kind=FaultKind.LATENCY_SPIKE,
                                       rate=1.0, magnitude=5.0)], seed=1),
        )
        times = sim.true_time_batch(plan, vectors, space=space)
        expected = [inner.true_time(plan, space.to_dict(v)) for v in vectors]
        assert list(times) == expected  # spikes never touch true times

    def test_true_time_batch_matches_true_time(self, quiet_simulator):
        space = query_level_space()
        plan = tpch_plan(1, 10.0)
        vectors = self._vectors(space, n=8, seed=17)
        batch = quiet_simulator.true_time_batch(plan, vectors, space=space)
        singles = [quiet_simulator.true_time(plan, space.to_dict(v))
                   for v in vectors]
        assert list(batch) == singles


class TestBatchSmokePerf:
    def test_estimate_batch_beats_scalar_loop(self, model):
        # Tier-1 smoke guard for the >=10x bench-perf target: at N=256 the
        # vectorized kernel must clearly beat the scalar loop even on a slow
        # shared CI box, so the bar here is a conservative 3x.
        space = query_level_space()
        plan = tpcds_plan(23, 50.0)
        vectors = space.latin_hypercube(256, np.random.default_rng(18))
        configs = [space.to_dict(v) for v in vectors]

        model.estimate_batch(plan, vectors, space=space)  # warm plan cache
        t0 = time.perf_counter()
        scalar = _scalar_reference(model, plan, configs)
        scalar_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        batch = model.estimate_batch(plan, vectors, space=space)
        batch_seconds = time.perf_counter() - t0

        assert np.array_equal(batch, scalar)
        assert batch_seconds * 3.0 < scalar_seconds, (
            f"batch {batch_seconds * 1e3:.1f}ms vs "
            f"scalar {scalar_seconds * 1e3:.1f}ms at N=256"
        )
