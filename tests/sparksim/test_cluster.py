"""Tests for pools and executor layouts."""

import pytest

from repro.sparksim.cluster import (
    ExecutorLayout,
    NodeType,
    Pool,
    STANDARD_POOLS,
    default_pool,
)


class TestNodeType:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeType(name="bad", cores=0, memory_gb=8)


class TestPool:
    def test_capacity_properties(self):
        pool = STANDARD_POOLS["pool-large"]
        assert pool.max_cores == pool.node_type.cores * pool.max_nodes
        assert pool.max_memory_gb == pool.node_type.memory_gb * pool.max_nodes

    def test_max_nodes_validation(self):
        with pytest.raises(ValueError):
            Pool(pool_id="x", node_type=STANDARD_POOLS["pool-large"].node_type,
                 max_nodes=0)


class TestExecutorLayout:
    def test_defaults_from_empty_config(self):
        layout = ExecutorLayout.from_config({})
        assert layout.executors == 4
        assert layout.cores_per_executor == 4
        assert layout.memory_gb_per_executor == 8
        assert layout.offheap_gb_per_executor == 0.0

    def test_from_app_config(self):
        layout = ExecutorLayout.from_config({
            "spark.executor.instances": 8,
            "spark.executor.cores": 8,
            "spark.executor.memory": 16,
            "spark.memory.offHeap.enabled": 1,
            "spark.memory.offHeap.size": 4,
        })
        assert layout.executors == 8
        assert layout.total_cores == 64
        assert layout.offheap_gb_per_executor == 4.0
        assert layout.memory_gb_per_core == pytest.approx(20 / 8)

    def test_offheap_disabled_ignores_size(self):
        layout = ExecutorLayout.from_config({
            "spark.memory.offHeap.enabled": 0,
            "spark.memory.offHeap.size": 16,
        })
        assert layout.offheap_gb_per_executor == 0.0

    def test_pool_caps_executors(self):
        small = Pool(pool_id="tiny", node_type=NodeType("n", cores=4, memory_gb=16),
                     max_nodes=1)
        layout = ExecutorLayout.from_config({"spark.executor.instances": 1000}, small)
        assert layout.executors <= 8  # per-node host cap × 1 node

    def test_pool_caps_memory(self):
        small = Pool(pool_id="tiny", node_type=NodeType("n", cores=4, memory_gb=16),
                     max_nodes=1)
        layout = ExecutorLayout.from_config({"spark.executor.memory": 512}, small)
        assert layout.memory_gb_per_executor <= 16

    def test_default_pool_is_standard(self):
        assert default_pool().pool_id in STANDARD_POOLS
