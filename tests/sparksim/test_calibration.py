"""Tests for the cost-model calibration probes."""

import numpy as np
import pytest

from repro.sparksim.calibration import (
    HeadroomReport,
    knob_sensitivity,
    measure_headroom,
)
from repro.workloads.tpch import tpch_plan


@pytest.fixture(scope="module")
def plans():
    return [tpch_plan(q, 10.0) for q in (1, 3, 6)]


class TestHeadroom:
    def test_empty_plans_rejected(self):
        with pytest.raises(ValueError):
            measure_headroom([])

    def test_headroom_nonnegative(self, plans):
        report = measure_headroom(plans, n_probe_configs=40, seed=0)
        assert len(report.per_plan_pct) == 3
        assert all(pct >= 0 for pct in report.per_plan_pct.values())

    def test_summary_statistics_consistent(self, plans):
        report = measure_headroom(plans, n_probe_configs=40, seed=0)
        values = list(report.per_plan_pct.values())
        assert report.mean_pct == pytest.approx(np.mean(values))
        assert report.max_pct == pytest.approx(max(values))
        assert report.median_pct <= report.max_pct

    def test_render_contains_all_plans(self, plans):
        report = measure_headroom(plans, n_probe_configs=20, seed=0)
        text = report.render()
        for plan in plans:
            assert plan.name in text

    def test_more_probes_never_reduce_headroom(self, plans):
        # The probe minimum is a lower bound on the true optimum: with a
        # superset probe set (same seed stream), headroom can only grow.
        small = measure_headroom(plans[:1], n_probe_configs=10, seed=0)
        large = measure_headroom(plans[:1], n_probe_configs=200, seed=0)
        name = plans[0].name
        assert large.per_plan_pct[name] >= small.per_plan_pct[name] - 1e-9


class TestKnobSensitivity:
    def test_unknown_knob_rejected(self, plans):
        with pytest.raises(KeyError):
            knob_sensitivity(plans[0], "spark.bogus.knob")

    def test_sweep_shapes(self, plans):
        s = knob_sensitivity(plans[0], "spark.sql.shuffle.partitions", n_points=15)
        assert s.grid.shape == (15,)
        assert s.times.shape == (15,)
        assert s.range_ratio >= 1.0
        assert s.grid.min() <= s.best_value <= s.grid.max()

    def test_partitions_response_is_unimodal(self, plans):
        for plan in plans:
            s = knob_sensitivity(plan, "spark.sql.shuffle.partitions", n_points=20)
            assert s.is_unimodal, plan.name

    def test_scan_knob_sensitive_for_scan_heavy_query(self, plans):
        # q6 is a pure lineitem scan: maxPartitionBytes must matter.
        s = knob_sensitivity(tpch_plan(6, 10.0), "spark.sql.files.maxPartitionBytes")
        assert s.range_ratio > 1.1
