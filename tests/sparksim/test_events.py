"""Tests for listener event records and JSONL serialization."""

import pytest

from repro.sparksim.events import (
    AppEndEvent,
    QueryEndEvent,
    events_from_jsonl,
    events_to_jsonl,
)


@pytest.fixture
def query_event():
    return QueryEndEvent(
        app_id="app-1",
        artifact_id="artifact-1",
        query_signature="sig-1",
        user_id="user-1",
        iteration=3,
        config={"spark.sql.shuffle.partitions": 200.0},
        data_size=1e6,
        duration_seconds=12.5,
        embedding=[0.0, 1.0],
        metrics={"tasks": 100.0},
        region="us",
    )


@pytest.fixture
def app_event():
    return AppEndEvent(
        app_id="app-1",
        artifact_id="artifact-1",
        user_id="user-1",
        app_config={"spark.executor.instances": 8.0},
        query_signatures=["sig-1", "sig-2"],
        total_duration_seconds=100.0,
    )


def test_query_event_json_roundtrip(query_event):
    restored = QueryEndEvent.from_json(query_event.to_json())
    assert restored == query_event


def test_app_event_json_roundtrip(app_event):
    restored = AppEndEvent.from_json(app_event.to_json())
    assert restored == app_event


def test_jsonl_roundtrip_mixed(query_event, app_event):
    text = events_to_jsonl([query_event, app_event, query_event])
    restored = events_from_jsonl(text)
    assert len(restored) == 3
    assert isinstance(restored[0], QueryEndEvent)
    assert isinstance(restored[1], AppEndEvent)
    assert restored[2] == query_event


def test_jsonl_skips_blank_lines(query_event):
    text = "\n\n" + query_event.to_json() + "\n\n"
    assert len(events_from_jsonl(text)) == 1


def test_unknown_event_type_rejected():
    with pytest.raises(ValueError, match="unknown event type"):
        events_from_jsonl('{"event_type": "Mystery"}')
