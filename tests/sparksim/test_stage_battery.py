"""Stage-overlay battery (``make stages``): catalog-wide kernel parity.

The whole-app batch kernel earned its bitwise-equals-scalar contract in
``tests/sparksim/test_batch.py``; this battery extends the same contract to
stage-scoped overrides across every TPC-H plan, a TPC-DS sample, and the
explicit-exchange plans of the stage-tuning experiment — plus the re-plan
determinism contract (same observed actuals, same overlay, bit for bit).
"""

import numpy as np
import pytest

from repro.experiments.ext_stage_tuning import stage_plans
from repro.sparksim.configs import full_space
from repro.sparksim.cost_model import CostModel
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import no_noise
from repro.sparksim.overlay import StageConfigOverlay, StageOverride
from repro.sparksim.plan import OpType
from repro.sparksim.replan import TargetBytesPerPartition, run_with_replan
from repro.workloads.tpch import TPCH_QUERY_IDS, tpch_plan
from repro.workloads.tpcds import tpcds_plan

pytestmark = pytest.mark.stages

TPCDS_SAMPLE = (3, 7, 19, 42, 88)


def random_overlay(plan, rng, p_override=0.7):
    """Randomized overrides over a random subset of the plan's stages."""
    overrides = {}
    for op in plan.exchange_ops():
        if rng.uniform() > p_override:
            continue
        overrides[op.op_id] = StageOverride(
            shuffle_partitions=(
                int(rng.integers(1, 4000)) if rng.uniform() < 0.8 else None
            ),
            memory_fraction=(
                float(rng.uniform(0.1, 1.0)) if rng.uniform() < 0.5 else None
            ),
            task_parallelism=(
                int(rng.integers(1, 64)) if rng.uniform() < 0.5 else None
            ),
        )
    for op in plan.operators:
        if op.op_type == OpType.TABLE_SCAN and rng.uniform() < 0.5:
            overrides[op.op_id] = StageOverride(
                max_partition_bytes=float(rng.uniform(2**20, 2**30))
            )
    return StageConfigOverlay(overrides)


def assert_batch_matches_scalar(plan, overlay, rng, n_configs=8):
    space = full_space()
    model = CostModel()
    vectors = space.sample_vectors(n_configs, rng)
    batch = model.estimate_batch(plan, vectors, space=space, overlay=overlay)
    scalar = np.array([
        model.estimate_scalar(
            plan, space.to_dict(v), overlay=overlay
        ).total_seconds
        for v in vectors
    ])
    np.testing.assert_array_equal(batch, scalar)


class TestOverlayKernelParity:
    @pytest.mark.parametrize("query_id", TPCH_QUERY_IDS)
    def test_tpch_catalog_bitwise(self, query_id):
        rng = np.random.default_rng(query_id)
        plan = tpch_plan(query_id)
        assert_batch_matches_scalar(plan, random_overlay(plan, rng), rng)

    @pytest.mark.parametrize("query_id", TPCDS_SAMPLE)
    def test_tpcds_sample_bitwise(self, query_id):
        rng = np.random.default_rng(1000 + query_id)
        plan = tpcds_plan(query_id)
        assert_batch_matches_scalar(plan, random_overlay(plan, rng), rng)

    @pytest.mark.parametrize("name", sorted(stage_plans()))
    def test_explicit_exchange_plans_bitwise(self, name):
        rng = np.random.default_rng(hash(name) % 2**31)
        plan = stage_plans()[name]
        assert_batch_matches_scalar(plan, random_overlay(plan, rng), rng)

    def test_overlay_on_every_stage_still_bitwise(self):
        rng = np.random.default_rng(7)
        plan = tpch_plan(3)
        assert_batch_matches_scalar(plan, random_overlay(plan, rng, 1.0), rng)

    @pytest.mark.parametrize("query_id", [1, 3, 5])
    def test_no_overlay_path_unchanged_by_overlay_support(self, query_id):
        # overlay=None and an empty overlay must agree with the scalar
        # reference *and* each other — the feature costs nothing when off.
        rng = np.random.default_rng(query_id)
        plan = tpch_plan(query_id)
        space = full_space()
        model = CostModel()
        vectors = space.sample_vectors(8, rng)
        none_path = model.estimate_batch(plan, vectors, space=space)
        empty_path = model.estimate_batch(
            plan, vectors, space=space, overlay=StageConfigOverlay()
        )
        np.testing.assert_array_equal(none_path, empty_path)


class TestReplanDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_actuals_reproduce_the_run_bitwise(self, seed):
        plan = stage_plans()["mixed_pipeline"]
        config = full_space().default_dict()
        rng = np.random.default_rng(seed)
        actuals = {
            op.op_id: float(rng.uniform(0.25, 4.0))
            for op in plan.exchange_ops()
        }
        policy = TargetBytesPerPartition(target_bytes=16 * 2**20)

        def one_run():
            sim = SparkSimulator(noise=no_noise(), seed=seed)
            return run_with_replan(sim, plan, config, policy, actuals=actuals)

        a, b = one_run(), one_run()
        assert a.overlay == b.overlay
        assert a.replans == b.replans
        assert a.result.true_seconds == b.result.true_seconds
        assert [e.to_json() for e in a.events] == [e.to_json() for e in b.events]

    def test_replay_from_recorded_events(self):
        # Rebuilding the actuals map from a recorded event stream and
        # re-running reproduces the overlay — the events are a sufficient
        # replay log.
        plan = stage_plans()["skew_heavy"]
        config = full_space().default_dict()
        policy = TargetBytesPerPartition(target_bytes=8 * 2**20)
        sim = SparkSimulator(noise=no_noise(), seed=0)
        original = run_with_replan(
            sim, plan, config, policy,
            actuals={op.op_id: 3.0 for op in plan.exchange_ops()},
        )
        recovered_actuals = {
            e.op_id: e.observed_bytes / e.estimated_bytes
            for e in original.events
        }
        replayed = run_with_replan(
            SparkSimulator(noise=no_noise(), seed=0), plan, config, policy,
            actuals=recovered_actuals,
        )
        assert replayed.overlay == original.overlay
        assert replayed.result.true_seconds == original.result.true_seconds

    def test_frozen_stages_never_replanned_twice(self):
        # Each exchange is visited exactly once in execution order; the
        # override count can never exceed the exchange count.
        plan = stage_plans()["mixed_pipeline"]
        config = full_space().default_dict()
        out = run_with_replan(
            SparkSimulator(noise=no_noise(), seed=0), plan, config,
            TargetBytesPerPartition(target_bytes=2**20),
        )
        assert out.replans <= len(plan.exchange_ops())
        assert len({e.op_id for e in out.events}) == len(out.events)
