"""Tests for the SparkSimulator."""

import numpy as np
import pytest

from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import high_noise, no_noise
from repro.workloads.tpch import tpch_plan


class TestSimulator:
    def test_true_time_matches_noiseless_run(self, q3_plan, spark_space):
        sim = SparkSimulator(noise=no_noise(), seed=0)
        config = spark_space.default_dict()
        result = sim.run(q3_plan, config)
        assert result.elapsed_seconds == pytest.approx(result.true_seconds)
        assert result.true_seconds == pytest.approx(sim.true_time(q3_plan, config))

    def test_noisy_run_at_least_true(self, q3_plan, spark_space):
        sim = SparkSimulator(noise=high_noise(), seed=1)
        for _ in range(20):
            result = sim.run(q3_plan, spark_space.default_dict())
            assert result.elapsed_seconds >= result.true_seconds

    def test_same_seed_replays_noise(self, q3_plan, spark_space):
        config = spark_space.default_dict()
        a = SparkSimulator(noise=high_noise(), seed=7)
        b = SparkSimulator(noise=high_noise(), seed=7)
        times_a = [a.run(q3_plan, config).elapsed_seconds for _ in range(5)]
        times_b = [b.run(q3_plan, config).elapsed_seconds for _ in range(5)]
        assert times_a == times_b

    def test_data_scale_scales_size_and_time(self, q3_plan, spark_space):
        sim = SparkSimulator(noise=no_noise(), seed=0)
        config = spark_space.default_dict()
        r1 = sim.run(q3_plan, config, data_scale=1.0)
        r3 = sim.run(q3_plan, config, data_scale=3.0)
        assert r3.data_size == pytest.approx(3.0 * r1.data_size)
        assert r3.true_seconds > r1.true_seconds

    def test_run_count_increments(self, q3_plan, spark_space):
        sim = SparkSimulator(noise=no_noise(), seed=0)
        for i in range(3):
            sim.run(q3_plan, spark_space.default_dict())
        assert sim.run_count == 3

    def test_result_carries_signature_and_metrics(self, q3_plan, spark_space):
        sim = SparkSimulator(noise=no_noise(), seed=0)
        result = sim.run(q3_plan, spark_space.default_dict())
        assert result.plan_signature == q3_plan.signature()
        assert result.metrics["tasks"] > 0

    def test_run_to_event_round_trips_fields(self, q3_plan, spark_space):
        sim = SparkSimulator(noise=no_noise(), seed=0)
        embedding = np.array([1.0, 2.0, 3.0])
        event = sim.run_to_event(
            q3_plan, spark_space.default_dict(),
            app_id="app", artifact_id="art", user_id="u", iteration=4,
            embedding=embedding, region="eu",
        )
        assert event.app_id == "app"
        assert event.iteration == 4
        assert event.embedding == [1.0, 2.0, 3.0]
        assert event.query_signature == q3_plan.signature()
        assert event.region == "eu"
        assert event.duration_seconds > 0
