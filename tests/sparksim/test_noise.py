"""Tests for the Eq.-8 noise model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparksim.noise import NoiseModel, high_noise, low_noise, no_noise


class TestValidation:
    def test_negative_fluctuation(self):
        with pytest.raises(ValueError):
            NoiseModel(fluctuation_level=-0.1)

    def test_spike_range(self):
        with pytest.raises(ValueError):
            NoiseModel(spike_level=11.0)

    def test_negative_baseline(self, rng):
        with pytest.raises(ValueError):
            no_noise().apply(-1.0, rng)


class TestPresets:
    def test_high_noise_levels(self):
        model = high_noise()
        assert model.fluctuation_level == 1.0
        assert model.spike_probability == pytest.approx(0.1)

    def test_low_noise_levels(self):
        model = low_noise()
        assert model.fluctuation_level == 0.1
        assert model.spike_probability == pytest.approx(0.01)

    def test_no_noise_is_identity(self, rng):
        model = no_noise()
        for g0 in (0.0, 1.0, 123.4):
            assert model.apply(g0, rng) == g0


class TestStatistics:
    def test_noise_only_slows_down(self, rng):
        model = high_noise()
        g0 = 10.0
        samples = np.array([model.apply(g0, rng) for _ in range(2000)])
        assert np.all(samples >= g0)

    def test_spike_rate_matches_sl(self, rng):
        model = NoiseModel(fluctuation_level=0.0, spike_level=1.0)
        samples = np.array([model.apply(1.0, rng) for _ in range(5000)])
        spike_rate = np.mean(samples == 2.0)
        assert spike_rate == pytest.approx(0.1, abs=0.02)

    def test_fluctuation_scales_with_fl(self, rng):
        small = NoiseModel(fluctuation_level=0.1, spike_level=0.0)
        big = NoiseModel(fluctuation_level=1.0, spike_level=0.0)
        s = np.array([small.apply(1.0, rng) for _ in range(2000)])
        b = np.array([big.apply(1.0, rng) for _ in range(2000)])
        assert b.std() > 3 * s.std()

    def test_apply_many_matches_apply_distribution(self, rng):
        model = high_noise()
        many = model.apply_many(np.full(5000, 10.0), rng)
        singles = np.array([model.apply(10.0, np.random.default_rng(i)) for i in range(2000)])
        assert abs(np.median(many) - np.median(singles)) / np.median(singles) < 0.1

    def test_apply_many_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            high_noise().apply_many(np.array([1.0, -1.0]), rng)


@settings(max_examples=50, deadline=None)
@given(
    g0=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    fl=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    sl=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_noise_bounds_property(g0, fl, sl, seed):
    """Eq. 8 invariants: g >= g0 always, and spikes cap the blow-up at
    2·(1+|ε|)·g0 which is finite and nonnegative."""
    model = NoiseModel(fluctuation_level=fl, spike_level=sl)
    g = model.apply(g0, np.random.default_rng(seed))
    assert g >= g0
    assert np.isfinite(g)
