"""Tests for the Spark knob catalog."""

import pytest

from repro.sparksim.configs import (
    app_level_space,
    full_space,
    manual_study_space,
    query_level_space,
)


def test_query_level_space_is_the_production_trio():
    space = query_level_space()
    assert space.names == [
        "spark.sql.files.maxPartitionBytes",
        "spark.sql.autoBroadcastJoinThreshold",
        "spark.sql.shuffle.partitions",
    ]
    assert all(p.scope == "query" for p in space)


def test_manual_study_space_has_seven_knobs():
    assert len(manual_study_space()) == 7  # Sec. 2.2 user study


def test_app_level_space_scopes():
    assert all(p.scope == "app" for p in app_level_space())


def test_full_space_contains_both():
    joint = full_space()
    names = set(joint.names)
    assert set(query_level_space().names) <= names
    assert "spark.executor.instances" in names


def test_defaults_match_spark_conventions():
    space = query_level_space()
    d = space.default_dict()
    assert d["spark.sql.shuffle.partitions"] == 200
    assert d["spark.sql.files.maxPartitionBytes"] == 128 * 1024 * 1024
    assert d["spark.sql.autoBroadcastJoinThreshold"] == 10 * 1024 * 1024


def test_byte_knobs_are_log_scaled():
    space = query_level_space()
    assert space["spark.sql.files.maxPartitionBytes"].log_scale
    assert space["spark.sql.autoBroadcastJoinThreshold"].log_scale


def test_subspace_partition():
    joint = full_space()
    q = joint.subspace("query")
    a = joint.subspace("app")
    assert len(q) + len(a) == len(joint)
