"""Unit tests for stage-scoped knob overrides (``repro.sparksim.overlay``)."""

import numpy as np
import pytest

from repro.sparksim.cost_model import CostModel
from repro.sparksim.configs import full_space
from repro.sparksim.overlay import StageConfigOverlay, StageOverride
from repro.sparksim.plan import OpType
from repro.workloads.tpch import tpch_plan


class TestStageOverride:
    def test_defaults_are_null(self):
        ov = StageOverride()
        assert ov.is_null
        assert not StageOverride(shuffle_partitions=32).is_null
        assert not StageOverride(memory_fraction=0.5).is_null

    def test_validation(self):
        with pytest.raises(ValueError):
            StageOverride(shuffle_partitions=0)
        with pytest.raises(ValueError):
            StageOverride(max_partition_bytes=0.0)
        with pytest.raises(ValueError):
            StageOverride(memory_fraction=0.0)
        with pytest.raises(ValueError):
            StageOverride(memory_fraction=1.5)
        with pytest.raises(ValueError):
            StageOverride(task_parallelism=0)

    def test_state_roundtrip(self):
        ov = StageOverride(shuffle_partitions=64, memory_fraction=0.4)
        assert StageOverride.from_state(ov.to_state()) == ov


class TestStageConfigOverlay:
    def test_empty_overlay_is_falsy(self):
        overlay = StageConfigOverlay()
        assert not overlay
        assert len(overlay) == 0
        assert overlay.get(3) is None
        assert 3 not in overlay

    def test_null_overrides_dropped_at_construction(self):
        overlay = StageConfigOverlay({
            1: StageOverride(),
            2: StageOverride(shuffle_partitions=16),
        })
        assert len(overlay) == 1
        assert 2 in overlay and 1 not in overlay

    def test_with_override_returns_new_overlay(self):
        base = StageConfigOverlay()
        grown = base.with_override(4, StageOverride(shuffle_partitions=8))
        assert not base  # the original is untouched
        assert grown.get(4).shuffle_partitions == 8
        assert grown != base

    def test_items_sorted_by_op_id(self):
        overlay = StageConfigOverlay({
            7: StageOverride(shuffle_partitions=7),
            2: StageOverride(shuffle_partitions=2),
        })
        assert [op_id for op_id, _ in overlay.items()] == [2, 7]
        assert "StageConfigOverlay" in repr(overlay)

    def test_json_roundtrip_restores_int_keys(self):
        overlay = StageConfigOverlay({
            3: StageOverride(shuffle_partitions=128, task_parallelism=4),
            9: StageOverride(max_partition_bytes=2.0**20),
        })
        twin = StageConfigOverlay.from_json(overlay.to_json())
        assert twin == overlay
        assert twin.get(3).task_parallelism == 4

    def test_equality_against_other_types(self):
        assert StageConfigOverlay() != object()


class TestOverlayChangesCosts:
    def test_exchange_ops_cover_shuffle_bearing_operators(self, q3_plan):
        kinds = {op.op_type for op in q3_plan.exchange_ops()}
        assert kinds <= {
            OpType.EXCHANGE, OpType.JOIN, OpType.HASH_AGGREGATE,
            OpType.SORT, OpType.WINDOW,
        }
        assert OpType.JOIN in kinds  # Q3's shuffles live in its joins

    def test_override_on_shuffle_stage_moves_the_estimate(self, q3_plan):
        model = CostModel()
        config = full_space().default_dict()
        base = model.estimate(q3_plan, config).total_seconds
        op_id = q3_plan.exchange_ops()[0].op_id
        overlay = StageConfigOverlay({
            op_id: StageOverride(shuffle_partitions=3999)
        })
        with_overlay = model.estimate(
            q3_plan, config, overlay=overlay
        ).total_seconds
        assert with_overlay != base

    def test_null_overlay_is_bitwise_inert(self, q3_plan):
        model = CostModel()
        config = full_space().default_dict()
        assert (
            model.estimate(q3_plan, config, overlay=StageConfigOverlay()).total_seconds
            == model.estimate(q3_plan, config).total_seconds
        )

    def test_batch_kernel_matches_scalar_with_overlay(self, rng):
        plan = tpch_plan(3)
        space = full_space()
        model = CostModel()
        overlay = StageConfigOverlay({
            op.op_id: StageOverride(
                shuffle_partitions=int(rng.integers(1, 2000)),
                memory_fraction=float(rng.uniform(0.2, 1.0)),
            )
            for op in plan.exchange_ops()[:2]
        })
        vectors = space.sample_vectors(16, rng)
        batch = model.estimate_batch(plan, vectors, space=space, overlay=overlay)
        scalar = np.array([
            model.estimate_scalar(
                plan, space.to_dict(v), overlay=overlay
            ).total_seconds
            for v in vectors
        ])
        np.testing.assert_array_equal(batch, scalar)
