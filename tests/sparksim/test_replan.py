"""Unit tests for AQE-style re-planning (``repro.sparksim.replan``)."""

import pytest

from repro import telemetry
from repro.sparksim.configs import full_space
from repro.sparksim.events import StageRuntimeEvent, events_from_jsonl, events_to_jsonl
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.overlay import StageOverride
from repro.sparksim.replan import (
    ReplanPolicy,
    TargetBytesPerPartition,
    run_with_replan,
)
from repro.workloads.tpch import tpch_plan


def make_event(observed_bytes, op_id=1):
    return StageRuntimeEvent(
        app_id="app", query_signature="sig", op_id=op_id, op_type="Exchange",
        estimated_bytes=observed_bytes, observed_bytes=observed_bytes,
    )


class TestTargetBytesPerPartition:
    def test_partitions_ceil_of_bytes_over_target(self):
        policy = TargetBytesPerPartition(target_bytes=64 * 2**20)
        ov = policy.override_for(make_event(100 * 2**20), None)
        assert ov.shuffle_partitions == 2  # ceil(100/64)

    def test_clips_to_min_and_max(self):
        policy = TargetBytesPerPartition(
            target_bytes=1024, min_partitions=4, max_partitions=16
        )
        assert policy.override_for(make_event(1.0), None).shuffle_partitions == 4
        assert policy.override_for(make_event(1e12), None).shuffle_partitions == 16

    def test_no_op_when_current_already_matches(self):
        policy = TargetBytesPerPartition(target_bytes=2**20)
        current = StageOverride(shuffle_partitions=3)
        assert policy.override_for(make_event(3 * 2**20), current) is None

    def test_preserves_unrelated_override_fields(self):
        policy = TargetBytesPerPartition(target_bytes=2**20)
        current = StageOverride(shuffle_partitions=99, memory_fraction=0.5)
        ov = policy.override_for(make_event(8 * 2**20), current)
        assert ov.shuffle_partitions == 8
        assert ov.memory_fraction == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetBytesPerPartition(target_bytes=0)
        with pytest.raises(ValueError):
            TargetBytesPerPartition(min_partitions=0)
        with pytest.raises(ValueError):
            TargetBytesPerPartition(min_partitions=5, max_partitions=2)

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ReplanPolicy().override_for(make_event(1.0), None)


class TestRunWithReplan:
    def test_emits_one_event_per_exchange(self, q3_plan, quiet_simulator):
        config = full_space().default_dict()
        policy = TargetBytesPerPartition()
        out = run_with_replan(
            quiet_simulator, q3_plan, config, policy, app_id="t"
        )
        exchanges = q3_plan.exchange_ops()
        assert len(out.events) == len(exchanges)
        assert [e.op_id for e in out.events] == [op.op_id for op in exchanges]
        assert all(e.app_id == "t" for e in out.events)
        assert out.replans == len(out.overlay)
        assert out.replans >= 1

    def test_actuals_factor_scales_observed_bytes(self, q3_plan, quiet_simulator):
        config = full_space().default_dict()
        policy = TargetBytesPerPartition()
        op_id = q3_plan.exchange_ops()[0].op_id
        out = run_with_replan(
            quiet_simulator, q3_plan, config, policy, actuals={op_id: 4.0},
        )
        event = next(e for e in out.events if e.op_id == op_id)
        assert event.observed_bytes == pytest.approx(4.0 * event.estimated_bytes)

    def test_deterministic_for_same_actuals(self, q3_plan):
        config = full_space().default_dict()
        policy = TargetBytesPerPartition(target_bytes=8 * 2**20)
        actuals = {op.op_id: 2.0 for op in q3_plan.exchange_ops()}

        def one_run():
            from repro.sparksim.noise import no_noise
            sim = SparkSimulator(noise=no_noise(), seed=0)
            return run_with_replan(sim, q3_plan, config, policy, actuals=actuals)

        a, b = one_run(), one_run()
        assert a.overlay == b.overlay
        assert a.result.true_seconds == b.result.true_seconds
        assert [e.to_json() for e in a.events] == [e.to_json() for e in b.events]

    def test_replan_counter_emitted(self, q3_plan, quiet_simulator):
        config = full_space().default_dict()
        with telemetry.capture() as cap:
            out = run_with_replan(
                quiet_simulator, q3_plan, config, TargetBytesPerPartition()
            )
        assert cap.counters().get("sparksim.replans") == float(out.replans)

    def test_final_result_uses_the_accumulated_overlay(self, q3_plan, quiet_simulator):
        config = full_space().default_dict()
        out = run_with_replan(
            quiet_simulator, q3_plan, config,
            TargetBytesPerPartition(target_bytes=2**20),
        )
        direct = quiet_simulator.true_time(q3_plan, config, overlay=out.overlay)
        assert out.result.true_seconds == direct

    def test_events_round_trip_through_jsonl(self, q3_plan, quiet_simulator):
        config = full_space().default_dict()
        out = run_with_replan(
            quiet_simulator, q3_plan, config, TargetBytesPerPartition()
        )
        restored = events_from_jsonl(events_to_jsonl(out.events))
        assert restored == out.events
