"""Smoke + shape tests for the paper-figure reproductions.

These run heavily reduced configurations: the assertions target the
*qualitative shapes* the paper reports (who wins, direction of effects),
not absolute values.
"""

import numpy as np
import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ablation_find_best,
    ablation_window,
    app_level_joint,
    fig01_shuffle_partitions,
    fig02_noisy_convergence,
    fig08_synthetic_function,
    fig09_pseudo_surrogates,
    fig10_svr_surrogate,
    fig11_dynamic_workloads,
    fig13_cl_vs_bo,
    fig15_internal_customers,
    fig16_external_customers,
)


def test_registry_complete():
    assert len(ALL_EXPERIMENTS) == 25
    for name, module in ALL_EXPERIMENTS.items():
        assert hasattr(module, "run"), name


class TestExtensions:
    def test_categorical_reports_extra_gain(self):
        from repro.experiments import ext_categorical

        result = ext_categorical.run(quick=True)
        assert "categorical_extra_gain_pct_points" in result.scalars

    def test_knob_count_time_vs_cost_tradeoff(self):
        from repro.experiments import ext_knob_count

        result = ext_knob_count.run(quick=True)
        assert (result.scalar("knobs_7_final_time_gain_pct")
                >= result.scalar("knobs_3_final_time_gain_pct"))
        assert (result.scalar("knobs_7_final_cost_change_pct")
                > result.scalar("knobs_3_final_cost_change_pct"))

    def test_conservative_pauses_exploration_without_quality_loss(self):
        from repro.experiments import ext_conservative

        result = ext_conservative.run(quick=True)
        assert (result.scalar("conservative_exploration_rate_during_regression")
                < result.scalar("plain_exploration_rate_during_regression"))
        assert result.scalar("conservative_mean_pauses") > 0
        # No quality sacrifice once the regression clears.
        assert (result.scalar("conservative_final_median")
                < 1.3 * result.scalar("plain_final_median"))

    def test_price_performance_frontier_monotone(self):
        from repro.experiments import ext_price_performance

        result = ext_price_performance.run(quick=True)
        # More cost weight -> slower but cheaper (frontier monotone both ways).
        assert (result.scalar("weight_0_final_seconds")
                <= result.scalar("weight_0.5_final_seconds")
                <= result.scalar("weight_1_final_seconds"))
        assert (result.scalar("weight_1_final_core_seconds")
                <= result.scalar("weight_0.5_final_core_seconds")
                <= result.scalar("weight_0_final_core_seconds"))

    def test_streaming_fleet_improves_and_shrinks_partitions(self):
        from repro.experiments import ext_streaming

        result = ext_streaming.run(quick=True)
        assert result.scalar("mean_latency_gain_pct") > 10
        assert result.scalar("median_final_partitions") < 100
        assert result.scalar("fraction_streams_improved") >= 0.75


class TestFig01:
    def test_per_query_optima_differ(self):
        result = fig01_shuffle_partitions.run(quick=True)
        assert result.scalar("n_distinct_optima") >= 2
        # The knob matters: worst/best spread is substantial for some query.
        ratios = [v for k, v in result.scalars.items() if k.endswith("range_ratio")]
        assert max(ratios) > 1.3


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_noisy_convergence.run(quick=True)

    def test_bo_fails_to_converge(self, result):
        # BO's final median stays far (>25%) above the optimum under noise.
        assert result.scalar("bo_final_median") > 1.25 * result.scalar("optimal_value")

    def test_bands_stay_wide(self, result):
        assert result.scalar("bo_final_p95") > 1.5 * result.scalar("optimal_value")


class TestFig08:
    def test_noise_inflation_ordering(self):
        result = fig08_synthetic_function.run(quick=True)
        assert (result.scalar("high_noise_mean_inflation")
                > result.scalar("low_noise_mean_inflation") > 1.0)
        grid = result.series["conf1_grid"]
        true = result.series["true_seconds"]
        for label in ("high_noise_draw", "low_noise_draw"):
            assert np.all(result.series[label] >= true - 1e-9)
        # True curve is unimodal with an interior optimum.
        assert 0 < int(np.argmin(true)) < len(grid) - 1


class TestFig09:
    def test_levels_ordered(self):
        result = fig09_pseudo_surrogates.run(quick=True, levels=(9, 5, 1))
        l9 = result.scalar("level_9_final_median")
        l5 = result.scalar("level_5_final_median")
        l1 = result.scalar("level_1_final_median")
        assert l1 <= l5 <= l9
        # Even level 5 beats the untuned default.
        assert l5 < result.scalar("default_value")


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_svr_surrogate.run(quick=True)

    def test_moderate_model_accuracy(self, result):
        pct = result.scalar("mean_selection_percentile")
        assert 20.0 < pct < 60.0  # paper: 30th–50th percentile picks

    def test_converges_below_default(self, result):
        assert result.scalar("final_median") < result.scalar("default_value")

    def test_gap_shrinks(self, result):
        gap = result.series["optimality_gap"]
        assert gap.final_median() < np.mean(gap.median[:5])


class TestFig11:
    def test_both_regimes_improve(self):
        result = fig11_dynamic_workloads.run(quick=True)
        for regime in ("linear", "periodic"):
            assert (result.scalar(f"{regime}_final_gap_median")
                    < result.scalar(f"{regime}_initial_gap_median"))


class TestFig13:
    def test_cl_beats_cbo_from_poor_start(self):
        result = fig13_cl_vs_bo.run(quick=True)
        assert result.scalar("cl_final_speedup") > 1.0
        assert result.scalar("cl_final_speedup") > result.scalar("cbo_final_speedup")


class TestCustomerFigures:
    def test_fig15_positive_mean_speedup(self):
        result = fig15_internal_customers.run(quick=True)
        assert result.scalar("mean_speedup_pct") > 5.0
        assert result.scalar("fraction_improved") > 0.6

    def test_fig16_guardrail_stats(self):
        result = fig16_external_customers.run(quick=True)
        disabled = result.scalar("n_disabled_by_guardrail")
        never = result.scalar("n_never_disabled")
        assert disabled + never == result.scalar("n_workloads")
        assert never > 0  # some signatures keep autotuning throughout
        assert result.scalar("mean_speedup_pct") > 0


class TestAblations:
    def test_find_best_selection_regret_ordering(self):
        result = ablation_find_best.run(quick=True)
        v1 = result.scalar("v1_raw_mean_regret")
        v2 = result.scalar("v2_normalized_mean_regret")
        v3 = result.scalar("v3_model_mean_regret")
        # Both corrections dominate the raw pick; the Eq.-5 model matches or
        # beats the r/p normalization (at full scale they tie on the mean
        # while v3 wins on tail regret).
        assert v2 < v1
        assert v3 <= v2 * 1.1
        assert result.scalar("v3_model_p90_regret") < result.scalar("v1_raw_p90_regret")
        # End to end, every version still converges below the default.
        assert result.scalar("v3_model_final_median") < result.scalar("default_value")

    def test_window_denoising(self):
        result = ablation_window.run(quick=True, window_sizes=(2, 10), alphas=(0.05,))
        assert (result.scalar("window_10_final_median")
                < result.scalar("window_2_final_median"))

    def test_app_level_joint_dominates(self):
        result = app_level_joint.run(quick=True)
        assert result.scalar("joint_speedup_pct") >= result.scalar("query_only_speedup_pct")
        assert result.scalar("joint_speedup_pct") > 0
