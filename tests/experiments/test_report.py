"""Tests for text rendering of experiment results."""

import numpy as np
import pytest

from repro.experiments.report import (
    downsample_indices,
    format_bands,
    format_series_table,
    render_result,
)
from repro.experiments.runner import ConvergenceBands, ExperimentResult


class TestDownsample:
    def test_includes_endpoints(self):
        idx = downsample_indices(100, 10)
        assert idx[0] == 0
        assert idx[-1] == 99

    def test_short_input_passthrough(self):
        assert downsample_indices(5, 10).tolist() == [0, 1, 2, 3, 4]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            downsample_indices(0, 5)


class TestFormatting:
    def test_series_table_contains_labels(self):
        table = format_series_table([0, 1, 2], {"metric": [1.0, 2.0, 3.0]})
        assert "metric" in table
        assert "iteration" in table

    def test_bands_table(self, rng):
        bands = {"algo": ConvergenceBands(rng.normal(10, 1, size=(20, 30)))}
        out = format_bands(bands, max_rows=5)
        assert "algo" in out
        assert "[" in out and "]" in out

    def test_bands_empty(self):
        assert format_bands({}) == "(no series)"

    def test_render_result_full(self, rng):
        result = ExperimentResult(
            name="demo",
            description="a demo",
            series={
                "bands": ConvergenceBands(rng.normal(size=(5, 8))),
                "raw": np.arange(8.0),
            },
            scalars={"final": 1.23},
            notes=["check the shape"],
        )
        out = render_result(result)
        assert "== demo ==" in out
        assert "final" in out
        assert "note: check the shape" in out

    def test_render_result_mixed_lengths(self):
        result = ExperimentResult(
            name="demo", description="d",
            series={"a": np.arange(3.0), "b": np.arange(5.0)},
        )
        out = render_result(result)
        assert "a:" in out and "b:" in out


class TestJsonExport:
    def test_roundtrips_through_json(self, rng):
        import json

        from repro.experiments.report import result_to_json

        result = ExperimentResult(
            name="demo", description="d",
            series={
                "bands": ConvergenceBands(rng.normal(size=(6, 120))),
                "raw": np.arange(200.0),
            },
            scalars={"x": 1.5},
            notes=["n"],
        )
        payload = json.loads(result_to_json(result, max_points=20))
        assert payload["name"] == "demo"
        assert payload["scalars"]["x"] == 1.5
        bands = payload["series"]["bands"]
        assert bands["kind"] == "bands"
        assert len(bands["median"]) <= 21
        assert bands["n_runs"] == 6
        raw = payload["series"]["raw"]
        assert raw["kind"] == "array"
        assert len(raw["values"]) <= 21
        assert raw["values"][0] == 0.0 and raw["values"][-1] == 199.0
