"""Tests for the V0 pre-recorded evaluation platform."""

import numpy as np
import pytest

from repro.experiments.platform_v0 import build_v0_platform, platform_training_table
from repro.sparksim.configs import query_level_space
from repro.sparksim.noise import NoiseModel


@pytest.fixture(scope="module")
def platform():
    return build_v0_platform([1, 2, 3], n_configs=15, scale_factor=10.0, seed=0)


class TestBuild:
    def test_invalid_benchmark(self):
        with pytest.raises(ValueError):
            build_v0_platform([1], benchmark="tpcz")

    def test_tables_complete(self, platform):
        assert set(platform) == {1, 2, 3}
        for q in platform.values():
            assert q.configs.shape == (15, 3)
            assert q.times.shape == (15,)
            assert np.all(q.times > 0)
            assert q.default_time > 0
            assert q.best_time <= q.times.min() + 1e-12

    def test_cached_evaluate(self, platform):
        q = platform[1]
        assert q.evaluate(4) == q.times[4]

    def test_recording_noise_only_inflates(self):
        clean = build_v0_platform([1], n_configs=10, scale_factor=10.0, seed=0)
        noisy = build_v0_platform(
            [1], n_configs=10, scale_factor=10.0, seed=0,
            recording_noise=NoiseModel(fluctuation_level=0.2, spike_level=0.2),
        )
        assert np.all(noisy[1].times >= clean[1].times - 1e-9)


class TestTrainingTable:
    def test_row_count(self, platform):
        table = platform_training_table(platform, query_level_space())
        assert len(table) == 3 * 15

    def test_exclude_target(self, platform):
        target_sig = platform[2].plan.signature()
        table = platform_training_table(platform, query_level_space(), exclude=2)
        assert len(table) == 2 * 15
        assert target_sig not in table.signatures

    def test_feature_layout(self, platform):
        table = platform_training_table(platform, query_level_space())
        q = platform[1]
        assert table.embedding_dim == len(q.embedding)
        assert table.feature_dim == len(q.embedding) + 3 + 1

    def test_empty_platform_rejected(self):
        with pytest.raises(ValueError):
            platform_training_table({}, query_level_space())
