"""The process-pool experiment engine must be invisible in the results:
parallel dispatch has to reproduce the serial runs matrix bit for bit."""

import numpy as np
import pytest

from repro.core.centroid import CentroidLearning
from repro.experiments.parallel import (
    WORKERS_ENV,
    available_workers,
    parallel_map,
    resolve_workers,
    run_replicated_parallel,
)
from repro.experiments.runner import ConvergenceBands, run_replicated
from repro.sparksim.noise import NoiseModel
from repro.workloads.synthetic import default_synthetic_objective


# -- worker resolution ------------------------------------------------------


def test_resolve_workers_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers(None) == 1


def test_resolve_workers_reads_environment(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers(None) == 3
    monkeypatch.setenv(WORKERS_ENV, "auto")
    assert resolve_workers(None) == available_workers()


def test_resolve_workers_auto_and_nonpositive():
    assert resolve_workers("auto") == available_workers()
    assert resolve_workers(0) == available_workers()
    assert resolve_workers(-2) == available_workers()
    assert resolve_workers(5) == 5
    with pytest.raises(ValueError):
        resolve_workers("many")


# -- parallel_map -----------------------------------------------------------


def test_parallel_map_preserves_order_and_closures():
    offset = 100

    def fn(i):
        return i * i + offset

    items = list(range(23))
    expected = [fn(i) for i in items]
    assert parallel_map(fn, items, n_workers=1) == expected
    assert parallel_map(fn, items, n_workers=3) == expected


def test_parallel_map_falls_back_to_serial_on_pool_failure():
    # Lambdas returned from workers cannot cross the pickle boundary; the
    # engine must warn and re-run serially instead of raising.
    def fn(i):
        return lambda: i

    with pytest.warns(RuntimeWarning, match="running serially"):
        out = parallel_map(fn, range(4), n_workers=2)
    assert [f() for f in out] == [0, 1, 2, 3]


def test_parallel_map_empty_and_single():
    assert parallel_map(lambda x: x + 1, [], n_workers=4) == []
    assert parallel_map(lambda x: x + 1, [41], n_workers=4) == [42]


# -- bit-identical replication ---------------------------------------------


def _objective():
    return default_synthetic_objective(
        noise=NoiseModel(fluctuation_level=0.3, spike_level=0.3), seed=7
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_run_replicated_parallel_bit_identical(seed):
    objective = _objective()
    space = objective.space

    def factory(i):
        return CentroidLearning(space, seed=seed + i)

    serial, _ = run_replicated_parallel(
        factory, objective, n_iterations=15, n_runs=6, seed=seed, n_workers=1
    )
    parallel, _ = run_replicated_parallel(
        factory, objective, n_iterations=15, n_runs=6, seed=seed, n_workers=3
    )
    assert np.array_equal(serial, parallel)


def test_run_replicated_collect_roundtrip():
    objective = _objective()
    space = objective.space

    def factory(i):
        return CentroidLearning(space, seed=i)

    def harvest(optimizer):
        return len(optimizer.observations)

    bands_s, payloads_s = run_replicated(
        factory, objective, 12, 5, seed=3, n_workers=1, collect=harvest
    )
    bands_p, payloads_p = run_replicated(
        factory, objective, 12, 5, seed=3, n_workers=2, collect=harvest
    )
    assert payloads_s == payloads_p
    assert len(payloads_p) == 5
    assert all(isinstance(p, int) for p in payloads_p)
    assert np.array_equal(bands_s.runs, bands_p.runs)


def test_run_replicated_parallel_rejects_empty():
    objective = _objective()
    with pytest.raises(ValueError):
        run_replicated_parallel(lambda i: None, objective, 0, 1)
    with pytest.raises(ValueError):
        run_replicated_parallel(lambda i: None, objective, 1, 0)


# -- ConvergenceBands percentile cache -------------------------------------


def test_convergence_bands_caches_percentiles():
    runs = np.random.default_rng(0).normal(size=(20, 30))
    bands = ConvergenceBands(runs)
    median = bands.median
    assert bands.median is median  # same frozen array, not a recomputation
    assert not median.flags.writeable
    assert not bands.runs.flags.writeable
    np.testing.assert_allclose(median, np.percentile(runs, 50.0, axis=0))
    np.testing.assert_allclose(bands.p5, np.percentile(runs, 5.0, axis=0))
    np.testing.assert_allclose(bands.p95, np.percentile(runs, 95.0, axis=0))


def test_convergence_bands_copy_is_isolated():
    source = np.ones((3, 4))
    bands = ConvergenceBands(source)
    source[:] = 99.0  # mutating the caller's array must not leak in
    np.testing.assert_array_equal(bands.runs, np.ones((3, 4)))
