"""The process-pool experiment engine must be invisible in the results:
parallel dispatch has to reproduce the serial runs matrix bit for bit."""

import numpy as np
import pytest

from repro import telemetry
from repro.core.centroid import CentroidLearning
from repro.experiments.parallel import (
    WORKERS_ENV,
    available_workers,
    parallel_map,
    resolve_workers,
    run_replicated_parallel,
)
from repro.experiments.runner import ConvergenceBands, run_replicated
from repro.sparksim.noise import NoiseModel
from repro.workloads.synthetic import default_synthetic_objective


# -- worker resolution ------------------------------------------------------


def test_resolve_workers_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers(None) == 1


def test_resolve_workers_reads_environment(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers(None) == 3
    monkeypatch.setenv(WORKERS_ENV, "auto")
    assert resolve_workers(None) == available_workers()


def test_resolve_workers_auto_and_nonpositive():
    assert resolve_workers("auto") == available_workers()
    assert resolve_workers(0) == available_workers()
    assert resolve_workers(-2) == available_workers()
    assert resolve_workers(5) == 5
    with pytest.raises(ValueError):
        resolve_workers("many")


# -- parallel_map -----------------------------------------------------------


def test_parallel_map_preserves_order_and_closures():
    offset = 100

    def fn(i):
        return i * i + offset

    items = list(range(23))
    expected = [fn(i) for i in items]
    assert parallel_map(fn, items, n_workers=1) == expected
    assert parallel_map(fn, items, n_workers=3) == expected


def test_parallel_map_falls_back_to_serial_on_pool_failure():
    # Lambdas returned from workers cannot cross the pickle boundary; the
    # engine must warn and re-run serially instead of raising.
    def fn(i):
        return lambda: i

    with pytest.warns(RuntimeWarning, match="running serially"):
        out = parallel_map(fn, range(4), n_workers=2)
    assert [f() for f in out] == [0, 1, 2, 3]


def test_parallel_map_empty_and_single():
    assert parallel_map(lambda x: x + 1, [], n_workers=4) == []
    assert parallel_map(lambda x: x + 1, [41], n_workers=4) == [42]


# -- bit-identical replication ---------------------------------------------


def _objective():
    return default_synthetic_objective(
        noise=NoiseModel(fluctuation_level=0.3, spike_level=0.3), seed=7
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_run_replicated_parallel_bit_identical(seed):
    objective = _objective()
    space = objective.space

    def factory(i):
        return CentroidLearning(space, seed=seed + i)

    serial, _ = run_replicated_parallel(
        factory, objective, n_iterations=15, n_runs=6, seed=seed, n_workers=1
    )
    parallel, _ = run_replicated_parallel(
        factory, objective, n_iterations=15, n_runs=6, seed=seed, n_workers=3
    )
    assert np.array_equal(serial, parallel)


def test_run_replicated_collect_roundtrip():
    objective = _objective()
    space = objective.space

    def factory(i):
        return CentroidLearning(space, seed=i)

    def harvest(optimizer):
        return len(optimizer.observations)

    bands_s, payloads_s = run_replicated(
        factory, objective, 12, 5, seed=3, n_workers=1, collect=harvest
    )
    bands_p, payloads_p = run_replicated(
        factory, objective, 12, 5, seed=3, n_workers=2, collect=harvest
    )
    assert payloads_s == payloads_p
    assert len(payloads_p) == 5
    assert all(isinstance(p, int) for p in payloads_p)
    assert np.array_equal(bands_s.runs, bands_p.runs)


def test_run_replicated_parallel_rejects_empty():
    objective = _objective()
    with pytest.raises(ValueError):
        run_replicated_parallel(lambda i: None, objective, 0, 1)
    with pytest.raises(ValueError):
        run_replicated_parallel(lambda i: None, objective, 1, 0)


# -- telemetry: serial/parallel equivalence and fallback accounting --------


def _domain_counters(counters):
    """Counters the workload itself produced — the parallel engine's own
    ``parallel.*`` series legitimately differ between dispatch modes."""
    return {k: v for k, v in counters.items() if not k.startswith("parallel.")}


@pytest.mark.telemetry
def test_serial_and_parallel_runs_emit_equivalent_telemetry():
    objective = _objective()
    space = objective.space

    def factory(i):
        return CentroidLearning(space, seed=i)

    with telemetry.capture() as cap:
        run_replicated_parallel(factory, objective, n_iterations=12, n_runs=6,
                                seed=3, n_workers=1)
        serial_counters = cap.counters()
        serial_hist = telemetry.snapshot()["histograms"]
    with telemetry.capture() as cap:
        run_replicated_parallel(factory, objective, n_iterations=12, n_runs=6,
                                seed=3, n_workers=3)
        parallel_counters = cap.counters()
        parallel_hist = telemetry.snapshot()["histograms"]

    # Bit-identical runs => identical domain counters, merged back from the
    # forked workers' registries.
    assert _domain_counters(serial_counters) == _domain_counters(parallel_counters)
    assert serial_counters["experiments.runs"] == 6
    # Per-run timing is recorded uniformly in both modes (satellite of the
    # run_replicated fallback fix): same sample counts, mode-tagged chunks.
    assert serial_hist["experiments.run_seconds"]["count"] == 6
    assert parallel_hist["experiments.run_seconds"]["count"] == 6
    assert serial_hist["parallel.chunk_seconds{mode=serial}"]["count"] == 1
    assert parallel_hist["parallel.chunk_seconds{mode=parallel}"]["count"] >= 1
    assert "parallel.chunk_seconds{mode=serial}" not in parallel_hist
    assert parallel_counters["parallel.items{mode=parallel}"] == 6
    assert serial_counters["parallel.items{mode=serial}"] == 6


@pytest.mark.telemetry
def test_pool_failure_fallback_keeps_timing_and_records_reason():
    def fn(i):
        return lambda: i  # unpicklable result => pool_error fallback

    with telemetry.capture() as cap:
        with pytest.warns(RuntimeWarning, match="pool_error.*running serially"):
            out = parallel_map(fn, range(4), n_workers=2)
        counters = cap.counters()
        hist = telemetry.snapshot()["histograms"]
        fallback_events = cap.events.by_name("parallel.serial_fallback")
    assert [f() for f in out] == [0, 1, 2, 3]
    # The RuntimeWarning, the counter, and the structured event name the
    # same reason — no more silent disagreement between the three.
    assert counters["parallel.serial_fallbacks{reason=pool_error}"] == 1
    assert len(fallback_events) == 1
    assert fallback_events[0].fields["reason"] == "pool_error"
    assert fallback_events[0].fields["n_items"] == 4
    # And the serial re-run is timed exactly like an intentional serial run.
    assert hist["parallel.chunk_seconds{mode=serial}"]["count"] == 1
    assert counters["parallel.items{mode=serial}"] == 4


@pytest.mark.telemetry
def test_replicated_fallback_still_times_every_run():
    """run_replicated used to lose per-run timing when the pool dispatch
    degraded to the serial fallback; timing now lives inside the unit of
    work, so every path records all n_runs samples."""
    objective = _objective()
    space = objective.space

    class Unpicklable:
        def __init__(self, n):
            self.n = n
            self.fn = lambda: n  # poisons the result pickle

    def factory(i):
        return CentroidLearning(space, seed=i)

    def harvest(optimizer):
        return Unpicklable(len(optimizer.observations))

    with telemetry.capture() as cap:
        with pytest.warns(RuntimeWarning, match="running serially"):
            _, payloads = run_replicated_parallel(
                factory, objective, n_iterations=10, n_runs=5, seed=1,
                n_workers=2, collect=harvest,
            )
        counters = cap.counters()
        hist = telemetry.snapshot()["histograms"]
    assert len(payloads) == 5
    assert counters["experiments.runs"] == 5
    assert hist["experiments.run_seconds"]["count"] == 5
    assert counters["parallel.serial_fallbacks{reason=pool_error}"] == 1


@pytest.mark.telemetry
def test_parallel_map_disabled_telemetry_stays_silent():
    assert not telemetry.enabled()
    assert parallel_map(lambda x: x * 2, range(8), n_workers=2) == \
        [x * 2 for x in range(8)]
    assert telemetry.snapshot()["counters"] == {}


# -- ConvergenceBands percentile cache -------------------------------------


def test_convergence_bands_caches_percentiles():
    runs = np.random.default_rng(0).normal(size=(20, 30))
    bands = ConvergenceBands(runs)
    median = bands.median
    assert bands.median is median  # same frozen array, not a recomputation
    assert not median.flags.writeable
    assert not bands.runs.flags.writeable
    np.testing.assert_allclose(median, np.percentile(runs, 50.0, axis=0))
    np.testing.assert_allclose(bands.p5, np.percentile(runs, 5.0, axis=0))
    np.testing.assert_allclose(bands.p95, np.percentile(runs, 95.0, axis=0))


def test_convergence_bands_copy_is_isolated():
    source = np.ones((3, 4))
    bands = ConvergenceBands(source)
    source[:] = 99.0  # mutating the caller's array must not leak in
    np.testing.assert_array_equal(bands.runs, np.ones((3, 4)))
