"""Tests for the experiment runner machinery."""

import numpy as np
import pytest

from repro.experiments.runner import (
    ConvergenceBands,
    ExperimentResult,
    run_replicated,
    run_single,
)
from repro.optimizers.random_search import RandomSearch
from repro.sparksim.noise import no_noise
from repro.workloads.dynamics import LinearGrowth
from repro.workloads.synthetic import default_synthetic_objective


@pytest.fixture
def objective():
    return default_synthetic_objective(noise=no_noise(), seed=2)


class TestConvergenceBands:
    def test_percentile_ordering(self, rng):
        bands = ConvergenceBands(rng.normal(size=(100, 20)))
        assert np.all(bands.p5 <= bands.median)
        assert np.all(bands.median <= bands.p95)

    def test_shapes(self, rng):
        bands = ConvergenceBands(rng.normal(size=(10, 7)))
        assert bands.n_runs == 10
        assert bands.n_iterations == 7
        assert bands.median.shape == (7,)

    def test_final_median_uses_tail(self):
        runs = np.tile(np.arange(10.0), (3, 1))  # every run: 0..9
        bands = ConvergenceBands(runs)
        assert bands.final_median(tail=2) == pytest.approx(8.5)

    def test_single_run_accepted(self):
        bands = ConvergenceBands(np.arange(5.0))
        assert bands.n_runs == 1


class TestRunSingle:
    def test_track_true(self, objective, rng):
        values = run_single(RandomSearch(objective.space, seed=0), objective, 10, rng=rng)
        assert values.shape == (10,)
        assert np.all(values >= objective.optimal_value - 1e-9)

    def test_track_gap(self, objective, rng):
        gaps = run_single(RandomSearch(objective.space, seed=0), objective, 10,
                          rng=rng, track="gap")
        assert np.all(gaps >= 0)

    def test_track_normed_scales_with_size(self, objective, rng):
        normed = run_single(
            RandomSearch(objective.space, seed=0), objective, 10,
            size_process=LinearGrowth(initial=1000.0, slope=100.0),
            rng=rng, track="normed",
        )
        assert np.all(normed > 0)

    def test_unknown_track_rejected(self, objective, rng):
        with pytest.raises(ValueError):
            run_single(RandomSearch(objective.space), objective, 5, rng=rng,
                       track="banana")


class TestRunReplicated:
    def test_shape_and_determinism(self, objective):
        factory = lambda i: RandomSearch(objective.space, seed=i)
        a = run_replicated(factory, objective, 8, 4, seed=1)
        b = run_replicated(factory, objective, 8, 4, seed=1)
        assert a.runs.shape == (4, 8)
        assert np.allclose(a.runs, b.runs)

    def test_different_noise_seeds_differ_for_adaptive_optimizer(self, objective):
        from repro.optimizers.flow2 import FLOW2

        rs_factory = lambda i: RandomSearch(objective.space, seed=100 + i)
        a = run_replicated(rs_factory, objective, 8, 4, seed=1)
        b = run_replicated(rs_factory, objective, 8, 4, seed=2)
        # Random search ignores observations: the noise seed cannot matter.
        assert np.allclose(a.runs, b.runs)
        # An adaptive optimizer reacts to the noisy observations, so the
        # noise seed shifts its trajectory.
        noisy = default_synthetic_objective(seed=2)
        flow_factory = lambda i: FLOW2(noisy.space, seed=100 + i)
        c = run_replicated(flow_factory, noisy, 12, 4, seed=1)
        d = run_replicated(flow_factory, noisy, 12, 4, seed=2)
        assert not np.allclose(c.runs, d.runs)

    def test_validation(self, objective):
        with pytest.raises(ValueError):
            run_replicated(lambda i: RandomSearch(objective.space), objective, 0, 1)


def test_experiment_result_scalar_access():
    result = ExperimentResult(name="x", description="d", scalars={"a": 1.0})
    assert result.scalar("a") == 1.0
    with pytest.raises(KeyError):
        result.scalar("b")
