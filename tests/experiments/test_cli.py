"""Tests for the experiments command-line runner."""

import pytest

from repro.experiments.__main__ import main


def test_runs_named_experiment(capsys):
    assert main(["fig08"]) == 0
    out = capsys.readouterr().out
    assert "fig08_synthetic_function" in out
    assert "took" in out


def test_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_multiple_experiments(capsys):
    assert main(["fig08", "fig01"]) == 0
    out = capsys.readouterr().out
    assert "fig08_synthetic_function" in out
    assert "fig01_shuffle_partitions" in out
