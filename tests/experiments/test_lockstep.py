"""Tier-1 tests for the lock-step vectorized session engine.

The heavyweight differential/property evidence lives in the ``verify``
suite (``repro.verify.diff.diff_lockstep_sequential``,
``tests/verify/test_properties.py``); this module keeps a fast tier-1
pin on the core contract — bit-identity to the sequential loop on a small
mixed population — plus the compatibility-validation and state-sync
behavior.
"""

import numpy as np
import pytest

from repro.core.centroid import CentroidLearning
from repro.core.config_space import ConfigSpace, Parameter
from repro.core.guardrail import Guardrail
from repro.core.observation import Observation
from repro.experiments.lockstep import (
    LockstepCompatibilityError,
    LockstepReplicatedRuns,
    LockstepSessions,
    SessionSpec,
    run_sequential,
)
from repro.experiments.runner import run_replicated, run_single
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultySimulator
from repro.optimizers.random_search import RandomSearch
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import NoiseModel, no_noise
from repro.workloads.dynamics import LinearGrowth
from repro.workloads.synthetic import default_synthetic_objective
from repro.workloads.tpch import tpch_plan

N_ITERATIONS = 8


def mixed_population():
    """Six sessions: two plans, noise spread, faults, drift, a transform."""
    space = query_level_space()
    specs = []
    for k in range(6):
        simulator = SparkSimulator(
            noise=NoiseModel(fluctuation_level=0.1 * k, spike_level=0.3 * k),
            seed=50 + k,
        )
        if k % 3 == 0:
            simulator = FaultySimulator(simulator, FaultPlan(
                [FaultSpec(FaultKind.LATENCY_SPIKE, at=(1, 4), magnitude=3.0)],
                seed=k,
            ))
        specs.append(SessionSpec(
            plan=tpch_plan(3 if k % 2 else 6),
            simulator=simulator,
            optimizer=CentroidLearning(
                space,
                alpha=0.05 + 0.01 * k, beta=0.08 + 0.02 * k,
                guardrail=Guardrail(min_iterations=3, threshold=0.2,
                                    patience=2, cooldown=3),
                seed=k,
            ),
            scale_fn=(lambda t: 1.0 + 0.05 * t) if k == 2 else None,
            observe_transform=(lambda t, obs: obs * 1.1) if k == 4 else None,
        ))
    return specs


def assert_traces_equal(lock_traces, seq_traces):
    assert len(lock_traces) == len(seq_traces)
    for lock, seq in zip(lock_traces, seq_traces):
        assert lock.records == seq.records


class TestBitIdentity:
    def test_mixed_population_matches_sequential(self):
        lock_traces = LockstepSessions(mixed_population()).run(N_ITERATIONS)
        seq_traces = run_sequential(mixed_population(), N_ITERATIONS)
        assert_traces_equal(lock_traces, seq_traces)

    def test_single_session_matches_plain_session(self):
        spec = mixed_population()[1]
        lock_trace = LockstepSessions([mixed_population()[1]]).run(N_ITERATIONS)[0]
        seq_trace = spec.to_session().run(N_ITERATIONS)
        assert lock_trace.records == seq_trace.records

    def test_advance_is_resumable(self):
        # Two advances of 4 equal one run of 8 — the engine's buffers and
        # model memoization survive the boundary.
        split = LockstepSessions(mixed_population())
        split.advance(4)
        split.advance(4)
        whole_traces = LockstepSessions(mixed_population()).run(8)
        assert_traces_equal(split.traces(), whole_traces)


class TestStateSync:
    def test_optimizers_usable_after_run(self):
        specs = mixed_population()
        LockstepSessions(specs).run(N_ITERATIONS)
        seq_specs = mixed_population()
        run_sequential(seq_specs, N_ITERATIONS)
        for lock_spec, seq_spec in zip(specs, seq_specs):
            lock_opt, seq_opt = lock_spec.optimizer, seq_spec.optimizer
            assert np.array_equal(lock_opt.centroid, seq_opt.centroid)
            assert len(lock_opt.observations) == len(seq_opt.observations)
            for a, b in zip(lock_opt.observations.history,
                            seq_opt.observations.history):
                assert np.array_equal(a.config, b.config)
                assert a.performance == b.performance
                assert a.data_size == b.data_size
                assert a.iteration == b.iteration
            assert lock_opt.guardrail.decisions == seq_opt.guardrail.decisions
            assert lock_opt.guardrail.active == seq_opt.guardrail.active
            # The synced optimizer keeps tuning standalone, deterministically.
            va = lock_opt.suggest(data_size=1000.0)
            vb = seq_opt.suggest(data_size=1000.0)
            assert np.array_equal(va, vb)

    def test_tuning_active_reflects_guardrail_state(self):
        engine = LockstepSessions(mixed_population())
        engine.advance(N_ITERATIONS)
        active = engine.tuning_active
        assert active.shape == (6,)
        assert active.dtype == bool


class TestValidation:
    def test_rejects_non_centroid_optimizer(self):
        space = query_level_space()
        spec = SessionSpec(
            plan=tpch_plan(3),
            simulator=SparkSimulator(noise=no_noise(), seed=0),
            optimizer=RandomSearch(space, seed=0),
        )
        with pytest.raises(LockstepCompatibilityError, match="CentroidLearning"):
            LockstepSessions([spec])

    def test_rejects_subclassed_optimizer(self):
        class Tweaked(CentroidLearning):
            pass

        spec = mixed_population()[0]
        spec.optimizer = Tweaked(query_level_space(), seed=0)
        with pytest.raises(LockstepCompatibilityError, match="CentroidLearning"):
            LockstepSessions([spec])

    def test_rejects_mixed_guardrail_presence(self):
        specs = mixed_population()[:2]
        specs[1].optimizer = CentroidLearning(query_level_space(), seed=1)
        with pytest.raises(LockstepCompatibilityError, match="guardrail"):
            LockstepSessions(specs)

    def test_rejects_nonuniform_window_size(self):
        specs = mixed_population()[:2]
        specs[1].optimizer = CentroidLearning(
            query_level_space(), window_size=4,
            guardrail=Guardrail(min_iterations=3, threshold=0.2,
                                patience=2, cooldown=3),
            seed=1,
        )
        with pytest.raises(LockstepCompatibilityError, match="window_size"):
            LockstepSessions(specs)

    def test_rejects_stale_optimizer(self):
        spec = mixed_population()[0]
        spec.optimizer.observe(Observation(
            config=spec.optimizer.space.default_vector(),
            data_size=100.0, performance=1.0, iteration=0,
        ))
        with pytest.raises(LockstepCompatibilityError, match="fresh"):
            LockstepSessions([spec])

    def test_rejects_high_dimensional_space(self):
        wide = ConfigSpace([
            Parameter(name=f"knob{i}", low=0.0, high=10.0, default=5.0)
            for i in range(13)
        ])
        spec = SessionSpec(
            plan=tpch_plan(3),
            simulator=SparkSimulator(noise=no_noise(), seed=0),
            optimizer=CentroidLearning(wide, seed=0),
        )
        with pytest.raises(LockstepCompatibilityError, match="dim"):
            LockstepSessions([spec])

    def test_rejects_empty_population(self):
        with pytest.raises(LockstepCompatibilityError, match="at least one"):
            LockstepSessions([])


class TestLockstepReplicatedRuns:
    @pytest.fixture
    def objective(self):
        return default_synthetic_objective(seed=2)

    def test_matches_run_single_bitwise(self, objective):
        n_runs, seed = 5, 3
        optimizers = [
            CentroidLearning(objective.space, seed=100 + i) for i in range(n_runs)
        ]
        engine = LockstepReplicatedRuns(
            optimizers,
            objective,
            [LinearGrowth(initial=objective.reference_size, slope=25.0)
             for _ in range(n_runs)],
            [np.random.default_rng(seed * 10007 + i) for i in range(n_runs)],
        )
        engine.advance(N_ITERATIONS)
        for track in ("true", "normed", "gap"):
            matrix = engine.runs(track)
            for i in range(n_runs):
                expected = run_single(
                    CentroidLearning(objective.space, seed=100 + i),
                    objective, N_ITERATIONS,
                    size_process=LinearGrowth(
                        initial=objective.reference_size, slope=25.0
                    ),
                    rng=np.random.default_rng(seed * 10007 + i),
                    track=track,
                )
                assert np.array_equal(matrix[i], expected)

    def test_rejects_unknown_track(self, objective):
        engine = LockstepReplicatedRuns(
            [CentroidLearning(objective.space, seed=0)],
            objective,
            [LinearGrowth(initial=objective.reference_size, slope=0.0)],
            [np.random.default_rng(0)],
        )
        engine.advance(2)
        with pytest.raises(ValueError, match="track"):
            engine.runs("median")


class TestRunReplicatedEngineParam:
    @pytest.fixture
    def objective(self):
        return default_synthetic_objective(seed=2)

    def test_lockstep_matches_process_bitwise(self, objective):
        kwargs = dict(
            objective=objective, n_iterations=6, n_runs=4, seed=5, track="gap",
        )
        factory = lambda i: CentroidLearning(objective.space, seed=10 + i)
        a = run_replicated(factory, engine="process", n_workers=1, **kwargs)
        b = run_replicated(factory, engine="lockstep", **kwargs)
        assert np.array_equal(a.runs, b.runs)

    def test_auto_falls_back_for_incompatible_populations(self, objective):
        bands = run_replicated(
            lambda i: RandomSearch(objective.space, seed=i),
            objective, 4, 3, seed=1, engine="auto", n_workers=1,
        )
        assert bands.runs.shape == (3, 4)

    def test_lockstep_engine_is_strict(self, objective):
        with pytest.raises(LockstepCompatibilityError):
            run_replicated(
                lambda i: RandomSearch(objective.space, seed=i),
                objective, 4, 3, seed=1, engine="lockstep",
            )

    def test_rejects_unknown_engine(self, objective):
        with pytest.raises(ValueError, match="engine"):
            run_replicated(
                lambda i: CentroidLearning(objective.space, seed=i),
                objective, 4, 3, engine="threads",
            )

    def test_collect_hook_returns_per_run_payloads(self, objective):
        bands, payloads = run_replicated(
            lambda i: CentroidLearning(objective.space, seed=i),
            objective, 5, 3, seed=2, engine="lockstep",
            collect=lambda opt: opt.centroid.copy(),
        )
        assert bands.runs.shape == (3, 5)
        assert len(payloads) == 3
        for payload in payloads:
            assert payload.shape == (objective.space.dim,)
