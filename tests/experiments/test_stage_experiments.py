"""Acceptance tests for the PR's two experiment families (``make stages``).

* ``ablation_knob_pruning`` — tuning the ranking's top-4 subspace reaches
  the full 8-knob space's best-by-step-N cost in strictly fewer steps
  (median over seeds) on at least 2 of the 3 TPC-DS workloads.
* ``ext_stage_tuning`` — per-exchange AQE-style partition sizing beats the
  best whole-app ``shuffle.partitions`` from an exhaustive grid sweep on
  every heterogeneous-exchange plan.
"""

import pytest

from repro.experiments import ablation_knob_pruning, ext_stage_tuning
from repro.experiments.ablation_knob_pruning import steps_to_reach

pytestmark = pytest.mark.stages


@pytest.fixture(scope="module")
def pruning_result():
    return ablation_knob_pruning.run(quick=True, seed=0)


@pytest.fixture(scope="module")
def stage_result():
    return ext_stage_tuning.run(quick=True, seed=0)


class TestKnobPruningAcceptanceBar:
    def test_pruned_reaches_parity_faster_on_most_workloads(self, pruning_result):
        assert pruning_result.scalars["pruned_faster_workloads"] >= 2.0
        assert pruning_result.scalars["n_workloads"] == 3.0

    def test_per_workload_medians_recorded(self, pruning_result):
        n_ref = pruning_result.scalars["n_ref"]
        for qid in ablation_knob_pruning.DEFAULT_QUERIES:
            median = pruning_result.scalars[f"q{qid}_median_steps_pruned"]
            assert median >= 1.0
            assert pruning_result.scalars[f"q{qid}_kept_knobs"] == float(
                ablation_knob_pruning.TOP_K
            )
            # Winning workloads beat the reference budget strictly.
        wins = sum(
            1 for qid in ablation_knob_pruning.DEFAULT_QUERIES
            if pruning_result.scalars[f"q{qid}_median_steps_pruned"] < n_ref
        )
        assert wins == pruning_result.scalars["pruned_faster_workloads"]

    def test_convergence_series_cover_the_run(self, pruning_result):
        for qid in ablation_knob_pruning.DEFAULT_QUERIES:
            full = pruning_result.series[f"q{qid}_mean_best_full"]
            pruned = pruning_result.series[f"q{qid}_mean_best_pruned"]
            assert len(full) == len(pruned) >= pruning_result.scalars["n_ref"]
            # best-so-far curves are monotone non-increasing
            assert all(b <= a + 1e-12 for a, b in zip(full, full[1:]))
            assert all(b <= a + 1e-12 for a, b in zip(pruned, pruned[1:]))


class TestStepsToReach:
    def test_first_hit_is_one_based(self):
        assert steps_to_reach([5.0, 3.0, 2.0], 3.0) == 2

    def test_never_reached_returns_len_plus_one(self):
        assert steps_to_reach([5.0, 4.0], 1.0) == 3


class TestStageTuningAcceptanceBar:
    @pytest.mark.parametrize("plan_name", ["skew_heavy", "mixed_pipeline"])
    def test_stage_overlay_beats_best_whole_app_setting(self, stage_result, plan_name):
        stage = stage_result.scalars[f"{plan_name}_stage_seconds"]
        best_single = stage_result.scalars[f"{plan_name}_best_single_seconds"]
        assert stage < best_single
        assert stage_result.scalars[f"{plan_name}_stage_gain_pct"] > 0.0

    @pytest.mark.parametrize("plan_name", ["skew_heavy", "mixed_pipeline"])
    def test_replans_actually_happened(self, stage_result, plan_name):
        assert stage_result.scalars[f"{plan_name}_replans"] >= 1.0

    @pytest.mark.parametrize("plan_name", ["skew_heavy", "mixed_pipeline"])
    def test_both_arms_beat_the_default(self, stage_result, plan_name):
        default = stage_result.scalars[f"{plan_name}_default_seconds"]
        assert stage_result.scalars[f"{plan_name}_best_single_seconds"] <= default
        assert stage_result.scalars[f"{plan_name}_stage_seconds"] < default

    def test_sweep_series_are_aligned(self, stage_result):
        for plan_name in ("skew_heavy", "mixed_pipeline"):
            sweep = stage_result.series[f"{plan_name}_sweep_seconds"]
            grid = stage_result.series[f"{plan_name}_sweep_partitions"]
            assert len(sweep) == len(grid) > 1
            targets = stage_result.series[f"{plan_name}_target_sweep_seconds"]
            mib = stage_result.series[f"{plan_name}_target_sweep_mib"]
            assert len(targets) == len(mib) == len(
                ext_stage_tuning.TARGET_MIB_GRID
            )
