"""Acceptance test for the adversarial-drift experiment (``make drift``).

The PR's headline claim, asserted: on the step and flip-flop schedules the
detector + retrieval strategy's post-switch regret is strictly below the
guardrail-only baseline's, and the mechanism is visible in the diagnostics
(the baseline grinds through disabled probation steps; the detector
strategies declare switches and never disable on the flip-flop).
"""

import pytest

from repro.experiments import ext_drift_adversarial
from repro.experiments.ext_drift_adversarial import SCHEDULES, post_switch_steps

pytestmark = pytest.mark.drift


@pytest.fixture(scope="module")
def result():
    return ext_drift_adversarial.run(quick=True, seed=0)


class TestAcceptanceBar:
    @pytest.mark.parametrize("schedule", ["step", "flipflop"])
    def test_detector_retrieval_beats_guardrail(self, result, schedule):
        winner = result.scalars[f"{schedule}_post_switch_regret_detector_retrieval"]
        baseline = result.scalars[f"{schedule}_post_switch_regret_guardrail"]
        assert winner < baseline

    @pytest.mark.parametrize("schedule", ["step", "flipflop"])
    def test_retrieval_warm_start_helps_over_bare_detector(self, result, schedule):
        with_corpus = result.scalars[
            f"{schedule}_post_switch_regret_detector_retrieval"
        ]
        bare = result.scalars[f"{schedule}_post_switch_regret_detector"]
        assert with_corpus <= bare


class TestMechanism:
    @pytest.mark.parametrize("schedule", ["step", "ramp", "periodic", "flipflop"])
    def test_detector_declares_switches(self, result, schedule):
        assert result.scalars[f"{schedule}_switches_detector"] >= 1.0
        assert result.scalars[f"{schedule}_switches_guardrail"] == 0.0

    def test_guardrail_baseline_grinds_through_probation(self, result):
        # The switch shows up to the baseline as a tuning regression: it
        # spends post-switch steps disabled on the default configuration.
        assert result.scalars["flipflop_disabled_steps_guardrail"] > 0.0
        assert result.scalars["flipflop_disabled_steps_detector"] == 0.0


class TestScheduleGeometry:
    def test_schedules_cover_the_four_adversaries(self):
        schedules = SCHEDULES(36)
        assert set(schedules) == {"step", "ramp", "periodic", "flipflop"}
        step = schedules["step"]
        assert step(11) == 1.0 and step(12) == 6.0

    def test_post_switch_windows_follow_boundaries(self):
        steps = post_switch_steps("step", 36, horizon=6)
        assert steps == list(range(12, 18))
        flip = post_switch_steps("flipflop", 36, horizon=6)
        assert flip[0] == 9 and len(flip) == 18  # 3 boundaries x horizon

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            post_switch_steps("nope", 36, horizon=6)
