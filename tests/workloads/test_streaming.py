"""Tests for streaming micro-batch workloads."""

import numpy as np
import pytest

from repro.core.centroid import CentroidLearning
from repro.core.session import TuningSession
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import NoiseModel, no_noise
from repro.workloads.streaming import BurstyArrivals, MicroBatchStream, micro_batch_plan


class TestMicroBatchPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            micro_batch_plan(events_per_batch=0.0)

    def test_shape(self):
        plan = micro_batch_plan()
        counts = plan.operator_counts()
        assert counts["TableScan"] == 1
        assert counts["HashAggregate"] == 1
        assert plan.total_leaf_cardinality == 200_000

    def test_signature_stable_across_batch_volumes(self):
        plan = micro_batch_plan()
        assert plan.signature() == plan.scaled(5.0).signature()


class TestBurstyArrivals:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(base=0.0)
        with pytest.raises(ValueError):
            BurstyArrivals(wave_amplitude=1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(burst_sigma=-1.0)

    def test_deterministic_and_memoized(self):
        a = BurstyArrivals(seed=1)
        b = BurstyArrivals(seed=1)
        assert [a(t) for t in range(30)] == [b(t) for t in range(30)]
        assert a(5) == a(5)

    def test_band_clamped(self):
        arrivals = BurstyArrivals(base=1000.0, burst_sigma=3.0, seed=2)
        values = [arrivals(t) for t in range(200)]
        assert min(values) >= 100.0
        assert max(values) <= 20_000.0

    def test_diurnal_wave_visible(self):
        arrivals = BurstyArrivals(base=1000.0, wave_amplitude=0.8,
                                  burst_sigma=0.0, period=24, seed=0)
        peak = arrivals(6)    # sin peak at t = period/4
        trough = arrivals(18)
        assert peak > 1.5 * trough


class TestStreamTuning:
    def test_stream_scale_normalized_to_base(self):
        stream = MicroBatchStream.create(seed=0)
        assert stream.scale(0) > 0
        scales = [stream.scale(t) for t in range(50)]
        assert 0.5 < np.mean(scales) < 2.0

    def test_default_partitions_are_terrible_for_micro_batches(self):
        """200 shuffle partitions on a few-MB batch = scheduling overhead."""
        space = query_level_space()
        sim = SparkSimulator(noise=no_noise(), seed=0)
        plan = micro_batch_plan()
        base = space.default_dict()
        default_time = sim.true_time(plan, base)
        small = dict(base)
        small["spark.sql.shuffle.partitions"] = 16.0
        assert sim.true_time(plan, small) < default_time

    def test_tuning_a_stream_converges_to_few_partitions(self):
        """Over many micro-batches CL pushes partitions far below 200 and
        cuts per-batch latency."""
        space = query_level_space()
        stream = MicroBatchStream.create(seed=3)
        session = TuningSession(
            stream.plan,
            SparkSimulator(noise=NoiseModel(0.2, 0.2), seed=1),
            CentroidLearning(space, alpha=0.08, beta=0.15, seed=0),
            scale_fn=stream.scale,
        )
        trace = session.run(60)
        final_partitions = np.mean([
            r.config["spark.sql.shuffle.partitions"] for r in trace.records[-10:]
        ])
        assert final_partitions < 150
        normed = trace.normalized_true()
        assert np.mean(normed[-10:]) < np.mean(normed[:10])
