"""Tests for data-size processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.dynamics import (
    ConstantSize,
    LinearGrowth,
    PeriodicSize,
    RandomWalkSize,
)


class TestConstant:
    def test_constant(self):
        p = ConstantSize(500.0)
        assert p(0) == p(100) == 500.0

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            ConstantSize()( -1)


class TestLinear:
    def test_growth(self):
        p = LinearGrowth(initial=100.0, slope=5.0)
        assert p(0) == 100.0
        assert p(10) == 150.0

    def test_strictly_increasing(self):
        p = LinearGrowth(initial=10.0, slope=1.0)
        values = [p(t) for t in range(20)]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestPeriodic:
    def test_period_validation(self):
        with pytest.raises(ValueError):
            PeriodicSize(period=0)

    def test_matches_t_mod_k(self):
        p = PeriodicSize(initial=100.0, slope=10.0, period=4)
        assert p(0) == 100.0
        assert p(3) == 130.0
        assert p(4) == 100.0  # wraps
        assert p(7) == 130.0

    def test_full_period_repeats(self):
        p = PeriodicSize(period=5)
        first = [p(t) for t in range(5)]
        second = [p(t) for t in range(5, 10)]
        assert first == second


class TestRandomWalk:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkSize(initial=0.0)
        with pytest.raises(ValueError):
            RandomWalkSize(volatility=-1.0)
        with pytest.raises(ValueError):
            RandomWalkSize(min_factor=2.0)

    def test_memoized_consistency(self):
        p = RandomWalkSize(seed=1)
        assert p(10) == p(10)
        assert p(3) == p(3)

    def test_deterministic_given_seed(self):
        a = RandomWalkSize(seed=7)
        b = RandomWalkSize(seed=7)
        assert [a(t) for t in range(20)] == [b(t) for t in range(20)]

    def test_band_respected(self):
        p = RandomWalkSize(initial=100.0, volatility=0.5, min_factor=0.5,
                           max_factor=2.0, seed=3)
        values = [p(t) for t in range(200)]
        assert min(values) >= 50.0
        assert max(values) <= 200.0

    def test_zero_volatility_constant(self):
        p = RandomWalkSize(initial=100.0, volatility=0.0, seed=0)
        assert {p(t) for t in range(10)} == {100.0}


@settings(max_examples=40, deadline=None)
@given(
    t=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_all_processes_positive_property(t, seed):
    processes = [
        ConstantSize(10.0),
        LinearGrowth(initial=1.0, slope=0.5),
        PeriodicSize(initial=5.0, slope=2.0, period=7),
        RandomWalkSize(initial=50.0, volatility=0.3, seed=seed),
    ]
    for p in processes:
        assert p(t) > 0
