"""Tests for QuerySpec -> PhysicalPlan compilation."""

import pytest

from repro.sparksim.plan import OpType
from repro.workloads.generator import QuerySpec, build_plan
from repro.workloads.tables import TPCH_TABLES as T


@pytest.fixture
def basic_spec():
    return QuerySpec(
        name="q",
        fact=T["lineitem"],
        dimensions=(T["orders"], T["customer"]),
        fact_selectivity=0.5,
        dim_selectivities=(0.2, 0.3),
        agg_reduction=0.01,
        has_sort=True,
        has_limit=True,
    )


class TestQuerySpecValidation:
    def test_selectivity_bounds(self):
        with pytest.raises(ValueError):
            QuerySpec(name="q", fact=T["orders"], fact_selectivity=0.0)

    def test_dim_selectivities_length(self):
        with pytest.raises(ValueError):
            QuerySpec(name="q", fact=T["orders"], dimensions=(T["customer"],),
                      dim_selectivities=(0.1, 0.2))

    def test_agg_reduction_bounds(self):
        with pytest.raises(ValueError):
            QuerySpec(name="q", fact=T["orders"], agg_reduction=1.5)


class TestBuildPlan:
    def test_plan_shape(self, basic_spec):
        plan = build_plan(basic_spec, scale_factor=1.0)
        counts = plan.operator_counts()
        assert counts[OpType.TABLE_SCAN] == 3      # fact + 2 dims
        assert counts[OpType.JOIN] == 2
        assert counts[OpType.HASH_AGGREGATE] == 1
        assert counts[OpType.SORT] == 1
        assert counts[OpType.LIMIT] == 1
        assert plan.root.op_type == OpType.PROJECT

    def test_scale_factor_scales_leaves(self, basic_spec):
        p1 = build_plan(basic_spec, 1.0)
        p10 = build_plan(basic_spec, 10.0)
        assert p10.total_leaf_cardinality == pytest.approx(
            10 * p1.total_leaf_cardinality, rel=1e-6
        )

    def test_signature_stable_for_recurrent_runs(self, basic_spec):
        # The same query over grown input (plan.scaled) keeps its signature;
        # regenerating at another *benchmark* scale factor may change the
        # selectivity profile (fixed dimensions don't grow) and hence the id.
        plan = build_plan(basic_spec, 1.0)
        assert plan.signature() == plan.scaled(7.0).signature()

    def test_second_fact_adds_union(self):
        spec = QuerySpec(name="q", fact=T["lineitem"], second_fact=T["orders"])
        plan = build_plan(spec)
        assert plan.operator_counts().get(OpType.UNION) == 1

    def test_window_flag(self):
        spec = QuerySpec(name="q", fact=T["orders"], has_window=True)
        plan = build_plan(spec)
        assert plan.operator_counts().get(OpType.WINDOW) == 1

    def test_no_agg(self):
        spec = QuerySpec(name="q", fact=T["orders"], agg_reduction=0.0)
        plan = build_plan(spec)
        assert OpType.HASH_AGGREGATE not in plan.operator_counts()

    def test_filter_reduces_cardinality(self, basic_spec):
        plan = build_plan(basic_spec)
        filters = [op for op in plan.operators if op.op_type == OpType.FILTER]
        assert all(op.est_rows_out <= op.est_rows_in for op in filters)

    def test_limit_caps_rows(self, basic_spec):
        plan = build_plan(basic_spec)
        limits = [op for op in plan.operators if op.op_type == OpType.LIMIT]
        assert limits[0].est_rows_out <= 100
