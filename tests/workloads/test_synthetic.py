"""Tests for the Sec.-6.1 synthetic objective."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparksim.noise import high_noise, no_noise
from repro.workloads.synthetic import (
    SyntheticObjective,
    default_synthetic_objective,
    synthetic_space,
)


class TestConstruction:
    def test_weights_shape_checked(self):
        space = synthetic_space(3)
        with pytest.raises(ValueError, match="weights"):
            SyntheticObjective(space=space, optimum=space.default_vector(),
                               weights=np.ones(2))

    def test_negative_weights_rejected(self):
        space = synthetic_space(2)
        with pytest.raises(ValueError):
            SyntheticObjective(space=space, optimum=space.default_vector(),
                               weights=np.array([-1.0, 1.0]))

    def test_size_exponent_positive(self):
        space = synthetic_space(2)
        with pytest.raises(ValueError):
            SyntheticObjective(space=space, optimum=space.default_vector(),
                               weights=np.ones(2), size_exponent=0.0)

    def test_optimum_clipped_into_bounds(self):
        space = synthetic_space(2)
        obj = SyntheticObjective(space=space, optimum=np.array([1e9, -1e9]),
                                 weights=np.ones(2))
        assert space.contains_vector(obj.optimum)


class TestTrueValue:
    def test_minimum_at_optimum(self):
        obj = default_synthetic_objective(noise=no_noise(), seed=1)
        at_opt = obj.true_value(obj.optimum)
        assert at_opt == pytest.approx(obj.optimal_value)
        rng = np.random.default_rng(0)
        for _ in range(30):
            v = obj.space.sample_vector(rng)
            assert obj.true_value(v) >= at_opt - 1e-9

    def test_convexity_along_axes(self):
        obj = default_synthetic_objective(noise=no_noise(), seed=1)
        bounds = obj.space.internal_bounds
        grid = np.linspace(bounds[0, 0], bounds[0, 1], 21)
        values = []
        for x in grid:
            v = obj.optimum.copy()
            v[0] = x
            values.append(obj.true_value(v))
        diffs = np.diff(values)
        sign_changes = np.sum(np.diff(np.sign(diffs)) != 0)
        assert sign_changes <= 1  # unimodal

    def test_linear_size_scaling(self):
        obj = default_synthetic_objective(noise=no_noise(), seed=1)
        v = obj.space.default_vector()
        assert obj.true_value(v, 2000.0) == pytest.approx(2 * obj.true_value(v, 1000.0))

    def test_sublinear_size_scaling(self):
        obj = default_synthetic_objective(noise=no_noise(), seed=1, size_exponent=0.5)
        v = obj.space.default_vector()
        ratio = obj.true_value(v, 4000.0) / obj.true_value(v, 1000.0)
        assert ratio == pytest.approx(2.0)  # 4^0.5

    def test_sublinear_makes_r_over_p_decrease(self):
        """The paper's FIND_BEST v2 bias: r/p falls as p grows."""
        obj = default_synthetic_objective(noise=no_noise(), seed=1, size_exponent=0.6)
        v = obj.space.default_vector()
        small = obj.true_value(v, 500.0) / 500.0
        large = obj.true_value(v, 5000.0) / 5000.0
        assert large < small


class TestOptimalityGap:
    def test_zero_at_optimum(self):
        obj = default_synthetic_objective(noise=no_noise(), seed=1)
        assert obj.optimality_gap(obj.optimum) == 0.0

    def test_per_dimension_gap(self):
        obj = default_synthetic_objective(noise=no_noise(), seed=1)
        v = obj.optimum.copy()
        v[1] += 5.0
        assert obj.optimality_gap(v, dimension=1) == pytest.approx(5.0)
        assert obj.optimality_gap(v, dimension=0) == 0.0

    def test_most_impactful_dimension(self):
        obj = default_synthetic_objective(noise=no_noise(), seed=1)
        assert obj.most_impactful_dimension == int(np.argmax(obj.weights))


class TestObserve:
    def test_noiseless_observation(self, rng):
        obj = default_synthetic_objective(noise=no_noise(), seed=1)
        v = obj.space.default_vector()
        assert obj.observe(v, 1000.0, rng) == pytest.approx(obj.true_value(v))

    def test_noisy_observation_at_least_true(self, rng):
        obj = default_synthetic_objective(noise=high_noise(), seed=1)
        v = obj.space.default_vector()
        for _ in range(50):
            assert obj.observe(v, 1000.0, rng) >= obj.true_value(v)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_default_objective_optimum_off_center_property(seed):
    obj = default_synthetic_objective(noise=no_noise(), seed=seed)
    default = obj.true_value(obj.space.default_vector())
    assert default > obj.optimal_value  # tuning always has work to do
