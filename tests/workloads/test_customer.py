"""Tests for the customer workload population generator."""

import numpy as np
import pytest

from repro.workloads.customer import CustomerWorkload, generate_population


class TestGeneratePopulation:
    def test_size_and_determinism(self):
        a = generate_population(10, seed=3)
        b = generate_population(10, seed=3)
        assert len(a) == 10
        assert [w.workload_id for w in a] == [w.workload_id for w in b]
        assert [len(w.plans) for w in a] == [len(w.plans) for w in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_population(0)
        with pytest.raises(ValueError):
            generate_population(5, pathological_fraction=1.0)

    def test_queries_per_workload_range(self):
        pop = generate_population(20, seed=0, queries_per_workload=(2, 3))
        assert all(2 <= len(w.plans) <= 3 for w in pop)

    def test_pathological_fraction_roughly_respected(self):
        pop = generate_population(200, seed=1, pathological_fraction=0.1)
        frac = sum(1 for w in pop if w.pathology) / len(pop)
        assert 0.04 < frac < 0.2

    def test_zero_pathologies(self):
        pop = generate_population(30, seed=2, pathological_fraction=0.0)
        assert all(w.pathology is None for w in pop)

    def test_unique_ids_shared_users(self):
        pop = generate_population(40, seed=0)
        ids = [w.workload_id for w in pop]
        assert len(set(ids)) == 40
        assert len({w.user_id for w in pop}) < 40  # users own several notebooks


class TestCustomerWorkload:
    def test_data_scale_starts_at_one(self):
        w = generate_population(3, seed=0)[0]
        assert w.data_scale(0) == pytest.approx(w.scale)

    def test_pathology_multiplier_healthy_is_one(self, rng):
        w = generate_population(3, seed=0, pathological_fraction=0.0)[0]
        assert w.pathology_multiplier(5, rng) == 1.0

    def test_drift_pathology_grows(self, rng):
        w = generate_population(3, seed=0)[0]
        object.__setattr__ if False else setattr(w, "pathology", "drift")
        assert w.pathology_multiplier(50, rng) > w.pathology_multiplier(0, rng)

    def test_variance_pathology_varies(self, rng):
        w = generate_population(3, seed=0)[0]
        setattr(w, "pathology", "variance")
        values = {w.pathology_multiplier(0, rng) for _ in range(10)}
        assert len(values) == 10

    def test_plan_signatures_stable_across_population_rebuild(self):
        a = generate_population(5, seed=9)
        b = generate_population(5, seed=9)
        for wa, wb in zip(a, b):
            assert [p.signature() for p in wa.plans] == [p.signature() for p in wb.plans]
