"""Tests for the TPC table catalogs."""

import pytest

from repro.workloads.tables import TPCDS_TABLES, TPCH_TABLES, Table


def test_tpch_has_all_eight_tables():
    assert set(TPCH_TABLES) == {
        "lineitem", "orders", "partsupp", "part", "customer",
        "supplier", "nation", "region",
    }


def test_tpch_spec_row_counts():
    assert TPCH_TABLES["lineitem"].rows_sf1 == 6_001_215
    assert TPCH_TABLES["orders"].rows_sf1 == 1_500_000
    assert TPCH_TABLES["nation"].rows_sf1 == 25


def test_linear_scaling():
    assert TPCH_TABLES["lineitem"].rows_at(10.0) == pytest.approx(60_012_150)


def test_fixed_tables_do_not_scale():
    assert TPCH_TABLES["nation"].rows_at(1000.0) == 25
    assert TPCDS_TABLES["date_dim"].rows_at(100.0) == TPCDS_TABLES["date_dim"].rows_sf1


def test_log_scaling_sublinear():
    customer = TPCDS_TABLES["customer"]
    r1 = customer.rows_at(1.0)
    r100 = customer.rows_at(100.0)
    assert r100 > r1
    assert r100 < 100 * r1


def test_invalid_scale_factor():
    with pytest.raises(ValueError):
        TPCH_TABLES["orders"].rows_at(0.0)


def test_unknown_scaling_mode():
    t = Table("weird", 10, 10, scaling="quadratic")
    with pytest.raises(ValueError):
        t.rows_at(2.0)


def test_bytes_at():
    t = Table("x", rows_sf1=100, row_bytes=10)
    assert t.bytes_at(2.0) == 2000.0


def test_tpcds_fact_tables_present():
    for name in ("store_sales", "catalog_sales", "web_sales", "inventory"):
        assert name in TPCDS_TABLES
