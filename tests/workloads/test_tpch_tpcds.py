"""Tests for the TPC-H and TPC-DS suites."""

import pytest

from repro.sparksim.plan import OpType
from repro.workloads.tpcds import TPCDS_QUERY_IDS, tpcds_plan, tpcds_spec, tpcds_suite
from repro.workloads.tpch import TPCH_QUERY_IDS, tpch_plan, tpch_spec, tpch_suite


class TestTPCH:
    def test_all_22_queries(self):
        assert TPCH_QUERY_IDS == tuple(range(1, 23))
        suite = tpch_suite(1.0)
        assert len(suite) == 22

    def test_invalid_query_id(self):
        with pytest.raises(ValueError):
            tpch_spec(0)
        with pytest.raises(ValueError):
            tpch_plan(23)

    def test_q1_is_lineitem_scan_aggregate(self):
        plan = tpch_plan(1, 1.0)
        counts = plan.operator_counts()
        assert counts[OpType.TABLE_SCAN] == 1
        assert OpType.JOIN not in counts

    def test_q3_joins_three_tables(self):
        plan = tpch_plan(3, 1.0)
        counts = plan.operator_counts()
        assert counts[OpType.TABLE_SCAN] == 3
        assert counts[OpType.JOIN] == 2

    def test_signatures_distinct_across_queries(self):
        signatures = {tpch_plan(q).signature() for q in TPCH_QUERY_IDS}
        assert len(signatures) >= 20  # a couple of shapes may collide

    def test_deterministic(self):
        assert tpch_plan(5, 10.0).signature() == tpch_plan(5, 10.0).signature()
        a = tpch_plan(5, 10.0)
        b = tpch_plan(5, 10.0)
        assert a.total_leaf_cardinality == b.total_leaf_cardinality

    def test_scale_factor_scales(self):
        assert (tpch_plan(6, 100.0).total_leaf_cardinality
                > 50 * tpch_plan(6, 1.0).total_leaf_cardinality)


class TestTPCDS:
    def test_all_99_queries(self):
        assert TPCDS_QUERY_IDS == tuple(range(1, 100))
        assert len(tpcds_suite(1.0)) == 99

    def test_invalid_query_id(self):
        with pytest.raises(ValueError):
            tpcds_spec(100)

    def test_specs_deterministic_and_cached(self):
        a = tpcds_spec(42)
        b = tpcds_spec(42)
        assert a is b
        assert a.fact.name == tpcds_spec(42).fact.name

    def test_plans_deterministic(self):
        assert tpcds_plan(17, 10.0).signature() == tpcds_plan(17, 10.0).signature()

    def test_signatures_mostly_distinct(self):
        signatures = {tpcds_plan(q).signature() for q in range(1, 100)}
        assert len(signatures) > 80

    def test_subset_selection(self):
        suite = tpcds_suite(1.0, query_ids=[5, 9])
        assert len(suite) == 2
        assert suite[0].name == "tpcds_q05"

    def test_some_queries_are_cross_channel(self):
        from repro.sparksim.plan import OpType
        unions = sum(
            1 for q in range(1, 100)
            if OpType.UNION in tpcds_plan(q).operator_counts()
        )
        assert 10 < unions < 60  # ~30% of queries

    def test_every_plan_has_scan_and_root(self):
        for q in (1, 25, 50, 75, 99):
            plan = tpcds_plan(q)
            assert plan.operator_counts()[OpType.TABLE_SCAN] >= 1
            assert plan.root_cardinality >= 1
