"""Figure 12: CBO transfer learning with varying baseline sample sizes.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig12_transfer_learning


def test_fig12_transfer_learning(run_experiment):
    result = run_experiment(fig12_transfer_learning)
    assert result.scalar("oracle_speedup") > 1.0
