"""Perf: process-pool speedup on a quick-mode convergence figure.

Times the same quick-mode figure run serially and with one worker per
available core.  The result is recorded honestly: on a multi-core machine
the speedup approaches the core count; on a single-core container it is
~1x (pool overhead included) — which is why the hard assertion is scaled by
``n_cpus`` instead of demanding a fixed ratio everywhere.
"""

import time

import numpy as np
import pytest

from repro.experiments import fig02_noisy_convergence
from repro.experiments.parallel import available_workers, resolve_workers


def _timed_run(n_workers):
    t0 = time.perf_counter()
    result = fig02_noisy_convergence.run(quick=True, seed=0, n_workers=n_workers)
    return time.perf_counter() - t0, result


def test_parallel_figure_run_speedup(perf_results):
    n_cpus = available_workers()
    # What "auto" actually resolves to — on a constrained container this can
    # differ from the nominal CPU count, and it is the number the speedup
    # should be judged against.
    effective_workers = resolve_workers("auto")
    serial_seconds, serial_result = _timed_run(1)
    parallel_seconds, parallel_result = _timed_run("auto")
    speedup = serial_seconds / parallel_seconds

    perf_results["parallel_engine"] = {
        "experiment": "fig02_noisy_convergence (quick)",
        "n_cpus": n_cpus,
        "effective_workers": effective_workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "speedup_guard_applied": effective_workers > 1,
    }

    # Correctness before speed: worker count must never change the science.
    for key in serial_result.scalars:
        assert serial_result.scalars[key] == parallel_result.scalars[key], key

    if effective_workers == 1:
        # Single effective worker: "auto" degenerates to the serial path, so
        # a speedup ratio is pool overhead, not parallelism.  The section is
        # already recorded above; there is nothing meaningful to guard.
        pytest.skip("single effective worker: speedup guard not applicable")
    if effective_workers >= 4:
        # With 4+ workers the quick figure (long independent runs, tiny IPC
        # payloads) must clear 2x; anything less means the pool is broken.
        assert speedup >= 2.0, (
            f"only {speedup:.2f}x with {effective_workers} workers"
        )
    else:
        assert speedup >= 1.2, (
            f"only {speedup:.2f}x with {effective_workers} workers"
        )


def test_parallel_bit_identity_across_worker_counts(perf_results):
    # The runs matrices, not just the summary scalars, must match exactly.
    from repro.core.centroid import CentroidLearning
    from repro.experiments.parallel import run_replicated_parallel
    from repro.sparksim.noise import high_noise
    from repro.workloads.synthetic import default_synthetic_objective

    objective = default_synthetic_objective(noise=high_noise(), seed=7)
    space = objective.space

    def factory(i):
        return CentroidLearning(space, seed=i)

    serial, _ = run_replicated_parallel(
        factory, objective, n_iterations=40, n_runs=8, seed=0, n_workers=1
    )
    pooled, _ = run_replicated_parallel(
        factory, objective, n_iterations=40, n_runs=8, seed=0, n_workers="auto"
    )
    identical = bool(np.array_equal(serial, pooled))
    perf_results.setdefault("parallel_engine", {})["bit_identical"] = identical
    assert identical
