"""Perf: candidate scoring through the mean-only ``predict`` fast path.

Acquisition loops score hundreds of candidates per iteration but only need
the posterior mean; ``predict`` now skips the O(n²·m) variance
``cho_solve`` that ``predict_with_std`` pays.  Measured: per-call cost of
both paths on an acquisition-sized batch, and the BO suggest step that the
fast path accelerates end to end.
"""

import os
import time

import numpy as np

from repro.core.config_space import ConfigSpace, Parameter
from repro.core.observation import Observation
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import Matern52Kernel
from repro.optimizers.bayesian import BayesianOptimization

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
N_TRAIN = 600 if FULL_MODE else 300
N_CANDIDATES = 512
REPEATS = 9
DIM = 5


def _median_seconds(fn, repeats=REPEATS):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def test_mean_only_scoring_beats_variance_path(perf_results):
    rng = np.random.default_rng(0)
    X = rng.uniform(-1.0, 1.0, size=(N_TRAIN, DIM))
    y = np.sin(X @ rng.normal(size=DIM))
    model = GaussianProcessRegressor(
        kernel=Matern52Kernel(length_scale=0.8), noise=1e-3,
        optimize_hypers=False,
    ).fit(X, y)
    candidates = rng.uniform(-1.0, 1.0, size=(N_CANDIDATES, DIM))

    mean_only = _median_seconds(lambda: model.predict(candidates))
    with_std = _median_seconds(lambda: model.predict_with_std(candidates))

    perf_results["candidate_scoring"] = {
        "n_train": N_TRAIN,
        "n_candidates": N_CANDIDATES,
        "predict_mean_median_seconds": mean_only,
        "predict_with_std_median_seconds": with_std,
        "mean_only_speedup": with_std / mean_only,
    }
    # The fast path must at minimum not cost more than the variance path.
    assert mean_only <= with_std * 1.1


def test_bo_suggest_cost_recorded(perf_results):
    # End-to-end acquisition cost at a realistic history depth: this is the
    # per-iteration price the incremental surrogate + fast scoring pay.
    space = ConfigSpace([
        Parameter(f"conf{i}", low=1.0, high=100.0, default=50.0)
        for i in range(3)
    ])
    bo = BayesianOptimization(space, n_init=5, n_candidates=256, seed=0)
    rng = np.random.default_rng(0)
    n_history = 120 if FULL_MODE else 60
    for t in range(n_history):
        vector = bo.suggest()
        value = float(np.sum((vector - 0.3) ** 2) + 0.01 * rng.normal())
        bo.observe(Observation(
            config=vector, data_size=1.0, performance=value, iteration=t
        ))
    suggest_cost = _median_seconds(lambda: bo.suggest(), repeats=5)
    perf_results["candidate_scoring"]["bo_suggest_median_seconds"] = suggest_cost
    perf_results["candidate_scoring"]["bo_history_depth"] = n_history
    assert suggest_cost > 0
