"""Figure 16: external-customer speed-ups + guardrail statistics.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig16_external_customers


def test_fig16_external_customers(run_experiment):
    result = run_experiment(fig16_external_customers)
    assert result.scalar("n_never_disabled") > 0
