"""Extension: price-performance tuning (latency/cost blended objective).

Regenerates the experiment's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale sizes.
"""

from repro.experiments import ext_price_performance


def test_ext_price_performance(run_experiment):
    result = run_experiment(ext_price_performance)
    assert (result.scalar("weight_0_final_seconds")
            <= result.scalar("weight_1_final_seconds"))
    assert (result.scalar("weight_1_final_core_seconds")
            <= result.scalar("weight_0_final_core_seconds"))
