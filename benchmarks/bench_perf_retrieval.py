"""Perf: vectorized ANN retrieval vs the per-pair loop, and IVF vs flat.

Two guards back the zero-execution warm start (``repro.retrieval``):

* **flat vs. loop** — one top-k ``dgemm`` over a 100k-entry corpus against
  the per-pair ``np.dot`` idiom the vectorized kernels replaced (one Python
  iteration per (query, entry) pair, the honest pre-index baseline).  The
  flat index must return *exactly* the brute-force top-k — same ids, same
  order (recall@k = 1.0 by construction, asserted, not assumed) — at
  >= 20x the loop's throughput.
* **IVF vs. flat at 1M** — the inverted-file index probing its default
  ``nprobe`` lists against the exact flat scan over the same million-entry
  gaussian-mixture corpus: >= 5x further speedup with recall@10 >= 0.95.

Results land in the ``retrieval`` section of ``BENCH_perf.json``.  Set
``REPRO_BENCH_SMOKE=1`` (CI) to shrink the corpora and skip the speedup
guards — exactness and recall are still asserted; wall-clock ratios on a
loaded shared runner are not meaningful.
"""

import gc
import os
import time

import numpy as np

from repro.retrieval import FlatIndex, IVFIndex

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

DIM = 32
K = 10
FLAT_N = 20_000 if SMOKE_MODE else 100_000
FLAT_Q = 4 if SMOKE_MODE else 8
IVF_N = 100_000 if SMOKE_MODE else 1_000_000
IVF_Q = 16
N_LISTS = 128 if SMOKE_MODE else 1024
FLAT_REPEATS = 15 if FULL_MODE else 7
LOOP_REPEATS = 2
IVF_REPEATS = 15 if FULL_MODE else 7
FLAT_1M_REPEATS = 3
# The ISSUE-level floors; regressions below these fail the bench run.
MIN_FLAT_SPEEDUP = 20.0
MIN_IVF_SPEEDUP = 5.0
MIN_RECALL_AT_10 = 0.95


def _best_seconds(fn, repeats):
    # Best-of-N (timeit convention): scheduler noise only adds time, so the
    # minimum estimates the intrinsic cost.
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.min(samples))


def _mixture(n, dim, n_centers, seed):
    """Gaussian-mixture corpus — clustered like real embedding spaces, so
    the IVF coarse quantizer has actual structure to exploit."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(n_centers, dim))
    assign = rng.integers(0, n_centers, size=n)
    return centers[assign] + rng.normal(size=(n, dim))


def _loop_topk(entries, queries, k):
    """The pre-index idiom: one Python iteration per (query, entry) pair."""
    out = np.empty((len(queries), k), dtype=np.int64)
    for qi, q in enumerate(queries):
        qn = np.sqrt(np.dot(q, q))
        dists = np.empty(len(entries))
        for i, row in enumerate(entries):
            denom = max(np.sqrt(np.dot(row, row)) * qn, 1e-12)
            dists[i] = 1.0 - np.dot(row, q) / denom
        out[qi] = np.lexsort((np.arange(len(entries)), dists))[:k]
    return out


def test_flat_index_vs_pair_loop(perf_results):
    entries = _mixture(FLAT_N, DIM, 64, seed=0)
    queries = _mixture(FLAT_Q, DIM, 64, seed=1)
    index = FlatIndex(DIM, metric="cosine")
    index.add(entries)

    # Warm both paths, and pin exactness: the flat index must reproduce the
    # brute-force ids in brute-force order.
    flat_ids, _ = index.search(queries, K)
    loop_ids = _loop_topk(entries, queries, K)
    exact = bool(np.array_equal(flat_ids, loop_ids))
    recall = float(np.mean(flat_ids == loop_ids))

    gc.collect()
    gc.freeze()
    flat_seconds = _best_seconds(lambda: index.search(queries, K), FLAT_REPEATS)
    loop_seconds = _best_seconds(lambda: _loop_topk(entries, queries, K), LOOP_REPEATS)
    gc.unfreeze()
    speedup = loop_seconds / flat_seconds

    perf_results.setdefault("retrieval", {})["flat_vs_loop"] = {
        "corpus_size": FLAT_N,
        "n_queries": FLAT_Q,
        "dim": DIM,
        "k": K,
        "loop_best_seconds": loop_seconds,
        "flat_best_seconds": flat_seconds,
        "queries_per_second": FLAT_Q / flat_seconds,
        "speedup": speedup,
        "exact_topk": exact,
        "recall_at_k": recall,
        "min_speedup_guard": MIN_FLAT_SPEEDUP,
        "smoke_mode": SMOKE_MODE,
    }

    # Exactness first: a fast index returning different neighbors is a
    # different (wrong) retrieval semantics.
    assert exact, "flat index diverged from brute-force top-k ordering"
    if not SMOKE_MODE:
        assert speedup >= MIN_FLAT_SPEEDUP, (
            f"flat index regression: only {speedup:.1f}x over the pair loop "
            f"at N={FLAT_N} (guard {MIN_FLAT_SPEEDUP:.0f}x)"
        )


def test_ivf_index_vs_flat_at_scale(perf_results):
    entries = _mixture(IVF_N, DIM, 256, seed=2)
    queries = _mixture(IVF_Q, DIM, 256, seed=3)
    flat = FlatIndex(DIM, metric="cosine")
    flat.add(entries)
    ivf = IVFIndex(DIM, n_lists=N_LISTS, metric="cosine", seed=0)
    build_t0 = time.perf_counter()
    ivf.add(entries)
    build_seconds = time.perf_counter() - build_t0

    # Warm both paths; measure recall@10 against the exact flat answer.
    exact_ids, _ = flat.search(queries, K)
    ivf_ids, _ = ivf.search(queries, K)
    recall = float(np.mean([
        len(set(ivf_ids[q]) & set(exact_ids[q])) / K for q in range(IVF_Q)
    ]))

    gc.collect()
    gc.freeze()
    flat_seconds = _best_seconds(lambda: flat.search(queries, K), FLAT_1M_REPEATS)
    ivf_seconds = _best_seconds(lambda: ivf.search(queries, K), IVF_REPEATS)
    gc.unfreeze()
    speedup = flat_seconds / ivf_seconds

    perf_results.setdefault("retrieval", {})["ivf_vs_flat"] = {
        "corpus_size": IVF_N,
        "n_queries": IVF_Q,
        "dim": DIM,
        "k": K,
        "n_lists": N_LISTS,
        "nprobe": ivf.nprobe,
        "build_seconds": build_seconds,
        "flat_best_seconds": flat_seconds,
        "ivf_best_seconds": ivf_seconds,
        "queries_per_second": IVF_Q / ivf_seconds,
        "speedup": speedup,
        "recall_at_10": recall,
        "min_speedup_guard": MIN_IVF_SPEEDUP,
        "min_recall_guard": MIN_RECALL_AT_10,
        "smoke_mode": SMOKE_MODE,
    }

    assert recall >= MIN_RECALL_AT_10, (
        f"IVF recall regression: {recall:.3f} at nprobe={ivf.nprobe} "
        f"(guard {MIN_RECALL_AT_10})"
    )
    if not SMOKE_MODE:
        assert speedup >= MIN_IVF_SPEEDUP, (
            f"IVF regression: only {speedup:.1f}x over the flat scan at "
            f"N={IVF_N} (guard {MIN_IVF_SPEEDUP:.0f}x)"
        )
