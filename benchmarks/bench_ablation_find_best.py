"""Sec. 4.3 ablation: FIND_BEST v1 / v2 / v3 under drifting data sizes.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import ablation_find_best


def test_ablation_find_best(run_experiment):
    result = run_experiment(ablation_find_best)
    assert (result.scalar("v3_model_mean_regret")
            < result.scalar("v1_raw_mean_regret"))
