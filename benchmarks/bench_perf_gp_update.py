"""Perf: incremental GP ``update()`` vs full ``fit()`` per observation.

The regression guard here is the load-bearing one: absorbing one new
observation through the rank-1 Cholesky append must scale **sub-cubically**
with the training-set size (the full refit it replaces is O(n³)).  The
measured per-observation cost is fit to ``cost ~ n^exponent`` on a log-log
grid; the PR that accidentally reroutes ``update()`` through the full
factorization shows up as the exponent snapping back toward 3.
"""

import os
import time

import numpy as np

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import Matern52Kernel

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
SIZES = (100, 200, 400, 800) if FULL_MODE else (50, 100, 200, 400)
REPEATS = 7
DIM = 5
# O(n²) theory plus constant-factor noise on small problems; an accidental
# O(n³) reroute measures ≳2.7 on these grids.
MAX_EXPONENT = 2.6


def _training_data(n, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, size=(n, DIM))
    y = np.sin(X @ rng.normal(size=DIM)) + 0.05 * rng.normal(size=n)
    return X, y


def _median_seconds(fn, repeats=REPEATS):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def _fitted_model(X, y):
    model = GaussianProcessRegressor(
        kernel=Matern52Kernel(length_scale=0.8),
        noise=1e-3,
        normalize_y=False,  # keep every repeat on the rank-1 path
        optimize_hypers=False,
    )
    return model.fit(X, y)


def test_incremental_update_is_subcubic(perf_results):
    update_costs = []
    refit_costs = []
    for n in SIZES:
        X, y = _training_data(n + REPEATS + 1)
        x_new = X[n:]
        y_new = y[n:]

        # One fitted model per repeat so every sample times a single rank-1
        # append at exactly size n (updating in place would grow the factor).
        models = [_fitted_model(X[:n], y[:n]) for _ in range(REPEATS)]
        it = iter(range(REPEATS))
        update_costs.append(_median_seconds(
            lambda: models[next(it)].update(x_new[:1], float(y_new[0]))
        ))

        refit = _fitted_model(X[:n], y[:n])
        refit_costs.append(_median_seconds(
            lambda: refit.fit(X[:n + 1], y[:n + 1])
        ))

    log_n = np.log(np.array(SIZES, dtype=float))
    exponent = float(np.polyfit(log_n, np.log(np.array(update_costs)), 1)[0])
    largest = len(SIZES) - 1
    speedup_at_largest = refit_costs[largest] / update_costs[largest]

    perf_results["gp_update"] = {
        "train_sizes": list(SIZES),
        "update_median_seconds": update_costs,
        "full_refit_median_seconds": refit_costs,
        "update_cost_exponent": exponent,
        "max_allowed_exponent": MAX_EXPONENT,
        "speedup_vs_refit_at_largest": float(speedup_at_largest),
    }

    assert exponent < MAX_EXPONENT, (
        f"incremental update cost grew as n^{exponent:.2f} over {SIZES}; "
        "the rank-1 append has regressed toward a full O(n^3) refit"
    )
    assert speedup_at_largest > 1.0, (
        f"update() slower than a full refit at n={SIZES[largest]} "
        f"({speedup_at_largest:.2f}x)"
    )


def test_update_equals_refit_posterior(perf_results):
    # Cheap cross-check riding along with the timing run: the speed must not
    # come from a different posterior.
    n = SIZES[0]
    X, y = _training_data(n + 10, seed=3)
    incremental = _fitted_model(X[:n], y[:n])
    for m in range(n, n + 10):
        incremental.update(X[m:m + 1], float(y[m]))
    scratch = _fitted_model(X, y)
    probe = np.random.default_rng(1).uniform(-1, 1, size=(32, DIM))
    err = float(np.max(np.abs(incremental.predict(probe) - scratch.predict(probe))))
    perf_results.setdefault("gp_update", {})["posterior_max_abs_error"] = err
    assert err < 1e-8
