"""Perf: fleet-scale sharded service vs the single-backend scalar baseline.

Two guards back the sharded, queue-driven multi-tenant service
(``repro.service.sharded`` + ``repro.service.fleet``):

* **sharded vs. single** — a ~1000-session customer fleet (420 recurrent
  workloads, mixed priority classes) driven for 10 suggest/observe rounds
  against (a) one shard draining scalar requests one at a time — the
  pre-service deployment — and (b) a 4-shard service with batched drains,
  serial and with thread-parallel shard drains.  Service throughput
  (completed requests per second of drain wall-clock, client-side simulator
  time excluded) for the parallel-drain sharded arm must be >= 3x the
  single-backend baseline.  ``diff_sharded_single`` separately pins that
  the two arms are *bit-identical* per tenant; this file only measures.
* **overload** — the same fleet shape against deliberately undersized
  ingress queues so priority admission control sheds under load.  Load
  shedding must actually engage (``shed_rate > 0``), nothing may be lost
  (the driver's shed-retry budget recovers every request), and p99 request
  latency must stay bounded: at most ``P99_OVERLOAD_FACTOR`` x the
  ample-queue baseline p99, because bounded queues mean bounded drains.

Results land in ``BENCH_service.json`` at the repo root (rendered in
docs/service.md).  Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the fleet and
skip the wall-clock guards — bookkeeping invariants (request conservation,
shedding engages, nothing lost) are still asserted; timing ratios on a
loaded shared runner are not meaningful.
"""

import os

from repro.service.fleet import (
    build_fleet,
    default_optimizer_factory,
    fleet_user_map,
    run_fleet,
)
from repro.service.sharded import ShardedAutotuneService

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

# 420 workloads -> 1049 tenant sessions (each recurrent workload carries a
# handful of distinct query signatures).
N_WORKLOADS = 24 if SMOKE_MODE else 420
N_ITERATIONS = 2 if SMOKE_MODE else 10
N_SHARDS = 4
SEED = 0

# Overload run: same fleet shape, queues sized far below the per-round
# submission burst so admission control must shed.  The queue scales with
# the fleet so the retry budget can always recover every shed request —
# overload must degrade latency, never lose work.
OVERLOAD_WORKLOADS = 16 if SMOKE_MODE else 120
OVERLOAD_ITERATIONS = 2 if SMOKE_MODE else 6
OVERLOAD_QUEUE_CAPACITY = 8 if SMOKE_MODE else 64
OVERLOAD_RETRY_BUDGET = 32

# The ISSUE-level floors; regressions below these fail the bench run.
MIN_SHARDED_SPEEDUP = 3.0
P99_OVERLOAD_FACTOR = 25.0


def _service(fleet, n_shards, *, coalesce=True, queue_capacity=None):
    return ShardedAutotuneService(
        n_shards,
        default_optimizer_factory(fleet, base_seed=SEED),
        user_id_fn=fleet_user_map(fleet),
        coalesce=coalesce,
        queue_capacity=queue_capacity or max(4096, 4 * len(fleet)),
    )


def _run_arm(n_shards, *, coalesce, parallel_drain, queue_capacity=None,
             n_workloads=N_WORKLOADS, n_iterations=N_ITERATIONS,
             max_shed_retries=8):
    # Each arm gets a freshly built fleet: FleetSession simulators are
    # stateful RNG streams, so sharing one fleet across arms would leak
    # state between measurements.
    fleet = build_fleet(n_workloads, seed=SEED)
    service = _service(
        fleet, n_shards, coalesce=coalesce, queue_capacity=queue_capacity
    )
    report = run_fleet(
        service, fleet, n_iterations, parallel_drain=parallel_drain,
        max_shed_retries=max_shed_retries,
    )
    return service, report


def test_sharded_throughput_vs_single_backend(service_results):
    single_service, single = _run_arm(1, coalesce=False, parallel_drain=False)
    serial_service, serial = _run_arm(N_SHARDS, coalesce=True, parallel_drain=False)
    parallel_service, parallel = _run_arm(N_SHARDS, coalesce=True, parallel_drain=True)

    speedup_serial = serial.service_throughput_rps / single.service_throughput_rps
    speedup_parallel = parallel.service_throughput_rps / single.service_throughput_rps
    # Thread-parallel drains only pay off with spare cores; on a single-CPU
    # runner the serial batched arm is the faster deployment.  The guard is
    # on the best sharded configuration.
    best_speedup = max(speedup_serial, speedup_parallel)

    service_results["fleet"] = {
        "n_workloads": N_WORKLOADS,
        "n_sessions": parallel.n_sessions,
        "n_iterations": N_ITERATIONS,
        "n_shards": N_SHARDS,
        "single_backend": single.to_dict(),
        "sharded_serial": serial.to_dict(),
        "sharded_parallel": parallel.to_dict(),
        "speedup_serial": speedup_serial,
        "speedup_parallel": speedup_parallel,
        "speedup_best": best_speedup,
        "min_speedup_guard": MIN_SHARDED_SPEEDUP,
        "smoke_mode": SMOKE_MODE,
    }

    # Bookkeeping invariants hold in every mode: same work completed on
    # every arm, nothing shed or lost with ample queues.
    expected = parallel.n_sessions * N_ITERATIONS * 2
    for report in (single, serial, parallel):
        assert report.n_requests == expected
        assert report.lost_requests == 0
        assert report.shed_events == 0
    for service in (serial_service, parallel_service):
        skew = service.metrics()["service"]["utilization_skew"]
        assert skew < 2.5, f"shard utilization skew {skew:.2f} out of bounds"

    if not SMOKE_MODE:
        assert best_speedup >= MIN_SHARDED_SPEEDUP, (
            f"sharded({N_SHARDS}) throughput only {best_speedup:.2f}x the "
            f"single-backend baseline (floor {MIN_SHARDED_SPEEDUP}x; "
            f"serial {speedup_serial:.2f}x, parallel {speedup_parallel:.2f}x)"
        )


def test_overload_sheds_without_loss_and_bounded_p99(service_results):
    _, baseline = _run_arm(
        N_SHARDS, coalesce=True, parallel_drain=False,
        n_workloads=OVERLOAD_WORKLOADS, n_iterations=OVERLOAD_ITERATIONS,
    )
    overload_service, overload = _run_arm(
        N_SHARDS, coalesce=True, parallel_drain=False,
        queue_capacity=OVERLOAD_QUEUE_CAPACITY,
        n_workloads=OVERLOAD_WORKLOADS, n_iterations=OVERLOAD_ITERATIONS,
        max_shed_retries=OVERLOAD_RETRY_BUDGET,
    )

    p99_ratio = (
        overload.latency_p99_ms / baseline.latency_p99_ms
        if baseline.latency_p99_ms > 0 else float("inf")
    )
    service_results["overload"] = {
        "n_workloads": OVERLOAD_WORKLOADS,
        "n_sessions": overload.n_sessions,
        "n_iterations": OVERLOAD_ITERATIONS,
        "queue_capacity": OVERLOAD_QUEUE_CAPACITY,
        "baseline": baseline.to_dict(),
        "overload": overload.to_dict(),
        "p99_ratio_vs_baseline": p99_ratio,
        "p99_factor_guard": P99_OVERLOAD_FACTOR,
        "shed_by_reason": {
            shard_id: dict(payload["shed_by_reason"])
            for shard_id, payload in
            overload_service.metrics()["service"]["shards"].items()
        },
        "smoke_mode": SMOKE_MODE,
    }

    # Load shedding must actually engage, and the retry loop must recover
    # every shed request — overload degrades latency, never correctness.
    assert overload.shed_events > 0
    assert overload.shed_rate > 0
    assert overload.lost_requests == 0
    assert overload.n_requests == overload.n_sessions * OVERLOAD_ITERATIONS * 2

    if not SMOKE_MODE:
        assert p99_ratio <= P99_OVERLOAD_FACTOR, (
            f"overload p99 is {p99_ratio:.1f}x the ample-queue baseline "
            f"(bound {P99_OVERLOAD_FACTOR}x) — shedding is not bounding queues"
        )
