"""Shared machinery for the figure/table benchmark harness.

Each ``bench_*.py`` regenerates one paper figure or table: it runs the
corresponding experiment (timed by pytest-benchmark), prints the series the
paper reports, and writes the rendered report to ``benchmarks/output/``.

By default the reduced *quick* configurations run; set ``REPRO_BENCH_FULL=1``
for paper-scale replication counts.
"""

import inspect
import os
from pathlib import Path

import pytest

from repro.experiments.parallel import WORKERS_ENV
from repro.experiments.report import render_result, result_to_json

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
OUTPUT_DIR = Path(__file__).parent / "output"
# Benchmarks default to every available core; $REPRO_WORKERS still wins so a
# timing run can be pinned serial for apples-to-apples comparisons.
BENCH_WORKERS = os.environ.get(WORKERS_ENV, "auto")

# The bench_perf_* modules deposit their sections here; pytest_sessionfinish
# assembles them into BENCH_perf.json at the repo root (docs/performance.md).
PERF_RESULTS = {}
PERF_JSON = Path(__file__).parent.parent / "BENCH_perf.json"

# bench_perf_service.py deposits its sections here; they land in their own
# BENCH_service.json (the fleet-scale service report, docs/service.md).
SERVICE_RESULTS = {}
SERVICE_JSON = Path(__file__).parent.parent / "BENCH_service.json"


@pytest.fixture(scope="session")
def perf_results():
    return PERF_RESULTS


@pytest.fixture(scope="session")
def service_results():
    return SERVICE_RESULTS


def _write_report(path, schema, results):
    import json
    import platform

    from repro.experiments.parallel import available_workers

    # Merge into any existing report so a partial run (e.g. `make
    # bench-telemetry`) refreshes its own sections without clobbering the
    # ones it didn't measure.
    sections = {}
    if path.exists():
        try:
            sections = json.loads(path.read_text()).get("sections", {})
        except (json.JSONDecodeError, OSError):
            sections = {}
    sections.update(results)
    payload = {
        "schema": schema,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "n_cpus": available_workers(),
        "full_mode": FULL_MODE,
        "sections": sections,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def pytest_sessionfinish(session, exitstatus):
    if PERF_RESULTS:
        _write_report(PERF_JSON, "repro-bench-perf/1", PERF_RESULTS)
    if SERVICE_RESULTS:
        _write_report(SERVICE_JSON, "repro-bench-service/1", SERVICE_RESULTS)


@pytest.fixture(scope="session")
def bench_output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def run_experiment(benchmark, bench_output_dir):
    """Run one experiment module under the benchmark timer and persist its
    rendered report."""

    def _run(module, **kwargs):
        run_kwargs = {"quick": not FULL_MODE, **kwargs}
        if "n_workers" in inspect.signature(module.run).parameters:
            run_kwargs.setdefault("n_workers", BENCH_WORKERS)
        result = benchmark.pedantic(
            module.run,
            kwargs=run_kwargs,
            rounds=1,
            iterations=1,
        )
        text = render_result(result)
        (bench_output_dir / f"{result.name}.txt").write_text(text)
        (bench_output_dir / f"{result.name}.json").write_text(result_to_json(result))
        print()
        print(text)
        return result

    return _run
