"""Shared machinery for the figure/table benchmark harness.

Each ``bench_*.py`` regenerates one paper figure or table: it runs the
corresponding experiment (timed by pytest-benchmark), prints the series the
paper reports, and writes the rendered report to ``benchmarks/output/``.

By default the reduced *quick* configurations run; set ``REPRO_BENCH_FULL=1``
for paper-scale replication counts.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.report import render_result, result_to_json

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def run_experiment(benchmark, bench_output_dir):
    """Run one experiment module under the benchmark timer and persist its
    rendered report."""

    def _run(module, **kwargs):
        result = benchmark.pedantic(
            module.run,
            kwargs={"quick": not FULL_MODE, **kwargs},
            rounds=1,
            iterations=1,
        )
        text = render_result(result)
        (bench_output_dir / f"{result.name}.txt").write_text(text)
        (bench_output_dir / f"{result.name}.json").write_text(result_to_json(result))
        print()
        print(text)
        return result

    return _run
