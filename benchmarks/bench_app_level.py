"""Sec. 4.4: app-level joint optimization (Algorithm 2).

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import app_level_joint


def test_app_level_joint(run_experiment):
    result = run_experiment(app_level_joint)
    assert result.scalar("joint_speedup_pct") > 0
