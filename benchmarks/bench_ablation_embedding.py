"""Sec. 6.2 ablation: virtual-operator vs plain operator-count embeddings.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import ablation_embedding


def test_ablation_embedding(run_experiment):
    result = run_experiment(ablation_embedding)
    assert result.scalar("virtual_ops_mean_improvement_pct") > 0
