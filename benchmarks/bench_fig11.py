"""Figure 11: dynamic workloads (linear growth, periodic sizes).

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig11_dynamic_workloads


def test_fig11_dynamic_workloads(run_experiment):
    result = run_experiment(fig11_dynamic_workloads)
    assert result.scalar("linear_final_gap_median") < result.scalar("linear_initial_gap_median")
