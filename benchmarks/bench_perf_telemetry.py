"""Perf: the telemetry facade's zero-overhead-when-disabled contract.

The observability layer rides inside the optimizer/session hot paths, so
its disabled mode must be free in practice: one branch on the enabled flag
plus a shared no-op singleton.  This bench measures a session-step-shaped
micro-loop three ways — uninstrumented, instrumented-but-disabled, and
instrumented-with-recording — and pins the disabled overhead under 5%
(docs/observability.md).  The measured numbers land in the ``telemetry``
section of ``BENCH_perf.json``.
"""

import time

import numpy as np

from repro import telemetry

N_OUTER = 150
INNER_OPS = 2000          # ~0.15ms of real work per outer iteration
TRIALS = 15
MAX_DISABLED_OVERHEAD = 0.05


def _bare_loop(n):
    acc = 0.0
    for i in range(n):
        for j in range(INNER_OPS):
            acc += (i * 31 + j) % 7
    return acc


def _instrumented_loop(n):
    acc = 0.0
    for i in range(n):
        telemetry.counter("bench.iterations").inc()
        with telemetry.span("bench.step", iteration=i) as sp:
            for j in range(INNER_OPS):
                acc += (i * 31 + j) % 7
            sp.set_attr("acc", acc)
        telemetry.histogram("bench.step_seconds").observe(0.0)
    return acc


def _interleaved_best(fns, trials=TRIALS):
    """Best-of-``trials`` for each fn, with trials interleaved so CPU
    frequency drift and background load hit every contestant equally."""
    best = [float("inf")] * len(fns)
    for _ in range(trials):
        for k, fn in enumerate(fns):
            started = time.perf_counter()
            fn(N_OUTER)
            best[k] = min(best[k], time.perf_counter() - started)
    return best


def test_disabled_telemetry_overhead(perf_results):
    assert not telemetry.enabled(), "bench requires the default disabled state"
    # Warm both paths before timing.
    _bare_loop(N_OUTER)
    _instrumented_loop(N_OUTER)

    bare, disabled = _interleaved_best([_bare_loop, _instrumented_loop])
    with telemetry.capture():
        (enabled,) = _interleaved_best([_instrumented_loop])
        recorded = telemetry.snapshot()["counters"]["bench.iterations"]
    assert recorded == TRIALS * N_OUTER

    disabled_overhead = disabled / bare - 1.0
    enabled_overhead = enabled / bare - 1.0

    # Facade micro-costs, for the record: one no-op counter touch and one
    # no-op span enter/exit pair.
    reps = 200_000
    t0 = time.perf_counter()
    for _ in range(reps):
        telemetry.counter("bench.micro").inc()
    counter_ns = (time.perf_counter() - t0) / reps * 1e9
    t0 = time.perf_counter()
    for _ in range(reps):
        with telemetry.span("bench.micro"):
            pass
    span_ns = (time.perf_counter() - t0) / reps * 1e9

    perf_results["telemetry"] = {
        "outer_iterations": N_OUTER,
        "inner_ops_per_touchpoint": INNER_OPS,
        "bare_seconds": bare,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_overhead_pct": disabled_overhead * 100.0,
        "enabled_overhead_pct": enabled_overhead * 100.0,
        "max_allowed_disabled_overhead_pct": MAX_DISABLED_OVERHEAD * 100.0,
        "noop_counter_ns": counter_ns,
        "noop_span_ns": span_ns,
    }

    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-telemetry overhead {disabled_overhead:.2%} breaches the "
        f"{MAX_DISABLED_OVERHEAD:.0%} contract — the no-op path has grown"
    )


def test_enabled_registry_throughput(perf_results):
    """Recording-mode cost, so a regression in the *enabled* path (which
    tests and dashboards rely on) is also visible in the report."""
    n = 50_000
    with telemetry.capture():
        t0 = time.perf_counter()
        for i in range(n):
            telemetry.counter("bench.ops", kind="counter").inc()
        counter_rate = n / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        for i in range(n):
            telemetry.histogram("bench.lat").observe(float(i % 97))
        histogram_rate = n / (time.perf_counter() - t0)
        summary = telemetry.snapshot()["histograms"]["bench.lat"]
    assert summary["count"] == n
    assert np.isfinite(summary["p99"])
    perf_results.setdefault("telemetry", {}).update({
        "enabled_counter_ops_per_second": counter_rate,
        "enabled_histogram_ops_per_second": histogram_rate,
    })
    # Sanity floor, far below any real machine: recording must not be
    # pathologically slow either.
    assert counter_rate > 50_000
    assert histogram_rate > 50_000
