"""Sec. 4.3 ablation: window size N and overshoot step alpha.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import ablation_window


def test_ablation_window(run_experiment):
    result = run_experiment(ablation_window)
    assert result.scalar("window_10_final_median") < result.scalar("window_2_final_median")
