"""Perf: vectorized batch evaluation vs the scalar cost-model loop.

Times a 512-configuration sweep through ``CostModel.estimate_batch``
against the per-config scalar reference (``estimate_scalar``), on a
shuffle-heavy TPC-DS plan.  The batch path precompiles the plan into flat
operator arrays once (:mod:`repro.sparksim.batch`) and replays the scalar
arithmetic column-wise, so the guard below checks both sides of the
contract: the kernel must be >= 10x faster at N=512 *and* numerically
identical (the sweep would be worthless if vectorization changed the
science).
"""

import os
import time

import numpy as np

from repro.sparksim.batch import clear_plan_arrays_cache, plan_arrays_cache_stats
from repro.sparksim.configs import query_level_space
from repro.sparksim.cost_model import CostModel
from repro.workloads.tpcds import tpcds_plan

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
N_CONFIGS = 512
BATCH_REPEATS = 21 if FULL_MODE else 9
SCALAR_REPEATS = 5 if FULL_MODE else 3
# The ISSUE-level floor; regressions below this fail the bench run.
MIN_SPEEDUP = 10.0


def _median_seconds(fn, repeats):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def test_batch_kernel_speedup(perf_results):
    space = query_level_space()
    plan = tpcds_plan(23, 100.0)
    model = CostModel()
    rng = np.random.default_rng(0)
    vectors = space.latin_hypercube(N_CONFIGS, rng)
    configs = [space.to_dict(v) for v in vectors]

    clear_plan_arrays_cache()

    def scalar_sweep():
        return np.array([
            model.estimate_scalar(plan, config).total_seconds
            for config in configs
        ])

    def batch_sweep():
        return model.estimate_batch(plan, vectors, space=space)

    # Warm both paths (plan-array compilation, layout LRU) before timing.
    scalar_times = scalar_sweep()
    batch_times = batch_sweep()
    scalar_seconds = _median_seconds(scalar_sweep, SCALAR_REPEATS)
    batch_seconds = _median_seconds(batch_sweep, BATCH_REPEATS)
    speedup = scalar_seconds / batch_seconds

    max_rel_err = float(
        np.max(np.abs(batch_times - scalar_times) / np.abs(scalar_times))
    )
    cache = plan_arrays_cache_stats()

    perf_results["batch_kernel"] = {
        "plan": plan.name,
        "n_configs": N_CONFIGS,
        "n_operators": float(len(plan)),
        "scalar_median_seconds": scalar_seconds,
        "batch_median_seconds": batch_seconds,
        "per_config_microseconds": batch_seconds / N_CONFIGS * 1e6,
        "speedup": speedup,
        "max_relative_error": max_rel_err,
        "plan_cache_hits": cache["hits"],
        "plan_cache_misses": cache["misses"],
        "min_speedup_guard": MIN_SPEEDUP,
    }

    # Equivalence first: the kernel replays the scalar arithmetic
    # operation-for-operation, so the tolerance is far below 1e-9.
    assert max_rel_err <= 1e-9, f"batch/scalar diverged: {max_rel_err:.3e}"
    assert speedup >= MIN_SPEEDUP, (
        f"batch kernel regression: only {speedup:.1f}x at N={N_CONFIGS} "
        f"(guard {MIN_SPEEDUP:.0f}x)"
    )
