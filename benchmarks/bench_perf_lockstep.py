"""Perf: the lock-step session engine vs K sequential tuning sessions.

Times a K=256 fleet of guardrailed Centroid Learning sessions on a
shuffle-heavy TPC-DS plan with drifting input sizes — the fig-15-shaped
population the differential oracle
(:func:`repro.verify.diff.diff_lockstep_sequential`) certifies — against
the same fleet driven as 256 independent ``TuningSession`` loops.  The
sequential side pays per-step ``plan.scaled()`` rebuilds under drift and a
per-session guardrail OLS fit; the engine batches both, plus one cost-model
kernel call per step for the whole fleet.

The guard checks both sides of the contract: >= 50x at K=256 *and*
record-for-record bit-identity (a fast fleet that drifted off the
sequential trajectory would be worthless).
"""

import gc
import os
import time

import numpy as np

from repro.core.centroid import CentroidLearning
from repro.core.guardrail import Guardrail
from repro.experiments.lockstep import (
    LockstepSessions,
    SessionSpec,
    run_sequential,
)
from repro.sparksim.configs import query_level_space
from repro.sparksim.executor import SparkSimulator
from repro.sparksim.noise import NoiseModel
from repro.workloads.tpcds import tpcds_plan

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
N_SESSIONS = 256
N_ITERATIONS = 20
LOCKSTEP_REPEATS = 15 if FULL_MODE else 9
SEQUENTIAL_REPEATS = 3 if FULL_MODE else 2
# The ISSUE-level floor; regressions below this fail the bench run.
MIN_SPEEDUP = 50.0


def _best_seconds(fn, repeats, setup=lambda: None):
    # Best-of-N, the `timeit` convention: scheduler noise on a shared box
    # only ever *adds* time, so the minimum is the stable estimator of the
    # intrinsic cost (the lock-step side runs in ~0.1s, where a single
    # preemption would swing a median by double-digit percent).  ``setup``
    # builds each repeat's fresh session population outside the timed
    # region — spec construction is identical on both engines and is not
    # what the guard measures.
    samples = []
    for _ in range(repeats):
        arg = setup()
        t0 = time.perf_counter()
        fn(arg)
        samples.append(time.perf_counter() - t0)
    return float(np.min(samples))


def _fleet(plan):
    """K guardrailed, noisy, drifting sessions sharing one physical plan."""
    space = query_level_space()
    return [
        SessionSpec(
            plan=plan,
            simulator=SparkSimulator(
                noise=NoiseModel(fluctuation_level=0.2, spike_level=0.5),
                seed=101 * k + 7,
            ),
            optimizer=CentroidLearning(
                space,
                guardrail=Guardrail(min_iterations=5, threshold=0.15, patience=2),
                seed=13 * k + 1,
            ),
            scale_fn=lambda t: 1.0 + 0.02 * t,
        )
        for k in range(N_SESSIONS)
    ]


def test_lockstep_engine_speedup(perf_results):
    plan = tpcds_plan(23, 100.0)

    def lockstep_fleet(specs):
        return LockstepSessions(specs).run(N_ITERATIONS)

    def sequential_fleet(specs):
        return run_sequential(specs, N_ITERATIONS)

    # Warm both paths (plan-array compilation, allocator/GC state) before
    # timing; first-call cost is real but not what the guard measures.
    lock_traces = lockstep_fleet(_fleet(plan))
    seq_traces = sequential_fleet(_fleet(plan))
    identical = all(
        lock.records == seq.records
        for lock, seq in zip(lock_traces, seq_traces)
    )
    # Drop the warm-up fleets' ~10k live records and freeze what survives:
    # both engines allocate heavily, so leftover warm-up objects would be
    # rescanned by every gen-2 collection *during* the timed runs, skewing
    # whichever side runs second.
    del lock_traces, seq_traces
    gc.collect()
    gc.freeze()
    lockstep_seconds = _best_seconds(
        lockstep_fleet, LOCKSTEP_REPEATS, setup=lambda: _fleet(plan)
    )
    sequential_seconds = _best_seconds(
        sequential_fleet, SEQUENTIAL_REPEATS, setup=lambda: _fleet(plan)
    )
    speedup = sequential_seconds / lockstep_seconds

    perf_results["lockstep"] = {
        "plan": plan.name,
        "n_sessions": N_SESSIONS,
        "n_iterations": N_ITERATIONS,
        "guardrailed": True,
        "drifting_scales": True,
        "sequential_best_seconds": sequential_seconds,
        "lockstep_best_seconds": lockstep_seconds,
        "per_session_step_microseconds": (
            lockstep_seconds / (N_SESSIONS * N_ITERATIONS) * 1e6
        ),
        "speedup": speedup,
        "bit_identical": identical,
        "min_speedup_guard": MIN_SPEEDUP,
    }

    # Equivalence first: speed without bit-identity is a different engine.
    assert identical, "lock-step records diverged from sequential sessions"
    assert speedup >= MIN_SPEEDUP, (
        f"lock-step engine regression: only {speedup:.1f}x at "
        f"K={N_SESSIONS} (guard {MIN_SPEEDUP:.0f}x)"
    )
