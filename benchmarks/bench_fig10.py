"""Figure 10: Centroid Learning with a real SVR surrogate.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig10_svr_surrogate


def test_fig10_svr_surrogate(run_experiment):
    result = run_experiment(fig10_svr_surrogate)
    assert result.scalar("final_median") < result.scalar("default_value")
