"""Perf: the batched sensitivity sweep, and the knob-pruning payoff.

Two guards back the importance subsystem (``repro.core.importance``):

* **Morris sweep, batched vs. scalar** — the whole OAT + radial-Morris row
  matrix through one ``estimate_batch`` call against the per-row OAT loop
  a sweep without the fused design would write (one ``estimate`` call per
  row).  Bitwise equality against both that loop and the legacy
  ``estimate_scalar`` golden reference is asserted always; the batched
  pass must be >= 20x faster.
* **Pruning payoff** — the ``ablation_knob_pruning`` acceptance bar: BO in
  the ranking's top-4 subspace reaches the full 8-knob space's
  best-by-step-N cost in strictly fewer steps (median over seeds) on at
  least 2 of the 3 TPC-DS workloads.

Results land in the ``importance`` section of ``BENCH_perf.json``.  Set
``REPRO_BENCH_SMOKE=1`` (CI) to shrink the sweep and skip the speedup
guard — exactness and the pruning win-count are still asserted; wall-clock
ratios on a loaded shared runner are not meaningful.
"""

import gc
import os
import time

import numpy as np

from repro.core.importance import build_sweep, rank_knobs
from repro.experiments import ablation_knob_pruning
from repro.sparksim.configs import full_space
from repro.sparksim.cost_model import CostModel
from repro.workloads.tpch import tpch_plan

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
SMOKE_MODE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

N_OAT_POINTS = 17 if SMOKE_MODE else 33
N_TRAJECTORIES = 16 if SMOKE_MODE else 64
BATCH_REPEATS = 15 if FULL_MODE else 7
SCALAR_REPEATS = 2
MIN_SWEEP_SPEEDUP = 20.0
MIN_PRUNED_WINS = 2.0


def _best_seconds(fn, repeats):
    # Best-of-N (timeit convention): scheduler noise only adds time, so the
    # minimum estimates the intrinsic cost.
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.min(samples))


def test_morris_sweep_batched_vs_scalar_loop(perf_results):
    plan = tpch_plan(3)
    space = full_space()
    model = CostModel()
    sweep = build_sweep(
        space, n_oat_points=N_OAT_POINTS, n_trajectories=N_TRAJECTORIES,
        seed=0,
    )
    rows = sweep.rows

    def batched():
        return model.estimate_batch(plan, rows, space=space)

    def scalar_loop():
        return np.array([
            model.estimate(plan, space.to_dict(row)).total_seconds
            for row in rows
        ])

    # Warm both paths and pin exactness: one fused kernel call must price
    # the whole design bitwise like the per-row loop *and* the legacy
    # scalar golden reference.
    batch_costs = batched()
    scalar_costs = scalar_loop()
    golden = np.array([
        model.estimate_scalar(plan, space.to_dict(row)).total_seconds
        for row in rows
    ])
    exact = bool(
        np.array_equal(batch_costs, scalar_costs)
        and np.array_equal(batch_costs, golden)
    )

    gc.collect()
    gc.freeze()
    batch_seconds = _best_seconds(batched, BATCH_REPEATS)
    scalar_seconds = _best_seconds(scalar_loop, SCALAR_REPEATS)
    gc.unfreeze()
    speedup = scalar_seconds / batch_seconds

    perf_results.setdefault("importance", {})["sweep_batch_vs_scalar"] = {
        "n_rows": int(len(rows)),
        "dim": space.dim,
        "n_oat_points": N_OAT_POINTS,
        "n_trajectories": N_TRAJECTORIES,
        "scalar_best_seconds": scalar_seconds,
        "batch_best_seconds": batch_seconds,
        "rows_per_second": len(rows) / batch_seconds,
        "speedup": speedup,
        "bitwise_equal": exact,
        "min_speedup_guard": MIN_SWEEP_SPEEDUP,
        "smoke_mode": SMOKE_MODE,
    }

    assert exact, "batched sweep diverged from the scalar per-row loop"
    if not SMOKE_MODE:
        assert speedup >= MIN_SWEEP_SPEEDUP, (
            f"sweep kernel regression: only {speedup:.1f}x over the scalar "
            f"loop on {len(rows)} rows (guard {MIN_SWEEP_SPEEDUP:.0f}x)"
        )


def test_rank_knobs_wall_clock(perf_results):
    plan = tpch_plan(3)
    space = full_space()

    gc.collect()
    gc.freeze()
    seconds = _best_seconds(
        lambda: rank_knobs(
            plan, space,
            n_oat_points=N_OAT_POINTS, n_trajectories=N_TRAJECTORIES,
        ),
        BATCH_REPEATS,
    )
    gc.unfreeze()

    perf_results.setdefault("importance", {})["rank_knobs"] = {
        "dim": space.dim,
        "n_oat_points": N_OAT_POINTS,
        "n_trajectories": N_TRAJECTORIES,
        "best_seconds": seconds,
        "smoke_mode": SMOKE_MODE,
    }
    # A ranking pass must stay cheap enough to run at every task switch.
    assert seconds < 5.0


def test_knob_pruning_reaches_parity_faster(perf_results):
    result = ablation_knob_pruning.run(quick=not FULL_MODE, seed=0)
    wins = result.scalars["pruned_faster_workloads"]

    section = {
        "n_workloads": result.scalars["n_workloads"],
        "pruned_faster_workloads": wins,
        "top_k": result.scalars["top_k"],
        "n_ref": result.scalars["n_ref"],
        "min_wins_guard": MIN_PRUNED_WINS,
        "full_mode": FULL_MODE,
    }
    for qid in ablation_knob_pruning.DEFAULT_QUERIES:
        section[f"q{qid}_median_steps_pruned"] = result.scalars[
            f"q{qid}_median_steps_pruned"
        ]
    perf_results.setdefault("importance", {})["knob_pruning"] = section

    assert wins >= MIN_PRUNED_WINS, (
        f"knob pruning regression: top-{int(result.scalars['top_k'])} tuning "
        f"beat the full space on only {int(wins)} of "
        f"{int(result.scalars['n_workloads'])} workloads (guard "
        f"{int(MIN_PRUNED_WINS)})"
    )
