"""Extension: the conservative explore-only-while-improving policy under an external regression.

Regenerates the experiment's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale sizes.
"""

from repro.experiments import ext_conservative


def test_ext_conservative(run_experiment):
    result = run_experiment(ext_conservative)
    assert (result.scalar("conservative_exploration_rate_during_regression")
            < result.scalar("plain_exploration_rate_during_regression"))
