"""Figure 13: Centroid Learning vs CBO from a poor starting configuration.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig13_cl_vs_bo


def test_fig13_cl_vs_bo(run_experiment):
    result = run_experiment(fig13_cl_vs_bo)
    assert result.scalar("cl_final_speedup") > result.scalar("cbo_final_speedup")
