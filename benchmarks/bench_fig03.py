"""Figure 3: scripted expert tuning vs Bayesian Optimization.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig03_manual_tuning


def test_fig03_manual_tuning(run_experiment):
    result = run_experiment(fig03_manual_tuning)
    assert result.scalar("bo_faster_at_halfway_count") >= 3
