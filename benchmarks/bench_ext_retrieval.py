"""Extension: zero-execution retrieval warm start vs the baseline model.

Regenerates the experiment's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale sizes.
"""

from repro.experiments import ext_retrieval_warm_start


def test_ext_retrieval_warm_start(run_experiment):
    result = run_experiment(ext_retrieval_warm_start)
    # The ISSUE acceptance bar: first-observation regret on the
    # TPC-DS -> TPC-H transfer no worse than the baseline-model warm start.
    assert result.scalar("tpch_mean_regret_retrieval") <= result.scalar(
        "tpch_mean_regret_baseline"
    )
    # Both warm starts must serve through the backend path and beat defaults.
    assert result.scalar("backend_retrieval_hits") == result.scalar("tpch_targets")
    assert result.scalar("tpch_mean_regret_retrieval") < result.scalar(
        "tpch_mean_regret_default"
    )
