"""Figure 1: execution time vs spark.sql.shuffle.partitions per query.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig01_shuffle_partitions


def test_fig01_shuffle_partitions(run_experiment):
    result = run_experiment(fig01_shuffle_partitions)
    assert result.scalar("n_distinct_optima") >= 2
