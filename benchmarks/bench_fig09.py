"""Figure 9: Centroid Learning with Level 1-9 pseudo-surrogates.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig09_pseudo_surrogates


def test_fig09_pseudo_surrogates(run_experiment):
    result = run_experiment(fig09_pseudo_surrogates)
    assert result.scalar("level_1_final_median") <= result.scalar("level_9_final_median")
