"""Extension: tuning streaming micro-batch workloads with bursty arrivals.

Regenerates the experiment's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale sizes.
"""

from repro.experiments import ext_streaming


def test_ext_streaming(run_experiment):
    result = run_experiment(ext_streaming)
    assert result.scalar("mean_latency_gain_pct") > 0
    assert result.scalar("median_final_partitions") < 200
