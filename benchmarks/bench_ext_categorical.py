"""Extension: mixed continuous+categorical tuning vs continuous-only.

Regenerates the experiment's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale sizes.
"""

from repro.experiments import ext_categorical


def test_ext_categorical(run_experiment):
    result = run_experiment(ext_categorical)
    assert "categorical_extra_gain_pct_points" in result.scalars
