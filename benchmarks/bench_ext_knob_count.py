"""Extension: 3-knob vs 7-knob tuning, time and core-seconds cost.

Regenerates the experiment's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale sizes.
"""

from repro.experiments import ext_knob_count


def test_ext_knob_count(run_experiment):
    result = run_experiment(ext_knob_count)
    assert result.scalar("knobs_7_final_time_gain_pct") >= result.scalar("knobs_3_final_time_gain_pct")
