"""Figure 14: TPC-H production tuning with a TPC-DS-trained baseline.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig14_tpch_production


def test_fig14_tpch_production(run_experiment):
    result = run_experiment(fig14_tpch_production)
    assert result.scalar("total_speedup_pct") > 0
