"""Figure 15: internal-customer notebook speed-up distribution.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig15_internal_customers


def test_fig15_internal_customers(run_experiment):
    result = run_experiment(fig15_internal_customers)
    assert result.scalar("mean_speedup_pct") > 0
