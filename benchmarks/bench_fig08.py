"""Figure 8: the synthetic objective before/after Eq.-8 noise.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig08_synthetic_function


def test_fig08_synthetic_function(run_experiment):
    result = run_experiment(fig08_synthetic_function)
    assert result.scalar("high_noise_mean_inflation") > result.scalar("low_noise_mean_inflation")
