"""Figure 2: BO / FLOW2 convergence under FL=SL=1 noise.

Regenerates the figure's series; see DESIGN.md's per-experiment index.
Run with ``REPRO_BENCH_FULL=1`` for paper-scale replication counts.
"""

from repro.experiments import fig02_noisy_convergence


def test_fig02_noisy_convergence(run_experiment):
    result = run_experiment(fig02_noisy_convergence)
    assert result.scalar("bo_final_median") > result.scalar("optimal_value")
