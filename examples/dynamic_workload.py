"""Dynamic workloads and the guardrail: tuning while the input drifts.

Two scenarios from Sec. 6.1 and Sec. 4.3:

* a recurrent query whose input grows every run (Centroid Learning keeps
  converging because its FIND_BEST/FIND_GRADIENT models carry the data size
  as a feature), and
* a pathological query whose performance regresses for reasons unrelated to
  configuration — the guardrail detects it and reinstates the defaults.

    python examples/dynamic_workload.py
"""

import numpy as np

from repro import (
    CentroidLearning,
    Guardrail,
    NoiseModel,
    Observation,
    SparkSimulator,
    TuningSession,
    query_level_space,
    tpcds_plan,
)
from repro.workloads import LinearGrowth


def growing_input_scenario() -> None:
    print("== scenario 1: input grows 3% per run ==")
    space = query_level_space()
    plan = tpcds_plan(27, 50.0)
    growth = LinearGrowth(initial=1.0, slope=0.03)
    session = TuningSession(
        plan,
        SparkSimulator(noise=NoiseModel(0.3, 0.4), seed=0),
        CentroidLearning(space, seed=0),
        scale_fn=lambda t: growth(t),
    )
    trace = session.run(40)
    normed = trace.normalized_true() * 1e9  # seconds per billion rows
    print(f"  normalized time (s / 1e9 rows): first-5 {normed[:5].mean():.2f} "
          f"-> last-5 {normed[-5:].mean():.2f}")
    print(f"  raw time went {trace.true[0]:.1f}s -> {trace.true[-1]:.1f}s "
          "(input grew, configuration improved)\n")


def guardrail_scenario() -> None:
    print("== scenario 2: pathological query, guardrail enabled ==")
    space = query_level_space()
    guardrail = Guardrail(min_iterations=10, threshold=0.1, patience=2)
    optimizer = CentroidLearning(space, guardrail=guardrail, seed=0)
    rng = np.random.default_rng(0)
    # Config-independent slowdown: +20% per iteration regardless of knobs,
    # comfortably past the guardrail's +10% violation threshold.
    for t in range(30):
        vector = optimizer.suggest(data_size=1e6)
        base = 20.0 * (1.20 ** t)
        observed = base * (1.0 + abs(rng.normal(0, 0.2)))
        optimizer.observe(Observation(
            config=vector, data_size=1e6, performance=observed, iteration=t
        ))
        if not optimizer.tuning_active:
            print(f"  guardrail disabled autotuning at iteration {t}")
            break
    else:
        print("  guardrail never fired (unexpected for this scenario)")
    suggestion = optimizer.suggest(data_size=1e6)
    is_default = np.allclose(suggestion, space.default_vector())
    print(f"  post-disable suggestion is the default configuration: {is_default}")
    print(f"  guardrail checks recorded: {len(guardrail.decisions)}")


def main() -> None:
    growing_input_scenario()
    guardrail_scenario()


if __name__ == "__main__":
    main()
