"""The full production architecture (Fig. 7): backend, client, dashboard.

Simulates a customer's recurring notebook over two application runs:

* the Autotune Client registers with the backend (SAS tokens), infers
  configurations before each query, and streams listener events back;
* the backend's Model Updater trains per-(user, signature) models and the
  App Cache Generator pre-computes app-level knobs with Algorithm 2;
* the Monitoring Dashboard explains what tuning did;
* the Storage Manager's GDPR cleanup purges raw events but keeps models.

    python examples/end_to_end_service.py
"""

import tempfile

from repro import NoiseModel, SparkSimulator, tpcds_plan
from repro.core import AppCache
from repro.service import (
    AutotuneBackend,
    AutotuneClient,
    MonitoringDashboard,
    SasTokenIssuer,
    StorageManager,
)
from repro.sparksim import app_level_space, full_space, query_level_space


def run_application(backend, app_id, plans, sim, seed):
    client = AutotuneClient(
        backend, app_id, "customer-notebook-42", "contoso", query_level_space(),
        seed=seed,
    )
    app_config = client.app_level_config()
    source = "app_cache" if app_config else "defaults"
    app_config = app_config or app_level_space().default_dict()
    print(f"  [{app_id}] app-level config from {source}: "
          f"{int(app_config['spark.executor.instances'])} executors × "
          f"{int(app_config['spark.executor.memory'])} GB")
    for t in range(8):
        for plan in plans:
            config = client.suggest_config(plan)
            event = sim.run_to_event(
                plan, {**app_config, **config},
                app_id=app_id, artifact_id="customer-notebook-42",
                user_id="contoso", iteration=t,
                embedding=client.embedder.embed(plan),
            )
            client.on_query_end(event)
        client.flush_events()
    client.finish_app(app_config=app_config)
    model_backed = sum(1 for s in client.suggestion_log if s.model_available)
    print(f"  [{app_id}] {len(client.suggestion_log)} suggestions, "
          f"{model_backed} backed by a backend-trained model")


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        backend = AutotuneBackend(
            storage=StorageManager(root),
            issuer=SasTokenIssuer("production-secret"),
            query_space=query_level_space(),
            app_space=app_level_space(),
            full_space=full_space(),
            app_cache=AppCache(),
        )
        plans = [tpcds_plan(q, 20.0) for q in (14, 33)]
        sim = SparkSimulator(noise=NoiseModel(0.25, 0.4), seed=7)

        print("== application run 1 (cold start) ==")
        run_application(backend, "app-0001", plans, sim, seed=0)
        print(f"  backend: {backend.models_trained} model updates, "
              f"app_cache entries: {len(backend.app_cache)}")

        print("\n== application run 2 (warm start from app_cache) ==")
        run_application(backend, "app-0002", plans, sim, seed=1)

        print("\n== monitoring dashboard ==")
        dash = MonitoringDashboard(window=4)
        dash.ingest_many(backend.storage.read_artifact_events("customer-notebook-42"))
        for summary in dash.all_summaries():
            print(f"  {summary.query_signature}: {summary.iterations} runs, "
                  f"speed-up {summary.speedup_pct:+.1f}%, "
                  f"trend {summary.trend_slope:+.3f}s/iter")
        print(f"  fleet speed-up: {dash.fleet_speedup_pct():+.1f}%")

        print("\n== GDPR cleanup ==")
        removed = backend.storage.cleanup(ttl_seconds=1e-9)
        sig = plans[0].signature()
        print(f"  purged {len(removed)} event files; "
              f"model for {sig} retained: "
              f"{backend.storage.read_model('contoso', sig) is not None}")
        assert not backend.hub.failures


if __name__ == "__main__":
    main()
