"""Tuning a streaming micro-batch job.

Structured-streaming jobs are the extreme recurrent workload: the same small
plan runs every batch interval over bursty input volumes.  Spark's batch
defaults (200 shuffle partitions) are wildly oversized for a few-MB
micro-batch — per-batch latency is mostly task-scheduling overhead.  This
example tunes one stream with Centroid Learning and shows the partitions
knob collapsing to match the batch volume.

    python examples/streaming_tuning.py
"""

import numpy as np

from repro import CentroidLearning, NoiseModel, SparkSimulator, TuningSession
from repro.sparksim import query_level_space
from repro.workloads import MicroBatchStream


def main() -> None:
    space = query_level_space()
    stream = MicroBatchStream.create(events_per_batch=300_000, seed=4)
    print(f"stream plan: {stream.plan.name} "
          f"(~{stream.plan.total_leaf_cardinality:,.0f} events/batch, bursty)")

    session = TuningSession(
        stream.plan,
        SparkSimulator(noise=NoiseModel(0.2, 0.3), seed=1),
        CentroidLearning(space, alpha=0.08, beta=0.15, seed=0),
        scale_fn=stream.scale,
    )
    trace = session.run(80)

    partitions = np.array([
        r.config["spark.sql.shuffle.partitions"] for r in trace.records
    ])
    # Compare tuned vs default at the *same* batch volumes (burst sizes vary,
    # so first-vs-last windows would be confounded).
    truth = SparkSimulator(noise=None, seed=0)
    default = space.default_dict()
    tail = trace.records[-10:]
    tuned_s = np.array([r.true_seconds for r in tail])
    default_s = np.array([
        truth.true_time(stream.plan, default,
                        data_scale=r.data_size / stream.plan.total_leaf_cardinality)
        for r in tail
    ])
    print(f"\n{'batch':>6} {'volume (events)':>16} {'default (s)':>12} "
          f"{'tuned (s)':>10} {'partitions':>11}")
    for r, d in zip(tail, default_s):
        print(f"{r.iteration:>6} {r.data_size:>16,.0f} {d:>12.3f} "
              f"{r.true_seconds:>10.3f} "
              f"{r.config['spark.sql.shuffle.partitions']:>11.0f}")
    gain = (default_s.sum() / tuned_s.sum() - 1.0) * 100.0
    print(f"\nper-batch latency vs defaults (last 10 batches): {gain:+.1f}% "
          f"(partitions: 200 default -> {partitions[-10:].mean():.0f})")


if __name__ == "__main__":
    main()
