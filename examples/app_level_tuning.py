"""App-level joint optimization (Algorithm 2) with the app_cache.

A Spark application runs three queries.  Query-level knobs can differ per
query, but executors/memory are fixed at startup.  This example:

1. gathers observations over the joint (app × query) space,
2. fits a per-query surrogate and runs Algorithm 2 to pick the app config,
3. stores it in the AppCache keyed by the application's artifact_id, and
4. shows the next submission starting from the cached configuration.

    python examples/app_level_tuning.py
"""

import numpy as np

from repro import AppCache, SparkSimulator, optimize_app_config, tpcds_plan
from repro.core import QueryTuningContext
from repro.core.app_level import AppCacheEntry
from repro.ml import RandomForestRegressor
from repro.sparksim import app_level_space, full_space, low_noise, query_level_space


def main() -> None:
    joint = full_space()
    app_space = app_level_space()
    query_space = query_level_space()
    joint_index = {name: i for i, name in enumerate(joint.names)}
    plans = [tpcds_plan(q, 50.0) for q in (8, 23, 51)]

    rng = np.random.default_rng(0)
    sim = SparkSimulator(noise=low_noise(), seed=1)

    def assemble(v, w):
        full = np.empty(joint.dim)
        for j, name in enumerate(app_space.names):
            full[joint_index[name]] = v[j]
        for j, name in enumerate(query_space.names):
            full[joint_index[name]] = w[j]
        return full

    print("== phase 1: observe each query over the joint space ==")
    contexts = []
    for plan in plans:
        vectors = joint.latin_hypercube(60, rng)
        times = np.array([
            sim.run(plan, joint.to_dict(v)).elapsed_seconds for v in vectors
        ])
        X = np.column_stack([vectors, np.full(len(vectors), plan.total_leaf_cardinality)])
        model = RandomForestRegressor(n_estimators=25, seed=0).fit(X, times)
        best = vectors[int(np.argmin(times))]
        centroid = np.array([best[joint_index[n]] for n in query_space.names])
        p = plan.total_leaf_cardinality

        def score(v, w, _m=model, _p=p):
            row = np.concatenate([assemble(v, w), [_p]])[None, :]
            return -float(_m.predict(row)[0])

        contexts.append(QueryTuningContext(
            query_space=query_space, centroid=centroid, score_fn=score, beta=0.2
        ))
        print(f"  {plan.name}: best observed {times.min():.2f}s over 60 samples")

    print("\n== phase 2: Algorithm 2 picks the shared app config ==")
    best_app = optimize_app_config(
        app_space, app_space.default_vector(), contexts,
        n_app_candidates=20, n_query_candidates=15, beta_app=0.3,
        rng=np.random.default_rng(2),
    )
    chosen = app_space.to_dict(best_app)
    for name, value in chosen.items():
        print(f"  {name} = {value:g} (default {app_space[name].default:g})")

    print("\n== phase 3: cache + reuse for the recurrent artifact ==")
    cache = AppCache()
    cache.put(AppCacheEntry(artifact_id="nightly-etl-notebook", config=chosen,
                            n_queries=len(plans)))
    hit = cache.get("nightly-etl-notebook")
    print(f"  next submission reads app_cache: {hit.config}")

    truth = SparkSimulator(noise=None, seed=0)
    def total(app_vec):
        return sum(
            truth.true_time(plan, joint.to_dict(assemble(app_vec, query_space.default_vector())))
            for plan in plans
        )
    t_default = total(app_space.default_vector())
    t_joint = total(best_app)
    print(f"\n  app total (default app knobs):  {t_default:.2f}s")
    print(f"  app total (Algorithm 2 knobs):  {t_joint:.2f}s "
          f"({(t_default / t_joint - 1) * 100:+.1f}%)")


if __name__ == "__main__":
    main()
