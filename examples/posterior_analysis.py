"""Posterior analysis: replaying production traces for RCA + what-if audits.

After weeks of autotuning, engineers ask three questions of the stored event
logs (Sec. 6.3's monitoring workflow):

1. *What did tuning actually change?* — trajectory replay + knob travel;
2. *What moved performance — knobs, data, or something else?* — root-cause
   correlations;
3. *Would a different guardrail setting have disabled this query?* — what-if
   audits re-running the guardrail over recorded history.

    python examples/posterior_analysis.py
"""

import tempfile

from repro import Guardrail, NoiseModel, SparkSimulator, tpcds_plan
from repro.service import (
    AutotuneBackend,
    AutotuneClient,
    MonitoringDashboard,
    SasTokenIssuer,
    StorageManager,
    audit_guardrail,
    replay_artifact,
)
from repro.sparksim import query_level_space


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        storage = StorageManager(root)
        backend = AutotuneBackend(
            storage=storage, issuer=SasTokenIssuer("secret"),
            query_space=query_level_space(),
        )
        client = AutotuneClient(
            backend, "app-1", "weekly-report", "contoso", query_level_space(),
            seed=0,
        )
        plan = tpcds_plan(35, 50.0)
        sim = SparkSimulator(noise=NoiseModel(0.2, 0.3), seed=4)
        for t in range(25):
            config = client.suggest_config(plan)
            client.on_query_end(sim.run_to_event(
                plan, config, app_id="app-1", artifact_id="weekly-report",
                user_id="contoso", iteration=t,
                embedding=client.embedder.embed(plan),
            ))
            client.flush_events()

        print("== 1. what did tuning change? ==")
        trajectories = replay_artifact(storage, "weekly-report")
        trajectory = trajectories[plan.signature()]
        travel = trajectory.knob_travel(query_level_space())
        for knob, frac in travel.items():
            print(f"  {knob}: moved {frac:+.2f} of its span")
        partitions = trajectory.config_series("spark.sql.shuffle.partitions")
        print(f"  partitions: {partitions[0]:.0f} -> {partitions[-1]:.0f}; "
              f"duration {trajectory.durations[0]:.2f}s -> "
              f"{trajectory.durations[-1]:.2f}s over {len(trajectory)} runs")

        print("\n== 2. root-cause analysis ==")
        dash = MonitoringDashboard(window=4)
        dash.ingest_many(trajectory.events)
        report = dash.explain(plan.signature())
        print(f"  dominant factor: {report.dominant_factor}")
        for knob, rho in report.knob_correlations.items():
            print(f"  {knob}: correlation with residual duration {rho:+.2f}")

        print("\n== 3. guardrail what-if audit ==")
        for label, factory in (
            ("production (30 iters, +20%)", lambda: Guardrail()),
            ("strict (8 iters, +5%)",
             lambda: Guardrail(min_iterations=8, threshold=0.05, patience=2)),
        ):
            audit = audit_guardrail(trajectory, query_level_space(),
                                    guardrail_factory=factory)
            verdict = (f"would disable at iteration {audit.disable_iteration}"
                       if audit.would_disable else "would keep tuning")
            print(f"  {label}: {verdict} "
                  f"({len(audit.decisions)} checks recorded)")


if __name__ == "__main__":
    main()
