"""Quickstart: tune one recurrent Spark query with Centroid Learning.

Runs TPC-H Q3 on the bundled Spark simulator under low production noise,
tuning the three query-level knobs the Fabric deployment tunes, and prints
the per-iteration trace plus the speed-up over Spark's default configuration.

    python examples/quickstart.py
"""

from repro import (
    CentroidLearning,
    SparkSimulator,
    TuningSession,
    WorkloadEmbedder,
    low_noise,
    query_level_space,
    tpch_plan,
)


def main() -> None:
    space = query_level_space()
    plan = tpch_plan(3, scale_factor=10.0)

    session = TuningSession(
        plan=plan,
        simulator=SparkSimulator(noise=low_noise(), seed=0),
        optimizer=CentroidLearning(space, alpha=0.05, beta=0.1, seed=0),
        embedder=WorkloadEmbedder(),
    )

    default_seconds = session.default_true_time()
    print(f"query: {plan.name} (signature {plan.signature()})")
    print(f"default configuration: {default_seconds:.2f}s (noiseless)\n")
    print(f"{'iter':>4} {'observed(s)':>12} {'true(s)':>9}  partitions  maxPartitionMB")

    trace = session.run(40)
    for record in trace.records:
        if record.iteration % 4 == 0 or record.iteration == len(trace) - 1:
            partitions = record.config["spark.sql.shuffle.partitions"]
            mpb = record.config["spark.sql.files.maxPartitionBytes"] / (1 << 20)
            print(
                f"{record.iteration:>4} {record.observed_seconds:>12.2f} "
                f"{record.true_seconds:>9.2f} {partitions:>11.0f} {mpb:>15.1f}"
            )

    print(f"\nbest noiseless time found: {trace.best_true_so_far()[-1]:.2f}s")
    print(f"speed-up vs default (last-5 mean): {trace.speedup_vs(default_seconds):+.1%}")


if __name__ == "__main__":
    main()
