"""Production-style tuning: TPC-DS flighting → baseline model → TPC-H tuning.

Reproduces the Fig.-14 workflow at laptop scale:

1. The offline *flighting pipeline* runs TPC-DS queries under random
   configurations and collects listener events.
2. The Embedding ETL turns the events into a training table; a baseline
   surrogate model is trained on it.
3. Each TPC-H query is tuned online with Centroid Learning, warm-started by
   the baseline model, under production-grade noise.

    python examples/tpch_production_tuning.py
"""

import numpy as np

from repro import (
    BaselineModelTrainer,
    CentroidLearning,
    FlightingConfig,
    FlightingPipeline,
    NoiseModel,
    SparkSimulator,
    TuningSession,
    WorkloadEmbedder,
    query_level_space,
    tpch_plan,
)
from repro.core import BaselineModelAdapter, SurrogateSelector, default_window_model_factory
from repro.offline import build_training_table


def main() -> None:
    space = query_level_space()
    embedder = WorkloadEmbedder()

    print("== offline phase: flighting TPC-DS ==")
    flight = FlightingPipeline(
        FlightingConfig(
            benchmark="tpcds",
            query_ids=[1, 3, 7, 12, 19, 25],
            scale_factors=[10.0, 100.0],
            n_configs=8,
            seed=0,
        ),
        space=space,
        embedder=embedder,
    )
    events = flight.execute()
    table = build_training_table(events, space)
    print(f"collected {len(events)} benchmark executions "
          f"({table.feature_dim}-dim feature rows)")
    baseline = BaselineModelTrainer().train(table)
    adapter = BaselineModelAdapter(baseline, embedder.dim)

    print("\n== online phase: tuning TPC-H (SF=100) under noise ==")
    noise = NoiseModel(fluctuation_level=0.4, spike_level=0.6)
    gains = []
    for k, qid in enumerate((1, 3, 5, 6, 10, 18)):
        plan = tpch_plan(qid, 100.0)
        selector = SurrogateSelector(
            default_window_model_factory, baseline=adapter, min_observations=4
        )
        session = TuningSession(
            plan,
            SparkSimulator(noise=noise, seed=10 + k),
            CentroidLearning(space, selector=selector, seed=k),
            embedder=embedder,
        )
        trace = session.run(30)
        first = float(trace.true[:5].mean())
        last = float(trace.true[-5:].mean())
        gain = (first / last - 1.0) * 100.0
        gains.append(gain)
        print(f"  tpch_q{qid:02d}: {first:8.1f}s -> {last:8.1f}s  ({gain:+5.1f}%)")

    print(f"\nmean per-query gain: {np.mean(gains):+.1f}% "
          f"(queries >10%: {sum(g > 10 for g in gains)}/{len(gains)})")


if __name__ == "__main__":
    main()
