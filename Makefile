PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test chaos telemetry retrieval service verify drift stages coverage bench bench-perf bench-telemetry bench-retrieval bench-service bench-importance all

test:            ## fast tier-1 suite (chaos/verify deselected)
	$(PYTEST) -x -q

chaos:           ## fault-injection suite (docs/resilience.md)
	$(PYTEST) -m chaos -q

telemetry:       ## observability-layer suite (docs/observability.md)
	$(PYTEST) -m telemetry -q

retrieval:       ## ANN retrieval / warm-start suite (docs/performance.md)
	$(PYTEST) -m retrieval -q

service:         ## sharded multi-tenant service suite (docs/service.md)
	$(PYTEST) -m service -q

verify:          ## invariant + property + differential suites (docs/testing.md)
	$(PYTEST) -m verify -q

drift:           ## task-switch / adversarial-drift battery (docs/testing.md)
	$(PYTEST) -m "drift or chaos" -q tests/verify/test_switch_properties.py tests/verify/test_switch_oracle.py tests/faults/test_switch_chaos.py tests/experiments/test_ext_drift.py

stages:          ## knob-importance / stage-scoped tuning battery (docs/testing.md)
	$(PYTEST) -m "stages or chaos" -q tests/sparksim/test_stage_battery.py tests/verify/test_pruned_oracle.py tests/verify/test_pruned_lockstep.py tests/verify/test_properties_importance.py tests/faults/test_importance_chaos.py tests/experiments/test_stage_experiments.py

coverage:        ## line-coverage summary for src/repro (stdlib tracer; slow)
	PYTHONPATH=src python tools/line_coverage.py $(COVERAGE_ARGS)

bench:           ## pytest-benchmark harness
	$(PYTEST) benchmarks/ --benchmark-only

bench-perf:      ## perf micro-benchmarks + regression guards -> BENCH_perf.json
	$(PYTEST) benchmarks/bench_perf_gp_update.py benchmarks/bench_perf_scoring.py benchmarks/bench_perf_batch.py benchmarks/bench_perf_parallel.py benchmarks/bench_perf_telemetry.py benchmarks/bench_perf_retrieval.py -q

bench-telemetry: ## telemetry overhead bench -> telemetry section of BENCH_perf.json
	$(PYTEST) benchmarks/bench_perf_telemetry.py -q

bench-retrieval: ## ANN index bench (full scale) -> retrieval section of BENCH_perf.json
	$(PYTEST) benchmarks/bench_perf_retrieval.py -q

bench-service:   ## fleet-scale service bench (full scale) -> BENCH_service.json
	REPRO_BENCH_FULL=1 $(PYTEST) benchmarks/bench_perf_service.py -q

bench-importance: ## sensitivity-sweep + pruning benches -> importance section of BENCH_perf.json
	$(PYTEST) benchmarks/bench_perf_importance.py -q

all: test chaos telemetry service verify
