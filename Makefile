PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test chaos telemetry bench bench-perf bench-telemetry all

test:            ## fast tier-1 suite (chaos deselected)
	$(PYTEST) -x -q

chaos:           ## fault-injection suite (docs/resilience.md)
	$(PYTEST) -m chaos -q

telemetry:       ## observability-layer suite (docs/observability.md)
	$(PYTEST) -m telemetry -q

bench:           ## pytest-benchmark harness
	$(PYTEST) benchmarks/ --benchmark-only

bench-perf:      ## perf micro-benchmarks + regression guards -> BENCH_perf.json
	$(PYTEST) benchmarks/bench_perf_gp_update.py benchmarks/bench_perf_scoring.py benchmarks/bench_perf_batch.py benchmarks/bench_perf_parallel.py benchmarks/bench_perf_telemetry.py -q

bench-telemetry: ## telemetry overhead bench -> telemetry section of BENCH_perf.json
	$(PYTEST) benchmarks/bench_perf_telemetry.py -q

all: test chaos telemetry
