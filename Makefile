PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test chaos bench all

test:            ## fast tier-1 suite (chaos deselected)
	$(PYTEST) -x -q

chaos:           ## fault-injection suite (docs/resilience.md)
	$(PYTEST) -m chaos -q

bench:           ## pytest-benchmark harness
	$(PYTEST) benchmarks/ --benchmark-only

all: test chaos
