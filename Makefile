PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test chaos bench bench-perf all

test:            ## fast tier-1 suite (chaos deselected)
	$(PYTEST) -x -q

chaos:           ## fault-injection suite (docs/resilience.md)
	$(PYTEST) -m chaos -q

bench:           ## pytest-benchmark harness
	$(PYTEST) benchmarks/ --benchmark-only

bench-perf:      ## perf micro-benchmarks + regression guards -> BENCH_perf.json
	$(PYTEST) benchmarks/bench_perf_gp_update.py benchmarks/bench_perf_scoring.py benchmarks/bench_perf_parallel.py -q

all: test chaos
