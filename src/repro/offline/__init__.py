"""Offline phase: flighting pipeline, embedding ETL, baseline models,
and transfer learning (Sec. 4.2)."""

from .baseline import BaselineModelTrainer, default_baseline_model_factory
from .etl import TrainingTable, build_training_table, filter_events, group_by_signature
from .flighting import FlightingConfig, FlightingPipeline
from .similarity import embedding_distances, nearest_signatures, select_similar
from .transfer import FineTunedSurrogate, warm_start_cbo

__all__ = [
    "BaselineModelTrainer",
    "FineTunedSurrogate",
    "FlightingConfig",
    "FlightingPipeline",
    "TrainingTable",
    "build_training_table",
    "default_baseline_model_factory",
    "embedding_distances",
    "filter_events",
    "group_by_signature",
    "nearest_signatures",
    "select_similar",
    "warm_start_cbo",
]
