"""Workload-similarity selection for warm starts.

Rover (cited in Sec. 7) transfers knowledge using *workload similarity
metrics*; the same idea composes with Rockhopper's embeddings: rather than
warm-starting from the whole benchmark table, keep only the rows whose
query embeddings are closest to the target workload's.  With Fig.-12's
adaptability mechanism in mind, fewer-but-relevant rows beat
more-but-diluting ones.

All distance kernels here are single NumPy broadcasts and accept either one
target embedding ``(d,)`` or a batch ``(q, d)``.  The batched result is
**bitwise identical** to stacking single-target calls: reductions go
through ``np.einsum``, whose summation order along the feature axis does
not depend on how many targets ride in the batch (BLAS ``dgemm`` would be
faster but reassociates, so a fleet-sized batch would not reproduce the
per-query path bit-for-bit — the ANN index in :mod:`repro.retrieval` makes
the opposite trade and is checked against this kernel by a differential
oracle instead).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .etl import TrainingTable

__all__ = ["embedding_distances", "select_similar", "nearest_signatures"]

_EPS = 1e-12


def _distance_kernel(
    embeddings: np.ndarray, targets: np.ndarray, metric: str
) -> np.ndarray:
    """``(q, n)`` distances from each target row to each corpus row."""
    if metric == "euclidean":
        return np.linalg.norm(embeddings[None, :, :] - targets[:, None, :], axis=2)
    if metric == "cosine":
        dots = np.einsum("nd,qd->qn", embeddings, targets)
        norms = np.einsum("nd,nd->n", embeddings, embeddings)
        np.sqrt(norms, out=norms)
        target_norms = np.sqrt(np.einsum("qd,qd->q", targets, targets))
        scale = np.maximum(norms[None, :] * target_norms[:, None], _EPS)
        return 1.0 - dots / scale
    raise ValueError(f"unknown metric {metric!r}")


def embedding_distances(
    table: TrainingTable, target_embedding: np.ndarray, metric: str = "cosine"
) -> np.ndarray:
    """Distance from each table row's embedding to the target(s).

    Args:
        table: an Eq.-2 training table (embedding columns lead each row).
        target_embedding: one target embedding ``(d,)`` — returns ``(n,)``
            — or a batch ``(q, d)`` — returns ``(q, n)``.  The batch is
            bitwise-equal to stacking the single-target results.
        metric: ``"cosine"`` (1 − cosine similarity) or ``"euclidean"``.
    """
    target = np.asarray(target_embedding, dtype=float)
    single = target.ndim == 1
    targets = target[None, :] if single else target
    if targets.ndim != 2 or targets.shape[1] != table.embedding_dim:
        raise ValueError(
            f"target embedding has shape {target.shape}, "
            f"expected ({table.embedding_dim},) or (q, {table.embedding_dim})"
        )
    embeddings = table.X[:, : table.embedding_dim]
    distances = _distance_kernel(embeddings, targets, metric)
    return distances[0] if single else distances


def select_similar(
    table: TrainingTable,
    target_embedding: np.ndarray,
    n_rows: int,
    metric: str = "cosine",
) -> TrainingTable:
    """The ``n_rows`` training rows most similar to the target workload."""
    if n_rows < 1:
        raise ValueError("n_rows must be >= 1")
    distances = embedding_distances(table, target_embedding, metric)
    if distances.ndim != 1:
        raise ValueError("select_similar takes a single target embedding")
    order = np.argsort(distances, kind="stable")[: min(n_rows, len(table))]
    idx = np.sort(order)
    return TrainingTable(
        X=table.X[idx],
        y=table.y[idx],
        embedding_dim=table.embedding_dim,
        config_dim=table.config_dim,
        signatures=[table.signatures[i] for i in idx],
        regions=[table.regions[i] for i in idx],
    )


def nearest_signatures(
    table: TrainingTable,
    target_embedding: np.ndarray,
    k: int = 3,
    metric: str = "cosine",
) -> List[Tuple[str, float]]:
    """The ``k`` most similar query signatures with their mean distances.

    Per-signature means are accumulated with one unbuffered ``np.add.at``
    scatter in row order — bitwise-equal to the per-row Python loop this
    replaced — and ties on the mean distance are broken by the signature
    string itself (stable secondary key), so the ranking is reproducible
    across platforms and dict-iteration orders.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    distances = embedding_distances(table, target_embedding, metric)
    if distances.ndim != 1:
        raise ValueError("nearest_signatures takes a single target embedding")
    # First-appearance order of each signature, matching the historical
    # dict-insertion grouping (np.unique would sort, changing group ids).
    sig_index: dict = {}
    codes = np.empty(len(table.signatures), dtype=np.intp)
    for i, sig in enumerate(table.signatures):
        code = sig_index.get(sig)
        if code is None:
            code = len(sig_index)
            sig_index[sig] = code
        codes[i] = code
    sums = np.zeros(len(sig_index))
    counts = np.zeros(len(sig_index))
    np.add.at(sums, codes, distances)
    np.add.at(counts, codes, 1.0)
    signatures = list(sig_index)
    means = sums / counts
    order = sorted(range(len(signatures)), key=lambda i: (means[i], signatures[i]))
    return [(signatures[i], float(means[i])) for i in order[:k]]
