"""Workload-similarity selection for warm starts.

Rover (cited in Sec. 7) transfers knowledge using *workload similarity
metrics*; the same idea composes with Rockhopper's embeddings: rather than
warm-starting from the whole benchmark table, keep only the rows whose
query embeddings are closest to the target workload's.  With Fig.-12's
adaptability mechanism in mind, fewer-but-relevant rows beat
more-but-diluting ones.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .etl import TrainingTable

__all__ = ["embedding_distances", "select_similar", "nearest_signatures"]


def embedding_distances(
    table: TrainingTable, target_embedding: np.ndarray, metric: str = "cosine"
) -> np.ndarray:
    """Distance from each table row's embedding to the target.

    Args:
        table: an Eq.-2 training table (embedding columns lead each row).
        target_embedding: the target workload's embedding vector.
        metric: ``"cosine"`` (1 − cosine similarity) or ``"euclidean"``.
    """
    target = np.asarray(target_embedding, dtype=float)
    if target.shape != (table.embedding_dim,):
        raise ValueError(
            f"target embedding has shape {target.shape}, "
            f"expected ({table.embedding_dim},)"
        )
    embeddings = table.X[:, : table.embedding_dim]
    if metric == "euclidean":
        return np.linalg.norm(embeddings - target, axis=1)
    if metric == "cosine":
        norms = np.linalg.norm(embeddings, axis=1) * np.linalg.norm(target)
        norms = np.maximum(norms, 1e-12)
        return 1.0 - (embeddings @ target) / norms
    raise ValueError(f"unknown metric {metric!r}")


def select_similar(
    table: TrainingTable,
    target_embedding: np.ndarray,
    n_rows: int,
    metric: str = "cosine",
) -> TrainingTable:
    """The ``n_rows`` training rows most similar to the target workload."""
    if n_rows < 1:
        raise ValueError("n_rows must be >= 1")
    distances = embedding_distances(table, target_embedding, metric)
    order = np.argsort(distances, kind="stable")[: min(n_rows, len(table))]
    idx = np.sort(order)
    return TrainingTable(
        X=table.X[idx],
        y=table.y[idx],
        embedding_dim=table.embedding_dim,
        config_dim=table.config_dim,
        signatures=[table.signatures[i] for i in idx],
        regions=[table.regions[i] for i in idx],
    )


def nearest_signatures(
    table: TrainingTable,
    target_embedding: np.ndarray,
    k: int = 3,
    metric: str = "cosine",
) -> List[Tuple[str, float]]:
    """The ``k`` most similar query signatures with their mean distances."""
    if k < 1:
        raise ValueError("k must be >= 1")
    distances = embedding_distances(table, target_embedding, metric)
    per_sig: dict = {}
    counts: dict = {}
    for sig, dist in zip(table.signatures, distances):
        per_sig[sig] = per_sig.get(sig, 0.0) + float(dist)
        counts[sig] = counts.get(sig, 0) + 1
    means = [(sig, per_sig[sig] / counts[sig]) for sig in per_sig]
    means.sort(key=lambda item: item[1])
    return means[:k]
