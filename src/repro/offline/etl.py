"""Embedding ETL: listener events → model training tables.

The backend's "Embedding ETL ... processes Spark job logs" (Sec. 5) into the
feature layout the surrogate models consume (Eq. 2):

    row = [workload embedding | config (internal axes) | data size] → duration

Privacy rule (Sec. 4.2): "Models are trained exclusively with baseline data
and query traces originating from the same user and query signature" —
enforced by the filter helpers here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.config_space import ConfigSpace
from ..sparksim.events import QueryEndEvent

__all__ = ["TrainingTable", "build_training_table", "filter_events", "group_by_signature"]


@dataclass
class TrainingTable:
    """A dense training set plus its provenance."""

    X: np.ndarray              # (n, embedding_dim + config_dim + 1)
    y: np.ndarray              # (n,) durations in seconds
    embedding_dim: int
    config_dim: int
    signatures: List[str]
    regions: List[str]

    def __len__(self) -> int:
        return len(self.y)

    @property
    def feature_dim(self) -> int:
        return self.embedding_dim + self.config_dim + 1

    def subsample(self, n: int, rng: np.random.Generator) -> "TrainingTable":
        """Random subsample of ``n`` rows (the Fig.-12 sample-size knob)."""
        if n >= len(self):
            return self
        idx = rng.choice(len(self), size=n, replace=False)
        return TrainingTable(
            X=self.X[idx],
            y=self.y[idx],
            embedding_dim=self.embedding_dim,
            config_dim=self.config_dim,
            signatures=[self.signatures[i] for i in idx],
            regions=[self.regions[i] for i in idx],
        )

    def exclude_signature(self, signature: str) -> "TrainingTable":
        """Leave-one-query-out: drop all rows of one query signature."""
        keep = [i for i, s in enumerate(self.signatures) if s != signature]
        return TrainingTable(
            X=self.X[keep],
            y=self.y[keep],
            embedding_dim=self.embedding_dim,
            config_dim=self.config_dim,
            signatures=[self.signatures[i] for i in keep],
            regions=[self.regions[i] for i in keep],
        )

    def concat(self, other: "TrainingTable") -> "TrainingTable":
        if (self.embedding_dim, self.config_dim) != (other.embedding_dim, other.config_dim):
            raise ValueError("incompatible training tables")
        return TrainingTable(
            X=np.vstack([self.X, other.X]),
            y=np.concatenate([self.y, other.y]),
            embedding_dim=self.embedding_dim,
            config_dim=self.config_dim,
            signatures=self.signatures + other.signatures,
            regions=self.regions + other.regions,
        )


def filter_events(
    events: Iterable[QueryEndEvent],
    user_id: Optional[str] = None,
    query_signature: Optional[str] = None,
    region: Optional[str] = None,
) -> List[QueryEndEvent]:
    """Apply the privacy filters before any model training."""
    out = []
    for e in events:
        if user_id is not None and e.user_id != user_id:
            continue
        if query_signature is not None and e.query_signature != query_signature:
            continue
        if region is not None and e.region != region:
            continue
        out.append(e)
    return out


def group_by_signature(
    events: Iterable[QueryEndEvent],
) -> Dict[str, List[QueryEndEvent]]:
    """Bucket events per query signature (per-query models)."""
    groups: Dict[str, List[QueryEndEvent]] = {}
    for e in events:
        groups.setdefault(e.query_signature, []).append(e)
    return groups


def build_training_table(
    events: Sequence[QueryEndEvent],
    space: ConfigSpace,
    embedding_dim: Optional[int] = None,
) -> TrainingTable:
    """Turn events into the Eq.-2 feature layout.

    Args:
        events: listener events (must all carry embeddings of one length).
        space: the configuration space the events' configs live in.
        embedding_dim: expected embedding length (inferred from the first
            event when omitted; events with mismatched lengths raise).
    """
    events = list(events)
    if not events:
        raise ValueError("no events to build a training table from")
    if embedding_dim is None:
        embedding_dim = len(events[0].embedding)
    rows, targets, signatures, regions = [], [], [], []
    for e in events:
        if len(e.embedding) != embedding_dim:
            raise ValueError(
                f"event {e.app_id} has embedding length {len(e.embedding)}, "
                f"expected {embedding_dim}"
            )
        config_vec = space.to_vector(e.config)
        rows.append(np.concatenate([e.embedding, config_vec, [e.data_size]]))
        targets.append(e.duration_seconds)
        signatures.append(e.query_signature)
        regions.append(e.region)
    return TrainingTable(
        X=np.array(rows),
        y=np.array(targets),
        embedding_dim=embedding_dim,
        config_dim=space.dim,
        signatures=signatures,
        regions=regions,
    )
