"""Transfer learning: warm-starting online tuning from benchmark data.

Sec. 4.2: "At the beginning of the tuning phase, the surrogate model is
fine-tuned for the specific query signature, leveraging both query-specific
observations and benchmark workload data."  Two mechanisms are provided:

* :func:`warm_start_cbo` — builds a Contextual BO optimizer seeded with the
  benchmark training table (the Fig.-12 experiment).
* :class:`FineTunedSurrogate` — a regressor that mixes benchmark rows with
  (up-weighted) query-specific rows; up-weighting is implemented by row
  replication since the from-scratch learners take no sample weights.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.config_space import ConfigSpace
from ..ml.base import Regressor, check_X, check_X_y
from ..optimizers.contextual_bo import ContextualBayesianOptimization
from .baseline import default_baseline_model_factory
from .etl import TrainingTable

__all__ = ["warm_start_cbo", "FineTunedSurrogate"]


def warm_start_cbo(
    space: ConfigSpace,
    table: TrainingTable,
    n_samples: Optional[int] = None,
    model_factory: Optional[Callable[[], Regressor]] = None,
    seed: Optional[int] = None,
    neighbors: Optional[Sequence] = None,
    **cbo_kwargs,
) -> ContextualBayesianOptimization:
    """Contextual BO warm-started with ``n_samples`` benchmark rows.

    Fig. 12 trains the baseline on 100 / 500 / 1000 random samples drawn from
    all queries except the optimization target; pass the leave-one-out table
    (see :meth:`TrainingTable.exclude_signature`) and the sample budget here.

    ``neighbors`` — retrieved tuned histories
    (:class:`repro.retrieval.RetrievedNeighbor`) — are appended as extra
    prior rows *after* subsampling, so the ANN warm start is never
    subsampled away: each neighbor's tuned configuration enters the
    surrogate as a known-good (embedding, config, cost) observation.
    """
    rng = np.random.default_rng(seed)
    if n_samples is not None:
        table = table.subsample(n_samples, rng)
    if neighbors:
        from ..retrieval.corpus import neighbors_table

        table = table.concat(neighbors_table(list(neighbors), space))
    return ContextualBayesianOptimization(
        space=space,
        embedding_dim=table.embedding_dim,
        warm_start=(table.X, table.y),
        model_factory=model_factory,
        seed=seed,
        **cbo_kwargs,
    )


class FineTunedSurrogate:
    """Benchmark-plus-query surrogate with query-row up-weighting.

    Args:
        base_X, base_y: benchmark training data (Eq.-2 layout).
        model_factory: underlying learner.
        query_weight: replication factor of query-specific rows — the more
            query observations accumulate, the more they dominate the fit.
    """

    def __init__(
        self,
        base_X: np.ndarray,
        base_y: np.ndarray,
        model_factory: Optional[Callable[[], Regressor]] = None,
        query_weight: int = 5,
    ):
        if query_weight < 1:
            raise ValueError("query_weight must be >= 1")
        self._base_X, self._base_y = check_X_y(base_X, base_y)
        self.model_factory = model_factory or default_baseline_model_factory
        self.query_weight = query_weight
        self._model: Optional[Regressor] = None
        self._n_query_rows = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "FineTunedSurrogate":
        """Fit on benchmark data plus the query-specific rows ``(X, y)``.

        Passing empty arrays fits the pure baseline.
        """
        y = np.asarray(y, dtype=float).ravel()
        if len(y) > 0:
            X = check_X(X)
            if X.shape[1] != self._base_X.shape[1]:
                raise ValueError(
                    f"query rows have {X.shape[1]} features, "
                    f"baseline has {self._base_X.shape[1]}"
                )
            reps = [X] * self.query_weight
            rep_y = [y] * self.query_weight
            full_X = np.vstack([self._base_X] + reps)
            full_y = np.concatenate([self._base_y] + rep_y)
        else:
            full_X, full_y = self._base_X, self._base_y
        model = self.model_factory()
        model.fit(full_X, full_y)
        self._model = model
        self._n_query_rows = len(y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._model is None:
            # Lazy baseline fit on first use.
            self.fit(np.empty((0, self._base_X.shape[1])), np.empty(0))
        return self._model.predict(X)

    @property
    def n_query_rows(self) -> int:
        return self._n_query_rows
