"""The flighting pipeline (Sec. 4.2): offline benchmark experimentation.

"The flighting pipeline operates based on a configuration file that
specifies essential parameters, including the benchmark database (e.g.,
TPC-DS, TPC-H), query name, scaling factor, number of runs, pool ID (linked
to node configurations), and the Spark configuration generation algorithm
(currently set to 'Random')."  The pipeline executes the benchmark on the
simulator and emits the listener events the ETL turns into training data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..core.config_space import ConfigSpace
from ..embedding.embedder import WorkloadEmbedder
from ..sparksim.cluster import STANDARD_POOLS
from ..sparksim.configs import query_level_space
from ..sparksim.events import QueryEndEvent
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import NoiseModel, low_noise
from ..workloads.tpcds import TPCDS_QUERY_IDS, tpcds_plan
from ..workloads.tpch import TPCH_QUERY_IDS, tpch_plan

__all__ = ["FlightingConfig", "FlightingPipeline"]

_BENCHMARKS = {"tpcds": (tpcds_plan, TPCDS_QUERY_IDS), "tpch": (tpch_plan, TPCH_QUERY_IDS)}


@dataclass
class FlightingConfig:
    """Declarative flighting run description (the 'configuration file').

    Attributes:
        benchmark: ``"tpcds"`` or ``"tpch"``.
        query_ids: queries to run (``None`` = the whole suite).
        scale_factors: benchmark scale factors to sweep.
        n_configs: configurations sampled per (query, scale factor).
        runs_per_config: repeated executions per configuration.
        pool_id: which standard pool to run on.
        config_generation: ``"random"`` or ``"lhs"`` (Latin hypercube).
        region: tag stamped on the emitted events.
        seed: RNG seed.
    """

    benchmark: str = "tpcds"
    query_ids: Optional[List[int]] = None
    scale_factors: List[float] = field(default_factory=lambda: [1.0])
    n_configs: int = 10
    runs_per_config: int = 1
    pool_id: str = "pool-large"
    config_generation: str = "random"
    region: str = "default"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.benchmark not in _BENCHMARKS:
            raise ValueError(f"unknown benchmark {self.benchmark!r} (tpcds/tpch)")
        if self.pool_id not in STANDARD_POOLS:
            raise ValueError(f"unknown pool {self.pool_id!r}")
        if self.config_generation not in ("random", "lhs"):
            raise ValueError("config_generation must be 'random' or 'lhs'")
        if self.n_configs < 1 or self.runs_per_config < 1:
            raise ValueError("n_configs and runs_per_config must be >= 1")
        if not self.scale_factors:
            raise ValueError("scale_factors must be non-empty")

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FlightingConfig":
        """Load from a JSON configuration file."""
        payload = json.loads(Path(path).read_text())
        return cls(**payload)

    def to_file(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "benchmark": self.benchmark,
            "query_ids": self.query_ids,
            "scale_factors": self.scale_factors,
            "n_configs": self.n_configs,
            "runs_per_config": self.runs_per_config,
            "pool_id": self.pool_id,
            "config_generation": self.config_generation,
            "region": self.region,
            "seed": self.seed,
        }
        path.write_text(json.dumps(payload, indent=2))
        return path


class FlightingPipeline:
    """Executes a :class:`FlightingConfig` against the simulator.

    Args:
        config: the run description.
        space: configuration space to sample (default: the three production
            query-level knobs).
        embedder: workload embedder attached to every event.
        noise: execution noise — flighting runs on controlled clusters, so
            the default is the low-noise regime.
    """

    def __init__(
        self,
        config: FlightingConfig,
        space: Optional[ConfigSpace] = None,
        embedder: Optional[WorkloadEmbedder] = None,
        noise: Optional[NoiseModel] = None,
    ):
        self.config = config
        self.space = space or query_level_space()
        self.embedder = embedder or WorkloadEmbedder()
        pool = STANDARD_POOLS[config.pool_id]
        self.simulator = SparkSimulator(
            pool=pool,
            noise=noise if noise is not None else low_noise(),
            seed=config.seed,
        )
        self._rng = np.random.default_rng(config.seed)

    def _sample_configs(self, n: int) -> np.ndarray:
        if self.config.config_generation == "lhs":
            return self.space.latin_hypercube(n, self._rng)
        return self.space.sample_vectors(n, self._rng)

    def execute(self) -> List[QueryEndEvent]:
        """Run the full sweep; returns one event per execution."""
        plan_fn, all_ids = _BENCHMARKS[self.config.benchmark]
        query_ids = self.config.query_ids or list(all_ids)
        events: List[QueryEndEvent] = []
        for sf in self.config.scale_factors:
            for qid in query_ids:
                plan = plan_fn(qid, sf)
                embedding = self.embedder.embed(plan)
                vectors = self._sample_configs(self.config.n_configs)
                for k, vector in enumerate(vectors):
                    config_dict = self.space.to_dict(vector)
                    for run in range(self.config.runs_per_config):
                        events.append(
                            self.simulator.run_to_event(
                                plan,
                                config_dict,
                                app_id=f"flight-{self.config.benchmark}-sf{sf}-q{qid}-{k}-{run}",
                                artifact_id=f"flight-{self.config.benchmark}-q{qid}",
                                user_id="flighting",
                                iteration=run,
                                data_scale=1.0,
                                embedding=embedding,
                                region=self.config.region,
                            )
                        )
        return events
