"""Baseline model training (Sec. 4.2).

"For each region, we develop a baseline surrogate model using execution
traces" from the flighting pipeline.  The baseline predicts duration from
``[embedding, config, data_size]`` and provides the iteration-0 warm start
for every customer query in that region.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Optional, Union


from ..ml.base import Regressor
from ..ml.boosting import GradientBoostingRegressor
from ..ml.serialize import load_model, save_model
from .etl import TrainingTable

__all__ = ["BaselineModelTrainer", "default_baseline_model_factory"]


def default_baseline_model_factory() -> Regressor:
    """Boosted trees — the workhorse learner for tabular benchmark traces."""
    return GradientBoostingRegressor(
        n_estimators=80, learning_rate=0.1, max_depth=4, min_samples_leaf=3, seed=0
    )


class BaselineModelTrainer:
    """Trains, stores, and loads per-region baseline models.

    Args:
        model_factory: constructor of the regression model.
        model_dir: optional directory for persisted models (one file per
            region) — the backend/client split ships these files.
    """

    def __init__(
        self,
        model_factory: Optional[Callable[[], Regressor]] = None,
        model_dir: Optional[Union[str, Path]] = None,
    ):
        self.model_factory = model_factory or default_baseline_model_factory
        self.model_dir = Path(model_dir) if model_dir is not None else None
        self.models: Dict[str, Regressor] = {}

    def train(self, table: TrainingTable, region: str = "default") -> Regressor:
        """Train one region's baseline model from a training table."""
        if len(table) < 5:
            raise ValueError(f"too few rows ({len(table)}) to train a baseline model")
        model = self.model_factory()
        model.fit(table.X, table.y)
        self.models[region] = model
        if self.model_dir is not None:
            save_model(model, self._model_path(region))
        return model

    def train_per_region(self, table: TrainingTable) -> Dict[str, Regressor]:
        """Split the table by region and train one model each."""
        regions = sorted(set(table.regions))
        out: Dict[str, Regressor] = {}
        for region in regions:
            keep = [i for i, r in enumerate(table.regions) if r == region]
            sub = TrainingTable(
                X=table.X[keep],
                y=table.y[keep],
                embedding_dim=table.embedding_dim,
                config_dim=table.config_dim,
                signatures=[table.signatures[i] for i in keep],
                regions=[table.regions[i] for i in keep],
            )
            out[region] = self.train(sub, region)
        return out

    def get(self, region: str = "default") -> Regressor:
        """Return the region's model, loading from disk if needed."""
        if region in self.models:
            return self.models[region]
        if self.model_dir is not None:
            path = self._model_path(region)
            if path.exists():
                model = load_model(path)
                self.models[region] = model
                return model
        raise KeyError(f"no baseline model for region {region!r}")

    def _model_path(self, region: str) -> Path:
        assert self.model_dir is not None
        return self.model_dir / f"baseline-{region}.json"
