"""Run the offline phase from the command line.

    python -m repro.offline flight.json --events events.jsonl --model baseline.json

Executes the flighting pipeline described by the JSON configuration file
(Sec. 4.2), optionally writes the collected listener events as JSON-lines,
and optionally trains + saves a baseline model from them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..ml.serialize import save_model
from ..sparksim.events import events_to_jsonl
from .baseline import BaselineModelTrainer
from .etl import build_training_table
from .flighting import FlightingConfig, FlightingPipeline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("config", help="flighting configuration JSON file")
    parser.add_argument("--events", type=Path, default=None,
                        help="write collected events to this JSONL file")
    parser.add_argument("--model", type=Path, default=None,
                        help="train a baseline model and save it here")
    args = parser.parse_args(argv)

    config = FlightingConfig.from_file(args.config)
    pipeline = FlightingPipeline(config)
    events = pipeline.execute()
    print(f"flighting complete: {len(events)} executions "
          f"({config.benchmark}, {len(config.scale_factors)} scale factor(s))")

    if args.events is not None:
        args.events.parent.mkdir(parents=True, exist_ok=True)
        args.events.write_text(events_to_jsonl(events) + "\n")
        print(f"events written to {args.events}")

    if args.model is not None:
        table = build_training_table(events, pipeline.space)
        model = BaselineModelTrainer().train(table)
        save_model(model, args.model)
        print(f"baseline model ({len(table)} rows, "
              f"{table.feature_dim} features) saved to {args.model}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
