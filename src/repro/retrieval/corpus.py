"""Tuned-history corpus: (embedding, tuned config, observed cost) records.

The retrieval warm start (ROADMAP; PAPERS.md 2503.03826 "zero-execution"
RAG tuning, Rover's transfer backbone) answers: *given a never-executed
workload's embedding, which tuned history is closest, and what config did
it converge to?*  This module is the corpus side of that question:

* :class:`CorpusRecord` — one tuned history: the workload embedding, the
  best configuration observed for it, that configuration's cost, and
  provenance (workload/signature/region, reference data size).
* :class:`RetrievalCorpus` — records plus an ANN index
  (:class:`~repro.retrieval.index.FlatIndex` or
  :class:`~repro.retrieval.index.IVFIndex`) over their embeddings, with a
  JSON payload round-trip for backend storage.
* builders — :func:`corpus_from_table` harvests an Eq.-2
  :class:`~repro.offline.etl.TrainingTable` (best row per query
  signature); :func:`probe_population` runs a seeded noiseless
  configuration sweep over a :mod:`repro.workloads.customer` population
  through the batch cost kernel, yielding both the corpus and the Eq.-2
  probe table (the baseline model's training data — same observations,
  two consumers).
* :func:`neighbors_table` — retrieved neighbors as warm-start prior rows
  for :func:`repro.offline.transfer.warm_start_cbo`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry
from ..core.config_space import ConfigSpace
from ..offline.etl import TrainingTable
from .index import FlatIndex, IVFIndex

__all__ = [
    "CorpusRecord",
    "DATA_PROPORTIONAL_KNOBS",
    "RetrievalCorpus",
    "RetrievedNeighbor",
    "adapt_config",
    "corpus_from_table",
    "corpus_from_population",
    "probe_population",
    "neighbors_table",
    "recommend_config",
    "warm_start_from_corpus",
]

#: Knobs whose optimum tracks the input data size roughly linearly (the
#: paper's Fig.-1 observation for shuffle partitions: work per partition is
#: data volume over partition count, so the sweet spot moves with volume).
#: :func:`adapt_config` rescales these when transferring a tuned config to
#: a workload of a different size; everything else transfers verbatim.
DATA_PROPORTIONAL_KNOBS = ("spark.sql.shuffle.partitions",)


@dataclass(frozen=True)
class CorpusRecord:
    """One tuned history the index can recommend from."""

    workload_id: str
    signature: str
    embedding: np.ndarray
    config: Dict[str, float]
    observed_cost: float
    default_cost: float = float("nan")
    data_size: float = 1.0
    region: str = "default"

    def to_payload(self) -> Dict[str, object]:
        return {
            "workload_id": self.workload_id,
            "signature": self.signature,
            "embedding": np.asarray(self.embedding, dtype=float).tolist(),
            "config": {k: float(v) for k, v in self.config.items()},
            "observed_cost": float(self.observed_cost),
            "default_cost": float(self.default_cost),
            "data_size": float(self.data_size),
            "region": self.region,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CorpusRecord":
        return cls(
            workload_id=str(payload["workload_id"]),
            signature=str(payload["signature"]),
            embedding=np.asarray(payload["embedding"], dtype=float),
            config={k: float(v) for k, v in payload["config"].items()},
            observed_cost=float(payload["observed_cost"]),
            default_cost=float(payload["default_cost"]),
            data_size=float(payload["data_size"]),
            region=str(payload["region"]),
        )


@dataclass(frozen=True)
class RetrievedNeighbor:
    """One search hit: the record plus its embedding distance."""

    record: CorpusRecord
    distance: float


class RetrievalCorpus:
    """Records + ANN index over their embeddings.

    Record ids are positions in :attr:`records`; the index is rebuilt on
    demand (``build_index``) or extended incrementally (``add``).
    """

    def __init__(self, embedding_dim: int, metric: str = "cosine"):
        if embedding_dim < 1:
            raise ValueError("embedding_dim must be >= 1")
        self.embedding_dim = int(embedding_dim)
        self.metric = metric
        self.records: List[CorpusRecord] = []
        self.index: Optional[Union[FlatIndex, IVFIndex]] = None

    def __len__(self) -> int:
        return len(self.records)

    def add(self, records: Sequence[CorpusRecord]) -> None:
        """Append records, extending any existing index incrementally."""
        fresh = list(records)
        for record in fresh:
            if np.asarray(record.embedding).shape != (self.embedding_dim,):
                raise ValueError(
                    f"record {record.workload_id!r} embedding has shape "
                    f"{np.asarray(record.embedding).shape}, "
                    f"expected ({self.embedding_dim},)"
                )
        start = len(self.records)
        self.records.extend(fresh)
        if self.index is not None and fresh:
            self.index.add(
                np.array([r.embedding for r in fresh]),
                np.arange(start, start + len(fresh), dtype=np.int64),
            )

    def build_index(
        self, kind: str = "flat", **index_kwargs
    ) -> Union[FlatIndex, IVFIndex]:
        """(Re)build the ANN index over all current records."""
        if kind == "flat":
            index = FlatIndex(self.embedding_dim, metric=self.metric)
        elif kind == "ivf":
            index_kwargs.setdefault(
                "n_lists", max(1, int(round(np.sqrt(max(len(self.records), 1)))))
            )
            index = IVFIndex(self.embedding_dim, metric=self.metric, **index_kwargs)
        else:
            raise ValueError(f"unknown index kind {kind!r}")
        if self.records:
            index.add(np.array([r.embedding for r in self.records]))
        self.index = index
        return index

    def search(
        self, embedding: np.ndarray, k: int = 3
    ) -> List[RetrievedNeighbor]:
        """The ``k`` nearest tuned histories for one target embedding."""
        if not self.records:
            return []
        if self.index is None:
            self.build_index()
        ids, distances = self.index.search(np.asarray(embedding, dtype=float), k)
        out = [
            RetrievedNeighbor(record=self.records[int(i)], distance=float(d))
            for i, d in zip(np.atleast_1d(ids), np.atleast_1d(distances))
            if i >= 0
        ]
        telemetry.counter("retrieval.corpus_queries").inc()
        return out

    # -- serialization -----------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        from ..ml.serialize import index_to_payload

        return {
            "type": "RetrievalCorpus",
            "embedding_dim": self.embedding_dim,
            "metric": self.metric,
            "records": [r.to_payload() for r in self.records],
            "index": None if self.index is None else index_to_payload(self.index),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "RetrievalCorpus":
        from ..ml.serialize import index_from_payload

        corpus = cls(int(payload["embedding_dim"]), metric=str(payload["metric"]))
        corpus.records = [CorpusRecord.from_payload(p) for p in payload["records"]]
        if payload["index"] is not None:
            corpus.index = index_from_payload(payload["index"])
        return corpus

    def dumps(self) -> str:
        return json.dumps(self.to_payload())

    @classmethod
    def loads(cls, data: str) -> "RetrievalCorpus":
        return cls.from_payload(json.loads(data))


# -- builders ------------------------------------------------------------------------


def corpus_from_table(
    table: TrainingTable, space: ConfigSpace, workload_prefix: str = "table"
) -> RetrievalCorpus:
    """Harvest the best observed row per query signature from an Eq.-2 table.

    Ties on the observed cost keep the earliest row (stable ``argmin``),
    so repeated builds from the same table agree.
    """
    if space.dim != table.config_dim:
        raise ValueError(
            f"space dim {space.dim} != table config dim {table.config_dim}"
        )
    corpus = RetrievalCorpus(table.embedding_dim)
    groups: Dict[str, List[int]] = {}
    for i, sig in enumerate(table.signatures):
        groups.setdefault(sig, []).append(i)
    records = []
    for sig in sorted(groups):
        rows = groups[sig]
        best = rows[int(np.argmin(table.y[rows]))]
        x = table.X[best]
        emb = x[: table.embedding_dim]
        config_vec = x[table.embedding_dim : table.embedding_dim + table.config_dim]
        records.append(
            CorpusRecord(
                workload_id=f"{workload_prefix}:{sig[:12]}",
                signature=sig,
                embedding=emb.copy(),
                config=space.to_dict(config_vec),
                observed_cost=float(table.y[best]),
                data_size=float(x[-1]),
                region=table.regions[best],
            )
        )
    corpus.add(records)
    return corpus


def probe_population(
    population: Sequence,
    space: ConfigSpace,
    n_configs: int = 48,
    seed: int = 0,
    embedder=None,
) -> Tuple[RetrievalCorpus, TrainingTable]:
    """Sweep each workload's plans and harvest corpus + probe table.

    For every plan of every :class:`~repro.workloads.customer
    .CustomerWorkload`, a seeded Latin-hypercube sweep of ``n_configs``
    configurations is scored noiselessly through the batch cost kernel
    (``SparkSimulator.true_time_batch`` — no live executions, the
    zero-execution premise).  The best configuration becomes a
    :class:`CorpusRecord`; *all* probe rows become the returned Eq.-2
    :class:`TrainingTable` (train the baseline warm-start model on it, so
    both warm-start paths see identical data).
    """
    from ..embedding.embedder import WorkloadEmbedder
    from ..sparksim.executor import SparkSimulator
    from ..sparksim.noise import no_noise

    if n_configs < 2:
        raise ValueError("n_configs must be >= 2")
    embedder = embedder or WorkloadEmbedder()
    simulator = SparkSimulator(noise=no_noise(), seed=seed)
    rng = np.random.default_rng(seed)
    corpus = RetrievalCorpus(embedder.dim)
    records: List[CorpusRecord] = []
    rows: List[np.ndarray] = []
    targets: List[float] = []
    signatures: List[str] = []
    regions: List[str] = []
    for workload in population:
        embeddings = embedder.embed_many(workload.plans)
        for plan, embedding in zip(workload.plans, embeddings):
            configs = space.latin_hypercube(n_configs, rng)
            times = simulator.true_time_batch(
                plan, configs, space=space, data_scale=workload.scale
            )
            default_cost = simulator.true_time(
                plan, space.default_dict(), data_scale=workload.scale
            )
            best = int(np.argmin(times))
            data_size = max(plan.total_leaf_cardinality, 1.0) * workload.scale
            signature = plan.signature()
            records.append(
                CorpusRecord(
                    workload_id=workload.workload_id,
                    signature=signature,
                    embedding=embedding.copy(),
                    config=space.to_dict(configs[best]),
                    observed_cost=float(times[best]),
                    default_cost=float(default_cost),
                    data_size=data_size,
                )
            )
            for vector, seconds in zip(configs, times):
                rows.append(np.concatenate([embedding, vector, [data_size]]))
                targets.append(float(seconds))
                signatures.append(signature)
                regions.append("default")
    corpus.add(records)
    table = TrainingTable(
        X=np.array(rows),
        y=np.array(targets),
        embedding_dim=embedder.dim,
        config_dim=space.dim,
        signatures=signatures,
        regions=regions,
    )
    return corpus, table


def corpus_from_population(
    population: Sequence,
    space: ConfigSpace,
    n_configs: int = 48,
    seed: int = 0,
    embedder=None,
) -> RetrievalCorpus:
    """:func:`probe_population`, keeping only the corpus."""
    corpus, _ = probe_population(
        population, space, n_configs=n_configs, seed=seed, embedder=embedder
    )
    return corpus


def adapt_config(
    record: CorpusRecord,
    space: ConfigSpace,
    data_size: Optional[float] = None,
    data_scaled_knobs: Sequence[str] = DATA_PROPORTIONAL_KNOBS,
) -> Dict[str, float]:
    """One neighbor's tuned config, rescaled to the target's data size.

    A history tuned at 1e8 rows recommends ~20 shuffle partitions; replayed
    verbatim on a 6e8-row workload that is a 10x regression (measured in
    ``ext_retrieval_warm_start``).  Scaling the data-proportional knobs by
    ``data_size / record.data_size`` (then clipping into the space) moves
    the transferred config into the target's operating regime while keeping
    the shape-specific knobs the neighbor actually tuned.
    """
    config = dict(record.config)
    if (
        data_size is not None
        and np.isfinite(record.data_size)
        and record.data_size > 0.0
    ):
        ratio = float(data_size) / float(record.data_size)
        for knob in data_scaled_knobs:
            if knob in config:
                config[knob] = config[knob] * ratio
    return space.to_dict(space.clip(space.to_vector(config)))


def recommend_config(
    neighbors: Sequence[RetrievedNeighbor],
    space: ConfigSpace,
    data_size: Optional[float] = None,
    data_scaled_knobs: Sequence[str] = DATA_PROPORTIONAL_KNOBS,
) -> Dict[str, float]:
    """Zero-execution recommendation from retrieved neighbors.

    Each neighbor's config is size-adapted (:func:`adapt_config`), then the
    adapted vectors are averaged in the space's *internal* scale (a
    geometric mean for log-scaled knobs) and clipped.  The mean is
    deliberate: a single neighbor transplants that workload's
    idiosyncrasies, while the centroid of k size-adjusted tuned histories
    lands mid-basin — in the transfer experiment it roughly halves the
    single-neighbor regret.
    """
    if not neighbors:
        raise ValueError("no neighbors to recommend from")
    vectors = np.array([
        space.to_vector(
            adapt_config(n.record, space, data_size, data_scaled_knobs)
        )
        for n in neighbors
    ])
    return space.to_dict(space.clip(vectors.mean(axis=0)))


def warm_start_from_corpus(
    corpus: RetrievalCorpus,
    space: ConfigSpace,
    plan,
    embedder=None,
    k: int = 3,
):
    """Task-switch warm-start hook backed by the retrieval corpus.

    Returns an ``(Observation) -> Optional[np.ndarray]`` callable suitable
    for :class:`~repro.core.centroid.CentroidLearning`'s
    ``switch_warm_start``: on a detected regime change, the plan is re-scaled
    to the firing observation's data size, embedded, and the corpus is asked
    for its ``k`` nearest tuned histories; their size-adapted centroid
    (:func:`recommend_config`) becomes the new-regime starting vector.  An
    empty corpus (or a search with no hits) yields ``None``, which the
    caller treats as "keep the current centroid".
    """
    from ..embedding.embedder import WorkloadEmbedder

    if k < 1:
        raise ValueError("k must be >= 1")
    embedder = embedder or WorkloadEmbedder()
    base_size = max(plan.total_leaf_cardinality, 1.0)

    def _warm_start(obs) -> Optional[np.ndarray]:
        scale = max(float(obs.data_size), 1.0) / base_size
        embedding = embedder.embed(plan.scaled(scale))
        neighbors = corpus.search(embedding, k=k)
        if not neighbors:
            return None
        telemetry.counter("retrieval.switch_consults").inc()
        config = recommend_config(neighbors, space, data_size=float(obs.data_size))
        return space.to_vector(config)

    return _warm_start


def neighbors_table(
    neighbors: Sequence[RetrievedNeighbor], space: ConfigSpace
) -> TrainingTable:
    """Retrieved neighbors as Eq.-2 warm-start prior rows.

    Each neighbor contributes one row ``[embedding | tuned config | data
    size] → observed cost`` — the shape :func:`repro.offline.transfer
    .warm_start_cbo` seeds a Contextual BO with.
    """
    if not neighbors:
        raise ValueError("no neighbors to build a table from")
    dims = {np.asarray(n.record.embedding).shape for n in neighbors}
    if len(dims) != 1:
        raise ValueError(f"neighbors carry mixed embedding shapes: {dims}")
    rows = []
    for n in neighbors:
        rows.append(
            np.concatenate([
                np.asarray(n.record.embedding, dtype=float),
                space.to_vector(n.record.config),
                [n.record.data_size],
            ])
        )
    return TrainingTable(
        X=np.array(rows),
        y=np.array([n.record.observed_cost for n in neighbors]),
        embedding_dim=len(rows[0]) - space.dim - 1,
        config_dim=space.dim,
        signatures=[n.record.signature for n in neighbors],
        regions=[n.record.region for n in neighbors],
    )
