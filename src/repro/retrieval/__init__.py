"""Vectorized ANN retrieval over workload embeddings (zero-execution warm start).

``repro.retrieval`` turns tuned histories into a nearest-neighbor service:
:mod:`index` holds the NumPy-only ANN structures (exact
:class:`FlatIndex`, partitioned :class:`IVFIndex`); :mod:`corpus` holds the
record store and offline builders that harvest (embedding, tuned config,
observed cost) triples from ``repro.offline`` tables and
``workloads.customer`` populations.  The serving side lives in
:meth:`repro.service.backend.AutotuneBackend.fetch_warm_start`.
"""

from .corpus import (
    DATA_PROPORTIONAL_KNOBS,
    CorpusRecord,
    RetrievalCorpus,
    RetrievedNeighbor,
    adapt_config,
    corpus_from_population,
    corpus_from_table,
    neighbors_table,
    probe_population,
    recommend_config,
    warm_start_from_corpus,
)
from .index import FlatIndex, IVFIndex, assign_clusters, kmeans

__all__ = [
    "CorpusRecord",
    "DATA_PROPORTIONAL_KNOBS",
    "FlatIndex",
    "IVFIndex",
    "RetrievalCorpus",
    "RetrievedNeighbor",
    "adapt_config",
    "assign_clusters",
    "corpus_from_population",
    "corpus_from_table",
    "kmeans",
    "neighbors_table",
    "probe_population",
    "recommend_config",
    "warm_start_from_corpus",
]
