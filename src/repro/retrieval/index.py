"""Vectorized ANN indexes over workload-embedding vectors.

Two NumPy-only index structures back the zero-execution warm start
(ROADMAP: retrieval-augmented cold start; PAPERS.md 2503.03826, Rover):

* :class:`FlatIndex` — the exact reference: a row-normalized corpus matrix,
  one top-k ``dgemm`` per *query batch*, and deterministic tie-breaking
  (descending similarity, then ascending entry id).  Search results are
  identical — ordering included — to a brute-force stable sort over the
  same score matrix, which the bench and the ``verify.diff`` oracle check.
* :class:`IVFIndex` — an inverted-file index for corpora in the millions:
  a seeded k-means coarse quantizer partitions entries into ``n_lists``
  contiguous slabs; a query scores the ``nprobe`` nearest lists only.
  Recall is < 1 by construction (measured in ``bench_perf_retrieval``);
  tie-breaking and per-list scoring follow the flat rules, and with
  ``n_lists=1, nprobe=1`` the index degenerates to the flat search.

Both support incremental :meth:`add` with amortized re-packing (capacity
doubling for the flat buffer; per-list pending blocks for IVF, re-packed
once they outgrow a fraction of the packed storage) and an exact save/load
round-trip through :func:`repro.ml.serialize.dumps_index` — JSON floats
round-trip ``float64`` bit-for-bit, so a reloaded index returns the same
ids *and the same distances* as the original.

Distances use the convention of :mod:`repro.offline.similarity`:
``"cosine"`` returns ``1 − cosine similarity``; ``"euclidean"`` the L2
distance.  Queries may be a single vector ``(d,)`` or a batch ``(q, d)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry

__all__ = ["FlatIndex", "IVFIndex", "kmeans"]

_EPS = 1e-12
_METRICS = ("cosine", "euclidean")


def _as_matrix(vectors: np.ndarray, dim: int, what: str) -> np.ndarray:
    out = np.ascontiguousarray(np.atleast_2d(np.asarray(vectors, dtype=float)))
    if out.ndim != 2 or out.shape[1] != dim:
        raise ValueError(f"{what} must have shape (n, {dim}), got {np.asarray(vectors).shape}")
    return out


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.sqrt(np.einsum("nd,nd->n", matrix, matrix))
    return matrix / np.maximum(norms, _EPS)[:, None]


def _similarities(stored: np.ndarray, queries: np.ndarray, metric: str) -> np.ndarray:
    """``(q, n)`` scores, **higher = closer** for both metrics.

    ``stored`` rows are pre-normalized for cosine.  Euclidean uses the
    expansion trick: ranking by ``-(‖s‖² − 2 s·q)`` equals ranking by
    ``-‖s − q‖²`` (the ``‖q‖²`` term is constant per query row).
    """
    if metric == "cosine":
        qn = _normalize_rows(queries)
        return qn @ stored.T
    sq = np.einsum("nd,nd->n", stored, stored)
    return 2.0 * (queries @ stored.T) - sq[None, :]


def _distances_from_scores(
    scores: np.ndarray, queries: np.ndarray, metric: str
) -> np.ndarray:
    if metric == "cosine":
        return 1.0 - scores
    qq = np.einsum("nd,nd->n", queries, queries)
    return np.sqrt(np.maximum(qq[:, None] - scores, 0.0))


def _top_k_row(scores_row: np.ndarray, ids_row: np.ndarray, k: int) -> np.ndarray:
    """Positions of the top-``k`` entries: descending score, ties broken by
    ascending id — including ties that straddle the partition boundary."""
    n = len(scores_row)
    if k >= n:
        candidates = np.arange(n)
    else:
        cut = np.argpartition(-scores_row, k - 1)[:k]
        threshold = scores_row[cut].min()
        candidates = np.flatnonzero(scores_row >= threshold)
    order = np.lexsort((ids_row[candidates], -scores_row[candidates]))
    return candidates[order[:k]]


class FlatIndex:
    """Exact top-k retrieval: one matmul per query batch.

    Args:
        dim: embedding dimensionality.
        metric: ``"cosine"`` (default) or ``"euclidean"``.

    Entries carry integer ids (caller-assigned or auto-incrementing) that
    key into whatever metadata store rides alongside (see
    :class:`repro.retrieval.corpus.RetrievalCorpus`).
    """

    kind = "flat"

    def __init__(self, dim: int, metric: str = "cosine"):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}")
        self.dim = int(dim)
        self.metric = metric
        self._store = np.empty((0, dim))      # capacity buffer (normalized for cosine)
        self._raw = np.empty((0, dim))        # original vectors (save/load fidelity)
        self._ids = np.empty(0, dtype=np.int64)
        self._size = 0
        self._next_id = 0
        self.repack_count = 0                 # capacity growths (amortization probe)

    def __len__(self) -> int:
        return self._size

    @property
    def ids(self) -> np.ndarray:
        return self._ids[: self._size]

    @property
    def vectors(self) -> np.ndarray:
        """The stored (raw, un-normalized) vectors, in insertion order."""
        return self._raw[: self._size]

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= len(self._store):
            return
        capacity = max(needed, 2 * len(self._store), 8)
        for name in ("_store", "_raw"):
            old = getattr(self, name)
            grown = np.empty((capacity, self.dim))
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)
        ids = np.empty(capacity, dtype=np.int64)
        ids[: self._size] = self._ids[: self._size]
        self._ids = ids
        self.repack_count += 1

    def add(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> np.ndarray:
        """Append entries; returns their ids.  Amortized O(1) per row."""
        block = _as_matrix(vectors, self.dim, "vectors")
        n = len(block)
        if ids is None:
            ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (n,):
                raise ValueError(f"ids must have shape ({n},)")
        if n == 0:
            return ids
        self._reserve(n)
        self._raw[self._size : self._size + n] = block
        self._store[self._size : self._size + n] = (
            _normalize_rows(block) if self.metric == "cosine" else block
        )
        self._ids[self._size : self._size + n] = ids
        self._size += n
        self._next_id = int(max(self._next_id, int(ids.max()) + 1))
        return ids

    def search(
        self, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` neighbors for one query ``(d,)`` or a batch ``(q, d)``.

        Returns ``(ids, distances)`` of shape ``(q, k)``; when the corpus
        holds fewer than ``k`` entries the tail is padded with id ``-1``
        and distance ``+inf``.  A single-vector query returns ``(k,)``.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        q = np.asarray(queries, dtype=float)
        single = q.ndim == 1
        qm = _as_matrix(q, self.dim, "queries")
        out_ids = np.full((len(qm), k), -1, dtype=np.int64)
        out_dist = np.full((len(qm), k), np.inf)
        n = self._size
        if n:
            stored = self._store[:n]
            ids = self._ids[:n]
            scores = _similarities(stored, qm, self.metric)
            dists = _distances_from_scores(scores, qm, self.metric)
            k_eff = min(k, n)
            for row in range(len(qm)):
                top = _top_k_row(scores[row], ids, k_eff)
                out_ids[row, :k_eff] = ids[top]
                out_dist[row, :k_eff] = dists[row, top]
        telemetry.counter("retrieval.searches", kind=self.kind).inc(len(qm))
        if single:
            return out_ids[0], out_dist[0]
        return out_ids, out_dist

    # -- serialization -----------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "type": "FlatIndex",
            "dim": self.dim,
            "metric": self.metric,
            "vectors": self.vectors.tolist(),
            "ids": self.ids.tolist(),
            "next_id": self._next_id,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FlatIndex":
        index = cls(int(payload["dim"]), str(payload["metric"]))
        vectors = np.array(payload["vectors"], dtype=float).reshape(-1, index.dim)
        if len(vectors):
            index.add(vectors, np.asarray(payload["ids"], dtype=np.int64))
        index._next_id = int(payload["next_id"])
        return index


def kmeans(
    data: np.ndarray,
    n_clusters: int,
    seed: int = 0,
    n_iters: int = 10,
    sample_limit: Optional[int] = None,
    chunk: int = 65536,
) -> np.ndarray:
    """Seeded Lloyd's k-means; returns ``(n_clusters, dim)`` centroids.

    Deterministic for a given ``(data, n_clusters, seed)``: init draws
    distinct rows with a seeded generator, assignment chunks never change
    the per-row arithmetic, and empty clusters keep their previous
    centroid.  ``sample_limit`` trains on a seeded subsample — at
    million-entry scale the quantizer needs the data's shape, not every
    row.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    if len(data) < n_clusters:
        raise ValueError(f"need >= {n_clusters} rows to fit {n_clusters} clusters")
    rng = np.random.default_rng(seed)
    train = data
    if sample_limit is not None and len(data) > max(sample_limit, n_clusters):
        pick = rng.choice(len(data), size=max(sample_limit, n_clusters), replace=False)
        train = data[np.sort(pick)]
    centroids = train[np.sort(rng.choice(len(train), size=n_clusters, replace=False))].copy()
    for _ in range(n_iters):
        assign = assign_clusters(train, centroids, chunk=chunk)
        sums = np.zeros_like(centroids)
        counts = np.zeros(n_clusters)
        np.add.at(sums, assign, train)
        np.add.at(counts, assign, 1.0)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
    return centroids


def assign_clusters(
    data: np.ndarray, centroids: np.ndarray, chunk: int = 65536
) -> np.ndarray:
    """Nearest-centroid (squared-L2) assignment, chunked to bound memory.

    Ties go to the lowest centroid id (``argmin`` convention), and chunking
    cannot change results: each row's distances are computed independently.
    """
    cc = np.einsum("kd,kd->k", centroids, centroids)
    out = np.empty(len(data), dtype=np.intp)
    for start in range(0, len(data), chunk):
        block = data[start : start + chunk]
        # ‖x−c‖² = ‖x‖² − 2 x·c + ‖c‖²; the ‖x‖² term is constant per row.
        scores = cc[None, :] - 2.0 * (block @ centroids.T)
        out[start : start + chunk] = np.argmin(scores, axis=1)
    return out


class IVFIndex:
    """Inverted-file ANN index: k-means partitions + ``nprobe`` search.

    Args:
        dim: embedding dimensionality.
        n_lists: number of coarse partitions (k-means clusters).
        metric: ``"cosine"`` or ``"euclidean"``.
        nprobe: how many nearest lists a query scans (default
            ``max(1, round(sqrt(n_lists)))`` — the classic recall/latency
            sweet spot; override per-search via ``search(..., nprobe=)``).
        seed: quantizer RNG seed.
        train_iters / train_sample: k-means iteration count and training
            subsample cap.
        pending_fraction: pending (un-packed) entries are folded into the
            contiguous per-list slabs once they exceed this fraction of the
            packed entry count — amortizing re-pack cost over many ``add``
            calls while keeping slab scans contiguous.

    The quantizer trains lazily on the first ``add`` (or explicitly via
    :meth:`train`); entries added before training are buffered and
    assigned when it runs.
    """

    kind = "ivf"

    def __init__(
        self,
        dim: int,
        n_lists: int,
        metric: str = "cosine",
        nprobe: Optional[int] = None,
        seed: int = 0,
        train_iters: int = 8,
        train_sample: Optional[int] = 131072,
        pending_fraction: float = 0.25,
    ):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if n_lists < 1:
            raise ValueError("n_lists must be >= 1")
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}")
        if nprobe is not None and not 1 <= nprobe <= n_lists:
            raise ValueError("nprobe must be in [1, n_lists]")
        if not 0.0 < pending_fraction <= 1.0:
            raise ValueError("pending_fraction must be in (0, 1]")
        self.dim = int(dim)
        self.n_lists = int(n_lists)
        self.metric = metric
        self.nprobe = int(nprobe) if nprobe is not None else max(
            1, int(round(np.sqrt(n_lists)))
        )
        self.seed = int(seed)
        self.train_iters = int(train_iters)
        self.train_sample = train_sample
        self.pending_fraction = float(pending_fraction)
        self._centroids: Optional[np.ndarray] = None
        # Packed per-list contiguous storage (CSR-style).
        self._packed = np.empty((0, dim))
        self._packed_raw = np.empty((0, dim))
        self._packed_ids = np.empty(0, dtype=np.int64)
        self._offsets = np.zeros(n_lists + 1, dtype=np.int64)
        # Per-list pending blocks awaiting the next re-pack.
        self._pending: List[List[np.ndarray]] = [[] for _ in range(n_lists)]
        self._pending_raw: List[List[np.ndarray]] = [[] for _ in range(n_lists)]
        self._pending_ids: List[List[np.ndarray]] = [[] for _ in range(n_lists)]
        self._pending_count = 0
        self._next_id = 0
        self.repack_count = 0

    def __len__(self) -> int:
        return len(self._packed_ids) + self._pending_count

    @property
    def trained(self) -> bool:
        return self._centroids is not None

    @property
    def centroids(self) -> Optional[np.ndarray]:
        return self._centroids

    def train(self, vectors: np.ndarray) -> "IVFIndex":
        """Fit the coarse quantizer on (a sample of) ``vectors``."""
        block = _as_matrix(vectors, self.dim, "training vectors")
        if len(block) < self.n_lists:
            raise ValueError(
                f"need >= {self.n_lists} training vectors, got {len(block)}"
            )
        space = _normalize_rows(block) if self.metric == "cosine" else block
        self._centroids = kmeans(
            space, self.n_lists, seed=self.seed, n_iters=self.train_iters,
            sample_limit=self.train_sample,
        )
        return self

    def add(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> np.ndarray:
        """Append entries (training the quantizer on first use)."""
        block = _as_matrix(vectors, self.dim, "vectors")
        n = len(block)
        if ids is None:
            ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (n,):
                raise ValueError(f"ids must have shape ({n},)")
        if n == 0:
            return ids
        if self._centroids is None:
            self.train(block)
        space = _normalize_rows(block) if self.metric == "cosine" else block
        assign = assign_clusters(space, self._centroids)
        order = np.argsort(assign, kind="stable")
        bounds = np.searchsorted(assign[order], np.arange(self.n_lists + 1))
        for lst in range(self.n_lists):
            lo, hi = bounds[lst], bounds[lst + 1]
            if lo == hi:
                continue
            rows = order[lo:hi]
            self._pending[lst].append(space[rows])
            self._pending_raw[lst].append(block[rows])
            self._pending_ids[lst].append(ids[rows])
        self._pending_count += n
        self._next_id = int(max(self._next_id, int(ids.max()) + 1))
        if self._pending_count > max(
            64, self.pending_fraction * len(self._packed_ids)
        ):
            self._repack()
        return ids

    def _repack(self) -> None:
        """Fold pending blocks into the contiguous per-list slabs."""
        if self._pending_count == 0:
            return
        total = len(self._packed_ids) + self._pending_count
        packed = np.empty((total, self.dim))
        packed_raw = np.empty((total, self.dim))
        packed_ids = np.empty(total, dtype=np.int64)
        offsets = np.zeros(self.n_lists + 1, dtype=np.int64)
        cursor = 0
        for lst in range(self.n_lists):
            lo, hi = self._offsets[lst], self._offsets[lst + 1]
            parts = [
                (self._packed[lo:hi], self._packed_raw[lo:hi], self._packed_ids[lo:hi])
            ] + list(zip(self._pending[lst], self._pending_raw[lst], self._pending_ids[lst]))
            for vec, raw, pid in parts:
                m = len(pid)
                if not m:
                    continue
                packed[cursor : cursor + m] = vec
                packed_raw[cursor : cursor + m] = raw
                packed_ids[cursor : cursor + m] = pid
                cursor += m
            offsets[lst + 1] = cursor
        self._packed, self._packed_raw, self._packed_ids = packed, packed_raw, packed_ids
        self._offsets = offsets
        self._pending = [[] for _ in range(self.n_lists)]
        self._pending_raw = [[] for _ in range(self.n_lists)]
        self._pending_ids = [[] for _ in range(self.n_lists)]
        self._pending_count = 0
        self.repack_count += 1

    def _list_members(self, lst: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self._offsets[lst], self._offsets[lst + 1]
        vecs = [self._packed[lo:hi]]
        ids = [self._packed_ids[lo:hi]]
        vecs.extend(self._pending[lst])
        ids.extend(self._pending_ids[lst])
        if len(vecs) == 1:
            return vecs[0], ids[0]
        return np.concatenate(vecs), np.concatenate(ids)

    def search(
        self, queries: np.ndarray, k: int, nprobe: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` over the ``nprobe`` nearest partitions per query.

        Same return convention and tie-breaking as :meth:`FlatIndex.search`
        (partition ties break on the lower list id).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        if not 1 <= nprobe <= self.n_lists:
            raise ValueError("nprobe must be in [1, n_lists]")
        q = np.asarray(queries, dtype=float)
        single = q.ndim == 1
        qm = _as_matrix(q, self.dim, "queries")
        out_ids = np.full((len(qm), k), -1, dtype=np.int64)
        out_dist = np.full((len(qm), k), np.inf)
        if len(self) and self._centroids is not None:
            qspace = _normalize_rows(qm) if self.metric == "cosine" else qm
            # One matmul ranks every (query, partition) pair.
            cc = np.einsum("kd,kd->k", self._centroids, self._centroids)
            coarse = cc[None, :] - 2.0 * (qspace @ self._centroids.T)
            list_ids = np.arange(self.n_lists, dtype=np.int64)
            for row in range(len(qm)):
                probes = _top_k_row(-coarse[row], list_ids, min(nprobe, self.n_lists))
                cand_vecs, cand_ids = [], []
                for lst in probes:
                    vecs, ids = self._list_members(int(lst))
                    if len(ids):
                        cand_vecs.append(vecs)
                        cand_ids.append(ids)
                if not cand_ids:
                    continue
                stored = cand_vecs[0] if len(cand_vecs) == 1 else np.concatenate(cand_vecs)
                ids = cand_ids[0] if len(cand_ids) == 1 else np.concatenate(cand_ids)
                query_row = qm[row : row + 1]
                scores = _similarities(stored, query_row, self.metric)
                k_eff = min(k, len(ids))
                top = _top_k_row(scores[0], ids, k_eff)
                out_ids[row, :k_eff] = ids[top]
                out_dist[row, :k_eff] = _distances_from_scores(
                    scores, query_row, self.metric
                )[0, top]
        telemetry.counter("retrieval.searches", kind=self.kind).inc(len(qm))
        if single:
            return out_ids[0], out_dist[0]
        return out_ids, out_dist

    # -- serialization -----------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        self._repack()
        return {
            "type": "IVFIndex",
            "dim": self.dim,
            "n_lists": self.n_lists,
            "metric": self.metric,
            "nprobe": self.nprobe,
            "seed": self.seed,
            "train_iters": self.train_iters,
            "train_sample": self.train_sample,
            "pending_fraction": self.pending_fraction,
            "centroids": None if self._centroids is None else self._centroids.tolist(),
            "packed": self._packed.tolist(),
            "packed_raw": self._packed_raw.tolist(),
            "packed_ids": self._packed_ids.tolist(),
            "offsets": self._offsets.tolist(),
            "next_id": self._next_id,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "IVFIndex":
        index = cls(
            int(payload["dim"]),
            int(payload["n_lists"]),
            metric=str(payload["metric"]),
            nprobe=int(payload["nprobe"]),
            seed=int(payload["seed"]),
            train_iters=int(payload["train_iters"]),
            train_sample=payload["train_sample"],
            pending_fraction=float(payload["pending_fraction"]),
        )
        if payload["centroids"] is not None:
            index._centroids = np.array(payload["centroids"], dtype=float).reshape(
                index.n_lists, index.dim
            )
        index._packed = np.array(payload["packed"], dtype=float).reshape(-1, index.dim)
        index._packed_raw = np.array(payload["packed_raw"], dtype=float).reshape(
            -1, index.dim
        )
        index._packed_ids = np.asarray(payload["packed_ids"], dtype=np.int64)
        index._offsets = np.asarray(payload["offsets"], dtype=np.int64)
        index._next_id = int(payload["next_id"])
        return index
