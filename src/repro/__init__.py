"""repro — a reproduction of *Rockhopper: A Robust Optimizer for Spark
Configuration Tuning in Production Environment* (SIGMOD-Companion 2025).

Quickstart::

    from repro import (
        CentroidLearning, TuningSession, SparkSimulator,
        query_level_space, tpch_plan, low_noise,
    )

    space = query_level_space()
    session = TuningSession(
        plan=tpch_plan(3, scale_factor=10.0),
        simulator=SparkSimulator(noise=low_noise(), seed=0),
        optimizer=CentroidLearning(space, seed=0),
    )
    trace = session.run(50)
    print(f"speed-up vs default: {trace.speedup_vs(session.default_true_time()):+.1%}")

Subpackages:

* :mod:`repro.core` — Centroid Learning, guardrails, app-level joint tuning.
* :mod:`repro.optimizers` — BO, contextual BO, FLOW2, hill climbing baselines.
* :mod:`repro.sparksim` — the simulated Spark substrate (knobs, plans, cost
  model, Eq.-8 noise).
* :mod:`repro.workloads` — TPC-H/TPC-DS suites, synthetic objectives,
  data-size dynamics, customer populations.
* :mod:`repro.embedding` — workload embeddings with virtual operators.
* :mod:`repro.offline` — flighting pipeline, ETL, baseline models, transfer.
* :mod:`repro.service` — backend/client production architecture, with
  retry/backoff and idempotent event delivery.
* :mod:`repro.faults` — deterministic fault injection (chaos harness).
* :mod:`repro.ml` — from-scratch ML substrate (GP, SVR, forests, ...).
* :mod:`repro.telemetry` — metrics registry, tracing spans, structured
  events (off by default; see ``docs/observability.md``).
* :mod:`repro.experiments` — one module per paper figure/table.
"""

from .core import (
    AppCache,
    CentroidLearning,
    ConfigSpace,
    FindBestMode,
    Guardrail,
    Observation,
    Optimizer,
    Parameter,
    TuningSession,
    TuningTrace,
    optimize_app_config,
)
from . import telemetry
from .embedding import VirtualOperatorScheme, WorkloadEmbedder
from .faults import FaultKind, FaultPlan, FaultSpec
from .offline import BaselineModelTrainer, FlightingConfig, FlightingPipeline
from .optimizers import (
    BayesianOptimization,
    ContextualBayesianOptimization,
    FLOW2,
    HillClimbing,
    RandomSearch,
)
from .sparksim import (
    NoiseModel,
    PhysicalPlan,
    SparkSimulator,
    app_level_space,
    full_space,
    high_noise,
    low_noise,
    no_noise,
    query_level_space,
)
from .workloads import (
    SyntheticObjective,
    default_synthetic_objective,
    tpcds_plan,
    tpch_plan,
)

__version__ = "1.0.0"

__all__ = [
    "AppCache",
    "BaselineModelTrainer",
    "BayesianOptimization",
    "CentroidLearning",
    "ConfigSpace",
    "ContextualBayesianOptimization",
    "FLOW2",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FindBestMode",
    "FlightingConfig",
    "FlightingPipeline",
    "Guardrail",
    "HillClimbing",
    "NoiseModel",
    "Observation",
    "Optimizer",
    "Parameter",
    "PhysicalPlan",
    "RandomSearch",
    "SparkSimulator",
    "SyntheticObjective",
    "TuningSession",
    "TuningTrace",
    "VirtualOperatorScheme",
    "WorkloadEmbedder",
    "app_level_space",
    "default_synthetic_objective",
    "full_space",
    "high_noise",
    "low_noise",
    "no_noise",
    "optimize_app_config",
    "query_level_space",
    "tpcds_plan",
    "tpch_plan",
    "telemetry",
    "__version__",
]
