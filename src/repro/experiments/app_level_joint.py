"""Sec.-4.4 evaluation: app-level joint optimization (Algorithm 2).

A multi-query application is tuned three ways: (a) defaults everywhere,
(b) per-query knobs tuned with app-level knobs left at defaults, and
(c) Algorithm 2 — app-level candidates scored by pairing each with every
query's best query-level candidate and summing acquisition scores.  The
joint optimum should dominate (b), since app-level resources (executors,
memory) shift every query's response surface.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.app_level import QueryTuningContext, optimize_app_config
from ..ml.forest import RandomForestRegressor
from ..sparksim.configs import app_level_space, full_space, query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import low_noise, no_noise
from ..workloads.tpcds import tpcds_plan
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run"]

DEFAULT_QUERIES = (8, 23, 51, 77)


def run(
    quick: bool = False,
    seed: int = 0,
    query_ids: Sequence[int] = DEFAULT_QUERIES,
    n_workers=None,
) -> ExperimentResult:
    query_ids = query_ids[:2] if quick else query_ids
    n_observations = 40 if quick else 150
    scale_factor = 50.0
    joint = full_space()
    app_space = app_level_space()
    query_space = query_level_space()
    app_names = app_space.names
    query_names = query_space.names
    joint_index = {name: i for i, name in enumerate(joint.names)}

    truth = SparkSimulator(noise=no_noise(), seed=seed)
    plans = [tpcds_plan(qid, scale_factor) for qid in query_ids]

    def assemble(v: np.ndarray, w: np.ndarray) -> np.ndarray:
        full = np.empty(joint.dim)
        for j, name in enumerate(app_names):
            full[joint_index[name]] = v[j]
        for j, name in enumerate(query_names):
            full[joint_index[name]] = w[j]
        return full

    # Phase 1: gather (noisy) observations per query over the joint space.
    # Each query owns its sampling RNG and simulator seed so the fan-out is
    # deterministic regardless of how the pool interleaves the work.
    def observe_query(indexed_plan):
        k, plan = indexed_plan
        observe_sim = SparkSimulator(noise=low_noise(), seed=seed + 1 + 97 * k)
        vectors = joint.latin_hypercube(
            n_observations, np.random.default_rng(seed * 41 + k)
        )
        times = np.array([
            r.elapsed_seconds
            for r in observe_sim.run_batch(plan, vectors, space=joint)
        ])
        X = np.column_stack([vectors, np.full(len(vectors), plan.total_leaf_cardinality)])
        model = RandomForestRegressor(n_estimators=30, min_samples_leaf=2, seed=seed + k)
        model.fit(X, times)
        best_idx = int(np.argmin(times))
        centroid = np.array([
            vectors[best_idx][joint_index[name]] for name in query_names
        ])
        return vectors, times, model, centroid

    phase1 = parallel_map(observe_query, list(enumerate(plans)), n_workers=n_workers)
    contexts: List[QueryTuningContext] = []
    per_query_obs = []
    for plan, (vectors, times, model, centroid) in zip(plans, phase1):
        p = plan.total_leaf_cardinality

        def score_fn(v, w, _model=model, _p=p):
            row = np.concatenate([assemble(v, w), [_p]])[None, :]
            return -float(_model.predict(row)[0])

        contexts.append(QueryTuningContext(
            query_space=query_space, centroid=centroid, score_fn=score_fn, beta=0.2,
        ))
        per_query_obs.append((vectors, times, model))

    # Phase 2: Algorithm 2 picks the app-level configuration.
    best_app = optimize_app_config(
        app_space, app_space.default_vector(), contexts,
        n_app_candidates=8 if quick else 20,
        n_query_candidates=8 if quick else 20,
        beta_app=0.25,
        rng=np.random.default_rng(seed + 2),
    )

    # Phase 3: evaluate the three strategies on the noiseless simulator.
    def total_time(app_vec: np.ndarray, query_vecs: List[np.ndarray]) -> float:
        total = 0.0
        for plan, w in zip(plans, query_vecs):
            total += truth.true_time(plan, joint.to_dict(assemble(app_vec, w)))
        return total

    default_app = app_space.default_vector()
    default_query = query_space.default_vector()

    def best_query_vec(app_vec: np.ndarray, context, model) -> np.ndarray:
        cands = np.vstack([
            context.centroid[None, :],
            query_space.sample_vectors(64, np.random.default_rng(seed + 5)),
        ])
        scores = [context.score_fn(app_vec, w) for w in cands]
        return cands[int(np.argmax(scores))]

    query_vecs_default_app = [
        best_query_vec(default_app, ctx, m) for ctx, (_, _, m) in zip(contexts, per_query_obs)
    ]
    query_vecs_joint = [
        best_query_vec(best_app, ctx, m) for ctx, (_, _, m) in zip(contexts, per_query_obs)
    ]

    t_default = total_time(default_app, [default_query] * len(plans))
    t_query_only = total_time(default_app, query_vecs_default_app)
    t_joint = total_time(best_app, query_vecs_joint)

    result = ExperimentResult(
        name="app_level_joint",
        description=(
            "Algorithm 2: total application time with (a) defaults, (b) "
            "query-level tuning only, (c) joint app+query optimization."
        ),
    )
    result.scalars["n_queries"] = float(len(plans))
    result.scalars["total_default_seconds"] = t_default
    result.scalars["total_query_only_seconds"] = t_query_only
    result.scalars["total_joint_seconds"] = t_joint
    result.scalars["query_only_speedup_pct"] = (t_default / t_query_only - 1.0) * 100.0
    result.scalars["joint_speedup_pct"] = (t_default / t_joint - 1.0) * 100.0
    for name, value in app_space.to_dict(best_app).items():
        result.scalars[f"chosen_{name.split('.')[-1]}"] = float(value)
    result.notes.append(
        "Expected shape: joint >= query-only >= default in speed-up; the "
        "chosen app config typically raises executors/memory above defaults "
        "for shuffle-heavy query mixes."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
