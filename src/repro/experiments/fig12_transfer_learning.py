"""Figure 12: transfer-learning warm starts with 100/500/1000 samples.

Contextual BO on the V0 platform (pre-recorded candidate sets, cached
results).  The baseline model is trained on rows sampled from all queries
*except* the optimization target (leave-one-query-out), and fine-tuned with
the target's accumulating observations.

The paper's headline: 500 samples converge to a *better* configuration than
1000 (gains of 15% vs 7%) because "additional samples beyond 500 reduce the
model's adaptability" — the benchmark rows swamp the query-specific
observations — while 100 samples give too weak a warm start.  The
:class:`~repro.offline.transfer.FineTunedSurrogate` reproduces this
mechanism directly: query rows are up-weighted by a fixed replication
factor, so a larger benchmark table dilutes them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..offline.transfer import FineTunedSurrogate
from ..ml.boosting import GradientBoostingRegressor
from ..sparksim.configs import query_level_space
from ..sparksim.noise import NoiseModel
from .parallel import parallel_map
from .platform_v0 import PrerecordedQuery, build_v0_platform, platform_training_table
from .runner import ExperimentResult

__all__ = ["run", "tune_on_platform"]

FULL_SAMPLE_SIZES = (100, 500, 1000)
QUICK_SAMPLE_SIZES = (30, 120, 400)


def _model_factory() -> GradientBoostingRegressor:
    return GradientBoostingRegressor(
        n_estimators=40, learning_rate=0.15, max_depth=3, min_samples_leaf=2,
        max_features=32, seed=0,
    )


def tune_on_platform(
    query: PrerecordedQuery,
    base_X: np.ndarray,
    base_y: np.ndarray,
    n_iterations: int,
    rng: np.random.Generator,
    query_weight: int = 5,
) -> np.ndarray:
    """Restricted-candidate CBO loop on one pre-recorded query.

    Each iteration refits the fine-tuned surrogate, scores every unseen
    pre-recorded configuration at the target's embedding/data size, executes
    the predicted-best one from the cache, and records the best-so-far time.
    """
    surrogate = FineTunedSurrogate(
        base_X, base_y, model_factory=_model_factory, query_weight=query_weight
    )
    n = len(query.configs)
    rows = np.array([
        np.concatenate([query.embedding, vector, [query.data_size]])
        for vector in query.configs
    ])
    seen: List[int] = []
    best_so_far = np.empty(n_iterations)
    best = np.inf
    for t in range(n_iterations):
        if not seen:
            index = int(rng.integers(0, n))
        else:
            surrogate.fit(rows[seen], query.times[seen])
            predictions = surrogate.predict(rows)
            predictions[seen] = np.inf  # restrict to unseen cached candidates
            index = int(np.argmin(predictions))
        seen.append(index)
        best = min(best, query.evaluate(index))
        best_so_far[t] = best
    return best_so_far


def run(
    quick: bool = False,
    seed: int = 0,
    sample_sizes: Optional[Sequence[int]] = None,
    n_workers=None,
) -> ExperimentResult:
    query_ids = (2, 7, 13, 21, 40) if quick else tuple(range(1, 19))
    n_configs = 60 if quick else 275
    n_iterations = 10 if quick else 25
    sizes = tuple(
        sample_sizes or (QUICK_SAMPLE_SIZES if quick else FULL_SAMPLE_SIZES)
    )
    space = query_level_space()
    # Recorded with mild measurement noise, as real cluster tables would be.
    platform = build_v0_platform(
        query_ids, benchmark="tpcds", scale_factor=100.0,
        n_configs=n_configs, space=space, seed=seed,
        recording_noise=NoiseModel(fluctuation_level=0.15, spike_level=0.2),
    )

    result = ExperimentResult(
        name="fig12_transfer_learning",
        description=(
            "Leave-one-query-out CBO on the V0 platform: total best-so-far "
            "execution time across target queries, per baseline sample size; "
            "speedup is relative to the manually tuned default (=1.0)."
        ),
    )
    total_default = sum(q.default_time for q in platform.values())
    total_best = sum(q.best_time for q in platform.values())
    result.scalars["total_default_seconds"] = total_default
    result.scalars["oracle_speedup"] = total_default / total_best

    def trace_for(size_qid) -> np.ndarray:
        size, qid = size_qid
        query = platform[qid]
        table = platform_training_table(platform, space, exclude=qid)
        table = table.subsample(size, np.random.default_rng(seed + size + qid))
        return tune_on_platform(
            query, table.X, table.y, n_iterations,
            rng=np.random.default_rng(seed * 31 + qid),
        )

    # One work item per (sample size, target query): the full cross product
    # is embarrassingly parallel, so dispatch it in a single pool pass.
    items = [(size, qid) for size in sizes for qid in platform]
    traces = parallel_map(trace_for, items, n_workers=n_workers)
    for size in sizes:
        totals = np.zeros(n_iterations)
        for (s, _), trace in zip(items, traces):
            if s == size:
                totals += trace
        label = f"samples_{size}"
        result.series[f"{label}_total_seconds"] = totals
        result.series[f"{label}_speedup"] = total_default / totals
        result.scalars[f"{label}_final_speedup"] = float(total_default / totals[-1])
    result.notes.append(
        "Expected shape: the mid sample size converges to the best final "
        "speedup (paper: 500 -> +15%, 1000 -> +7%); the smallest trails."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
