"""Extension: price-performance tuning over the 7-knob space.

``ext_knob_count`` shows that latency-only tuning of resource knobs buys
time with money.  Here the *objective itself* is changed: Centroid Learning
minimizes the :class:`~repro.core.objective.PricePerformanceObjective` blend
instead of raw latency.  Expected behavior across the weight sweep:

* weight 0 (latency-only): fastest configs, big core bills;
* weight 1 (cost-only): small allocations, slow but cheap;
* intermediate weights: the knee — most of the speed at a fraction of the
  cost (the fixed-budget teams' operating point).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.centroid import CentroidLearning
from ..core.objective import PricePerformanceObjective
from ..core.observation import Observation
from ..sparksim.configs import manual_study_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import NoiseModel
from ..workloads.tpcds import tpcds_plan
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run"]

DEFAULT_QUERIES = (8, 27, 51)
WEIGHTS = (0.0, 0.5, 1.0)


def run(
    quick: bool = False,
    seed: int = 0,
    query_ids: Sequence[int] = DEFAULT_QUERIES,
    weights: Sequence[float] = WEIGHTS,
    n_workers=None,
) -> ExperimentResult:
    query_ids = query_ids[:2] if quick else query_ids
    n_iterations = 30 if quick else 80
    space = manual_study_space()
    noise = NoiseModel(fluctuation_level=0.15, spike_level=0.2)
    truth = SparkSimulator(noise=None, seed=0)

    result = ExperimentResult(
        name="ext_price_performance",
        description=(
            "CL minimizing the latency/cost blend over 7 knobs: final wall "
            "time and core-seconds cost per objective weight (0 = pure "
            "latency, 1 = pure cost)."
        ),
    )
    w_tail = max(3, n_iterations // 6)
    default_time = 0.0
    default_cost = 0.0
    latency_objective = PricePerformanceObjective(weight=0.0)
    for qid in query_ids:
        plan = tpcds_plan(qid, 100.0)
        t = truth.true_time(plan, space.default_dict())
        default_time += t
        default_cost += PricePerformanceObjective(weight=1.0).cost(
            t, space.default_dict()
        )
    result.scalars["default_total_seconds"] = default_time
    result.scalars["default_core_seconds"] = default_cost

    def tune_one(item):
        weight, k, qid = item
        objective = PricePerformanceObjective(weight=weight)
        plan = tpcds_plan(qid, 100.0)
        data_size = max(plan.total_leaf_cardinality, 1.0)
        sim = SparkSimulator(noise=noise, seed=seed * 5 + k)
        cl = CentroidLearning(space, alpha=0.08, beta=0.15, n_candidates=30,
                              seed=seed + k)
        times = np.empty(n_iterations)
        costs = np.empty(n_iterations)
        for t in range(n_iterations):
            vec = cl.suggest(data_size=data_size)
            config = space.to_dict(vec)
            res = sim.run(plan, config)
            # The optimizer minimizes the blended score, not the latency.
            score = objective.score(res.elapsed_seconds, config, sim.pool)
            cl.observe(Observation(config=vec, data_size=res.data_size,
                                   performance=score, iteration=t))
            times[t] = res.true_seconds
            costs[t] = objective.cost(res.true_seconds, config, sim.pool)
        return times, costs

    items = [
        (weight, k, qid)
        for weight in weights
        for k, qid in enumerate(query_ids)
    ]
    traces = parallel_map(tune_one, items, n_workers=n_workers)
    for weight in weights:
        total_time = np.zeros(n_iterations)
        total_cost = np.zeros(n_iterations)
        for (w, _, _), (times, costs) in zip(items, traces):
            if w == weight:
                total_time += times
                total_cost += costs
        label = f"weight_{weight:g}"
        result.series[f"{label}_total_seconds"] = total_time
        result.series[f"{label}_core_seconds"] = total_cost
        result.scalars[f"{label}_final_seconds"] = float(total_time[-w_tail:].mean())
        result.scalars[f"{label}_final_core_seconds"] = float(
            total_cost[-w_tail:].mean()
        )
    result.notes.append(
        "Expected shape: final wall time increases with the cost weight "
        "while core-seconds decrease — weight selects a point on the "
        "price-performance frontier."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
