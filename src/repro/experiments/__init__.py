"""One module per paper figure/table, plus shared runner/report machinery.

Every module exposes ``run(quick: bool = False, seed: int = 0) ->
ExperimentResult``; ``python -m repro.experiments`` renders them all (quick
mode by default, ``--full`` for paper-scale replication counts).
"""

from . import (
    ablation_embedding,
    ablation_find_best,
    ablation_knob_pruning,
    ablation_window,
    app_level_joint,
    ext_categorical,
    ext_conservative,
    ext_drift_adversarial,
    ext_knob_count,
    ext_price_performance,
    ext_retrieval_warm_start,
    ext_stage_tuning,
    ext_streaming,
    fig01_shuffle_partitions,
    fig02_noisy_convergence,
    fig03_manual_tuning,
    fig08_synthetic_function,
    fig09_pseudo_surrogates,
    fig10_svr_surrogate,
    fig11_dynamic_workloads,
    fig12_transfer_learning,
    fig13_cl_vs_bo,
    fig14_tpch_production,
    fig15_internal_customers,
    fig16_external_customers,
)
from .runner import ConvergenceBands, ExperimentResult, run_replicated, run_single
from .report import format_bands, format_series_table, render_result

ALL_EXPERIMENTS = {
    "fig01": fig01_shuffle_partitions,
    "fig02": fig02_noisy_convergence,
    "fig03": fig03_manual_tuning,
    "fig08": fig08_synthetic_function,
    "fig09": fig09_pseudo_surrogates,
    "fig10": fig10_svr_surrogate,
    "fig11": fig11_dynamic_workloads,
    "fig12": fig12_transfer_learning,
    "fig13": fig13_cl_vs_bo,
    "fig14": fig14_tpch_production,
    "fig15": fig15_internal_customers,
    "fig16": fig16_external_customers,
    "ablation_embedding": ablation_embedding,
    "ablation_find_best": ablation_find_best,
    "ablation_knob_pruning": ablation_knob_pruning,
    "ablation_window": ablation_window,
    "app_level_joint": app_level_joint,
    "ext_categorical": ext_categorical,
    "ext_conservative": ext_conservative,
    "ext_drift_adversarial": ext_drift_adversarial,
    "ext_knob_count": ext_knob_count,
    "ext_price_performance": ext_price_performance,
    "ext_retrieval_warm_start": ext_retrieval_warm_start,
    "ext_stage_tuning": ext_stage_tuning,
    "ext_streaming": ext_streaming,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ConvergenceBands",
    "ExperimentResult",
    "format_bands",
    "format_series_table",
    "render_result",
    "run_replicated",
    "run_single",
]
