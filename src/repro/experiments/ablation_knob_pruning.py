"""Ablation: tuning the top-k knobs of a sensitivity ranking vs. all eight.

LOCAT-style space pruning (PAPERS.md, 2203.14889) claims most of a Spark
workload's headroom lives in a handful of knobs; the rest only slow the
search down.  This ablation quantifies that on the simulator with the
optimizer for which dimensionality has a real price: Bayesian optimization
under the standard ``n_init = 2 * dim + 1`` random initial design.  For
each TPC-DS workload a deterministic
:func:`repro.core.importance.rank_knobs` sweep selects the top-4 of the
8-knob catalog (on these workloads every knob past rank 4 scores at or
near zero, so the subspace still contains the full-space optimum), and two
otherwise identical BO sessions tune the full space and the
:class:`~repro.core.importance.PrunedSpace` (dropped knobs pinned at their
defaults through the decode path).  The full space burns 17 random steps
before its surrogate leads; the pruned space needs 9.

The headline metric is *steps to parity*, replicated over ``R`` seeds: the
per-seed first step at which the pruned session's best-seen true time
reaches the full session's best-by-step-``N_REF``, summarized by the
median.  The acceptance bar (asserted by
``tests/experiments/test_stage_experiments.py`` and the ``importance``
section of ``BENCH_perf.json``) is a median strictly under ``N_REF`` —
pruning reaches the full space's best-by-step-N cost in strictly fewer
steps — on at least 2 of the 3 workloads.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.importance import PrunedSpace, rank_knobs
from ..core.session import TuningSession
from ..optimizers.contextual_bo import ContextualBayesianOptimization
from ..sparksim.configs import full_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import low_noise
from ..workloads.tpcds import tpcds_plan
from .runner import ExperimentResult

__all__ = ["run", "steps_to_reach", "DEFAULT_QUERIES", "TOP_K", "N_REF"]

DEFAULT_QUERIES = (3, 7, 19)
TOP_K = 4
N_REF = 20     # the full arm's budget that defines each seed's target cost
N_SEEDS = 8


def steps_to_reach(best_so_far: np.ndarray, target: float) -> int:
    """First 1-based step at which ``best_so_far`` <= ``target``.

    Returns ``len(best_so_far) + 1`` when the target is never reached, so
    "fewer steps" comparisons stay well-defined.
    """
    best_so_far = np.asarray(best_so_far, dtype=float)
    hits = np.nonzero(best_so_far <= target)[0]
    return int(hits[0]) + 1 if len(hits) else len(best_so_far) + 1


def _tune(plan, space, *, seed: int, n_iterations: int) -> np.ndarray:
    """Best-seen true seconds after each iteration of one BO session."""
    simulator = SparkSimulator(noise=low_noise(), seed=seed * 101 + 1)
    optimizer = ContextualBayesianOptimization(
        space, embedding_dim=0, n_init=2 * space.dim + 1, seed=seed * 13 + 7,
    )
    trace = TuningSession(plan, simulator, optimizer).run(n_iterations)
    return np.minimum.accumulate([r.true_seconds for r in trace.records])


def run(
    quick: bool = False,
    seed: int = 0,
    query_ids: Sequence[int] = DEFAULT_QUERIES,
) -> ExperimentResult:
    n_iterations = 24 if quick else 30
    space = full_space()

    result = ExperimentResult(
        name="ablation_knob_pruning",
        description=(
            "Full 8-knob BO vs. the ranking's top-4 subspace on TPC-DS "
            f"(n_init = 2*dim+1, {N_SEEDS} seeds): median steps for the "
            f"pruned arm to reach the full arm's best-by-step-{N_REF}."
        ),
    )

    wins = 0
    for qid in query_ids:
        plan = tpcds_plan(qid, 100.0)
        ranking = rank_knobs(
            plan, space,
            simulator=SparkSimulator(noise=low_noise(), seed=seed),
            seed=seed,
        )
        pruned = PrunedSpace.from_ranking(ranking, space, TOP_K)

        steps = []
        mean_full = np.zeros(n_iterations)
        mean_pruned = np.zeros(n_iterations)
        for s in range(N_SEEDS):
            run_seed = seed * 997 + s * 31 + qid
            best_full = _tune(plan, space, seed=run_seed, n_iterations=n_iterations)
            best_pruned = _tune(plan, pruned, seed=run_seed, n_iterations=n_iterations)
            steps.append(steps_to_reach(best_pruned, float(best_full[N_REF - 1])))
            mean_full += best_full / N_SEEDS
            mean_pruned += best_pruned / N_SEEDS
        median_steps = float(np.median(steps))
        if median_steps < N_REF:
            wins += 1

        result.series[f"q{qid}_mean_best_full"] = mean_full
        result.series[f"q{qid}_mean_best_pruned"] = mean_pruned
        result.scalars[f"q{qid}_median_steps_pruned"] = median_steps
        result.scalars[f"q{qid}_kept_knobs"] = float(pruned.dim)

    result.scalars["n_workloads"] = float(len(query_ids))
    result.scalars["pruned_faster_workloads"] = float(wins)
    result.scalars["top_k"] = float(TOP_K)
    result.scalars["n_ref"] = float(N_REF)
    result.notes.append(
        "Acceptance bar: the pruned subspace reaches the full space's "
        f"best-by-step-{N_REF} cost in strictly fewer steps (median over "
        f"{N_SEEDS} seeds) on at least 2 of the 3 workloads."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
