"""Sec.-6.2 embedding ablation: virtual operators vs plain operator counts.

"We evaluate performance using (1) the workload embeddings proposed in [53]
(counts of operator types) and (2) the embedding method of Sec. 4.1 ...
Starting from iteration 5, these embeddings yield an additional 5–10%
improvement in performance consistently."

Setup: leave-one-query-out baseline models trained on flighting data with
each embedding scheme; the target query is tuned with the baseline guiding
candidate selection through the early iterations.  The finer-grained
virtual-operator embedding lets the baseline distinguish plans whose
operator mixes match but whose cardinalities differ, so its early
suggestions track the target's true response surface more closely.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..core.centroid import CentroidLearning, default_window_model_factory
from ..core.selectors import BaselineModelAdapter, SurrogateSelector
from ..core.session import TuningSession
from ..embedding.embedder import WorkloadEmbedder
from ..offline.baseline import BaselineModelTrainer
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import NoiseModel
from ..workloads.tpcds import tpcds_plan
from .parallel import parallel_map
from .platform_v0 import build_v0_platform, platform_training_table
from .runner import ExperimentResult

__all__ = ["run"]

DEFAULT_QUERIES = tuple(range(1, 19))  # "18 TPC-DS queries" (Sec. 6.2)


def run(
    quick: bool = False,
    seed: int = 0,
    query_ids: Sequence[int] = DEFAULT_QUERIES,
    n_workers=None,
) -> ExperimentResult:
    query_ids = query_ids[:5] if quick else query_ids
    n_configs = 40 if quick else 120
    n_iterations = 12 if quick else 30
    scale_factor = 100.0 if quick else 1000.0  # paper: SF = 1000G
    space = query_level_space()
    noise = NoiseModel(fluctuation_level=0.3, spike_level=0.4)

    embedders = {
        "virtual_ops": WorkloadEmbedder(use_virtual_operators=True),
        "plain_ops": WorkloadEmbedder(use_virtual_operators=False),
    }
    result = ExperimentResult(
        name="ablation_embedding",
        description=(
            "Leave-one-query-out warm-start tuning with virtual-operator vs "
            "plain operator-count embeddings: mean true time from iteration "
            "5 on, relative to the default configuration."
        ),
    )
    improvements: Dict[str, list] = {label: [] for label in embedders}
    for label, embedder in embedders.items():
        platform = build_v0_platform(
            query_ids, scale_factor=scale_factor, n_configs=n_configs,
            space=space, embedder=embedder, seed=seed,
        )

        def tune_query(indexed_qid, embedder=embedder):
            k, qid = indexed_qid
            table = platform_training_table(platform, space, exclude=qid)
            baseline = BaselineModelTrainer().train(table)
            adapter = BaselineModelAdapter(baseline, table.embedding_dim)
            selector = SurrogateSelector(
                default_window_model_factory, baseline=adapter, min_observations=6
            )
            optimizer = CentroidLearning(space, selector=selector, seed=seed + k)
            session = TuningSession(
                tpcds_plan(qid, scale_factor),
                SparkSimulator(noise=noise, seed=seed * 3 + k),
                optimizer,
                embedder=embedder,
            )
            trace = session.run(n_iterations)
            default_time = session.default_true_time()
            from_iter5 = float(trace.true[5:].mean())
            return trace.true, (default_time / from_iter5 - 1.0) * 100.0

        per_query = parallel_map(
            tune_query, list(enumerate(query_ids)), n_workers=n_workers
        )
        totals = np.zeros(n_iterations)
        for true_trace, improvement in per_query:
            totals += true_trace
            improvements[label].append(improvement)
        result.series[f"{label}_total_true_seconds"] = totals
        result.scalars[f"{label}_mean_improvement_pct"] = float(
            np.mean(improvements[label])
        )
    virtual = result.scalars["virtual_ops_mean_improvement_pct"]
    plain = result.scalars["plain_ops_mean_improvement_pct"]
    result.scalars["virtual_advantage_pct_points"] = virtual - plain
    result.notes.append(
        "Expected shape: both embeddings beat the default from iteration 5; "
        "virtual operators add extra percentage points (paper: +5-10%)."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
