"""Figure 8: the synthetic objective before and after noise injection.

Sweeps one configuration axis of the Sec.-6.1 convex objective and shows the
noiseless curve (dashed line in the paper) against a noisy draw (solid) for
the high-noise (FL=SL=1) and low-noise (FL=SL=0.1) regimes.
"""

from __future__ import annotations

import numpy as np

from ..sparksim.noise import high_noise, low_noise
from ..workloads.synthetic import default_synthetic_objective
from .runner import ExperimentResult

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    n_points = 20 if quick else 60
    objective = default_synthetic_objective(noise=None, seed=7)
    space = objective.space
    bounds = space.internal_bounds
    grid = np.linspace(bounds[0, 0], bounds[0, 1], n_points)
    base = space.default_vector()

    vectors = np.tile(base, (n_points, 1))
    vectors[:, 0] = grid
    true = np.array([objective.true_value(v) for v in vectors])

    result = ExperimentResult(
        name="fig08_synthetic_function",
        description=(
            "Convex synthetic objective along conf1: noiseless curve vs one "
            "noisy draw under high (FL=SL=1) and low (FL=SL=0.1) noise."
        ),
    )
    result.series["conf1_grid"] = grid
    result.series["true_seconds"] = true
    for label, noise in (("high_noise", high_noise()), ("low_noise", low_noise())):
        rng = np.random.default_rng(seed)
        noisy = noise.apply_many(true, rng)
        result.series[f"{label}_draw"] = noisy
        result.scalars[f"{label}_mean_inflation"] = float(np.mean(noisy / true))
        result.scalars[f"{label}_max_inflation"] = float(np.max(noisy / true))
    result.scalars["optimum_conf1"] = float(objective.optimum[0])
    result.notes.append(
        "Shape check: noisy draws always lie on or above the true curve "
        "(Eq. 8 only slows executions down), with ~10% of high-noise points "
        "doubled by spikes."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
