"""Shared experiment machinery.

The paper's convergence figures plot, per iteration, the median **true**
performance of the *suggested* configuration across many independent runs,
with a 5th–95th percentile band.  :func:`run_replicated` produces that runs
matrix for any optimizer on any synthetic objective, and
:class:`ConvergenceBands` summarizes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.observation import Observation
from ..core.optimizer_base import Optimizer
from ..workloads.dynamics import ConstantSize, DataSizeProcess
from ..workloads.synthetic import SyntheticObjective

__all__ = ["ConvergenceBands", "ExperimentResult", "run_replicated", "run_single"]


@dataclass
class ConvergenceBands:
    """Median + (p5, p95) band of a runs matrix, per iteration.

    The runs matrix is copied and frozen on construction: report code reads
    ``median``/``p5``/``p95`` repeatedly, so each percentile is computed
    once and cached.
    """

    runs: np.ndarray  # (n_runs, n_iterations)

    def __post_init__(self) -> None:
        self.runs = np.atleast_2d(np.array(self.runs, dtype=float, copy=True))
        self.runs.setflags(write=False)
        self._percentile_cache: Dict[float, np.ndarray] = {}

    @property
    def n_runs(self) -> int:
        return self.runs.shape[0]

    @property
    def n_iterations(self) -> int:
        return self.runs.shape[1]

    def _percentile(self, q: float) -> np.ndarray:
        cached = self._percentile_cache.get(q)
        if cached is None:
            cached = np.percentile(self.runs, q, axis=0)
            cached.setflags(write=False)
            self._percentile_cache[q] = cached
        return cached

    @property
    def median(self) -> np.ndarray:
        return self._percentile(50.0)

    @property
    def p5(self) -> np.ndarray:
        return self._percentile(5.0)

    @property
    def p95(self) -> np.ndarray:
        return self._percentile(95.0)

    def final_median(self, tail: int = 10) -> float:
        """Median across runs of the mean of each run's last ``tail`` values."""
        tail = min(tail, self.n_iterations)
        return float(np.median(self.runs[:, -tail:].mean(axis=1)))

    def final_p95(self, tail: int = 10) -> float:
        tail = min(tail, self.n_iterations)
        return float(np.percentile(self.runs[:, -tail:].mean(axis=1), 95.0))


@dataclass
class ExperimentResult:
    """Output of one paper figure/table reproduction."""

    name: str
    description: str
    series: Dict[str, object] = field(default_factory=dict)   # label -> bands/arrays
    scalars: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def scalar(self, key: str) -> float:
        return self.scalars[key]


def run_single(
    optimizer: Optimizer,
    objective: SyntheticObjective,
    n_iterations: int,
    size_process: Optional[DataSizeProcess] = None,
    rng: Optional[np.random.Generator] = None,
    track: str = "true",
) -> np.ndarray:
    """One tuning run on a synthetic objective.

    Args:
        optimizer: a fresh optimizer instance.
        objective: the synthetic objective (carries the noise model).
        n_iterations: loop length.
        size_process: data-size dynamics (default constant at the
            objective's reference size).
        rng: noise RNG.
        track: ``"true"`` (noiseless value of the suggested config),
            ``"normed"`` (true / data size, the Fig.-11 view), or
            ``"gap"`` (optimality gap along the most impactful dimension).

    Returns:
        array of length ``n_iterations`` with the tracked quantity.
    """
    if track not in ("true", "normed", "gap"):
        raise ValueError(f"unknown track mode {track!r}")
    size_process = size_process or ConstantSize(objective.reference_size)
    rng = rng or np.random.default_rng()
    out = np.empty(n_iterations)
    impactful = objective.most_impactful_dimension
    for t in range(n_iterations):
        p = size_process(t)
        vector = optimizer.suggest(data_size=p)
        observed = objective.observe(vector, p, rng)
        optimizer.observe(
            Observation(config=vector, data_size=p, performance=observed, iteration=t)
        )
        if track == "true":
            out[t] = objective.true_value(vector, objective.reference_size)
        elif track == "normed":
            out[t] = objective.true_value(vector, p) / p
        else:
            out[t] = objective.optimality_gap(vector, dimension=impactful)
    return out


def run_replicated(
    optimizer_factory: Callable[[int], Optimizer],
    objective: SyntheticObjective,
    n_iterations: int,
    n_runs: int,
    size_process_factory: Optional[Callable[[int], DataSizeProcess]] = None,
    seed: int = 0,
    track: str = "true",
    n_workers: Union[int, str, None] = None,
    collect: Optional[Callable[[Optimizer], Any]] = None,
    engine: str = "auto",
) -> Union[ConvergenceBands, Tuple[ConvergenceBands, List[Any]]]:
    """Repeat :func:`run_single` over ``n_runs`` independent seeds.

    When every run is a default-structured Centroid Learning session (one
    shared workload family), the runs advance in lock-step on the
    vectorized engine in :mod:`repro.experiments.lockstep` — bit-identical
    to the serial loop by construction.  Populations outside that envelope
    (other optimizer types, custom selectors, robust guardrails) dispatch
    over the process-pool engine in :mod:`repro.experiments.parallel`; each
    run derives its RNG from ``(seed, run_index)`` and owns a fresh
    optimizer, so the resulting runs matrix is bit-identical regardless of
    the worker count or engine choice.

    Args:
        optimizer_factory: ``run_index -> fresh optimizer``.  With more than
            one worker the factory executes in a forked child, so parent-side
            side effects (e.g. appending to a list) are lost — use
            ``collect`` to bring per-run state back instead.
        objective: shared synthetic objective.
        n_iterations: iterations per run.
        n_runs: replication count (the paper uses 100–200).
        size_process_factory: ``run_index -> size process`` (default constant).
        seed: base seed; run ``i`` draws noise from ``seed*10007 + i``.
        track: see :func:`run_single`.
        n_workers: process count — ``None`` defers to ``$REPRO_WORKERS``
            (default serial), ``"auto"``/``0`` use every available core.
        collect: optional ``finished optimizer -> picklable payload`` hook;
            when given, the return value becomes ``(bands, payloads)`` with
            one payload per run, in run order.
        engine: ``"auto"`` (lock-step when the population is compatible,
            process pool otherwise), ``"lockstep"`` (raise on incompatible
            populations) or ``"process"``.
    """
    if engine not in ("auto", "lockstep", "process"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine != "process":
        from .lockstep import LockstepCompatibilityError, LockstepReplicatedRuns

        if track not in ("true", "normed", "gap"):
            raise ValueError(f"unknown track mode {track!r}")
        optimizers = [optimizer_factory(i) for i in range(n_runs)]
        try:
            lockstep = LockstepReplicatedRuns(
                optimizers,
                objective,
                [
                    size_process_factory(i) if size_process_factory
                    else ConstantSize(objective.reference_size)
                    for i in range(n_runs)
                ],
                [np.random.default_rng(seed * 10007 + i) for i in range(n_runs)],
            )
        except LockstepCompatibilityError:
            if engine == "lockstep":
                raise
        else:
            lockstep.advance(n_iterations)
            bands = ConvergenceBands(lockstep.runs(track))
            if collect is not None:
                return bands, [collect(opt) for opt in optimizers]
            return bands

    from .parallel import run_replicated_parallel

    runs, payloads = run_replicated_parallel(
        optimizer_factory,
        objective,
        n_iterations,
        n_runs,
        size_process_factory=size_process_factory,
        seed=seed,
        track=track,
        n_workers=n_workers,
        collect=collect,
    )
    bands = ConvergenceBands(runs)
    if collect is not None:
        return bands, payloads
    return bands
