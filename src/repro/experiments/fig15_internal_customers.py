"""Figure 15: per-notebook speed-ups for internal customer workloads.

"We also evaluate production performance using workloads from an internal
customer, achieving an average performance improvement of 17% across more
than 60 tested Fabric notebooks, with execution time improvements reaching
up to 100%."  Each simulated notebook is a recurring multi-query workload
with drifting input sizes; speed-up compares the first and last tuning
windows on *data-size-normalized true* times (the paper filters out
data-size effects the same way).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.centroid import CentroidLearning
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..workloads.customer import CustomerWorkload, generate_population
from .lockstep import LockstepSessions, SessionSpec, run_sequential
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run", "tune_workload", "workload_specs"]


def workload_specs(
    workload: CustomerWorkload,
    seed: int,
    guardrail_factory=None,
) -> List[SessionSpec]:
    """One lock-step :class:`SessionSpec` per query of a recurring notebook.

    Seeds derive per query exactly like the historical per-query loop
    (simulator ``seed*101+q``, optimizer ``seed*13+q``); the pathology
    multiplier draws from a per-query RNG (``seed*10007+q``, the
    ``parallel`` engine's derivation pattern) so queries are independent
    streams under any engine.
    """
    space = query_level_space()
    specs: List[SessionSpec] = []
    for q_index, plan in enumerate(workload.plans):
        simulator = SparkSimulator(noise=workload.noise, seed=seed * 101 + q_index)
        guardrail = guardrail_factory() if guardrail_factory else None
        optimizer = CentroidLearning(
            space, guardrail=guardrail, seed=seed * 13 + q_index
        )
        transform = None
        if workload.pathology is not None:
            path_rng = np.random.default_rng(seed * 10007 + q_index)
            transform = (
                lambda t, observed, _rng=path_rng: observed
                * workload.pathology_multiplier(t, _rng)
            )
        specs.append(SessionSpec(
            plan=plan,
            simulator=simulator,
            optimizer=optimizer,
            scale_fn=workload.data_scale,
            observe_transform=transform,
        ))
    return specs


def tune_workload(
    workload: CustomerWorkload,
    n_iterations: int,
    seed: int,
    guardrail_factory=None,
    engine: str = "lockstep",
) -> dict:
    """Tune every query of one recurring notebook; returns summary stats.

    The notebook's queries run as a lock-step population by default
    (``engine="lockstep"``); ``engine="sequential"`` drives the identical
    :class:`~repro.core.session.TuningSession` loop per query and is
    bit-identical by the engine's contract (the differential oracle in
    :mod:`repro.verify.diff` pins this).

    Returns a dict with ``speedup_pct`` (first vs last window, normalized by
    data scale), ``disabled`` (guardrail fired on any query), and
    ``n_queries``.
    """
    if engine not in ("lockstep", "sequential"):
        raise ValueError(f"unknown engine {engine!r}")
    specs = workload_specs(workload, seed, guardrail_factory)
    if engine == "lockstep":
        traces = LockstepSessions(specs).run(n_iterations)
    else:
        traces = run_sequential(specs, n_iterations)

    scales = np.array([workload.data_scale(t) for t in range(n_iterations)])
    if workload.pathology == "drift":
        # The drift multiplier is deterministic in t (consumes no RNG);
        # fold it into the normalized view like the posterior analysis.
        drift_rng = np.random.default_rng(0)
        scales = scales / np.array([
            workload.pathology_multiplier(t, drift_rng)
            for t in range(n_iterations)
        ])
    first_total, last_total = 0.0, 0.0
    disabled = False
    w = max(2, n_iterations // 6)
    for spec, trace in zip(specs, traces):
        # Normalize by scale so workload growth doesn't masquerade as a
        # regression (the paper's posterior analysis does the same).
        normed_true = trace.true / scales
        first_total += float(np.mean(normed_true[:w]))
        last_total += float(np.mean(normed_true[-w:]))
        guardrail = spec.optimizer.guardrail
        if guardrail is not None and not guardrail.active:
            disabled = True
    speedup_pct = (first_total / last_total - 1.0) * 100.0 if last_total > 0 else 0.0
    return {
        "speedup_pct": speedup_pct,
        "disabled": disabled,
        "n_queries": len(workload.plans),
    }


def run(quick: bool = False, seed: int = 0, n_workers=None) -> ExperimentResult:
    n_workloads = 12 if quick else 60
    n_iterations = 14 if quick else 40
    population = generate_population(
        n_workloads, seed=seed, pathological_fraction=0.03,
        base_noise=(0.15, 0.45),
    )

    def tune_one(indexed_workload) -> float:
        i, workload = indexed_workload
        return tune_workload(workload, n_iterations, seed=seed * 7 + i)["speedup_pct"]

    speedups = np.array(
        parallel_map(tune_one, list(enumerate(population)), n_workers=n_workers)
    )
    result = ExperimentResult(
        name="fig15_internal_customers",
        description=(
            "Percentage speed-up per internal-customer notebook (first vs "
            "last tuning window, data-size normalized)."
        ),
        series={"speedup_pct_sorted": np.sort(speedups)},
    )
    result.scalars["n_notebooks"] = float(n_workloads)
    result.scalars["mean_speedup_pct"] = float(speedups.mean())
    result.scalars["median_speedup_pct"] = float(np.median(speedups))
    result.scalars["max_speedup_pct"] = float(speedups.max())
    result.scalars["fraction_improved"] = float(np.mean(speedups > 0))
    result.notes.append(
        "Expected shape: mean speed-up in the mid-teens (paper: ~17%), a "
        "long positive tail (paper: up to 100%), most notebooks improved."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
