"""Sec.-4.3 FIND_BEST ablation: raw vs normalized vs model-based (v1/v2/v3).

The paper motivates three refinements: the raw minimum time "may favor
candidates with minimal data sizes"; the ``r/p`` normalization (Eq. 3) is
still biased because ``r/p`` falls as ``p`` grows; the model-based version
(Eq. 5) predicts every observed config at one fixed data size.

The primary measurement here isolates the claim directly: synthetic windows
of observations with *spread-out configs* and *varying data sizes* are
handed to each FIND_BEST version, and we score the **selection regret** —
how much worse (in true time at a fixed data size) the picked configuration
is than the best configuration present in the window.  The secondary series
runs the full Centroid Learning loop with each version to show end-to-end
effects (small by design: within a β-restricted window all anchors are
close).
"""

from __future__ import annotations


import numpy as np

from ..core.centroid import CentroidLearning
from ..core.find_best import FindBestMode, find_best
from ..core.observation import Observation, ObservationWindow
from ..ml.linear import LinearRegression
from ..ml.scaler import Pipeline, StandardScaler
from ..sparksim.noise import NoiseModel
from ..workloads.dynamics import RandomWalkSize
from ..workloads.synthetic import default_synthetic_objective
from .parallel import parallel_map
from .runner import ExperimentResult, run_replicated

__all__ = ["run"]

MODES = {
    "v1_raw": FindBestMode.RAW,
    "v2_normalized": FindBestMode.NORMALIZED,
    "v3_model": FindBestMode.MODEL,
}


def _linear_h_factory():
    """The paper's FIND_BEST surface: "A linear surface is employed to
    approximate the small region explored in these iterations, enabling
    robust gradient calculation" — and, over spread windows, robust ranking
    (a quadratic fit overfits 10 noisy points)."""
    return Pipeline([("scale", StandardScaler()), ("ols", LinearRegression())])


def _selection_regret(objective, mode, n_windows, window_size, rng) -> np.ndarray:
    """Regret of FIND_BEST picks over random drifted windows.

    Each window: configs spread over a 0.4-span box (a centroid that moved),
    data sizes from a volatile random walk, observations noisy.  Regret is
    the true-time excess of the pick over the window's true best, both
    evaluated at the reference size.
    """
    space = objective.space
    bounds = space.internal_bounds
    span = bounds[:, 1] - bounds[:, 0]
    p0 = objective.reference_size
    regrets = np.empty(n_windows)
    for w in range(n_windows):
        anchor = space.sample_vector(rng)
        sizes = RandomWalkSize(initial=p0, volatility=0.35,
                               seed=int(rng.integers(0, 2**31 - 1)))
        window = ObservationWindow(window_size)
        configs = []
        for i in range(window_size):
            config = space.clip(anchor + rng.uniform(-0.2, 0.2, space.dim) * span)
            p = sizes(i)
            r = objective.observe(config, p, rng)
            window.append(Observation(config=config, data_size=p,
                                      performance=r, iteration=i))
            configs.append(config)
        true_at_ref = np.array([objective.true_value(c, p0) for c in configs])
        pick = find_best(
            window, mode=mode, model_factory=_linear_h_factory,
            fixed_data_size=p0,
        )
        regrets[w] = objective.true_value(pick.config, p0) - true_at_ref.min()
    return regrets


def run(quick: bool = False, seed: int = 0, n_workers=None) -> ExperimentResult:
    n_windows = 60 if quick else 400
    window_size = 10
    n_runs = 8 if quick else 40
    n_iterations = 80 if quick else 250
    # Sub-linear time-vs-size (γ=0.6): the production behavior that makes the
    # raw minimum favor small-p runs and r/p over-favor large-p runs.
    objective = default_synthetic_objective(
        noise=NoiseModel(fluctuation_level=0.3, spike_level=0.3), seed=7,
        size_exponent=0.6,
    )
    space = objective.space
    p0 = objective.reference_size

    result = ExperimentResult(
        name="ablation_find_best",
        description=(
            "FIND_BEST v1 (raw), v2 (normalized, Eq. 3), v3 (model, Eq. 5): "
            "selection regret over drifted windows with varying data sizes, "
            "plus end-to-end Centroid Learning runs."
        ),
    )
    # Primary: selection regret — one independent sweep per FIND_BEST mode.
    def regret_for(indexed_mode) -> np.ndarray:
        index, mode = indexed_mode
        rng = np.random.default_rng(seed * 17 + index)
        return _selection_regret(objective, mode, n_windows, window_size, rng)

    regret_runs = parallel_map(
        regret_for, list(enumerate(MODES.values())), n_workers=n_workers
    )
    for (label, _), regrets in zip(MODES.items(), regret_runs):
        result.series[f"{label}_regret_sorted"] = np.sort(regrets)
        result.scalars[f"{label}_mean_regret"] = float(regrets.mean())
        result.scalars[f"{label}_p90_regret"] = float(np.percentile(regrets, 90))

    # Secondary: end-to-end tuning with each version.
    def size_factory(i: int) -> RandomWalkSize:
        return RandomWalkSize(initial=p0, volatility=0.4, seed=9000 + i)

    for index, (label, mode) in enumerate(MODES.items()):
        bands = run_replicated(
            lambda i, m=mode: CentroidLearning(space, find_best_mode=m, seed=seed + i),
            objective,
            n_iterations,
            n_runs,
            size_process_factory=size_factory,
            seed=seed + 101 * index,
            n_workers=n_workers,
        )
        result.series[f"{label}_tuning"] = bands
        result.scalars[f"{label}_final_median"] = bands.final_median()
    result.scalars["optimal_value"] = objective.optimal_value
    result.scalars["default_value"] = objective.true_value(space.default_vector())
    result.notes.append(
        "Expected shape: mean selection regret v3 < v2 < v1 (the Eq.-5 model "
        "corrects both the raw and the r/p bias); end-to-end differences are "
        "muted because all anchors lie inside the β-restricted window."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
