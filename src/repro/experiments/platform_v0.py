"""The V0 evaluation platform (Sec. 6.2).

"The platform (V0) implements a synthetic evaluation method that proactively
generates a large set of configuration performance data for each query.
During inference, we restrict the candidate set to these pre-recorded
configurations and use cached results without live query execution."

The paper evaluates "over 275 configuration combinations per query"; this
module pre-records that table per query on the (noiseless) simulator, and
provides the Eq.-2 training rows for transfer-learning experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.config_space import ConfigSpace
from ..embedding.embedder import WorkloadEmbedder
from ..offline.etl import TrainingTable
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import no_noise
from ..sparksim.plan import PhysicalPlan
from ..workloads.tpcds import tpcds_plan
from ..workloads.tpch import tpch_plan

__all__ = ["PrerecordedQuery", "build_v0_platform", "platform_training_table"]


@dataclass
class PrerecordedQuery:
    """One query's cached configuration→time table."""

    query_id: int
    plan: PhysicalPlan
    configs: np.ndarray     # (n_configs, dim) internal vectors
    times: np.ndarray       # (n_configs,) noiseless seconds
    embedding: np.ndarray
    default_time: float
    data_size: float

    @property
    def best_time(self) -> float:
        return float(self.times.min())

    def evaluate(self, index: int) -> float:
        """Cached result lookup (no live execution)."""
        return float(self.times[index])


def build_v0_platform(
    query_ids: Sequence[int],
    benchmark: str = "tpcds",
    scale_factor: float = 100.0,
    n_configs: int = 275,
    space: Optional[ConfigSpace] = None,
    embedder: Optional[WorkloadEmbedder] = None,
    recording_noise: Optional["NoiseModel"] = None,
    seed: int = 0,
) -> Dict[int, PrerecordedQuery]:
    """Pre-record ``n_configs`` configurations per query.

    Args:
        recording_noise: optional noise applied to the recorded times — the
            paper's tables came from real cluster measurements, which carry
            run-to-run variance even in a controlled setting.
    """
    if benchmark not in ("tpcds", "tpch"):
        raise ValueError(f"unknown benchmark {benchmark!r}")
    plan_fn = tpcds_plan if benchmark == "tpcds" else tpch_plan
    space = space or query_level_space()
    embedder = embedder or WorkloadEmbedder()
    simulator = SparkSimulator(noise=no_noise(), seed=seed)
    rng = np.random.default_rng(seed)
    platform: Dict[int, PrerecordedQuery] = {}
    for qid in query_ids:
        plan = plan_fn(qid, scale_factor)
        configs = space.latin_hypercube(n_configs, rng)
        times = simulator.true_time_batch(plan, configs, space=space)
        if recording_noise is not None:
            times = recording_noise.apply_many(times, rng)
        platform[qid] = PrerecordedQuery(
            query_id=qid,
            plan=plan,
            configs=configs,
            times=times,
            embedding=embedder.embed(plan),
            default_time=simulator.true_time(plan, space.default_dict()),
            data_size=max(plan.total_leaf_cardinality, 1.0),
        )
    return platform


def platform_training_table(
    platform: Dict[int, PrerecordedQuery],
    space: ConfigSpace,
    exclude: Optional[int] = None,
) -> TrainingTable:
    """Eq.-2 training rows from the pre-recorded tables.

    Args:
        platform: output of :func:`build_v0_platform`.
        space: the configuration space used to record it.
        exclude: optional query id to leave out (transfer-learning target).
    """
    rows: List[np.ndarray] = []
    targets: List[float] = []
    signatures: List[str] = []
    for qid, q in platform.items():
        if exclude is not None and qid == exclude:
            continue
        for vector, seconds in zip(q.configs, q.times):
            rows.append(np.concatenate([q.embedding, vector, [q.data_size]]))
            targets.append(seconds)
            signatures.append(q.plan.signature())
    if not rows:
        raise ValueError("platform produced no training rows")
    return TrainingTable(
        X=np.array(rows),
        y=np.array(targets),
        embedding_dim=len(next(iter(platform.values())).embedding),
        config_dim=space.dim,
        signatures=signatures,
        regions=["default"] * len(targets),
    )
