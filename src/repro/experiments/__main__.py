"""Run paper-figure reproductions from the command line.

    python -m repro.experiments                 # all, quick mode
    python -m repro.experiments fig10 fig13     # a subset
    python -m repro.experiments --full          # paper-scale replication
    python -m repro.experiments --workers auto  # fan out over all cores
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from . import ALL_EXPERIMENTS
from .report import render_result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments", nargs="*",
        help=f"which experiments to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--full", action="store_true",
                        help="paper-scale replication counts (slow)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", default=None, metavar="N",
                        help="process-pool size: an integer or 'auto' "
                             "(default: $REPRO_WORKERS, else serial)")
    args = parser.parse_args(argv)

    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; choose from {list(ALL_EXPERIMENTS)}")

    for name in names:
        start = time.time()
        run = ALL_EXPERIMENTS[name].run
        kwargs = {"quick": not args.full, "seed": args.seed}
        if "n_workers" in inspect.signature(run).parameters:
            kwargs["n_workers"] = args.workers
        result = run(**kwargs)
        print(render_result(result))
        print(f"  [{name} took {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
