"""Figure 9: Centroid Learning with Level-X pseudo-surrogate models.

100 runs per level on constant workloads with high noise.  A "Level X" model
always selects the candidate at the ``10·X``-th percentile of *true*
performance; the paper's finding is that CL converges robustly even at
Level 5 (a model no better than a coin flip among the candidate pool),
outperforming vanilla BO (Fig. 2).
"""

from __future__ import annotations

from typing import Sequence

from ..core.centroid import CentroidLearning
from ..core.selectors import PseudoSurrogateSelector
from ..sparksim.noise import high_noise
from ..workloads.synthetic import default_synthetic_objective
from .runner import ExperimentResult, run_replicated

__all__ = ["run", "DEFAULT_LEVELS"]

DEFAULT_LEVELS = (9, 7, 5, 3, 1)


def run(
    quick: bool = False,
    seed: int = 0,
    levels: Sequence[int] = DEFAULT_LEVELS,
    n_workers=None,
) -> ExperimentResult:
    n_runs = 10 if quick else 100
    n_iterations = 80 if quick else 400
    objective = default_synthetic_objective(noise=high_noise(), seed=7)
    space = objective.space

    result = ExperimentResult(
        name="fig09_pseudo_surrogates",
        description=(
            "Centroid Learning convergence with pseudo-surrogates that pick "
            "the 10·X-th percentile candidate (constant workloads, high noise)."
        ),
    )
    result.scalars["optimal_value"] = objective.optimal_value
    result.scalars["default_value"] = objective.true_value(space.default_vector())
    for level in levels:
        selector = PseudoSurrogateSelector(objective.true_value, level)
        bands = run_replicated(
            lambda i, sel=selector: CentroidLearning(space, selector=sel, seed=seed + i),
            objective,
            n_iterations,
            n_runs,
            seed=seed + level,
            n_workers=n_workers,
        )
        result.series[f"level_{level}"] = bands
        result.scalars[f"level_{level}_final_median"] = bands.final_median()
    result.notes.append(
        "Expected shape: lower levels converge closer to the optimum; even "
        "level 5 improves on the default and avoids BO-style divergence."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
