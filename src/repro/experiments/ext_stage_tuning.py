"""Extension: stage-scoped shuffle sizing vs. the best whole-app setting.

Spark's ``spark.sql.shuffle.partitions`` is an application-level knob, but
real queries mix exchanges of wildly different sizes: a fact-table shuffle
wants thousands of partitions while the post-aggregation exchange moving a
few megabytes pays pure scheduling overhead for every extra one.  AQE
closes that gap by re-sizing each exchange from *observed* map-side output.

This experiment reproduces the effect on the simulator using the stage
overlay (``repro.sparksim.overlay``) and the AQE-style re-plan hook
(``repro.sparksim.replan``): on synthetic plans with heterogeneous
exchanges, the per-exchange :class:`~repro.sparksim.replan.TargetBytesPerPartition`
policy must beat the *best* single whole-app ``shuffle.partitions`` found
by an exhaustive grid sweep.  Each arm calibrates its one scalar the same
way — the whole-app arm sweeps the partition-count grid, the stage arm
sweeps the policy's advisory target size (AQE's
``advisoryPartitionSizeInBytes``) — but the stage arm's scalar adapts
every exchange to its own observed bytes, so no single global partition
count can match it on plans whose exchanges differ by orders of
magnitude.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..sparksim.configs import full_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.plan import Operator, OpType, PhysicalPlan
from ..sparksim.replan import TargetBytesPerPartition, run_with_replan
from .runner import ExperimentResult

__all__ = ["run", "stage_plans"]


def stage_plans() -> Dict[str, PhysicalPlan]:
    """Synthetic plans with explicit, heterogeneous ``Exchange`` nodes.

    ``skew_heavy`` funnels a 20 GB fact shuffle into a kilobyte-scale
    tail exchange; ``mixed_pipeline`` staggers four exchanges across four
    orders of magnitude.  The workload catalog's TPC-H/TPC-DS plans keep
    their shuffles implicit in joins/aggregates — explicit exchanges are
    where per-stage partition counts diverge hardest from any global
    setting, which is exactly the regime this experiment isolates.
    """
    skew_heavy = PhysicalPlan([
        Operator(0, OpType.TABLE_SCAN, 2e8, 2e8, row_bytes=100.0),
        Operator(1, OpType.EXCHANGE, 2e8, 2e8, row_bytes=100.0, children=(0,)),
        Operator(2, OpType.HASH_AGGREGATE, 2e8, 2e4, row_bytes=60.0, children=(1,)),
        Operator(3, OpType.EXCHANGE, 2e4, 2e4, row_bytes=60.0, children=(2,)),
        Operator(4, OpType.LIMIT, 2e4, 100.0, row_bytes=60.0, children=(3,)),
    ], name="skew_heavy")
    mixed_pipeline = PhysicalPlan([
        Operator(0, OpType.TABLE_SCAN, 5e7, 5e7, row_bytes=120.0),
        Operator(1, OpType.EXCHANGE, 5e7, 5e7, row_bytes=120.0, children=(0,)),
        Operator(2, OpType.PROJECT, 5e7, 5e6, row_bytes=80.0, children=(1,)),
        Operator(3, OpType.EXCHANGE, 5e6, 5e6, row_bytes=80.0, children=(2,)),
        Operator(4, OpType.HASH_AGGREGATE, 5e6, 5e4, row_bytes=48.0, children=(3,)),
        Operator(5, OpType.EXCHANGE, 5e4, 5e4, row_bytes=48.0, children=(4,)),
        Operator(6, OpType.SORT, 5e4, 5e4, row_bytes=48.0, children=(5,)),
        Operator(7, OpType.LIMIT, 5e4, 100.0, row_bytes=48.0, children=(6,)),
    ], name="mixed_pipeline")
    return {"skew_heavy": skew_heavy, "mixed_pipeline": mixed_pipeline}


TARGET_MIB_GRID = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    n_grid = 24 if quick else 64
    space = full_space()
    simulator = SparkSimulator(noise=None, seed=seed)

    result = ExperimentResult(
        name="ext_stage_tuning",
        description=(
            "Per-exchange partition sizing (AQE-style re-plan against "
            "observed sizes, advisory target size swept) vs. the best "
            "single whole-app shuffle.partitions from an exhaustive grid "
            "sweep."
        ),
    )

    p = space["spark.sql.shuffle.partitions"]
    grid = np.unique(np.round(np.geomspace(p.low, p.high, n_grid))).astype(float)

    for name, plan in stage_plans().items():
        default_config = space.default_dict()
        default_seconds = simulator.true_time(plan, default_config)

        sweep = []
        for parts in grid:
            config = dict(default_config)
            config["spark.sql.shuffle.partitions"] = float(parts)
            sweep.append(simulator.true_time(plan, config))
        sweep = np.asarray(sweep)
        best_single_seconds = float(sweep.min())
        best_single_parts = float(grid[int(sweep.argmin())])

        target_sweep = []
        replans = []
        for target_mib in TARGET_MIB_GRID:
            policy = TargetBytesPerPartition(
                target_bytes=int(target_mib * 1024 ** 2)
            )
            replan = run_with_replan(
                simulator, plan, default_config, policy,
                app_id=f"stage-{name}",
            )
            target_sweep.append(float(replan.result.true_seconds))
            replans.append(replan)
        target_sweep = np.asarray(target_sweep)
        best_i = int(target_sweep.argmin())
        stage_seconds = float(target_sweep[best_i])

        result.series[f"{name}_sweep_seconds"] = sweep
        result.series[f"{name}_sweep_partitions"] = grid
        result.series[f"{name}_target_sweep_seconds"] = target_sweep
        result.series[f"{name}_target_sweep_mib"] = np.asarray(TARGET_MIB_GRID)
        result.scalars[f"{name}_default_seconds"] = float(default_seconds)
        result.scalars[f"{name}_best_single_seconds"] = best_single_seconds
        result.scalars[f"{name}_best_single_partitions"] = best_single_parts
        result.scalars[f"{name}_stage_seconds"] = stage_seconds
        result.scalars[f"{name}_stage_target_mib"] = float(TARGET_MIB_GRID[best_i])
        result.scalars[f"{name}_replans"] = float(replans[best_i].replans)
        result.scalars[f"{name}_stage_gain_pct"] = float(
            (best_single_seconds / stage_seconds - 1.0) * 100.0
        )

    result.notes.append(
        "Acceptance bar: on every plan the per-exchange overlay beats the "
        "best whole-app shuffle.partitions from the grid sweep — stage "
        "scoping recovers headroom no global setting can."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
