"""Extension: adversarial drift schedules vs the task-switch detector.

The production failure mode (ROADMAP; Sec. 6.1 sharpened): a recurrent
query's input regime *changes* — a pipeline repointed at a 6x input
overnight, a slow ramp, a sawtooth, an A->B->A flip-flop.  Rockhopper's
baseline answer is the performance guardrail: the post-switch cost spike
reads as a tuning regression, tuning is disabled, and the session grinds
through cooldown probation on the default configuration while the stale
observation window keeps misleading the model.

:mod:`repro.core.switch` gives the session a better answer: a seeded CUSUM
detector over standardized normed-cost residuals plus an input-size
signature check.  On a declared switch the optimizer re-anchors (fresh
window, guardrail reset instead of probation) and, when a retrieval corpus
is attached, consults :func:`repro.retrieval.warm_start_from_corpus` for a
new-regime starting centroid.

Measured here as **post-switch regret** — the mean, over a horizon after
each regime boundary, of ``true(t) / oracle(t) - 1`` where ``oracle(t)``
is the best candidate-sweep configuration at that step's data scale — for
three strategies on four adversarial schedules (step, ramp, periodic,
flip-flop):

1. ``guardrail``  — guardrail only (the cooldown-probation baseline).
2. ``detector``   — guardrail + task-switch detector (re-anchor + reset).
3. ``detector_retrieval`` — detector + corpus warm start on re-anchor.

The acceptance bar the bench asserts: ``detector_retrieval`` post-switch
regret strictly below ``guardrail`` on the step and flip-flop schedules.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..core.centroid import CentroidLearning
from ..core.config_space import ConfigSpace
from ..core.guardrail import Guardrail
from ..core.session import TuningSession
from ..core.switch import TaskSwitchDetector
from ..embedding.embedder import WorkloadEmbedder
from ..retrieval import CorpusRecord, RetrievalCorpus, warm_start_from_corpus
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import low_noise
from ..sparksim.plan import PhysicalPlan
from ..workloads.dynamics import FlipFlopSize, PeriodicSize, RampSize, StepSize
from ..workloads.tpch import tpch_plan
from .runner import ExperimentResult

__all__ = ["run", "SCHEDULES", "post_switch_steps"]

_FACTOR = 6.0


def SCHEDULES(n_iterations: int) -> Dict[str, Callable[[int], float]]:
    """The four adversarial relative-scale schedules over ``n_iterations``.

    Each is a :class:`~repro.workloads.dynamics.DataSizeProcess` with
    ``initial=1.0`` so its output is a relative data scale for
    ``TuningSession(scale_fn=...)``.
    """
    period = max(n_iterations // 4, 2)
    return {
        "step": StepSize(initial=1.0, factor=_FACTOR, at=n_iterations // 3),
        "ramp": RampSize(
            initial=1.0, factor=_FACTOR,
            start=n_iterations // 3, length=max(n_iterations // 6, 1),
        ),
        "periodic": PeriodicSize(
            initial=1.0, slope=(_FACTOR - 1.0) / max(period - 1, 1), period=period,
        ),
        "flipflop": FlipFlopSize(initial=1.0, factor=_FACTOR, period=period),
    }


def post_switch_steps(name: str, n_iterations: int, horizon: int) -> List[int]:
    """Steps inside the post-switch evaluation windows of a schedule.

    Each regime boundary opens a ``horizon``-step window; ``ramp`` counts
    from the end of the ramp (the regime is fully shifted there), and
    ``periodic`` from each sawtooth reset.
    """
    period = max(n_iterations // 4, 2)
    if name == "step":
        boundaries = [n_iterations // 3]
    elif name == "ramp":
        boundaries = [n_iterations // 3 + max(n_iterations // 6, 1)]
    elif name in ("periodic", "flipflop"):
        boundaries = list(range(period, n_iterations, period))
    else:
        raise ValueError(f"unknown schedule {name!r}")
    steps = set()
    for b in boundaries:
        steps.update(range(b, min(b + horizon, n_iterations)))
    return sorted(steps)


def _build_corpus(
    plan: PhysicalPlan,
    space: ConfigSpace,
    simulator: SparkSimulator,
    embedder: WorkloadEmbedder,
    n_configs: int,
    seed: int,
) -> RetrievalCorpus:
    """Tuned histories of the same plan at a grid of input scales.

    Mimics what a production retrieval store would hold for a recurrent
    query: the configuration each past regime converged to, keyed by the
    regime's workload embedding.
    """
    rng = np.random.default_rng(seed + 17)
    candidates = space.latin_hypercube(n_configs, rng)
    base_size = max(plan.total_leaf_cardinality, 1.0)
    corpus = RetrievalCorpus(embedder.dim)
    records = []
    for scale in (1.0, 2.0, 3.5, 5.0, _FACTOR, 8.0):
        times = simulator.true_time_batch(plan, candidates, space=space, data_scale=scale)
        best = int(np.argmin(times))
        records.append(CorpusRecord(
            workload_id=f"{plan.signature()}@x{scale:g}",
            signature=plan.signature(),
            embedding=embedder.embed(plan.scaled(scale)),
            config=space.to_dict(candidates[best]),
            observed_cost=float(times[best]),
            default_cost=float(simulator.true_time(
                plan, space.default_dict(), data_scale=scale
            )),
            data_size=base_size * scale,
        ))
    corpus.add(records)
    corpus.build_index("flat")
    return corpus


def _oracle_times(
    plan: PhysicalPlan,
    space: ConfigSpace,
    simulator: SparkSimulator,
    scales: np.ndarray,
    n_configs: int,
    seed: int,
) -> np.ndarray:
    """Best candidate-sweep true time per step (cached per distinct scale)."""
    rng = np.random.default_rng(seed + 29)
    candidates = space.latin_hypercube(n_configs, rng)
    cache: Dict[float, float] = {}
    out = np.empty(len(scales))
    for t, scale in enumerate(scales):
        key = float(scale)
        if key not in cache:
            times = simulator.true_time_batch(
                plan, candidates, space=space, data_scale=key
            )
            cache[key] = float(np.min(times))
        out[t] = cache[key]
    return out


def _make_optimizer(
    strategy: str,
    space: ConfigSpace,
    corpus: RetrievalCorpus,
    plan: PhysicalPlan,
    embedder: WorkloadEmbedder,
    seed: int,
) -> CentroidLearning:
    guardrail = Guardrail(min_iterations=4, threshold=0.3, patience=2, cooldown=6)
    if strategy == "guardrail":
        return CentroidLearning(space, guardrail=guardrail, seed=seed)
    detector = TaskSwitchDetector(warmup=4, threshold=4.0, size_jump=3.0)
    warm_start = None
    if strategy == "detector_retrieval":
        warm_start = warm_start_from_corpus(corpus, space, plan, embedder=embedder)
    elif strategy != "detector":
        raise ValueError(f"unknown strategy {strategy!r}")
    return CentroidLearning(
        space, guardrail=guardrail, seed=seed,
        switch_detector=detector, switch_warm_start=warm_start,
    )


STRATEGIES = ("guardrail", "detector", "detector_retrieval")


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    n_iterations = 36 if quick else 90
    n_runs = 3 if quick else 8
    n_oracle_configs = 64 if quick else 128
    horizon = max(n_iterations // 6, 4)
    query = 3

    space = query_level_space()
    embedder = WorkloadEmbedder()
    plan = tpch_plan(query)
    oracle_sim = SparkSimulator(noise=low_noise(), seed=seed)
    corpus = _build_corpus(plan, space, oracle_sim, embedder, n_oracle_configs, seed)

    result = ExperimentResult(
        name="ext_drift_adversarial",
        description=(
            "Post-switch regret (mean true-vs-oracle gap over a horizon "
            "after each regime boundary) of three strategies — guardrail "
            "only, +task-switch detector, +detector with retrieval warm "
            "start — on four adversarial data-size schedules: step, ramp, "
            "periodic sawtooth, and A->B->A flip-flop."
        ),
    )
    result.scalars["n_iterations"] = float(n_iterations)
    result.scalars["horizon"] = float(horizon)

    for label, process in SCHEDULES(n_iterations).items():
        scales = np.array([process(t) for t in range(n_iterations)])
        oracle = _oracle_times(plan, space, oracle_sim, scales, n_oracle_configs, seed)
        window = post_switch_steps(label, n_iterations, horizon)

        per_strategy: Dict[str, List[float]] = {s: [] for s in STRATEGIES}
        full_horizon: Dict[str, List[float]] = {s: [] for s in STRATEGIES}
        switches: Dict[str, List[float]] = {s: [] for s in STRATEGIES}
        disabled: Dict[str, List[float]] = {s: [] for s in STRATEGIES}
        for r in range(n_runs):
            for strategy in STRATEGIES:
                optimizer = _make_optimizer(
                    strategy, space, corpus, plan, embedder, seed * 13 + r
                )
                session = TuningSession(
                    plan,
                    SparkSimulator(noise=low_noise(), seed=seed * 101 + r),
                    optimizer,
                    embedder=embedder,
                    scale_fn=process,
                )
                trace = session.run(n_iterations)
                regret = trace.true / oracle - 1.0
                per_strategy[strategy].append(float(np.mean(regret[window])))
                full_horizon[strategy].append(float(np.mean(regret)))
                switches[strategy].append(float(session.switch_count))
                disabled[strategy].append(
                    float(sum(1 for rec in trace.records if not rec.tuning_active))
                )

        for strategy in STRATEGIES:
            result.series[f"{label}_regret_{strategy}"] = np.array(
                per_strategy[strategy]
            )
            result.scalars[f"{label}_post_switch_regret_{strategy}"] = float(
                np.mean(per_strategy[strategy])
            )
            result.scalars[f"{label}_full_regret_{strategy}"] = float(
                np.mean(full_horizon[strategy])
            )
            result.scalars[f"{label}_switches_{strategy}"] = float(
                np.mean(switches[strategy])
            )
            result.scalars[f"{label}_disabled_steps_{strategy}"] = float(
                np.mean(disabled[strategy])
            )

    result.notes.append(
        "Expected shape: on every schedule the guardrail-only baseline "
        "spends post-switch steps disabled on the default configuration "
        "(probation grind) while the detector strategies re-anchor and "
        "keep tuning; detector_retrieval lands near the oracle immediately "
        "via the corpus warm start.  Acceptance bar: detector_retrieval "
        "post-switch regret strictly below guardrail on the step and "
        "flip-flop schedules."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
