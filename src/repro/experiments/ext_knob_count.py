"""Extension: tuning 3 vs 7 knobs (the paper's "more configurable parameters").

Production launched "very conservative", tuning only three query-level
knobs; the conclusion names "introduc[ing] more configurable parameters" as
future work.  This experiment quantifies the trade-off on the simulator: the
7-knob space (adding executors, memory, off-heap) has far more *time*
headroom — mostly by buying more parallelism — but that headroom is not
free.  The Sec.-2.1 user study notes teams "with particularly large resource
utilization or fixed budgets also noted the importance of cost", so both
metrics are reported: execution time and core-seconds (time × allocated
cores, a cost proxy).  Expected: 7 knobs win on time, 3 knobs on cost
efficiency — the deployment's conservative choice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.centroid import CentroidLearning
from ..core.observation import Observation
from ..sparksim.cluster import ExecutorLayout
from ..sparksim.configs import manual_study_space, query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import NoiseModel
from ..workloads.tpcds import tpcds_plan
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run"]

DEFAULT_QUERIES = (8, 27, 51)


def run(
    quick: bool = False,
    seed: int = 0,
    query_ids: Sequence[int] = DEFAULT_QUERIES,
    n_workers=None,
) -> ExperimentResult:
    query_ids = query_ids[:2] if quick else query_ids
    n_iterations = 30 if quick else 80
    noise = NoiseModel(fluctuation_level=0.15, spike_level=0.2)
    spaces = {"knobs_3": query_level_space(), "knobs_7": manual_study_space()}

    result = ExperimentResult(
        name="ext_knob_count",
        description=(
            "3-knob (production) vs 7-knob (user-study) tuning with the same "
            "iteration budget: total true time per iteration and headroom."
        ),
    )
    truth = SparkSimulator(noise=None, seed=0)

    def tune_query(indexed_qid):
        k, qid = indexed_qid
        plan = tpcds_plan(qid, 100.0)
        data_size = max(plan.total_leaf_cardinality, 1.0)
        default_time = truth.true_time(plan, query_level_space().default_dict())
        times = {label: np.zeros(n_iterations) for label in spaces}
        costs = {label: np.zeros(n_iterations) for label in spaces}
        for label, space in spaces.items():
            sim = SparkSimulator(noise=noise, seed=seed * 5 + k)
            cl = CentroidLearning(space, alpha=0.08, beta=0.15, n_candidates=30,
                                  seed=seed + k)
            for t in range(n_iterations):
                vec = cl.suggest(data_size=data_size)
                config = space.to_dict(vec)
                res = sim.run(plan, config)
                cl.observe(Observation(config=vec, data_size=res.data_size,
                                       performance=res.elapsed_seconds, iteration=t))
                times[label][t] = res.true_seconds
                cores = ExecutorLayout.from_config(config, sim.pool).total_cores
                costs[label][t] = res.true_seconds * cores
        return default_time, times, costs

    per_query = parallel_map(
        tune_query, list(enumerate(query_ids)), n_workers=n_workers
    )
    totals = {label: np.zeros(n_iterations) for label in spaces}
    cost_totals = {label: np.zeros(n_iterations) for label in spaces}
    default_total = 0.0
    default_cost_total = 0.0
    default_cores = ExecutorLayout.from_config({}).total_cores
    for default_time, times, costs in per_query:
        default_total += default_time
        default_cost_total += default_time * default_cores
        for label in spaces:
            totals[label] += times[label]
            cost_totals[label] += costs[label]

    w = max(3, n_iterations // 6)
    result.scalars["default_total_seconds"] = default_total
    result.scalars["default_core_seconds"] = default_cost_total
    for label in spaces:
        result.series[f"{label}_total_true_seconds"] = totals[label]
        result.series[f"{label}_core_seconds"] = cost_totals[label]
        result.scalars[f"{label}_final_time_gain_pct"] = float(
            (default_total / totals[label][-w:].mean() - 1.0) * 100.0
        )
        result.scalars[f"{label}_final_cost_change_pct"] = float(
            (cost_totals[label][-w:].mean() / default_cost_total - 1.0) * 100.0
        )
    result.notes.append(
        "Expected shape: 7 knobs deliver a much larger *time* gain (buying "
        "parallelism) at a higher core-seconds cost; 3 knobs improve time "
        "without raising cost — the deployment's conservative launch choice."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
