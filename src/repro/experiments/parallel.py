"""Process-pool experiment engine.

The paper's convergence figures replicate every tuning run 100–200 times;
the runs are embarrassingly parallel — each owns a fresh optimizer and an
RNG derived deterministically from ``(seed, run_index)`` — so dispatching
them over a process pool is **bit-identical** to the serial loop while
cutting wall-clock by roughly the core count.

Design notes (see ``docs/performance.md``):

* Workers are **forked** (POSIX ``fork`` start method), so optimizer
  factories — typically closures over config spaces, objectives, and
  selectors — never cross a pickle boundary: the work specification is
  stashed in a module global before the pool starts and inherited by the
  children.  Only chunk indices (ints) and per-run results (arrays,
  plain containers) travel through the pool's queues.
* Dispatch is **chunked** (default ~4 chunks per worker) to amortize IPC
  overhead on short runs while keeping the pool load-balanced.
* Everything **falls back to the serial loop** when one worker is
  requested, the platform lacks ``fork``, the pool cannot be created, or a
  worker raises — the serial re-run then reproduces any real error with a
  clean traceback.

``REPRO_WORKERS`` selects the default worker count for every experiment
module (an integer, or ``auto`` for one worker per available core).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry
from ..core.optimizer_base import Optimizer
from ..workloads.dynamics import DataSizeProcess
from ..workloads.synthetic import SyntheticObjective

__all__ = [
    "WORKERS_ENV",
    "available_workers",
    "resolve_workers",
    "parallel_map",
    "run_replicated_parallel",
]

WORKERS_ENV = "REPRO_WORKERS"


def available_workers() -> int:
    """Cores usable by this process (cgroup/affinity aware where possible)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(n_workers: Union[int, str, None] = None) -> int:
    """Resolve a worker-count request to a concrete positive integer.

    ``None`` defers to the ``REPRO_WORKERS`` environment variable and
    defaults to ``1`` (serial) when unset; ``"auto"``, ``0``, or a negative
    count mean one worker per available core.
    """
    if n_workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        n_workers = raw
    if isinstance(n_workers, str):
        text = n_workers.strip().lower()
        if text == "auto":
            return available_workers()
        try:
            n_workers = int(text)
        except ValueError:
            raise ValueError(
                f"n_workers must be an integer or 'auto', got {n_workers!r}"
            ) from None
    n_workers = int(n_workers)
    return available_workers() if n_workers <= 0 else n_workers


# The active (fn, items) pair, inherited by forked pool workers.  Only chunk
# index lists are pickled; the callable and its closed-over state are shared
# through the fork's copy-on-write memory.
_ACTIVE_WORK: Optional[Tuple[Callable[[Any], Any], List[Any]]] = None

# One worker-side result: (index, value) pairs, the chunk's telemetry
# registry dump (None when telemetry is disabled), and (pid, chunk_seconds,
# n_items) timing metadata.
_ChunkResult = Tuple[List[Tuple[int, Any]], Optional[list], Optional[Tuple[int, float, int]]]


def _run_chunk(indices: List[int]) -> _ChunkResult:
    fn, items = _ACTIVE_WORK
    if not telemetry.enabled():
        return [(i, fn(items[i])) for i in indices], None, None
    # Child-local reset: the forked registry inherited the parent's counts,
    # so measure only this chunk's delta and ship it back for merging.
    telemetry.reset()
    started = time.perf_counter()
    pairs = [(i, fn(items[i])) for i in indices]
    elapsed = time.perf_counter() - started
    return pairs, telemetry.dump(), (os.getpid(), elapsed, len(indices))


def _serial_map(
    fn: Callable[[Any], Any],
    items: List[Any],
    fallback_reason: Optional[str] = None,
    error: Optional[BaseException] = None,
) -> List[Any]:
    """The serial path, instrumented identically to a one-chunk dispatch.

    ``fallback_reason`` is set when a parallel dispatch degraded to serial
    (``"no_fork"``, ``"pool_error"``) — the telemetry counter/event carry
    the same reason string as the RuntimeWarning, so the two always agree —
    and ``None`` when serial was simply the requested mode.
    """
    if fallback_reason is not None:
        telemetry.counter("parallel.serial_fallbacks", reason=fallback_reason).inc()
        telemetry.emit(
            "parallel.serial_fallback",
            reason=fallback_reason,
            error=None if error is None else repr(error),
            n_items=len(items),
        )
    if not telemetry.enabled():
        return [fn(item) for item in items]
    started = time.perf_counter()
    out = [fn(item) for item in items]
    elapsed = time.perf_counter() - started
    telemetry.histogram("parallel.chunk_seconds", mode="serial").observe(elapsed)
    telemetry.counter("parallel.chunks", mode="serial").inc()
    telemetry.counter("parallel.items", mode="serial").inc(len(items))
    return out


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    n_workers: Union[int, str, None] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Order-preserving ``[fn(item) for item in items]`` over a process pool.

    ``fn`` must be side-effect free with respect to the parent process (it
    runs in forked children) and its results must be picklable.  With one
    worker — or whenever a pool cannot be used — the plain serial list
    comprehension runs instead, so callers never need to branch.  Fallbacks
    are announced twice and identically: a ``RuntimeWarning`` naming the
    reason, and a ``parallel.serial_fallbacks{reason=...}`` counter plus a
    structured event when telemetry is enabled.

    With telemetry enabled each forked worker records into its own
    registry; worker deltas are merged back into the parent registry after
    the pool drains, alongside ``parallel.chunk_seconds`` timings and
    per-worker ``parallel.worker_utilization`` gauges.
    """
    items = list(items)
    workers = min(resolve_workers(n_workers), len(items))
    if workers <= 1:
        return _serial_map(fn, items)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:
        # Platform without fork (e.g. Windows): closures can't be shipped.
        warnings.warn(
            f"parallel execution unavailable (no_fork: {exc!r}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_map(fn, items, fallback_reason="no_fork", error=exc)

    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(items) / (workers * 4)))
    chunks = [
        list(range(start, min(start + chunk_size, len(items))))
        for start in range(0, len(items), chunk_size)
    ]

    global _ACTIVE_WORK
    previous = _ACTIVE_WORK
    _ACTIVE_WORK = (fn, items)
    pool_started = time.perf_counter()
    try:
        with ctx.Pool(processes=workers) as pool:
            chunk_results = pool.map(_run_chunk, chunks)
    except Exception as exc:
        # Pool creation limits, unpicklable results, worker crashes, nested
        # pools (daemonic workers), ... — re-run serially; a genuine error
        # in fn then surfaces with its own traceback.
        warnings.warn(
            f"parallel execution unavailable (pool_error: {exc!r}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_map(fn, items, fallback_reason="pool_error", error=exc)
    finally:
        _ACTIVE_WORK = previous

    if telemetry.enabled():
        _merge_worker_telemetry(chunk_results, len(items),
                                time.perf_counter() - pool_started)

    out: List[Any] = [None] * len(items)
    for pairs, _dump, _meta in chunk_results:
        for index, value in pairs:
            out[index] = value
    return out


def _merge_worker_telemetry(
    chunk_results: List[_ChunkResult], n_items: int, wall_seconds: float
) -> None:
    """Fold worker registry dumps and chunk timings into the parent."""
    busy_by_pid: dict = {}
    for _pairs, dump, meta in chunk_results:
        if dump:
            telemetry.merge(dump)
        if meta is not None:
            pid, elapsed, _chunk_items = meta
            telemetry.histogram("parallel.chunk_seconds", mode="parallel").observe(elapsed)
            telemetry.counter("parallel.chunks", mode="parallel").inc()
            busy_by_pid[pid] = busy_by_pid.get(pid, 0.0) + elapsed
    telemetry.counter("parallel.items", mode="parallel").inc(n_items)
    telemetry.gauge("parallel.workers_used").set(len(busy_by_pid))
    # Utilization = busy time / pool wall-clock, per worker.  Workers are
    # numbered by sorted pid so gauge labels stay low-cardinality.
    if wall_seconds > 0:
        for index, pid in enumerate(sorted(busy_by_pid)):
            telemetry.gauge("parallel.worker_utilization", worker=index).set(
                busy_by_pid[pid] / wall_seconds
            )


@dataclass
class _ReplicationSpec:
    """Everything one replicate needs; lives in fork-shared memory."""

    optimizer_factory: Callable[[int], Optimizer]
    objective: SyntheticObjective
    n_iterations: int
    size_process_factory: Optional[Callable[[int], DataSizeProcess]]
    seed: int
    track: str
    collect: Optional[Callable[[Optimizer], Any]]

    def execute(self, i: int) -> Tuple[np.ndarray, Any]:
        # Seed derivation identical to the historical serial loop — this is
        # what makes parallel and serial runs bit-identical.
        from .runner import run_single

        # Per-run timing lives *here* — inside the unit of work — so every
        # replicate is timed identically whether it runs in a forked worker,
        # the intentional serial mode, or a serial fallback after a pool
        # failure (see ``_serial_map``).
        started = time.perf_counter() if telemetry.enabled() else None
        optimizer = self.optimizer_factory(i)
        process = self.size_process_factory(i) if self.size_process_factory else None
        rng = np.random.default_rng(self.seed * 10007 + i)
        values = run_single(
            optimizer,
            self.objective,
            self.n_iterations,
            size_process=process,
            rng=rng,
            track=self.track,
        )
        payload = self.collect(optimizer) if self.collect is not None else None
        telemetry.counter("experiments.runs").inc()
        if started is not None:
            telemetry.histogram("experiments.run_seconds").observe(
                time.perf_counter() - started
            )
        return values, payload


def run_replicated_parallel(
    optimizer_factory: Callable[[int], Optimizer],
    objective: SyntheticObjective,
    n_iterations: int,
    n_runs: int,
    size_process_factory: Optional[Callable[[int], DataSizeProcess]] = None,
    seed: int = 0,
    track: str = "true",
    n_workers: Union[int, str, None] = None,
    collect: Optional[Callable[[Optimizer], Any]] = None,
    chunk_size: Optional[int] = None,
) -> Tuple[np.ndarray, List[Any]]:
    """The engine behind :func:`repro.experiments.runner.run_replicated`.

    Returns the raw ``(n_runs, n_iterations)`` matrix plus the per-run
    ``collect`` payloads (``None`` entries when no collector is given).
    """
    if n_runs < 1 or n_iterations < 1:
        raise ValueError("n_runs and n_iterations must be >= 1")
    spec = _ReplicationSpec(
        optimizer_factory=optimizer_factory,
        objective=objective,
        n_iterations=n_iterations,
        size_process_factory=size_process_factory,
        seed=seed,
        track=track,
        collect=collect,
    )
    results = parallel_map(
        spec.execute, range(n_runs), n_workers=n_workers, chunk_size=chunk_size
    )
    runs = np.stack([values for values, _ in results])
    payloads = [payload for _, payload in results]
    return runs, payloads
