"""Process-pool experiment engine.

The paper's convergence figures replicate every tuning run 100–200 times;
the runs are embarrassingly parallel — each owns a fresh optimizer and an
RNG derived deterministically from ``(seed, run_index)`` — so dispatching
them over a process pool is **bit-identical** to the serial loop while
cutting wall-clock by roughly the core count.

Design notes (see ``docs/performance.md``):

* Workers are **forked** (POSIX ``fork`` start method), so optimizer
  factories — typically closures over config spaces, objectives, and
  selectors — never cross a pickle boundary: the work specification is
  stashed in a module global before the pool starts and inherited by the
  children.  Only chunk indices (ints) and per-run results (arrays,
  plain containers) travel through the pool's queues.
* Dispatch is **chunked** (default ~4 chunks per worker) to amortize IPC
  overhead on short runs while keeping the pool load-balanced.
* Everything **falls back to the serial loop** when one worker is
  requested, the platform lacks ``fork``, the pool cannot be created, or a
  worker raises — the serial re-run then reproduces any real error with a
  clean traceback.

``REPRO_WORKERS`` selects the default worker count for every experiment
module (an integer, or ``auto`` for one worker per available core).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import warnings
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.optimizer_base import Optimizer
from ..workloads.dynamics import DataSizeProcess
from ..workloads.synthetic import SyntheticObjective

__all__ = [
    "WORKERS_ENV",
    "available_workers",
    "resolve_workers",
    "parallel_map",
    "run_replicated_parallel",
]

WORKERS_ENV = "REPRO_WORKERS"


def available_workers() -> int:
    """Cores usable by this process (cgroup/affinity aware where possible)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(n_workers: Union[int, str, None] = None) -> int:
    """Resolve a worker-count request to a concrete positive integer.

    ``None`` defers to the ``REPRO_WORKERS`` environment variable and
    defaults to ``1`` (serial) when unset; ``"auto"``, ``0``, or a negative
    count mean one worker per available core.
    """
    if n_workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        n_workers = raw
    if isinstance(n_workers, str):
        text = n_workers.strip().lower()
        if text == "auto":
            return available_workers()
        try:
            n_workers = int(text)
        except ValueError:
            raise ValueError(
                f"n_workers must be an integer or 'auto', got {n_workers!r}"
            ) from None
    n_workers = int(n_workers)
    return available_workers() if n_workers <= 0 else n_workers


# The active (fn, items) pair, inherited by forked pool workers.  Only chunk
# index lists are pickled; the callable and its closed-over state are shared
# through the fork's copy-on-write memory.
_ACTIVE_WORK: Optional[Tuple[Callable[[Any], Any], List[Any]]] = None


def _run_chunk(indices: List[int]) -> List[Tuple[int, Any]]:
    fn, items = _ACTIVE_WORK
    return [(i, fn(items[i])) for i in indices]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    n_workers: Union[int, str, None] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Order-preserving ``[fn(item) for item in items]`` over a process pool.

    ``fn`` must be side-effect free with respect to the parent process (it
    runs in forked children) and its results must be picklable.  With one
    worker — or whenever a pool cannot be used — the plain serial list
    comprehension runs instead, so callers never need to branch.
    """
    items = list(items)
    workers = min(resolve_workers(n_workers), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        # Platform without fork (e.g. Windows): closures can't be shipped.
        return [fn(item) for item in items]

    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(items) / (workers * 4)))
    chunks = [
        list(range(start, min(start + chunk_size, len(items))))
        for start in range(0, len(items), chunk_size)
    ]

    global _ACTIVE_WORK
    previous = _ACTIVE_WORK
    _ACTIVE_WORK = (fn, items)
    try:
        with ctx.Pool(processes=workers) as pool:
            chunk_results = pool.map(_run_chunk, chunks)
    except Exception as exc:
        # Pool creation limits, unpicklable results, worker crashes, nested
        # pools (daemonic workers), ... — re-run serially; a genuine error
        # in fn then surfaces with its own traceback.
        warnings.warn(
            f"parallel execution unavailable ({exc!r}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in items]
    finally:
        _ACTIVE_WORK = previous

    out: List[Any] = [None] * len(items)
    for chunk in chunk_results:
        for index, value in chunk:
            out[index] = value
    return out


@dataclass
class _ReplicationSpec:
    """Everything one replicate needs; lives in fork-shared memory."""

    optimizer_factory: Callable[[int], Optimizer]
    objective: SyntheticObjective
    n_iterations: int
    size_process_factory: Optional[Callable[[int], DataSizeProcess]]
    seed: int
    track: str
    collect: Optional[Callable[[Optimizer], Any]]

    def execute(self, i: int) -> Tuple[np.ndarray, Any]:
        # Seed derivation identical to the historical serial loop — this is
        # what makes parallel and serial runs bit-identical.
        from .runner import run_single

        optimizer = self.optimizer_factory(i)
        process = self.size_process_factory(i) if self.size_process_factory else None
        rng = np.random.default_rng(self.seed * 10007 + i)
        values = run_single(
            optimizer,
            self.objective,
            self.n_iterations,
            size_process=process,
            rng=rng,
            track=self.track,
        )
        payload = self.collect(optimizer) if self.collect is not None else None
        return values, payload


def run_replicated_parallel(
    optimizer_factory: Callable[[int], Optimizer],
    objective: SyntheticObjective,
    n_iterations: int,
    n_runs: int,
    size_process_factory: Optional[Callable[[int], DataSizeProcess]] = None,
    seed: int = 0,
    track: str = "true",
    n_workers: Union[int, str, None] = None,
    collect: Optional[Callable[[Optimizer], Any]] = None,
    chunk_size: Optional[int] = None,
) -> Tuple[np.ndarray, List[Any]]:
    """The engine behind :func:`repro.experiments.runner.run_replicated`.

    Returns the raw ``(n_runs, n_iterations)`` matrix plus the per-run
    ``collect`` payloads (``None`` entries when no collector is given).
    """
    if n_runs < 1 or n_iterations < 1:
        raise ValueError("n_runs and n_iterations must be >= 1")
    spec = _ReplicationSpec(
        optimizer_factory=optimizer_factory,
        objective=objective,
        n_iterations=n_iterations,
        size_process_factory=size_process_factory,
        seed=seed,
        track=track,
        collect=collect,
    )
    results = parallel_map(
        spec.execute, range(n_runs), n_workers=n_workers, chunk_size=chunk_size
    )
    runs = np.stack([values for values, _ in results])
    payloads = [payload for _, payload in results]
    return runs, payloads
