"""Figure 10: Centroid Learning with a real SVR surrogate.

The pseudo-surrogate is replaced by a support-vector regression model
trained on the (noisy) window.  The paper reports that this model "tends to
select candidates within the 30th to 50th percentiles for true performance"
— moderate accuracy — yet convergence remains satisfactory and clearly
better than BO/FLOW2 on the same objective (Fig. 2).

Beyond the convergence bands, this module measures the selection-percentile
distribution (via an instrumented selector) and the optimality gap of the
most impactful configuration (Fig. 10b).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.centroid import CentroidLearning
from ..core.selectors import SurrogateSelector
from ..ml.kernels import RBFKernel
from ..ml.svr import SVR
from ..sparksim.noise import high_noise
from ..workloads.synthetic import default_synthetic_objective
from .runner import ExperimentResult, run_replicated

__all__ = ["run", "svr_factory", "InstrumentedSVRSelector"]


def svr_factory() -> SVR:
    """The Fig.-10 surrogate: RBF ε-SVR fit on the noisy window."""
    return SVR(kernel=RBFKernel(length_scale=1.0), C=10.0, epsilon=0.05)


class InstrumentedSVRSelector(SurrogateSelector):
    """A SurrogateSelector that records the true-performance percentile of
    every selection (the paper's model-accuracy probe)."""

    def __init__(self, true_fn, **kwargs):
        super().__init__(model_factory=svr_factory, **kwargs)
        self.true_fn = true_fn
        self.selection_percentiles: List[float] = []

    def select(self, candidates, window, data_size, embedding, rng) -> int:
        index = super().select(candidates, window, data_size, embedding, rng)
        values = np.array([self.true_fn(c, data_size) for c in candidates])
        rank = float(np.sum(values <= values[index]) - 1) / max(len(values) - 1, 1)
        self.selection_percentiles.append(100.0 * rank)
        return index


def run(quick: bool = False, seed: int = 0, n_workers=None) -> ExperimentResult:
    n_runs = 10 if quick else 100
    n_iterations = 80 if quick else 400
    objective = default_synthetic_objective(noise=high_noise(), seed=7)
    space = objective.space

    # The selector's percentile log lives inside each run's optimizer, so it
    # is harvested with a collect hook — parent-side lists would stay empty
    # when the runs execute in forked pool workers.
    def factory(i: int) -> CentroidLearning:
        selector = InstrumentedSVRSelector(objective.true_value)
        return CentroidLearning(space, selector=selector, seed=seed + i)

    def harvest(optimizer: CentroidLearning) -> List[float]:
        return list(optimizer.selector.selection_percentiles)

    bands, collected = run_replicated(
        factory, objective, n_iterations, n_runs, seed=seed,
        n_workers=n_workers, collect=harvest,
    )

    def factory_gap(i: int) -> CentroidLearning:
        selector = InstrumentedSVRSelector(objective.true_value)
        return CentroidLearning(space, selector=selector, seed=1000 + seed + i)

    gap_bands = run_replicated(
        factory_gap, objective, n_iterations, n_runs, seed=seed + 1,
        track="gap", n_workers=n_workers,
    )

    percentiles = np.concatenate([p for p in collected if p])
    result = ExperimentResult(
        name="fig10_svr_surrogate",
        description=(
            "Centroid Learning with an SVR surrogate on noisy data: (a) true "
            "performance bands, (b) optimality gap of the most impactful knob."
        ),
        series={"performance": bands, "optimality_gap": gap_bands},
    )
    result.scalars["optimal_value"] = objective.optimal_value
    result.scalars["default_value"] = objective.true_value(space.default_vector())
    result.scalars["final_median"] = bands.final_median()
    result.scalars["final_p95"] = bands.final_p95()
    result.scalars["final_gap_median"] = gap_bands.final_median()
    result.scalars["mean_selection_percentile"] = float(np.mean(percentiles))
    result.notes.append(
        "Expected shape: mean selection percentile in the 30-50 band "
        "(moderate model accuracy) yet final median well below the default "
        "and far below BO's (Fig. 2) under identical noise."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
