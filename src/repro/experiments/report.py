"""Plain-text and JSON rendering of experiment results."""

from __future__ import annotations

import json
from typing import Dict, Sequence

import numpy as np

from .runner import ConvergenceBands, ExperimentResult

__all__ = [
    "downsample_indices",
    "format_series_table",
    "format_bands",
    "render_result",
    "result_to_json",
]


def downsample_indices(n: int, k: int) -> np.ndarray:
    """``k`` roughly evenly spaced indices into ``range(n)`` (always incl. ends)."""
    if n <= 0:
        raise ValueError("n must be > 0")
    if k >= n:
        return np.arange(n)
    return np.unique(np.linspace(0, n - 1, k).round().astype(int))


def format_series_table(
    x: Sequence[float],
    columns: Dict[str, Sequence[float]],
    x_label: str = "iteration",
    max_rows: int = 12,
    fmt: str = "{:.3g}",
) -> str:
    """Fixed-width table of aligned series, downsampled to ``max_rows``."""
    x = np.asarray(x, dtype=float)
    idx = downsample_indices(len(x), max_rows)
    labels = [x_label] + list(columns)
    widths = [max(12, len(label) + 2) for label in labels]
    header = "".join(label.rjust(w) for label, w in zip(labels, widths))
    lines = [header, "-" * len(header)]
    for i in idx:
        cells = [fmt.format(x[i])]
        for series in columns.values():
            cells.append(fmt.format(np.asarray(series, dtype=float)[i]))
        lines.append("".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_bands(bands: Dict[str, ConvergenceBands], max_rows: int = 12) -> str:
    """Table of per-label ``median [p5, p95]`` strings across iterations."""
    if not bands:
        return "(no series)"
    n = next(iter(bands.values())).n_iterations
    idx = downsample_indices(n, max_rows)
    labels = ["iteration"] + list(bands)
    widths = [11] + [max(26, len(label) + 2) for label in bands]
    header = "".join(label.rjust(w) for label, w in zip(labels, widths))
    lines = [header, "-" * len(header)]
    for i in idx:
        cells = [str(int(i))]
        for b in bands.values():
            cells.append(
                f"{b.median[i]:.4g} [{b.p5[i]:.4g}, {b.p95[i]:.4g}]"
            )
        lines.append("".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def result_to_json(result: ExperimentResult, max_points: int = 50) -> str:
    """Machine-readable dump of an experiment result.

    Band series are reduced to (median, p5, p95) triples and long series are
    downsampled to ``max_points`` — enough to diff reproductions across
    machines without multi-megabyte payloads.
    """
    payload: Dict[str, object] = {
        "name": result.name,
        "description": result.description,
        "scalars": {k: float(v) for k, v in result.scalars.items()},
        "notes": list(result.notes),
        "series": {},
    }
    for label, series in result.series.items():
        if isinstance(series, ConvergenceBands):
            idx = downsample_indices(series.n_iterations, max_points)
            payload["series"][label] = {
                "kind": "bands",
                "iterations": idx.tolist(),
                "median": series.median[idx].tolist(),
                "p5": series.p5[idx].tolist(),
                "p95": series.p95[idx].tolist(),
                "n_runs": series.n_runs,
            }
        else:
            arr = np.asarray(series, dtype=float)
            idx = downsample_indices(len(arr), max_points)
            payload["series"][label] = {
                "kind": "array",
                "index": idx.tolist(),
                "values": arr[idx].tolist(),
            }
    return json.dumps(payload, indent=2)


def render_result(result: ExperimentResult, max_rows: int = 12) -> str:
    """Full text report for one experiment."""
    lines = [f"== {result.name} ==", result.description, ""]
    bands = {k: v for k, v in result.series.items() if isinstance(v, ConvergenceBands)}
    if bands:
        lines.append(format_bands(bands, max_rows=max_rows))
        lines.append("")
    arrays = {
        k: np.asarray(v)
        for k, v in result.series.items()
        if not isinstance(v, ConvergenceBands)
    }
    if arrays:
        lengths = {len(v) for v in arrays.values()}
        if len(lengths) == 1:
            n = lengths.pop()
            lines.append(
                format_series_table(np.arange(n), arrays, x_label="index", max_rows=max_rows)
            )
            lines.append("")
        else:
            for k, v in arrays.items():
                lines.append(f"{k}: {np.array2string(v, precision=4, threshold=16)}")
            lines.append("")
    if result.scalars:
        for key in sorted(result.scalars):
            lines.append(f"  {key:<42s} = {result.scalars[key]:.6g}")
        lines.append("")
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
