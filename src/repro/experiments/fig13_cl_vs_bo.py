"""Figure 13: Centroid Learning vs (Contextual) Bayesian Optimization.

On the Lightweight Pipeline (V1) — here, the live noisy simulator — both
algorithms tune TPC-DS queries "starting from an intentionally poor
configuration (speedup = 1.0)".  The paper's finding: CL achieves
significantly better *final convergence* than CBO even from a bad start.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.centroid import CentroidLearning
from ..core.observation import Observation
from ..optimizers.contextual_bo import ContextualBayesianOptimization
from ..embedding.embedder import WorkloadEmbedder
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import NoiseModel
from ..workloads.tpcds import tpcds_plan
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run", "poor_start_vector"]

DEFAULT_QUERIES = (5, 18, 27, 42, 64, 80)


def poor_start_vector(space) -> np.ndarray:
    """An intentionally bad configuration: tiny scan partitions, no
    broadcast joins, minimum shuffle parallelism."""
    return space.to_vector({
        "spark.sql.files.maxPartitionBytes": space["spark.sql.files.maxPartitionBytes"].low,
        "spark.sql.autoBroadcastJoinThreshold":
            space["spark.sql.autoBroadcastJoinThreshold"].low,
        "spark.sql.shuffle.partitions": space["spark.sql.shuffle.partitions"].low,
    })


def run(
    quick: bool = False,
    seed: int = 0,
    query_ids: Sequence[int] = DEFAULT_QUERIES,
    n_workers=None,
) -> ExperimentResult:
    query_ids = query_ids[:3] if quick else query_ids
    n_iterations = 15 if quick else 60
    # Moderate production noise (the LWP runs on a real, shared cluster).
    noise = NoiseModel(fluctuation_level=0.3, spike_level=0.5)
    space = query_level_space()
    embedder = WorkloadEmbedder()

    def tune_query(indexed_qid):
        k, qid = indexed_qid
        plan = tpcds_plan(qid, 100.0)
        embedding = embedder.embed(plan)
        data_size = max(plan.total_leaf_cardinality, 1.0)
        truth = SparkSimulator(noise=None, seed=0)
        start = poor_start_vector(space)
        poor = truth.true_time(plan, space.to_dict(start))
        default = truth.true_time(plan, space.default_dict())

        cl = CentroidLearning(space, start=start, beta=0.15, seed=seed + k)
        cbo = ContextualBayesianOptimization(
            space, embedding_dim=embedder.dim, n_init=5, seed=seed + k
        )
        traces = {"cl": np.zeros(n_iterations), "cbo": np.zeros(n_iterations)}
        # First observation is pinned to the poor start, matching the
        # paper's setup where the starting point is fixed for both.
        for name, opt in (("cl", cl), ("cbo", cbo)):
            sim = SparkSimulator(noise=noise, seed=seed * 7 + k)
            for t in range(n_iterations):
                if t == 0:
                    vector = start.copy()
                else:
                    vector = opt.suggest(data_size=data_size, embedding=embedding)
                res = sim.run(plan, space.to_dict(vector))
                opt.observe(Observation(
                    config=vector, data_size=res.data_size,
                    performance=res.elapsed_seconds, iteration=t,
                    embedding=embedding,
                ))
                traces[name][t] = res.true_seconds
        return traces["cl"], traces["cbo"], poor, default

    per_query = parallel_map(
        tune_query, list(enumerate(query_ids)), n_workers=n_workers
    )
    cl_total = np.zeros(n_iterations)
    cbo_total = np.zeros(n_iterations)
    poor_total = 0.0
    default_total = 0.0
    for cl_trace, cbo_trace, poor, default in per_query:
        cl_total += cl_trace
        cbo_total += cbo_trace
        poor_total += poor
        default_total += default

    result = ExperimentResult(
        name="fig13_cl_vs_bo",
        description=(
            "Total true execution time across TPC-DS queries per iteration, "
            "tuning from an intentionally poor configuration (speedup=1.0)."
        ),
        series={
            "cl_total_seconds": cl_total,
            "cbo_total_seconds": cbo_total,
            "cl_speedup": poor_total / cl_total,
            "cbo_speedup": poor_total / cbo_total,
        },
    )
    tail = max(3, n_iterations // 6)
    result.scalars["poor_start_total_seconds"] = poor_total
    result.scalars["default_total_seconds"] = default_total
    result.scalars["cl_final_speedup"] = float(poor_total / cl_total[-tail:].mean())
    result.scalars["cbo_final_speedup"] = float(poor_total / cbo_total[-tail:].mean())
    result.notes.append(
        "Expected shape: both improve on the poor start; CL's final speedup "
        "exceeds CBO's."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
