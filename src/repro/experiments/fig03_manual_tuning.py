"""Figure 3: manual tuning (domain experts) versus Bayesian Optimization.

The paper's user study put >50 volunteers on a simulation platform (the
predicted-time playground of Sec. 2.2) tuning 5 queries over 7 knobs.  Human
participants are replaced by scripted *expert policies* that mimic the
reported behavior: coordinate-at-a-time adjustments with memory of what
helped, occasional exploratory jumps, and per-expert temperament.  The
findings to reproduce: BO converges faster on average, experts occasionally
end better, and BO sometimes gets stuck in local minima.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.config_space import ConfigSpace
from ..core.observation import Observation
from ..optimizers.bayesian import BayesianOptimization
from ..sparksim.configs import manual_study_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import no_noise
from ..workloads.tpcds import tpcds_plan
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run", "ExpertPolicy"]

DEFAULT_QUERIES = (11, 27, 38, 52, 73)


class ExpertPolicy:
    """A scripted stand-in for one human tuner.

    Behavior: start at the defaults (or, for *veterans*, a heuristic config
    derived from domain knowledge — see :func:`veteran_start`); each round
    pick a knob (biased toward knobs that recently helped), nudge it up or
    down by a personal step size, keep the move if the platform's predicted
    time improved, otherwise revert; occasionally take a larger exploratory
    jump.
    """

    def __init__(self, space: ConfigSpace, seed: int,
                 start: Optional[np.ndarray] = None):
        self.space = space
        self._rng = np.random.default_rng(seed)
        self._current = (
            space.default_vector() if start is None
            else space.clip(np.asarray(start, dtype=float))
        )
        self._current_cost: Optional[float] = None
        self._pending: Optional[np.ndarray] = None
        # Personal temperament.
        self._step = float(self._rng.uniform(0.05, 0.2))
        self._jump_prob = float(self._rng.uniform(0.05, 0.2))
        self._knob_credit = np.ones(space.dim)

    def suggest(self) -> np.ndarray:
        if self._current_cost is None:
            self._pending = self._current.copy()
            return self._pending
        bounds = self.space.internal_bounds
        span = bounds[:, 1] - bounds[:, 0]
        if self._rng.uniform() < self._jump_prob:
            move = self._rng.uniform(-0.35, 0.35, size=self.space.dim) * span
        else:
            weights = self._knob_credit / self._knob_credit.sum()
            knob = int(self._rng.choice(self.space.dim, p=weights))
            move = np.zeros(self.space.dim)
            move[knob] = self._rng.choice([-1.0, 1.0]) * self._step * span[knob]
        self._pending = self.space.clip(self._current + move)
        return self._pending

    def observe(self, cost: float) -> None:
        if self._current_cost is None:
            self._current_cost = cost
            return
        changed = np.abs(self._pending - self._current) > 1e-12
        if cost < self._current_cost:
            self._knob_credit[changed] += 1.0
            self._current = self._pending
            self._current_cost = cost
        else:
            self._knob_credit[changed] = np.maximum(
                self._knob_credit[changed] * 0.7, 0.2
            )


def veteran_start(plan, space: ConfigSpace) -> np.ndarray:
    """The domain-knowledge starting point a seasoned Spark engineer uses.

    Partitions sized to the input, scan splits sized to saturate the default
    16 cores, broadcast threshold raised past typical dimension tables —
    this is what the Sec.-2.1 interviewees described tuning by hand.
    """
    rows = plan.total_leaf_cardinality
    input_bytes = plan.total_input_bytes
    config = space.default_dict()
    config["spark.sql.shuffle.partitions"] = float(np.clip(rows / 2e6, 8, 4000))
    config["spark.sql.files.maxPartitionBytes"] = float(np.clip(
        input_bytes / 64.0,
        space["spark.sql.files.maxPartitionBytes"].low,
        space["spark.sql.files.maxPartitionBytes"].high,
    ))
    config["spark.sql.autoBroadcastJoinThreshold"] = 64.0 * 1024 * 1024
    return space.to_vector(config)


def run(
    quick: bool = False,
    seed: int = 0,
    query_ids: Sequence[int] = DEFAULT_QUERIES,
    n_workers=None,
) -> ExperimentResult:
    n_experts = 8 if quick else 50
    n_iterations = 15 if quick else 40
    veteran_fraction = 0.25  # interviewees who tune from experience, not defaults
    space = manual_study_space()
    simulator = SparkSimulator(noise=no_noise(), seed=seed)

    result = ExperimentResult(
        name="fig03_manual_tuning",
        description=(
            "Scripted expert policies vs per-query Bayesian Optimization on "
            "the predicted-time platform (7 knobs, 5 queries): mean best-so-"
            "far execution time per iteration."
        ),
    )

    def tune_query(qid: int):
        plan = tpcds_plan(qid, 100.0)

        def cost(vector: np.ndarray) -> float:
            return simulator.true_time(plan, space.to_dict(vector))

        # Experts (a fraction start from domain-knowledge configurations).
        expert_traces = np.empty((n_experts, n_iterations))
        for e in range(n_experts):
            start = (
                veteran_start(plan, space)
                if e < int(veteran_fraction * n_experts) else None
            )
            policy = ExpertPolicy(space, seed=seed * 1000 + e, start=start)
            best = np.inf
            for t in range(n_iterations):
                c = cost(policy.suggest())
                policy.observe(c)
                best = min(best, c)
                expert_traces[e, t] = best

        # Model-based tuning (deterministic platform, so plain BO).
        bo = BayesianOptimization(space, n_init=5, n_candidates=256, seed=seed + qid)
        bo_trace = np.empty(n_iterations)
        best = np.inf
        for t in range(n_iterations):
            vector = bo.suggest()
            c = cost(vector)
            bo.observe(Observation(config=vector, data_size=1.0, performance=c, iteration=t))
            best = min(best, c)
            bo_trace[t] = best
        return (
            expert_traces.mean(axis=0),
            float(expert_traces[:, -1].min()),
            bo_trace,
        )

    per_query = parallel_map(tune_query, query_ids, n_workers=n_workers)
    bo_wins_at_half = 0
    expert_wins_final = 0
    for qid, (expert_mean, best_expert_final, bo_trace) in zip(query_ids, per_query):
        label = f"tpcds_q{qid:02d}"
        result.series[f"{label}_experts_mean"] = expert_mean
        result.series[f"{label}_bo"] = bo_trace
        half = n_iterations // 2
        if bo_trace[half] <= expert_mean[half]:
            bo_wins_at_half += 1
        # "Domain experts occasionally achieved better results": compare the
        # best individual tuner (not the average) against the model.
        if best_expert_final < bo_trace[-1]:
            expert_wins_final += 1
        result.scalars[f"{label}_expert_final"] = float(expert_mean[-1])
        result.scalars[f"{label}_best_expert_final"] = best_expert_final
        result.scalars[f"{label}_bo_final"] = float(bo_trace[-1])
    result.scalars["bo_faster_at_halfway_count"] = float(bo_wins_at_half)
    result.scalars["expert_better_final_count"] = float(expert_wins_final)
    result.notes.append(
        "Expected shape: BO ahead of the *average* expert at the halfway "
        "point on most queries (faster convergence); the *best individual* "
        "expert — often a veteran starting from domain knowledge — finishes "
        "better on some queries (the model stuck in a local minimum)."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
