"""Figure 2: BO and FLOW2 convergence collapse under production noise.

200 simulation runs on the convex synthetic objective with high Eq.-8 noise
(FL = SL = 1).  "Both methods exhibit poor convergence" — the medians stay
far from the optimum and the 5–95% bands stay wide.  Compare against
Fig. 10 (Centroid Learning on the identical objective).
"""

from __future__ import annotations


from ..optimizers.bayesian import BayesianOptimization
from ..optimizers.flow2 import FLOW2
from ..sparksim.noise import high_noise
from ..workloads.synthetic import default_synthetic_objective
from .runner import ExperimentResult, run_replicated

__all__ = ["run"]


def run(
    quick: bool = False,
    seed: int = 0,
    n_runs: int = None,
    n_iterations: int = None,
    n_workers=None,
) -> ExperimentResult:
    # The paper uses 200 runs of 400 iterations; the GP refits make that
    # ~30 min of compute, so full mode defaults to 60×250 (the bands are
    # already stable there).  Pass n_runs/n_iterations explicitly to
    # replicate the exact paper scale.
    n_runs = n_runs or (16 if quick else 60)
    n_iterations = n_iterations or (60 if quick else 250)
    objective = default_synthetic_objective(noise=high_noise(), seed=7)
    space = objective.space

    bo = run_replicated(
        lambda i: BayesianOptimization(space, n_init=5, n_candidates=128, seed=seed + i),
        objective,
        n_iterations,
        n_runs,
        seed=seed,
        n_workers=n_workers,
    )
    flow2 = run_replicated(
        lambda i: FLOW2(space, seed=seed + i),
        objective,
        n_iterations,
        n_runs,
        seed=seed + 1,
        n_workers=n_workers,
    )

    result = ExperimentResult(
        name="fig02_noisy_convergence",
        description=(
            "Vanilla BO (a) and FLOW2 (b) on the convex synthetic objective "
            "with FL=SL=1 noise: median true performance with 5-95% bands."
        ),
        series={"bayesian_optimization": bo, "flow2": flow2},
    )
    result.scalars["optimal_value"] = objective.optimal_value
    result.scalars["default_value"] = objective.true_value(space.default_vector())
    result.scalars["bo_final_median"] = bo.final_median()
    result.scalars["bo_final_p95"] = bo.final_p95()
    result.scalars["flow2_final_median"] = flow2.final_median()
    result.scalars["flow2_final_p95"] = flow2.final_p95()
    result.notes.append(
        "Expected shape: both final medians sit well above the optimum and "
        "the p95 boundaries stay wide — the motivation for Centroid Learning."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
