"""Figure 11: Centroid Learning on dynamic workloads.

Two regimes under high noise: data sizes growing linearly over time, and
periodic data sizes (``f(t) = t %% K``).  The paper reports both the
*normed* performance (time / data size) and the optimality gap of the most
impactful knob; CL converges in both regimes because the FIND_BEST /
FIND_GRADIENT models include the data size as a feature.
"""

from __future__ import annotations

from ..core.centroid import CentroidLearning
from ..sparksim.noise import high_noise
from ..workloads.dynamics import LinearGrowth, PeriodicSize
from ..workloads.synthetic import default_synthetic_objective
from .runner import ExperimentResult, run_replicated

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0, n_workers=None) -> ExperimentResult:
    n_runs = 8 if quick else 60
    n_iterations = 80 if quick else 400
    objective = default_synthetic_objective(noise=high_noise(), seed=7)
    space = objective.space
    p0 = objective.reference_size

    regimes = {
        "linear": lambda i: LinearGrowth(initial=p0, slope=p0 * 0.01),
        "periodic": lambda i: PeriodicSize(initial=p0, slope=p0 * 0.05, period=20),
    }

    result = ExperimentResult(
        name="fig11_dynamic_workloads",
        description=(
            "CL with linearly increasing (a, b) and periodic (c, d) data "
            "sizes: normed performance and most-impactful-knob optimality gap."
        ),
    )
    result.scalars["optimal_value"] = objective.optimal_value
    for label, process_factory in regimes.items():
        perf = run_replicated(
            lambda i: CentroidLearning(space, seed=seed + i),
            objective,
            n_iterations,
            n_runs,
            size_process_factory=process_factory,
            seed=seed,
            track="normed",
            n_workers=n_workers,
        )
        gap = run_replicated(
            lambda i: CentroidLearning(space, seed=5000 + seed + i),
            objective,
            n_iterations,
            n_runs,
            size_process_factory=process_factory,
            seed=seed + 1,
            track="gap",
            n_workers=n_workers,
        )
        result.series[f"{label}_normed"] = perf
        result.series[f"{label}_gap"] = gap
        result.scalars[f"{label}_final_normed_median"] = perf.final_median()
        result.scalars[f"{label}_initial_normed_median"] = float(perf.median[0])
        result.scalars[f"{label}_final_gap_median"] = gap.final_median()
        result.scalars[f"{label}_initial_gap_median"] = float(gap.median[:5].mean())
    result.notes.append(
        "Expected shape: normed performance and the optimality gap both "
        "shrink over iterations in each regime despite the shifting data size."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
