"""Figure 14: TPC-H production tuning with a TPC-DS-trained baseline.

"We evaluate the algorithm using TPC-H workloads with a scale factor of
100 GB, while the baseline model is trained on TPC-DS data" — each of the 22
queries is tuned independently with the three production knobs, under
production noise.  Reported: total execution time per iteration, and the
per-query gain counts the paper cites (10 queries >10%, 6 of those >15%,
three minor regressions attributable to noise).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.centroid import CentroidLearning
from ..core.selectors import BaselineModelAdapter, SurrogateSelector, SurrogateSelector
from ..core.session import TuningSession
from ..embedding.embedder import WorkloadEmbedder
from ..offline.baseline import BaselineModelTrainer
from ..offline.etl import build_training_table
from ..offline.flighting import FlightingConfig, FlightingPipeline
from ..core.centroid import default_window_model_factory
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import NoiseModel
from ..workloads.tpch import TPCH_QUERY_IDS, tpch_plan
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0, n_workers=None) -> ExperimentResult:
    query_ids: Sequence[int] = TPCH_QUERY_IDS[:6] if quick else TPCH_QUERY_IDS
    n_iterations = 20 if quick else 40
    flight_queries = [1, 5, 9, 13] if quick else list(range(1, 25))
    flight_configs = 6 if quick else 12
    space = query_level_space()
    embedder = WorkloadEmbedder()

    # Offline phase: flight TPC-DS, train the baseline model.
    flight = FlightingPipeline(
        FlightingConfig(
            benchmark="tpcds",
            query_ids=flight_queries,
            scale_factors=[10.0, 100.0],
            n_configs=flight_configs,
            seed=seed,
        ),
        space=space,
        embedder=embedder,
    )
    table = build_training_table(flight.execute(), space)
    baseline = BaselineModelTrainer().train(table)
    adapter = BaselineModelAdapter(baseline, embedder.dim)

    # Online phase: tune each TPC-H query independently under noise.  The
    # production runs show "substantial noise and occasional runtime spikes";
    # FL=0.25/SL=0.3 keeps both visible while leaving the per-iteration knob
    # signal detectable within ~40 runs, as in the deployment.
    noise = NoiseModel(fluctuation_level=0.25, spike_level=0.3)

    def tune_query(indexed_qid):
        k, qid = indexed_qid
        plan = tpch_plan(qid, 100.0)
        selector = SurrogateSelector(
            default_window_model_factory, baseline=adapter, min_observations=4
        )
        optimizer = CentroidLearning(
            space, alpha=0.08, beta=0.15, n_candidates=30,
            selector=selector, seed=seed + k,
        )
        session = TuningSession(
            plan,
            SparkSimulator(noise=noise, seed=seed * 13 + k),
            optimizer,
            embedder=embedder,
        )
        trace = session.run(n_iterations)
        w = max(4, n_iterations // 5)
        first = float(trace.true[:w].mean())
        last = float(trace.true[-w:].mean())
        return trace.observed, trace.true, (qid, first / last - 1.0, first - last)

    # The offline flighting above is one shared pass; the per-query online
    # tuning sessions are independent and fan out across the pool.
    per_query = parallel_map(
        tune_query, list(enumerate(query_ids)), n_workers=n_workers
    )
    observed_total = np.zeros(n_iterations)
    true_total = np.zeros(n_iterations)
    gains = []
    for observed, true, gain in per_query:
        observed_total += observed
        true_total += true
        gains.append(gain)

    result = ExperimentResult(
        name="fig14_tpch_production",
        description=(
            "Total TPC-H (SF=100) execution time across all tuned queries "
            "per iteration; baseline model trained on TPC-DS flighting data."
        ),
        series={
            "observed_total_seconds": observed_total,
            "true_total_seconds": true_total,
        },
    )
    result.scalars["n_queries"] = float(len(query_ids))
    result.scalars["queries_gain_over_10pct"] = float(
        sum(1 for _, g, _ in gains if g > 0.10)
    )
    result.scalars["queries_gain_over_15pct"] = float(
        sum(1 for _, g, _ in gains if g > 0.15)
    )
    result.scalars["queries_minor_regression"] = float(
        sum(1 for _, g, d in gains if g < 0 and abs(d) < 0.7)
    )
    result.scalars["queries_any_regression"] = float(sum(1 for _, g, _ in gains if g < 0))
    w = max(4, n_iterations // 5)
    result.scalars["total_speedup_pct"] = float(
        (true_total[:w].mean() / true_total[-w:].mean() - 1.0) * 100.0
    )
    for qid, g, _ in gains:
        result.scalars[f"tpch_q{qid:02d}_gain_pct"] = float(g * 100.0)
    result.notes.append(
        "Expected shape: total time trends down despite runtime spikes; a "
        "large subset of queries gains >10% (paper: 10 of 22, 6 of them "
        ">15%), with only small noise-level regressions."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
