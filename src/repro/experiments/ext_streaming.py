"""Extension: tuning streaming micro-batch workloads.

The Sec.-2.1 user study includes streaming workloads; per-query tuning suits
them unusually well — the same tiny plan recurs every batch interval, so the
tuner gets hundreds of iterations, and Spark's batch-oriented defaults
(200 shuffle partitions, 128 MB scan partitions) are dramatically oversized
for a few-MB micro-batch.

A fleet of streams with bursty, diurnal arrivals is tuned with Centroid
Learning; reported: per-batch latency reduction and where the partitions
knob converges.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.centroid import CentroidLearning
from ..core.session import TuningSession
from ..sparksim.configs import query_level_space
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import NoiseModel
from ..workloads.streaming import MicroBatchStream
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0, n_workers=None) -> ExperimentResult:
    n_streams = 4 if quick else 12
    n_batches = 60 if quick else 200
    space = query_level_space()
    noise = NoiseModel(fluctuation_level=0.2, spike_level=0.3)

    result = ExperimentResult(
        name="ext_streaming",
        description=(
            "Micro-batch streams with bursty diurnal arrivals tuned with CL: "
            "per-batch latency of the tuned configs vs the defaults at the "
            "same batch volumes (last window), and the final "
            "spark.sql.shuffle.partitions per stream (defaults: 200)."
        ),
    )
    truth = SparkSimulator(noise=None, seed=0)
    default_config = space.default_dict()

    def tune_stream(k: int):
        stream = MicroBatchStream.create(
            events_per_batch=float(10 ** np.random.default_rng(seed + k).uniform(4.5, 6.0)),
            seed=seed * 7 + k,
        )
        session = TuningSession(
            stream.plan,
            SparkSimulator(noise=noise, seed=seed * 11 + k),
            CentroidLearning(space, alpha=0.08, beta=0.15, seed=seed + k),
            scale_fn=stream.scale,
        )
        trace = session.run(n_batches)
        w = max(5, n_batches // 8)
        tail = trace.records[-w:]
        # Burst sizes vary, so the fair comparison is tuned-vs-default at
        # the *same* batch volumes.
        tuned = float(np.sum([r.true_seconds for r in tail]))
        base_rows = stream.plan.total_leaf_cardinality
        default = float(np.sum([
            truth.true_time(stream.plan, default_config,
                            data_scale=r.data_size / base_rows)
            for r in tail
        ]))
        partitions = float(np.mean([
            r.config["spark.sql.shuffle.partitions"] for r in tail
        ]))
        return (default / tuned - 1.0) * 100.0, tuned < default, partitions

    per_stream = parallel_map(tune_stream, range(n_streams), n_workers=n_workers)
    latency_gains: List[float] = [g for g, _, _ in per_stream]
    final_partitions: List[float] = [p for _, _, p in per_stream]
    improved = sum(int(i) for _, i, _ in per_stream)

    result.series["per_stream_latency_gain_pct"] = np.array(latency_gains)
    result.series["final_partitions_per_stream"] = np.array(final_partitions)
    result.scalars["n_streams"] = float(n_streams)
    result.scalars["mean_latency_gain_pct"] = float(np.mean(latency_gains))
    result.scalars["median_final_partitions"] = float(np.median(final_partitions))
    result.scalars["fraction_streams_improved"] = float(improved / n_streams)
    result.notes.append(
        "Expected shape: every stream beats the default configuration at "
        "equal batch volumes; the tuner drives shuffle partitions far below "
        "the 200 default for micro-batch volumes."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
