"""Sec.-4.3 de-noising ablation: window size N and overshoot step α.

"The number of observations N should be sufficiently large (e.g., 10 or 20)
to mitigate the influence of significant noise" — a window of 2 reduces the
gradient to a hill-climbing-style last-two-rounds comparison, exactly what
CL is designed to improve on.  The α sweep probes the momentum-style
overshoot: too small stalls progress, too large oscillates around the
optimum.
"""

from __future__ import annotations

from typing import Sequence

from ..core.centroid import CentroidLearning
from ..sparksim.noise import high_noise
from ..workloads.synthetic import default_synthetic_objective
from .runner import ExperimentResult, run_replicated

__all__ = ["run"]

WINDOW_SIZES = (2, 5, 10, 20)
ALPHAS = (0.02, 0.05, 0.1, 0.2)


def run(
    quick: bool = False,
    seed: int = 0,
    window_sizes: Sequence[int] = WINDOW_SIZES,
    alphas: Sequence[float] = ALPHAS,
    n_workers=None,
) -> ExperimentResult:
    n_runs = 8 if quick else 50
    n_iterations = 80 if quick else 300
    objective = default_synthetic_objective(noise=high_noise(), seed=7)
    space = objective.space

    result = ExperimentResult(
        name="ablation_window",
        description=(
            "Centroid Learning de-noising knobs under FL=SL=1 noise: window "
            "size N (gradient estimated from last-N observations) and "
            "overshoot step alpha."
        ),
    )
    result.scalars["optimal_value"] = objective.optimal_value
    result.scalars["default_value"] = objective.true_value(space.default_vector())
    for N in window_sizes:
        bands = run_replicated(
            lambda i, n=N: CentroidLearning(space, window_size=n, seed=seed + i),
            objective,
            n_iterations,
            n_runs,
            seed=seed + N,
            n_workers=n_workers,
        )
        result.series[f"window_{N}"] = bands
        result.scalars[f"window_{N}_final_median"] = bands.final_median()
        result.scalars[f"window_{N}_final_p95"] = bands.final_p95()
    for alpha in alphas:
        bands = run_replicated(
            lambda i, a=alpha: CentroidLearning(space, alpha=a, seed=seed + i),
            objective,
            n_iterations,
            n_runs,
            seed=seed + int(alpha * 1000),
            n_workers=n_workers,
        )
        label = f"alpha_{alpha:g}"
        result.series[label] = bands
        result.scalars[f"{label}_final_median"] = bands.final_median()
    result.notes.append(
        "Expected shape: N=10/20 end with lower medians and tighter p95 than "
        "N=2 (the de-noising claim); mid-range alpha beats the extremes."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
