"""Lock-step vectorized session engine.

Runs K independent Centroid Learning tuning sessions one *step* at a time
in struct-of-arrays form: per step there is **one**
``true_time_batch``/``estimate_batch`` call per distinct (plan, cost
parameters, pool) group covering every session, one batched ridge-pipeline
fit for every session whose window model is stale, one batched guardrail
trend solve, and one vectorized centroid update — instead of K of each.

**Bit-identity contract.**  The engine is not an approximation: every
floating-point operation is arranged so that session *k*'s observation
trail, telemetry counters, guardrail decisions, and final optimizer state
are bitwise identical to running ``SessionSpec.to_session().run(n)``
sequentially.  The ingredients:

* per-session RNG streams — each session draws candidates, cold-start
  choices and observation noise from its own optimizer/simulator
  generators, in the same order as the sequential loop;
* the batched model fits in :mod:`repro.ml.batched`, whose per-slice
  arithmetic matches the scalar ``StandardScaler → PolynomialFeatures →
  RidgeRegression`` pipeline and the guardrail's :func:`ols_predict`;
* the per-config ``data_scales`` path of
  :meth:`repro.sparksim.executor.SparkSimulator.true_time_batch`, bitwise
  equal to scalar estimates on per-session scaled plans;
* :meth:`SparkSimulator.observe_true` (and its
  :class:`~repro.faults.injectors.FaultySimulator` wrapper), which applies
  exactly the per-run noise/fault tail of ``run()`` to precomputed true
  times;
* per-session task-switch state (:class:`_SwitchState`): the
  :class:`~repro.core.switch.TaskSwitchDetector` CUSUM recursion runs
  vectorized across sessions, while rare events (warmup freezes,
  detections, re-anchors, warm-start consults) drop to per-session loops
  replaying the scalar arithmetic — sessions that fire at different steps
  keep ragged window/guardrail epochs (``_win_start``/``_gr_start``) that
  the suggest, guardrail and centroid phases group by length;
* :class:`~repro.core.switch.SafeExplorationGate` masking applied to the
  batched candidate scores (``-inf`` at rejected candidates is
  argmax-equivalent to the scalar gate's subset selection).

``repro.verify.diff.diff_lockstep_sequential`` pins the contract end to
end on fig15-style populations; Hypothesis properties in
``tests/verify/test_properties.py`` pin the K=1 reduction and permutation
invariance.

Sessions whose optimizers fall outside the vectorizable envelope (non-CL
optimizers, robust guardrails, custom selectors, ...) raise
:class:`LockstepCompatibilityError` — callers fall back to the sequential
path rather than silently getting different numbers.  Batched GP
posteriors for BO/contextual paths are provided by
:func:`repro.ml.batched.batched_gp_posterior` under a tolerance (not
bitwise) contract.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..core.centroid import CentroidLearning
from ..core.find_best import FindBestMode
from ..core.guardrail import Guardrail, GuardrailDecision
from ..core.observation import Observation
from ..core.selectors import SurrogateSelector
from ..core.session import IterationRecord, TuningSession, TuningTrace
from ..core.switch import (
    SafeExplorationGate,
    SwitchDecision,
    TaskSwitchDetector,
    _record_detection,
)
from ..ml.acquisition import (
    ExpectedImprovement,
    LowerConfidenceBound,
    MeanMinimizer,
    ProbabilityOfImprovement,
)
from ..ml.batched import BatchedRidgePipeline, fit_ridge_pipeline, ols_predict
from ..ml.linear import PolynomialFeatures, RidgeRegression
from ..ml.scaler import Pipeline, StandardScaler

__all__ = [
    "LockstepCompatibilityError",
    "SessionSpec",
    "LockstepSessions",
    "LockstepReplicatedRuns",
    "run_sequential",
]

# Acquisition functions whose scores are elementwise in (mean, std, best) —
# a batched (K, m) call is then bitwise equal to K scalar (m,) calls.
_ELEMENTWISE_ACQUISITIONS = (
    MeanMinimizer,
    ExpectedImprovement,
    ProbabilityOfImprovement,
    LowerConfidenceBound,
)

# Beyond this many knobs the 2^d gradient sign enumeration that the engine
# mirrors (repro.core.gradient._MAX_ENUM_DIM) switches to a coordinate-wise
# search the engine does not replicate.
_MAX_ENUM_DIM = 12


class LockstepCompatibilityError(ValueError):
    """A session population cannot be run in lock-step bit-identically."""


@dataclass
class SessionSpec:
    """One session of a lock-step population.

    Mirrors the :class:`~repro.core.session.TuningSession` constructor
    arguments the engine supports; :meth:`to_session` builds the sequential
    twin the differential oracle compares against.
    """

    plan: object
    simulator: object
    optimizer: CentroidLearning
    scale_fn: Optional[Callable[[int], float]] = None
    observe_transform: Optional[Callable[[int, float], float]] = None

    def to_session(self) -> TuningSession:
        return TuningSession(
            plan=self.plan,
            simulator=self.simulator,
            optimizer=self.optimizer,
            scale_fn=self.scale_fn,
            observe_transform=self.observe_transform,
        )


def run_sequential(
    specs: Sequence[SessionSpec], n_iterations: int
) -> List[TuningTrace]:
    """The sequential reference: run each spec's session to completion."""
    return [spec.to_session().run(n_iterations) for spec in specs]


@dataclass
class _Uniform:
    """Hyperparameters required to be identical across the population."""

    window_size: int
    n_candidates: int
    find_best_mode: FindBestMode
    probe: str
    min_update_obs: int
    sel_min_obs: int
    acquisition: object
    degree: int
    interaction_only: bool
    guardrail: Optional[Guardrail]  # parameter template (state lives in SoA)
    detector: Optional[TaskSwitchDetector] = None  # parameter template
    gate: Optional[SafeExplorationGate] = None


@dataclass
class _GuardrailState:
    """Per-session guardrail state, struct-of-arrays."""

    consecutive: np.ndarray
    disabled: np.ndarray
    since_disable: np.ndarray
    reenable_count: np.ndarray
    reset_count: np.ndarray
    decisions: List[List[GuardrailDecision]] = field(default_factory=list)


@dataclass
class _SwitchState:
    """Per-session task-switch-detector state, struct-of-arrays.

    Mirrors :class:`~repro.core.switch.TaskSwitchDetector` field for field;
    ``nan`` stands in for the scalar detector's ``None`` (unset reference /
    anchor).  ``reanchors`` tracks the owning optimizer's ``reanchor_count``.
    """

    n: np.ndarray
    block: np.ndarray  # (K, warmup) warmup scratch
    ref_mean: np.ndarray
    ref_scale: np.ndarray
    g: np.ndarray
    anchor_size: np.ndarray
    switch_counts: np.ndarray
    reanchors: np.ndarray
    decisions: List[List[SwitchDecision]] = field(default_factory=list)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise LockstepCompatibilityError(message)


class LockstepSessions:
    """K Centroid Learning sessions advanced in lock-step.

    Args:
        specs: the population; every optimizer must be a fresh
            :class:`CentroidLearning` with the default surrogate-selector /
            ridge-pipeline structure (per-session ``alpha``, ``beta``,
            ``alpha_decay``, ridge strength, seeds, noise models and fault
            plans may vary; window sizes, candidate counts, selector and
            guardrail *parameters* must be uniform).

    Raises:
        LockstepCompatibilityError: when the population cannot be run
            bit-identically to the sequential loop.
    """

    def __init__(self, specs: Sequence[SessionSpec]):
        specs = list(specs)
        _require(len(specs) >= 1, "lock-step needs at least one session")
        self.specs = specs
        opts = [spec.optimizer for spec in specs]
        self._sims = [spec.simulator for spec in specs]
        self._scale_fns = [spec.scale_fn for spec in specs]
        self._transforms = [spec.observe_transform for spec in specs]
        self._observe_fns = [spec.simulator.observe_true for spec in specs]
        self._scale_idx = [
            k for k, fn in enumerate(self._scale_fns) if fn is not None
        ]

        # Plan geometry + evaluation groups (one batched kernel call per
        # distinct (plan, cost parameters, pool) combination per step).
        self._leaf_rows = [
            tuple(op.est_rows_in for op in spec.plan.leaves) for spec in specs
        ]
        self._leaf_totals = np.array(
            [spec.plan.total_leaf_cardinality for spec in specs]
        )
        self._est_default = np.maximum(self._leaf_totals, 1.0)
        self._plan_ids = [id(spec.plan) for spec in specs]
        groups: dict = {}
        for k, spec in enumerate(specs):
            sim = spec.simulator
            key = (id(spec.plan), sim.cost_model.params, sim.pool)
            groups.setdefault(key, (spec.plan, sim, []))[2].append(k)
        self._groups = [
            (plan, sim, np.array(idx)) for plan, sim, idx in groups.values()
        ]

        self._init_core(opts)

    def _init_core(self, opts: Sequence[CentroidLearning]) -> None:
        """Validate and build the optimizer-state SoA shared by all drivers."""
        self.k = len(opts)
        self._opts = opts
        self._u = self._validate(opts)
        u = self._u
        self.space = opts[0].space
        self.dim = self.space.dim
        bounds = self.space.internal_bounds
        self._lb = bounds[:, 0].copy()
        self._ub = bounds[:, 1].copy()
        self._span = self._ub - self._lb
        self._default = self.space.default_vector()
        self._deltas = np.array(
            list(itertools.product((1.0, -1.0), repeat=self.dim))
        )

        # Per-session scalar hyperparameters (allowed to vary).
        self._alphas = np.array([o.alpha for o in opts])
        self._alpha_decays = np.array([o.alpha_decay for o in opts])
        self._betas = np.array([o.beta for o in opts])
        self._ridge_alphas = np.array(
            [o.model_factory().steps[-1][1].alpha for o in opts]
        )
        self._rngs = [o._rng for o in opts]
        # Prebound per-session callables: the per-step Python floor is one
        # raw-double draw plus one observe_true call per session, so shaving
        # the attribute lookups off both is worth it at K=256.
        self._randoms = [rng.random for rng in self._rngs]
        self._unit_scales = np.ones(self.k)

        # Centroid Learning state, struct-of-arrays.
        self._centroids = np.stack([o._centroid for o in opts])
        self._n_updates = np.zeros(self.k)
        self._last_best = np.zeros((self.k, self.dim))
        self._last_delta = np.zeros((self.k, self.dim))
        self._ever_updated = np.zeros(self.k, dtype=bool)

        # Window model store: one fitted ridge pipeline per session, refit
        # lazily when a session's window version moves past the cached one
        # (mirrors find_best.fit_window_model's memoization).
        n_base = self.dim + 1
        if u.degree == 1:
            n_feat = n_base
        elif u.interaction_only:
            n_feat = n_base + n_base * (n_base - 1) // 2
        else:
            n_feat = n_base + n_base * (n_base + 1) // 2
        self._model = BatchedRidgePipeline(
            mean=np.zeros((self.k, n_base)),
            scale=np.ones((self.k, n_base)),
            coef=np.zeros((self.k, n_feat)),
            intercept=np.zeros(self.k),
            degree=u.degree,
            interaction_only=u.interaction_only,
        )
        self._model_version = np.full(self.k, -1)

        if u.guardrail is not None:
            self._grs: Optional[_GuardrailState] = _GuardrailState(
                consecutive=np.zeros(self.k, dtype=int),
                disabled=np.zeros(self.k, dtype=bool),
                since_disable=np.zeros(self.k, dtype=int),
                reenable_count=np.zeros(self.k, dtype=int),
                reset_count=np.zeros(self.k, dtype=int),
                decisions=[[] for _ in range(self.k)],
            )
        else:
            self._grs = None

        # Task-switch re-anchoring: per-session window / guardrail epochs.
        # ``_win_start[k]`` is the step index of the first observation in
        # session k's current ObservationWindow; ``_gr_start[k]`` the first
        # step in its guardrail history.  Both stay 0 (the construction-time
        # epoch) until a detector fires, so detector-free populations take
        # exactly the pre-switch code paths.
        self._win_start = np.zeros(self.k, dtype=int)
        self._gr_start = np.zeros(self.k, dtype=int)
        self._synced_start = np.zeros(self.k, dtype=int)
        self._warm_starts = [
            getattr(o, "switch_warm_start", None) for o in opts
        ]
        if u.detector is not None:
            self._sws: Optional[_SwitchState] = _SwitchState(
                n=np.zeros(self.k, dtype=int),
                block=np.zeros((self.k, u.detector.warmup)),
                ref_mean=np.full(self.k, np.nan),
                ref_scale=np.full(self.k, np.nan),
                g=np.zeros(self.k),
                anchor_size=np.full(self.k, np.nan),
                switch_counts=np.zeros(self.k, dtype=int),
                reanchors=np.zeros(self.k, dtype=int),
                decisions=[[] for _ in range(self.k)],
            )
        else:
            self._sws = None

        # Step-indexed history buffers, grown on demand.
        self._t = 0
        self._capacity = 0
        self._synced_obs = 0
        self._vectors = np.empty((self.k, 0, self.dim))
        self._truth = np.empty((self.k, 0))
        self._perfs = np.empty((self.k, 0))
        self._sizes = np.empty((self.k, 0))
        self._active = np.empty((self.k, 0), dtype=bool)

    # -- validation --------------------------------------------------------------

    def _validate(self, opts: Sequence[CentroidLearning]) -> _Uniform:
        first = opts[0]
        det0 = getattr(first, "switch_detector", None)
        gate0 = getattr(first, "safe_gate", None)
        _require(
            type(first) is CentroidLearning,
            f"lock-step supports CentroidLearning, got {type(first).__name__}",
        )
        space = first.space
        _require(
            space.dim <= _MAX_ENUM_DIM,
            f"lock-step mirrors the 2^d gradient enumeration; "
            f"dim {space.dim} > {_MAX_ENUM_DIM}",
        )
        sel0 = first.selector
        gr0 = first.guardrail
        for opt in opts:
            _require(
                type(opt) is CentroidLearning,
                f"lock-step supports CentroidLearning, got {type(opt).__name__}",
            )
            _require(opt.space == space, "all sessions must share one ConfigSpace")
            _require(
                opt.gradient_mode == "ml",
                f"lock-step supports gradient_mode='ml', got {opt.gradient_mode!r}",
            )
            _require(opt.probe == first.probe, "probe geometry must be uniform")
            _require(
                opt.probe in ("span", "multiplicative"),
                f"unknown probe geometry {opt.probe!r}",
            )
            _require(
                opt.observations.window_size == first.observations.window_size,
                "window_size must be uniform",
            )
            _require(
                opt.n_candidates == first.n_candidates,
                "n_candidates must be uniform",
            )
            _require(
                opt.find_best_mode is first.find_best_mode,
                "find_best_mode must be uniform",
            )
            _require(
                opt.min_update_observations == first.min_update_observations,
                "min_update_observations must be uniform",
            )
            _require(
                len(opt.observations) == 0 and opt._n_updates == 0,
                "lock-step requires fresh optimizers (empty windows)",
            )
            sel = opt.selector
            _require(
                type(sel) is SurrogateSelector,
                f"lock-step supports SurrogateSelector, got {type(sel).__name__}",
            )
            _require(sel.baseline is None, "baseline models are not supported")
            _require(
                sel.model_factory is opt.model_factory,
                "selector must share the optimizer's model factory",
            )
            _require(
                sel.min_observations == sel0.min_observations,
                "selector min_observations must be uniform",
            )
            _require(
                isinstance(sel.acquisition, _ELEMENTWISE_ACQUISITIONS),
                f"unsupported acquisition {type(sel.acquisition).__name__}",
            )
            _require(
                sel.acquisition == sel0.acquisition,
                "acquisition functions must be uniform",
            )
            _require(
                (opt.guardrail is None) == (gr0 is None),
                "guardrails must be all absent or all present",
            )
            if opt.guardrail is not None:
                g = opt.guardrail
                _require(
                    type(g) is Guardrail and not g.robust,
                    "lock-step supports non-robust Guardrail instances",
                )
                _require(
                    g.n_observations == 0 and g.active,
                    "lock-step requires fresh guardrails",
                )
                _require(
                    (g.min_iterations, g.threshold, g.patience,
                     g.fit_window, g.cooldown)
                    == (gr0.min_iterations, gr0.threshold, gr0.patience,
                        gr0.fit_window, gr0.cooldown),
                    "guardrail parameters must be uniform",
                )
            det = getattr(opt, "switch_detector", None)
            _require(
                (det is None) == (det0 is None),
                "switch detectors must be all absent or all present",
            )
            if det is not None:
                _require(
                    type(det) is TaskSwitchDetector,
                    f"lock-step supports TaskSwitchDetector, "
                    f"got {type(det).__name__}",
                )
                _require(
                    det.n_since_anchor == 0 and det.switch_count == 0,
                    "lock-step requires fresh switch detectors",
                )
                _require(
                    (det.warmup, det.threshold, det.drift, det.clip,
                     det.min_rel_scale, det.size_jump, det.embedding_jump)
                    == (det0.warmup, det0.threshold, det0.drift, det0.clip,
                        det0.min_rel_scale, det0.size_jump,
                        det0.embedding_jump),
                    "switch-detector parameters must be uniform",
                )
            gate = getattr(opt, "safe_gate", None)
            _require(
                (gate is None) == (gate0 is None),
                "safe gates must be all absent or all present",
            )
            if gate is not None:
                _require(
                    type(gate) is SafeExplorationGate,
                    f"lock-step supports SafeExplorationGate, "
                    f"got {type(gate).__name__}",
                )
                _require(
                    (gate.bound, gate.min_observations)
                    == (gate0.bound, gate0.min_observations),
                    "safe-gate parameters must be uniform",
                )
        if det0 is not None:
            ids = {id(getattr(o, "switch_detector", None)) for o in opts}
            _require(
                len(ids) == len(opts),
                "each session needs its own TaskSwitchDetector instance",
            )
        degree = interaction_only = None
        for opt in opts:
            model = opt.model_factory()
            _require(
                isinstance(model, Pipeline) and len(model.steps) == 3,
                "model factory must build a scale→poly→ridge Pipeline",
            )
            scale_step, poly_step, ridge_step = (s for _, s in model.steps)
            _require(
                isinstance(scale_step, StandardScaler)
                and isinstance(poly_step, PolynomialFeatures)
                and isinstance(ridge_step, RidgeRegression)
                and ridge_step.fit_intercept,
                "model factory must build the default "
                "StandardScaler→PolynomialFeatures→RidgeRegression pipeline",
            )
            if degree is None:
                degree = poly_step.degree
                interaction_only = poly_step.interaction_only
            _require(
                poly_step.degree == degree
                and poly_step.interaction_only == interaction_only,
                "polynomial expansion must be uniform",
            )
        if gate0 is not None:
            # Gate active ⟹ the selector is in its model branch: the gate
            # must never strip candidates while the selector would still be
            # consuming a cold-start RNG draw, or the lock-step mirror (which
            # routes gated sessions through the batched model path) diverges.
            _require(
                gate0.min_observations >= sel0.min_observations,
                "safe_gate.min_observations must be >= the selector's "
                "min_observations",
            )
        return _Uniform(
            window_size=first.observations.window_size,
            n_candidates=first.n_candidates,
            find_best_mode=first.find_best_mode,
            probe=first.probe,
            min_update_obs=first.min_update_observations,
            sel_min_obs=sel0.min_observations,
            acquisition=sel0.acquisition,
            degree=degree,
            interaction_only=interaction_only,
            guardrail=gr0,
            detector=det0,
            gate=gate0,
        )

    # -- buffers -----------------------------------------------------------------

    def _ensure_capacity(self, steps: int) -> None:
        if steps <= self._capacity:
            return
        new = max(steps, 2 * self._capacity, 8)

        def grow(buf: np.ndarray, fill) -> np.ndarray:
            shape = list(buf.shape)
            shape[1] = new
            out = np.full(shape, fill, dtype=buf.dtype)
            out[:, : self._capacity] = buf
            return out

        self._vectors = grow(self._vectors, 0.0)
        self._truth = grow(self._truth, 0.0)
        self._perfs = grow(self._perfs, 0.0)
        self._sizes = grow(self._sizes, 1.0)
        self._active = grow(self._active, True)
        self._capacity = new

    # -- window models -----------------------------------------------------------

    def _models_for(
        self, idx: np.ndarray, version: int, n: Optional[int] = None
    ) -> BatchedRidgePipeline:
        """Fitted window models for sessions ``idx`` at window ``version``.

        ``version`` is the number of observations taken so far; stale
        sessions are refit in one batched call (others keep their cached
        fit, exactly like the sequential memoization in
        :func:`repro.core.find_best.fit_window_model`).  ``n`` is the shared
        window length of the ``idx`` sessions — callers with task-switch
        re-anchored populations group sessions by window length first; the
        default covers the never-re-anchored epoch.  A re-anchor invalidates
        the cache by pinning ``_model_version`` to -1.
        """
        stale = idx[self._model_version[idx] != version]
        if stale.size:
            u = self._u
            if n is None:
                n = min(version, u.window_size)
            lo = version - n
            X = np.empty((stale.size, n, self.dim + 1))
            X[:, :, : self.dim] = self._vectors[stale, lo:version]
            X[:, :, self.dim] = self._sizes[stale, lo:version]
            fitted = fit_ridge_pipeline(
                X,
                self._perfs[stale, lo:version],
                self._ridge_alphas[stale],
                degree=u.degree,
                interaction_only=u.interaction_only,
            )
            fitted.scatter_into(self._model, stale)
            self._model_version[stale] = version
        m = self._model
        if idx.size == self.k:
            # Fast path: flatnonzero over an all-True mask is arange(k), so
            # the full store is already in caller order — skip the gather.
            return m
        return BatchedRidgePipeline(
            mean=m.mean[idx], scale=m.scale[idx], coef=m.coef[idx],
            intercept=m.intercept[idx], degree=m.degree,
            interaction_only=m.interaction_only,
        )

    # -- workload substrate (overridden by the replicated-runs driver) -------------

    def _input_sizes(self, t: int):
        """Per-session ``(data_scale, estimated_size)`` for step ``t``.

        Sessions without a scale_fn sit at scale 1.0, so the whole block
        reduces to two cached (read-only) arrays when nobody drifts.
        """
        if not self._scale_idx:
            return self._unit_scales, self._est_default
        scales = np.ones(self.k)
        est_sizes = self._est_default.copy()
        # Sessions sharing a plan object and a scale value produce the same
        # leaf sum from the same inputs, so compute it once per distinct
        # (plan, scale) pair — bitwise identical, K-fold cheaper on fleets
        # that share one drifting workload.
        memo: dict = {}
        for k in self._scale_idx:
            s = self._scale_fns[k](t)
            scales[k] = s
            key = (self._plan_ids[k], s)
            total = memo.get(key)
            if total is None:
                if s != 1.0:
                    total = 0.0
                    for rows in self._leaf_rows[k]:
                        total = total + rows * s
                else:
                    total = self._leaf_totals[k]
                total = max(total, 1.0)
                memo[key] = total
            est_sizes[k] = total
        return scales, est_sizes

    def _execute(self, t: int, vectors: np.ndarray, scales: np.ndarray) -> None:
        """Fill ``_truth``/``_sizes``/``_perfs`` for step ``t``.

        One batched kernel call per (plan, params, pool) group with
        per-session data scales; then each session's own noise / fault
        stream turns true times into observations, in session order.
        """
        for plan, sim, idx in self._groups:
            self._truth[idx, t] = sim.true_time_batch(
                plan, vectors[idx], space=self.space, data_scales=scales[idx]
            )
            self._sizes[idx, t] = np.maximum(
                plan.total_leaf_cardinality * scales[idx], 1.0
            )
        truth_t = self._truth[:, t].tolist()
        transforms = self._transforms
        observes = self._observe_fns
        perfs_t = truth_t  # reuse the scratch list; overwritten per session
        for k in range(self.k):
            observed = observes[k](truth_t[k])
            transform = transforms[k]
            if transform is not None:
                observed = transform(t, observed)
            perfs_t[k] = observed
        self._perfs[:, t] = perfs_t

    # -- one lock-step iteration ---------------------------------------------------

    def step(self) -> None:
        """Advance every session by one suggest → execute → observe step."""
        t = self._t
        self._ensure_capacity(t + 1)
        u = self._u
        k_total = self.k
        dim = self.dim

        # 1. Input-size dynamics: per-session data scale and the compile-time
        #    cardinality estimate the selector scores against.
        scales, est_sizes = self._input_sizes(t)

        # 2. Suggest: guardrail-disabled sessions pin the default vector
        #    (consuming no randomness); active sessions draw β-neighborhood
        #    candidates from their own RNGs and score them in one batch.
        vectors = np.empty((k_total, dim))
        if self._grs is not None:
            active = ~self._grs.disabled
        else:
            active = np.ones(k_total, dtype=bool)
        act = np.flatnonzero(active)
        n_default = k_total - act.size
        if n_default:
            telemetry.counter("centroid.suggests", mode="default").inc(n_default)
            vectors[~active] = self._default
        if act.size:
            telemetry.counter("centroid.suggests", mode="tuning").inc(act.size)
            cents = np.clip(self._centroids[act], self._lb, self._ub)
            low = np.maximum(cents - self._betas[act, None] * self._span, self._lb)
            high = np.minimum(cents + self._betas[act, None] * self._span, self._ub)
            m = u.n_candidates
            cands = np.empty((act.size, m, dim))
            cands[:, 0, :] = cents
            if m > 1:
                # Generator.uniform(low, high, size) with array bounds is
                # exactly ``low + (high - low) * next_double`` per element
                # (verified bitwise), so draw the raw doubles per session —
                # same stream consumption — and apply the affine map in one
                # vectorized op across sessions.
                draws = np.empty((act.size, m - 1, dim))
                shape = (m - 1, dim)
                randoms = self._randoms
                for j, k in enumerate(act):
                    draws[j] = randoms[k](shape)
                cands[:, 1:, :] = (
                    low[:, None, :]
                    + np.subtract(high, low)[:, None, :] * draws
                )
            # Window lengths are per-session once task switches re-anchor;
            # without a detector every win_start is 0 and there is exactly
            # one group — the pre-switch fast path.
            n_windows = np.minimum(t - self._win_start[act], u.window_size)
            cold = n_windows < u.sel_min_obs
            if cold.any():
                # Cold start: uniform choice from each session's RNG.
                for j in np.flatnonzero(cold):
                    k = act[j]
                    vectors[k] = cands[j, int(self._rngs[k].integers(0, m))]
            hot_pos = np.flatnonzero(~cold)
            for n_w in np.unique(n_windows[hot_pos]):
                pos = hot_pos[n_windows[hot_pos] == n_w]
                grp = act[pos]
                n_w = int(n_w)
                model = self._models_for(grp, version=t, n=n_w)
                gated = u.gate is not None and n_w >= u.gate.min_observations
                n_rows = m + 1 if gated else m
                rows = np.empty((grp.size, n_rows, dim + 1))
                rows[:, :m, :dim] = cands[pos]
                rows[:, :, dim] = est_sizes[grp, None]
                if gated:
                    rows[:, m, :dim] = self._default
                mean = model.predict(rows)
                std = np.full((grp.size, m), 1e-9)
                best = np.min(self._perfs[grp, t - n_w : t], axis=1)
                scores = u.acquisition(mean[:, :m], std, best[:, None])
                if gated:
                    # Same mask the scalar gate computes; rejecting a
                    # candidate zeroes its score via -inf, which is
                    # argmax-equivalent to selecting over the safe subset.
                    bound = u.gate.bound
                    mask = mean[:, :m] <= mean[:, m:] * (1.0 + bound)
                    telemetry.counter("safe.checks").inc(grp.size)
                    n_rejected = int(grp.size * m - np.count_nonzero(mask))
                    if n_rejected:
                        telemetry.counter("safe.rejected").inc(n_rejected)
                    unsafe = ~mask.any(axis=1)
                    if unsafe.any():
                        telemetry.counter("safe.fallbacks").inc(
                            int(np.count_nonzero(unsafe))
                        )
                        vectors[grp[unsafe]] = self._default
                        scores = scores[~unsafe]
                        mask = mask[~unsafe]
                        pos = pos[~unsafe]
                        grp = grp[~unsafe]
                    scores = np.where(mask, scores, -np.inf)
                if grp.size:
                    chosen = np.argmax(scores, axis=1)
                    vectors[grp] = cands[pos, chosen]
        self._vectors[:, t] = vectors

        # 3. Execute on the workload substrate.
        self._execute(t, vectors, scales)

        # 4. Observe: task-switch sweep first (fired sessions re-anchor and
        #    skip the guardrail and centroid phases this step, exactly like
        #    the sequential early return), then the guardrail sweep, then
        #    the vectorized Alg.-1 centroid update for every session that is
        #    active with a full-enough window.
        telemetry.counter("session.steps").inc(k_total)
        if self._sws is not None:
            fired = self._switch_step(t)
            not_fired = ~fired
        else:
            not_fired = np.ones(k_total, dtype=bool)
        if self._grs is not None:
            active_after = self._guardrail_step(t, not_fired)
            held = int(np.count_nonzero(~active_after & not_fired))
            if held:
                telemetry.counter(
                    "centroid.updates_skipped", reason="guardrail"
                ).inc(held)
            updatable = np.flatnonzero(active_after & not_fired)
        else:
            active_after = np.ones(k_total, dtype=bool)
            updatable = np.flatnonzero(not_fired)
        self._active[:, t] = active_after
        n_wins = np.minimum(t + 1 - self._win_start[updatable], u.window_size)
        small = n_wins < u.min_update_obs
        n_small = int(np.count_nonzero(small))
        if n_small:
            telemetry.counter(
                "centroid.updates_skipped", reason="window"
            ).inc(n_small)
        full = updatable[~small]
        if full.size:
            full_wins = n_wins[~small]
            for n_win in np.unique(full_wins):
                self._update_centroids(
                    full[full_wins == n_win], t, int(n_win)
                )
        self._t = t + 1

    def _switch_step(self, t: int) -> np.ndarray:
        """Vectorized :meth:`TaskSwitchDetector.update` sweep for step ``t``.

        The elementwise CUSUM recursion runs across all sessions at once
        (float64 elementwise ops are bitwise equal to the scalar update);
        the rare events — warmup-block freezes and detections — drop to
        per-session loops that replay the scalar arithmetic exactly.
        Returns the fired mask; fired sessions are fully re-anchored
        (detector, window epoch, guardrail, warm-started centroid) before
        returning, mirroring ``CentroidLearning._re_anchor``.
        """
        det = self._u.detector
        s = self._sws
        k_total = self.k
        telemetry.counter("switch.checks").inc(k_total)
        perfs = self._perfs[:, t]
        sizes = self._sizes[:, t]
        x = perfs / sizes
        fired = np.zeros(k_total, dtype=bool)
        stats = np.zeros(k_total)
        bounds = np.zeros(k_total)
        reasons = [""] * k_total

        # Input-size channel: immediate fire on a size_jump× ratio versus
        # the anchor, either direction, before any warmup accumulation.
        anchored = ~np.isnan(s.anchor_size)
        if det.size_jump is not None and anchored.any():
            ratio = sizes / np.where(anchored, s.anchor_size, 1.0)
            size_fire = anchored & (
                (ratio > det.size_jump) | (ratio * det.size_jump < 1.0)
            )
            if size_fire.any():
                fired |= size_fire
                stats[size_fire] = ratio[size_fire]
                bounds[size_fire] = det.size_jump
                for k in np.flatnonzero(size_fire):
                    reasons[k] = "input_size"
        # (Plan-shape channel: lock-step sessions carry no embeddings, so
        # the scalar detector's cosine check is inert here by construction.)

        quiet = ~fired
        new_anchor = quiet & ~anchored
        if new_anchor.any():
            s.anchor_size[new_anchor] = sizes[new_anchor]

        warm = quiet & (s.n < det.warmup)
        if warm.any():
            idx = np.flatnonzero(warm)
            s.block[idx, s.n[idx]] = x[idx]
            s.n[idx] += 1
            for k in idx[s.n[idx] == det.warmup]:
                # Freeze the reference exactly as the scalar detector does.
                block = s.block[k, : det.warmup]
                mean = float(block.mean())
                s.ref_mean[k] = mean
                s.ref_scale[k] = max(
                    float(block.std()), det.min_rel_scale * abs(mean), 1e-12
                )

        hot = quiet & ~warm
        if hot.any():
            idx = np.flatnonzero(hot)
            z = (x[idx] - s.ref_mean[idx]) / s.ref_scale[idx]
            g = np.maximum(0.0, s.g[idx] + np.minimum(z, det.clip) - det.drift)
            s.g[idx] = g
            s.n[idx] += 1
            over = g > det.threshold
            if over.any():
                cusum_fire = idx[over]
                fired[cusum_fire] = True
                stats[cusum_fire] = g[over]
                bounds[cusum_fire] = det.threshold
                for k in cusum_fire:
                    reasons[k] = "cost_shift"

        for k in np.flatnonzero(fired):
            decision = SwitchDecision(
                t, float(stats[k]), float(bounds[k]), True, reasons[k]
            )
            s.switch_counts[k] += 1
            s.decisions[k].append(decision)
            # Detector re-anchor on the firing observation.
            s.n[k] = 1
            s.block[k, 0] = x[k]
            s.g[k] = 0.0
            s.ref_mean[k] = np.nan
            s.ref_scale[k] = np.nan
            s.anchor_size[k] = sizes[k]
            _record_detection(decision)
            # Optimizer re-anchor: fresh window epoch seeded with the firing
            # observation, guardrail reset, warm-started centroid.
            self._win_start[k] = t
            self._model_version[k] = -1
            self._n_updates[k] = 0.0
            if self._grs is not None:
                gs = self._grs
                gs.consecutive[k] = 0
                gs.disabled[k] = False
                gs.since_disable[k] = 0
                gs.reset_count[k] += 1
                self._gr_start[k] = t + 1
                telemetry.counter("guardrail.resets").inc()
            warm_start = self._warm_starts[k]
            if warm_start is not None:
                obs = Observation(
                    config=self._vectors[k, t].copy(),
                    data_size=float(sizes[k]),
                    performance=float(perfs[k]),
                    iteration=t,
                )
                try:
                    vector = warm_start(obs)
                except Exception:  # noqa: BLE001 — mirror the scalar path
                    telemetry.counter("switch.warm_start_failures").inc()
                    vector = None
                if vector is not None:
                    self._centroids[k] = self.space.clip(
                        np.asarray(vector, dtype=float)
                    )
                    telemetry.counter("switch.warm_starts").inc()
            s.reanchors[k] += 1
            telemetry.counter("switch.reanchors", reason=decision.reason).inc()
            telemetry.emit(
                "switch.reanchor",
                iteration=t,
                reason=decision.reason,
                statistic=decision.statistic,
                centroid=self._centroids[k].tolist(),
            )
        return fired

    def _update_centroids(self, upd: np.ndarray, t: int, n_win: int) -> None:
        """FIND_BEST + ml sign gradient + overshoot, for sessions ``upd``."""
        u = self._u
        dim = self.dim
        lo = t + 1 - n_win
        model = self._models_for(upd, version=t + 1, n=n_win)
        w_conf = self._vectors[upd, lo : t + 1]
        w_perf = self._perfs[upd, lo : t + 1]
        p_latest = self._sizes[upd, t]

        if u.find_best_mode is FindBestMode.MODEL:
            rows = np.empty((upd.size, n_win, dim + 1))
            rows[:, :, :dim] = w_conf
            rows[:, :, dim] = p_latest[:, None]
            best_idx = np.argmin(model.predict(rows), axis=1)
        elif u.find_best_mode is FindBestMode.RAW:
            best_idx = np.argmin(w_perf, axis=1)
        else:  # NORMALIZED
            best_idx = np.argmin(w_perf / self._sizes[upd, lo : t + 1], axis=1)
        c_star = w_conf[np.arange(upd.size), best_idx]

        alpha = self._alphas[upd] / (
            1.0 + self._alpha_decays[upd] * self._n_updates[upd]
        )
        deltas = self._deltas
        if u.probe == "multiplicative":
            points = c_star[:, None, :] * (1.0 - alpha[:, None, None] * deltas[None])
        else:
            points = c_star[:, None, :] - (
                alpha[:, None, None] * deltas[None] * self._span[None, None, :]
            )
        np.clip(points, self._lb, self._ub, out=points)
        probe_rows = np.empty((upd.size, len(deltas), dim + 1))
        probe_rows[:, :, :dim] = points
        probe_rows[:, :, dim] = p_latest[:, None]
        delta = deltas[np.argmin(model.predict(probe_rows), axis=1)]

        if u.probe == "multiplicative":
            new_centroid = c_star * (1.0 - alpha[:, None] * delta)
        else:
            new_centroid = c_star - alpha[:, None] * delta * self._span[None, :]
        self._centroids[upd] = np.clip(new_centroid, self._lb, self._ub)
        self._n_updates[upd] += 1.0
        self._last_best[upd] = c_star
        self._last_delta[upd] = delta
        self._ever_updated[upd] = True
        telemetry.counter("centroid.updates").inc(upd.size)

    def _guardrail_step(self, t: int, eligible: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`Guardrail.update` sweep; returns the active mask.

        ``eligible`` masks out sessions whose detector fired this step —
        the sequential path re-anchors and returns before ever calling
        ``guardrail.update``, so they take no cooldown tick and no check.
        """
        g = self._u.guardrail
        s = self._grs
        was_disabled = s.disabled.copy()
        dis = np.flatnonzero(was_disabled & eligible)
        if dis.size and g.cooldown is not None:
            s.since_disable[dis] += 1
            telemetry.counter("guardrail.cooldown_holds").inc(dis.size)
            ready = dis[s.since_disable[dis] >= g.cooldown]
            if ready.size:
                s.disabled[ready] = False
                s.since_disable[ready] = 0
                s.consecutive[ready] = 0
                s.reenable_count[ready] += 1
                telemetry.counter("guardrail.reenables").inc(ready.size)
                for k in ready:
                    telemetry.emit(
                        "guardrail.reenable",
                        iteration=t,
                        reenable_count=int(s.reenable_count[k]),
                    )
        # Sessions disabled at entry (even ones re-enabled just above) skip
        # the check this step, exactly like the sequential early return.
        # History lengths are per-session once a task switch resets a
        # guardrail (``_gr_start`` moves); group by fit-window length so
        # each batched trend solve sees a rectangular stack.
        n_obs = t + 1 - self._gr_start
        chk_all = np.flatnonzero(
            eligible & ~was_disabled & (n_obs >= g.min_iterations)
        )
        if chk_all.size:
            w_all = np.minimum(n_obs[chk_all], g.fit_window)
            for w in np.unique(w_all):
                chk = chk_all[w_all == w]
                w = int(w)
                lo = t + 1 - w
                X = np.empty((chk.size, w, 2))
                X[:, :, 0] = np.arange(lo, t + 1, dtype=float)[None, :]
                X[:, :, 1] = self._sizes[chk, lo : t + 1]
                y = self._perfs[chk, lo : t + 1]
                p_last = self._sizes[chk, t]
                rows = np.empty((chk.size, 2, 2))
                rows[:, 0, 0] = float(t) + 1.0
                rows[:, 1, 0] = float(t)
                rows[:, :, 1] = p_last[:, None]
                preds = ols_predict(X, y, rows)
                pred_next = preds[:, 0]
                previous = np.minimum(self._perfs[chk, t], preds[:, 1])
                violated = pred_next > previous * (1.0 + g.threshold)
                for j, k in enumerate(chk):
                    s.decisions[k].append(GuardrailDecision(
                        iteration=t,
                        predicted_next=float(pred_next[j]),
                        previous=float(previous[j]),
                        violated=bool(violated[j]),
                    ))
                telemetry.counter("guardrail.checks").inc(chk.size)
                n_violated = int(np.count_nonzero(violated))
                if n_violated:
                    telemetry.counter(
                        "guardrail.verdicts", verdict="violation"
                    ).inc(n_violated)
                if chk.size - n_violated:
                    telemetry.counter("guardrail.verdicts", verdict="ok").inc(
                        chk.size - n_violated
                    )
                s.consecutive[chk] = np.where(
                    violated, s.consecutive[chk] + 1, 0
                )
                tripped = chk[violated & (s.consecutive[chk] >= g.patience)]
                if tripped.size:
                    s.disabled[tripped] = True
                    telemetry.counter("guardrail.disables").inc(tripped.size)
                    for j, k in enumerate(chk):
                        if s.disabled[k] and not was_disabled[k]:
                            telemetry.emit(
                                "guardrail.disable",
                                iteration=t,
                                predicted_next=float(pred_next[j]),
                                previous=float(previous[j]),
                            )
        return ~s.disabled

    # -- driving + results ---------------------------------------------------------

    def advance(self, n_iterations: int) -> None:
        """Advance all sessions ``n_iterations`` steps and sync state back.

        Writes the final centroid/window/guardrail state into the
        population's optimizer objects, so callers can inspect
        ``optimizer.centroid``, ``optimizer.observations`` and
        ``guardrail.active`` exactly as after a sequential run — without
        materializing traces.
        """
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self._ensure_capacity(self._t + n_iterations)
        for _ in range(n_iterations):
            self.step()
        self._sync_state()

    def run(self, n_iterations: int) -> List[TuningTrace]:
        """:meth:`advance` then materialize and return per-session traces."""
        self.advance(n_iterations)
        return self.traces()

    @property
    def tuning_active(self) -> np.ndarray:
        """Per-session guardrail-active mask (all True without guardrails)."""
        if self._grs is None:
            return np.ones(self.k, dtype=bool)
        return ~self._grs.disabled.copy()

    def traces(self) -> List[TuningTrace]:
        """Materialize per-session :class:`TuningTrace` objects."""
        n = self._t
        flat = self._vectors[:, :n].reshape(self.k * n, self.dim)
        # Pruned-subspace sessions (repro.core.importance.PrunedSpace)
        # decode to full-space vectors so trace configs are complete —
        # matching the full dicts the sequential path's to_dict() emits.
        space = self.space
        decode = getattr(space, "decode_matrix", None)
        if decode is not None:
            flat = decode(flat)
            space = space.full_space
        names = list(space.names)
        # One flattened conversion for all sessions (bitwise identical to
        # per-session calls: every transform is elementwise).
        all_natural = space.to_natural_matrix(flat).reshape(self.k, n, -1)
        # IterationRecord is a frozen dataclass, so its generated __init__
        # routes every field through object.__setattr__; at K·N records that
        # becomes the dominant materialization cost.  Build instances by
        # installing the field dict directly — value-identical (no
        # __post_init__ exists) and __eq__/__hash__/repr see the same
        # fields, just without the per-field frozen-write ceremony.
        new_record = IterationRecord.__new__
        out: List[TuningTrace] = []
        for k in range(self.k):
            natural = all_natural[k].tolist()
            observed = self._perfs[k, :n].tolist()
            truth = self._truth[k, :n].tolist()
            sizes = self._sizes[k, :n].tolist()
            active = self._active[k, :n].tolist()
            trace = TuningTrace()
            records = trace.records
            for t in range(n):
                rec = new_record(IterationRecord)
                rec.__dict__.update(
                    iteration=t,
                    config=dict(zip(names, natural[t])),
                    observed_seconds=observed[t],
                    true_seconds=truth[t],
                    data_size=sizes[t],
                    tuning_active=active[t],
                )
                records.append(rec)
            out.append(trace)
        return out

    def _sync_state(self) -> None:
        """Write lock-step state back into the real optimizer objects."""
        from ..core.observation import ObservationWindow

        n = self._t
        u = self._u
        iterations = np.arange(n, dtype=float).tolist()
        for k, opt in enumerate(self._opts):
            opt._centroid = self._centroids[k].copy()
            opt._n_updates = int(self._n_updates[k])
            if self._ever_updated[k]:
                opt._last_best = self._last_best[k].copy()
                opt._last_gradient = self._last_delta[k].copy()
            # Observations: append incrementally, unless a task switch moved
            # this session's window epoch since the last sync — then mirror
            # the sequential re-anchor with a fresh window holding only the
            # current epoch's observations.
            win_start = int(self._win_start[k])
            if win_start != self._synced_start[k]:
                opt.observations = ObservationWindow(u.window_size)
                self._synced_start[k] = win_start
                lo = win_start
            else:
                lo = self._synced_obs
            # One private copy per session; each Observation holds a row
            # view of it (the copy is never mutated, so the rows are as
            # immutable as the per-record copies the sequential path makes).
            conf = self._vectors[k, lo:n].copy()
            sizes = self._sizes[k, lo:n].tolist()
            perfs = self._perfs[k, lo:n].tolist()
            append = opt.observations.append
            new_obs = Observation.__new__
            for i in range(n - lo):
                perf = perfs[i]
                size = sizes[i]
                # Same frozen-dataclass shortcut as traces(), keeping
                # __post_init__'s semantics: config rows are already float64
                # arrays, and the two range checks are inlined.
                if perf < 0:
                    raise ValueError(f"performance must be >= 0, got {perf}")
                if size <= 0:
                    raise ValueError(f"data_size must be > 0, got {size}")
                obs = new_obs(Observation)
                obs.__dict__.update(
                    config=conf[i],
                    data_size=size,
                    performance=perf,
                    iteration=lo + i,
                    embedding=None,
                )
                append(obs)
            guardrail = opt.guardrail
            if guardrail is not None and self._grs is not None:
                s = self._grs
                g_lo = int(self._gr_start[k])
                guardrail._iterations = iterations[g_lo:]
                guardrail._data_sizes = self._sizes[k, g_lo:n].tolist()
                guardrail._times = self._perfs[k, g_lo:n].tolist()
                guardrail._consecutive_violations = int(s.consecutive[k])
                guardrail._disabled = bool(s.disabled[k])
                guardrail._since_disable = int(s.since_disable[k])
                guardrail.reenable_count = int(s.reenable_count[k])
                guardrail.reset_count = int(s.reset_count[k])
                guardrail.decisions = list(s.decisions[k])
            if self._sws is not None:
                sw = self._sws
                det = opt.switch_detector
                n_k = int(sw.n[k])
                det._n = n_k
                det._block = [
                    float(v)
                    for v in sw.block[k, : min(n_k, u.detector.warmup)]
                ]
                ref_mean = float(sw.ref_mean[k])
                det._ref_mean = None if np.isnan(ref_mean) else ref_mean
                ref_scale = float(sw.ref_scale[k])
                det._ref_scale = None if np.isnan(ref_scale) else ref_scale
                det._g = float(sw.g[k])
                anchor = float(sw.anchor_size[k])
                det._anchor_size = None if np.isnan(anchor) else anchor
                det.switch_count = int(sw.switch_counts[k])
                det.detections = list(sw.decisions[k])
                opt.reanchor_count = int(sw.reanchors[k])
        self._synced_obs = n


class LockstepReplicatedRuns(LockstepSessions):
    """K independent replicated runs of one synthetic objective, lock-step.

    The vectorized Centroid Learning core (candidate drawing, surrogate
    scoring, FIND_BEST + gradient updates, guardrails) is shared with
    :class:`LockstepSessions`; only the workload substrate differs — data
    sizes come from per-run size processes and observations from
    ``objective.observe`` with each run's own noise RNG, exactly mirroring
    :func:`repro.experiments.runner.run_single`.  The runs matrix from
    :meth:`runs` is bit-identical to ``n_runs`` sequential ``run_single``
    calls on the same optimizers, size processes and RNGs.

    ``traces()`` is not meaningful for this driver (synthetic objectives
    have no noiseless kernel times); read :meth:`runs` instead.
    """

    def __init__(self, optimizers, objective, size_processes, noise_rngs):
        opts = list(optimizers)
        _require(len(opts) >= 1, "lock-step needs at least one run")
        _require(
            len(size_processes) == len(opts) and len(noise_rngs) == len(opts),
            "optimizers, size_processes and noise_rngs must align",
        )
        self._objective = objective
        self._size_procs = list(size_processes)
        self._noise_rngs = list(noise_rngs)
        self._init_core(opts)

    def _input_sizes(self, t: int):
        # run_single suggests with data_size = size_process(t), verbatim.
        p = np.array([proc(t) for proc in self._size_procs])
        return p, p

    def _execute(self, t: int, vectors: np.ndarray, scales: np.ndarray) -> None:
        self._sizes[:, t] = scales
        p_list = scales.tolist()
        observe = self._objective.observe
        rngs = self._noise_rngs
        for k in range(self.k):
            p_list[k] = observe(vectors[k], p_list[k], rngs[k])
        self._perfs[:, t] = p_list
        # _truth stays zero: synthetic objectives are scored post hoc by
        # runs(), from the suggested vectors alone.

    def runs(self, track: str = "true") -> np.ndarray:
        """The ``(n_runs, n_iterations)`` tracked matrix of runner.py.

        ``track`` has :func:`run_single` semantics: ``"true"`` (noiseless
        value at the reference size), ``"normed"`` (true / data size) or
        ``"gap"`` (optimality gap along the most impactful dimension).  All
        three are pure functions of the suggested vectors, so evaluating
        them after the lock-step run reproduces the sequential loop's
        values bitwise.
        """
        if track not in ("true", "normed", "gap"):
            raise ValueError(f"unknown track mode {track!r}")
        n = self._t
        obj = self._objective
        out = np.empty((self.k, n))
        if track == "gap":
            impactful = obj.most_impactful_dimension
            for k in range(self.k):
                vecs = self._vectors[k]
                for t in range(n):
                    out[k, t] = obj.optimality_gap(vecs[t], dimension=impactful)
        elif track == "true":
            ref = obj.reference_size
            for k in range(self.k):
                vecs = self._vectors[k]
                for t in range(n):
                    out[k, t] = obj.true_value(vecs[t], ref)
        else:
            for k in range(self.k):
                vecs = self._vectors[k]
                for t in range(n):
                    p = self._sizes[k, t]
                    out[k, t] = obj.true_value(vecs[t], p) / p
        return out
