"""Extension: the production conservative policy (Sec. 6.3).

"In production, we employ a conservative guardrail policy that enables
autotuning only when query performance improves."  This experiment injects
a config-independent external regression (e.g., a noisy neighbor moving onto
the cluster) halfway through tuning and compares plain Centroid Learning
against the :class:`~repro.core.conservative.ConservativePolicy` wrapper:

* during the regression, the wrapper should pause exploration and replay its
  incumbent (less time spent probing new configs while the environment is
  degraded);
* once conditions recover, exploration resumes and final quality matches the
  plain tuner.
"""

from __future__ import annotations


import numpy as np

from ..core.centroid import CentroidLearning
from ..core.conservative import ConservativePolicy
from ..core.observation import Observation
from ..sparksim.noise import NoiseModel
from ..workloads.synthetic import default_synthetic_objective
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0, n_workers=None) -> ExperimentResult:
    n_runs = 8 if quick else 40
    n_iterations = 90 if quick else 240
    regression_start = n_iterations // 3
    regression_end = 2 * n_iterations // 3
    regression_factor = 2.0
    objective = default_synthetic_objective(
        noise=NoiseModel(fluctuation_level=0.2, spike_level=0.3), seed=7
    )
    space = objective.space

    def external(t: int) -> float:
        return regression_factor if regression_start <= t < regression_end else 1.0

    builders = {
        "plain": lambda i: CentroidLearning(space, seed=seed + i),
        "conservative": lambda i: ConservativePolicy(
            CentroidLearning(space, seed=seed + i),
            margin=0.5, recent_window=5, cooldown=6, min_observations=10,
        ),
    }
    result = ExperimentResult(
        name="ext_conservative",
        description=(
            "External 2x regression injected for the middle third of the "
            "run: plain CL vs the conservative explore-only-while-improving "
            "wrapper.  Tracked: true performance of executed configs and the "
            "exploration rate during the regression."
        ),
    )
    result.scalars["optimal_value"] = objective.optimal_value
    result.scalars["default_value"] = objective.true_value(space.default_vector())
    for label, build in builders.items():

        def one_run(i: int, build=build):
            opt = build(i)
            rng = np.random.default_rng(seed * 13 + i)
            row = np.empty(n_iterations)
            exploring_flags = []
            for t in range(n_iterations):
                v = opt.suggest(data_size=objective.reference_size)
                if regression_start <= t < regression_end:
                    exploring_flags.append(getattr(opt, "exploring", True))
                r = objective.observe(v, objective.reference_size, rng) * external(t)
                opt.observe(Observation(
                    config=v, data_size=objective.reference_size,
                    performance=r, iteration=t,
                ))
                row[t] = objective.true_value(v)
            return (
                row,
                float(np.mean(exploring_flags)),
                float(getattr(opt, "pause_count", 0)),
            )

        per_run = parallel_map(one_run, range(n_runs), n_workers=n_workers)
        runs = np.stack([row for row, _, _ in per_run])
        explore_during_regression = [e for _, e, _ in per_run]
        pauses = [p for _, _, p in per_run]
        from .runner import ConvergenceBands

        bands = ConvergenceBands(runs)
        result.series[label] = bands
        result.scalars[f"{label}_final_median"] = bands.final_median()
        result.scalars[f"{label}_exploration_rate_during_regression"] = float(
            np.mean(explore_during_regression)
        )
        result.scalars[f"{label}_mean_pauses"] = float(np.mean(pauses))
    result.notes.append(
        "Expected shape: the conservative wrapper explores markedly less "
        "while the external regression is active (pauses > 0), yet its final "
        "median after recovery is comparable to plain CL's."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
