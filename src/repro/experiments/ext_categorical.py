"""Extension: tuning categorical knobs via continuous embeddings (Sec. 4.3).

The paper notes categorical configurations "can be handled by employing
embedding algorithms that map categorical values into a continuous space".
This experiment tunes the three production knobs *plus* the compression
codec and serializer through :class:`CategoricalSpaceAdapter`: each choice
is probed once (warmup), the axes re-order by observed performance, and
Centroid Learning tunes the mixed space.  Compared against continuous-only
tuning on queries where the categorical choices matter (shuffle-heavy
plans), the mixed tuner should find additional gains.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.categorical import CategoricalSpaceAdapter
from ..core.centroid import CentroidLearning
from ..core.observation import Observation
from ..sparksim.configs import (
    AUTO_BROADCAST_JOIN_THRESHOLD,
    COMPRESSION_CODEC,
    MAX_PARTITION_BYTES,
    SERIALIZER,
    SHUFFLE_PARTITIONS,
    query_level_space,
)
from ..sparksim.executor import SparkSimulator
from ..sparksim.noise import NoiseModel
from ..workloads.tpcds import tpcds_plan
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run"]

DEFAULT_QUERIES = (5, 18, 40, 64)


def run(
    quick: bool = False,
    seed: int = 0,
    query_ids: Sequence[int] = DEFAULT_QUERIES,
    n_workers=None,
) -> ExperimentResult:
    query_ids = query_ids[:2] if quick else query_ids
    n_iterations = 25 if quick else 60
    noise = NoiseModel(fluctuation_level=0.15, spike_level=0.2)
    continuous = [MAX_PARTITION_BYTES, AUTO_BROADCAST_JOIN_THRESHOLD, SHUFFLE_PARTITIONS]
    categorical = [COMPRESSION_CODEC, SERIALIZER]
    cont_space = query_level_space()

    result = ExperimentResult(
        name="ext_categorical",
        description=(
            "Mixed continuous+categorical tuning (codec, serializer via "
            "performance-ordered encodings) vs continuous-only tuning: mean "
            "true time of the final window, relative to the defaults."
        ),
    )
    truth = SparkSimulator(noise=None, seed=0)

    def tune_query(indexed_qid):
        k, qid = indexed_qid
        plan = tpcds_plan(qid, 100.0)
        data_size = max(plan.total_leaf_cardinality, 1.0)
        default_config = cont_space.default_dict()
        default_time = truth.true_time(plan, default_config)
        w = max(3, n_iterations // 6)

        # Continuous-only tuning.
        sim = SparkSimulator(noise=noise, seed=seed * 3 + k)
        cl = CentroidLearning(cont_space, alpha=0.08, beta=0.15, seed=seed + k)
        trues = []
        for t in range(n_iterations):
            vec = cl.suggest(data_size=data_size)
            res = sim.run(plan, cont_space.to_dict(vec))
            cl.observe(Observation(config=vec, data_size=res.data_size,
                                   performance=res.elapsed_seconds, iteration=t))
            trues.append(res.true_seconds)
        cont_gain = (default_time / float(np.mean(trues[-w:])) - 1.0) * 100.0

        # Mixed-space tuning: warmup every choice, refit, then tune.
        adapter = CategoricalSpaceAdapter(continuous, categorical)
        sim = SparkSimulator(noise=noise, seed=seed * 3 + k)
        for config in adapter.warmup_configs():
            res = sim.run(plan, config)
            adapter.record(config, res.elapsed_seconds)
        adapter.refit()
        cl = CentroidLearning(adapter.space, alpha=0.08, beta=0.15, seed=seed + k)
        trues = []
        for t in range(n_iterations):
            vec = cl.suggest(data_size=data_size)
            config = adapter.to_config(vec)
            res = sim.run(plan, config)
            adapter.record(config, res.elapsed_seconds)
            cl.observe(Observation(config=vec, data_size=res.data_size,
                                   performance=res.elapsed_seconds, iteration=t))
            trues.append(res.true_seconds)
        mixed_gain = (default_time / float(np.mean(trues[-w:])) - 1.0) * 100.0
        return cont_gain, mixed_gain

    per_query = parallel_map(
        tune_query, list(enumerate(query_ids)), n_workers=n_workers
    )
    cont_gains: List[float] = []
    mixed_gains: List[float] = []
    for qid, (cont_gain, mixed_gain) in zip(query_ids, per_query):
        cont_gains.append(cont_gain)
        mixed_gains.append(mixed_gain)
        result.scalars[f"tpcds_q{qid:02d}_continuous_gain_pct"] = cont_gain
        result.scalars[f"tpcds_q{qid:02d}_mixed_gain_pct"] = mixed_gain

    result.scalars["mean_continuous_gain_pct"] = float(np.mean(cont_gains))
    result.scalars["mean_mixed_gain_pct"] = float(np.mean(mixed_gains))
    result.scalars["categorical_extra_gain_pct_points"] = float(
        np.mean(mixed_gains) - np.mean(cont_gains)
    )
    result.notes.append(
        "Expected shape: mixed-space tuning matches or beats continuous-only "
        "(zstd helps shuffle-heavy queries; kryo helps CPU-bound ones), at "
        "the cost of a few warmup probes."
    )
    return result


if __name__ == "__main__":
    from .report import render_result

    print(render_result(run(quick=True)))
